/**
 * @file
 * uprpool — check/repair/dump maintenance tool for pool image files,
 * modeled on nvml's pmempool. Grown from examples/pool_inspector: the
 * inspector demos the APIs, this is the operational tool — it opens
 * hostile images through the pool_check engine, never through the
 * throwing Pool constructor, so a damaged file produces a diagnosis
 * and an exit status instead of an exception.
 *
 * Usage:
 *   uprpool create <image> <sizeMiB>     format a fresh pool image
 *   uprpool info   <image>               header / log / arena summary
 *   uprpool check  [-r|--repair] [--json] <image>
 *   uprpool dump   <image>               arena block map
 *
 * check exit status: 0 = clean, 1 = repairable damage found (or
 * repaired with -r), 2 = corrupt (unrepairable), 3 = usage/IO error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "nvm/pool_allocator.hh"
#include "nvm/pool_check.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: uprpool create <image> <sizeMiB> "
                 "[undo|redo]\n"
                 "       uprpool info   <image>\n"
                 "       uprpool check  [-r|--repair] [--json] <image>\n"
                 "       uprpool dump   <image>\n");
    return 3;
}

bool
loadFile(const std::string &path, Backing &image)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        std::fprintf(stderr, "uprpool: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    const std::streamsize n = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
    is.read(reinterpret_cast<char *>(bytes.data()), n);
    if (!is) {
        std::fprintf(stderr, "uprpool: short read from '%s'\n",
                     path.c_str());
        return false;
    }
    image.assign(std::move(bytes));
    return true;
}

bool
saveFile(const std::string &path, const Backing &image)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    const std::vector<std::uint8_t> bytes = image.raw().toVector();
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os) {
        std::fprintf(stderr, "uprpool: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    return true;
}

int
cmdCreate(const std::string &path, const std::string &mib,
          const std::string &engine_name)
{
    const unsigned long size_mib = std::strtoul(mib.c_str(), nullptr, 0);
    if (size_mib == 0 || size_mib > 4096) {
        std::fprintf(stderr,
                     "uprpool: bad size '%s' (1..4096 MiB)\n",
                     mib.c_str());
        return 3;
    }
    EngineKind engine = EngineKind::Undo;
    if (engine_name == "redo")
        engine = EngineKind::Redo;
    else if (!engine_name.empty() && engine_name != "undo") {
        std::fprintf(stderr, "uprpool: unknown engine '%s' "
                     "(undo|redo)\n", engine_name.c_str());
        return 3;
    }
    try {
        Pool pool(1, path, static_cast<Bytes>(size_mib) << 20, engine);
        PoolAllocator(pool).format();
        if (!saveFile(path, pool.backing()))
            return 3;
    } catch (const Fault &f) {
        std::fprintf(stderr, "uprpool: create failed [%s]: %s\n",
                     faultKindName(f.kind()), f.what());
        return 3;
    }
    std::printf("created '%s': %lu MiB %s-engine pool image\n",
                path.c_str(), size_mib, engineKindName(engine));
    return 0;
}

/** check's exit status from a report (the CLI contract). */
int
statusExit(const CheckReport &rep)
{
    switch (rep.status) {
      case CheckStatus::Clean:      return 0;
      case CheckStatus::Repairable: return 1;
      case CheckStatus::Repaired:   return 1;
      case CheckStatus::Corrupt:    return 2;
    }
    return 3;
}

int
cmdCheck(const std::string &path, bool repair, bool json)
{
    Backing image;
    if (!loadFile(path, image))
        return 3;
    const CheckReport rep = checkPool(image, repair);
    if (repair && rep.status == CheckStatus::Repaired &&
        !saveFile(path, image))
        return 3;

    if (json) {
        std::fputs(rep.toJson().c_str(), stdout);
        return statusExit(rep);
    }

    std::printf("%s: %s\n", path.c_str(), checkStatusName(rep.status));
    for (const CheckIssue &i : rep.issues) {
        std::printf("  [%s] %s%s\n", i.component.c_str(),
                    i.what.c_str(),
                    i.repaired     ? " (repaired)"
                    : i.repairable ? " (repairable: rerun with -r)"
                                   : " (NOT repairable)");
    }
    if (rep.recovery.logActive) {
        std::printf("  %s log: %zu entries to replay, %" PRIu64
                    " bytes discarded (generation %u)\n",
                    engineKindName(rep.engine),
                    rep.recovery.entriesReplayed,
                    rep.recovery.bytesDiscarded,
                    rep.recovery.generation);
    }
    return statusExit(rep);
}

int
cmdInfo(const std::string &path)
{
    Backing image;
    if (!loadFile(path, image))
        return 3;
    if (image.size() < sizeof(PoolHeader)) {
        std::fprintf(stderr,
                     "uprpool: '%s' is smaller than a pool header\n",
                     path.c_str());
        return 2;
    }
    PoolHeader h;
    image.read(0, &h, sizeof(h));
    std::printf("== pool header ==\n");
    std::printf("  magic        0x%016" PRIx64 " (%s)\n", h.magic,
                h.magic == PoolHeader::kMagic ? "ok" : "BAD");
    std::printf("  version      %u%s\n", h.version,
                h.version == PoolHeader::kVersion ? "" : " (BAD)");
    std::printf("  pool id      %u\n", h.poolId);
    std::printf("  size         %" PRIu64 " bytes (%.1f MiB)\n",
                h.size, static_cast<double>(h.size) / (1 << 20));
    std::printf("  identity crc 0x%08x (%s)\n", h.identCrc,
                h.identCrc == poolIdentCrc(h) ? "ok" : "MISMATCH");
    std::printf("  root offset  0x%" PRIx64 "%s\n", h.rootOff,
                h.rootOff ? "" : " (unset)");
    std::printf("  engine       %s\n",
                engineKindName(static_cast<EngineKind>(h.engine)));
    std::printf("  txn log      [0x%" PRIx64 ", +%" PRIu64 ")\n",
                h.logStart, h.logSize);
    std::printf("  arena        [0x%" PRIx64 ", 0x%" PRIx64 ")\n",
                h.arenaStart, h.size);

    // Dry-run diagnosis (never mutates the file).
    const CheckReport rep = checkPool(image, false);
    std::printf("\n== diagnosis ==\n");
    std::printf("  status       %s\n", checkStatusName(rep.status));
    for (const CheckIssue &i : rep.issues)
        std::printf("  [%s] %s\n", i.component.c_str(),
                    i.what.c_str());
    std::printf("  %s log     %s (generation %u)\n",
                engineKindName(rep.engine),
                rep.recovery.controlDamaged ? "control block damaged"
                : rep.recovery.logActive
                    ? (rep.engine == EngineKind::Redo
                           ? "committed journal pending replay"
                           : "pending transaction")
                    : "clean",
                rep.recovery.generation);
    return statusExit(rep);
}

int
cmdDump(const std::string &path)
{
    Backing image;
    if (!loadFile(path, image))
        return 3;
    if (image.size() < sizeof(PoolHeader)) {
        std::fprintf(stderr,
                     "uprpool: '%s' is smaller than a pool header\n",
                     path.c_str());
        return 2;
    }
    PoolHeader h;
    image.read(0, &h, sizeof(h));
    if (h.magic != PoolHeader::kMagic ||
        h.arenaStart >= image.size()) {
        std::fprintf(stderr,
                     "uprpool: header too damaged to walk the arena "
                     "(run 'uprpool check')\n");
        return 2;
    }

    std::printf("offset            size        state\n");
    Bytes b = h.arenaStart + 8;
    const Bytes end = image.size();
    while (b + PoolAllocator::kMinBlock <= end) {
        std::uint64_t tag;
        image.read(b, &tag, sizeof(tag));
        const Bytes size = tag & ~std::uint64_t{1};
        if (size < PoolAllocator::kMinBlock ||
            size % PoolAllocator::kAlign != 0 || size > end - b) {
            std::printf("0x%-16" PRIx64 "DAMAGED tag 0x%016" PRIx64
                        " — walk stopped\n",
                        b, tag);
            return 2;
        }
        std::uint64_t footer;
        image.read(b + size - 8, &footer, sizeof(footer));
        std::printf("0x%-16" PRIx64 "%-12" PRIu64 "%s%s\n", b, size,
                    (tag & 1) ? "allocated" : "free",
                    footer == tag ? "" : "  [FOOTER MISMATCH]");
        b += size;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    try {
        if (cmd == "create") {
            if (argc != 4 && argc != 5)
                return usage();
            return cmdCreate(argv[2], argv[3],
                             argc == 5 ? argv[4] : "");
        }
        if (cmd == "info")
            return cmdInfo(argv[2]);
        if (cmd == "dump")
            return cmdDump(argv[2]);
        if (cmd == "check") {
            bool repair = false, json = false;
            std::string path;
            for (int i = 2; i < argc; ++i) {
                const std::string a = argv[i];
                if (a == "-r" || a == "--repair")
                    repair = true;
                else if (a == "--json")
                    json = true;
                else if (!a.empty() && a[0] == '-')
                    return usage();
                else
                    path = a;
            }
            if (path.empty())
                return usage();
            return cmdCheck(path, repair, json);
        }
    } catch (const Fault &f) {
        // checkPool is designed not to throw on damage; anything that
        // still surfaces is reported as a typed diagnosis, not a
        // backtrace.
        std::fprintf(stderr, "uprpool: [%s] %s\n",
                     faultKindName(f.kind()), f.what());
        return 2;
    }
    return usage();
}
