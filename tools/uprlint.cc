/**
 * @file
 * uprlint: static Fig-4 conformance linter for mini-IR files.
 *
 *   uprlint [options] file.ir...
 *
 * Pipeline per file: parse (verifier runs automatically inside the
 * parser), pointer-kind inference, branch-sensitive flow analysis,
 * Fig-4 conformance classification, and — with --report-elision —
 * the proof-driven check-elision pass including its bit-identical
 * execution validation when the module has a runnable @main.
 *
 * Options:
 *   --json             machine-readable output (one JSON document),
 *                      including the per-site elision records the
 *                      fast-path lowering consumes (site id, proof
 *                      kind, retained/elided status)
 *   --report-elision   run the elision pass and print its proofs
 *   --persistency      run the transactional persistency-ordering
 *                      analysis (durability lattice) even on modules
 *                      with no tx ops; modules that use txbegin get
 *                      it automatically. Adds located persist-*
 *                      diagnostics and a per-store LogMode proof
 *                      (must-log / elide-fresh-alloc /
 *                      elide-dominated-write) to the records
 *   --exec-tier TIER   validate elision through the direct-threaded
 *                      FastExecutor instead of the Interpreter;
 *                      TIER is "model" or "native"
 *   --whole-program    treat the module as closed: parameter kinds
 *                      come only from call sites in the module
 *   --flow-refine      enable block-local refinement in the base
 *                      check plan before elision
 *   --                 end of options; every later argument is a
 *                      file, even one starting with '-'
 *
 * Exit status: 0 clean (warnings allowed), 1 on parse/verify errors
 * or diagnosed UB.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/fault.hh"
#include "compiler/analysis/elision.hh"
#include "compiler/analysis/fig4_conformance.hh"
#include "compiler/analysis/persistency.hh"
#include "compiler/exec_fast.hh"
#include "compiler/ir_parser.hh"

using namespace upr;

namespace
{

struct Options
{
    bool json = false;
    bool reportElision = false;
    bool persistency = false;
    bool wholeProgram = false;
    bool flowRefine = false;
    /** Validate through FastExecutor instead of the Interpreter. */
    bool execTierSet = false;
    ExecTier execTier = ExecTier::Model;
    std::vector<std::string> files;
};

/**
 * One check site of the final plan, as the stable machine-readable
 * contract `--json` publishes for the fast-path lowering: the site
 * id ("fn:block:inst:role"), its post-elision status, and the proof
 * rule that elided it (empty when none applies).
 */
struct SiteRecord
{
    std::string id;
    int line = 0;
    int col = 0;
    std::string role;
    /** retained / elided / refined / static-convert / static. */
    std::string status;
    std::string proof;
    /** Store logging proof (persistency runs only), else empty. */
    std::string logMode;
};

/** Per-file lint outcome (for JSON assembly). */
struct FileResult
{
    std::string file;
    bool parseFailed = false;
    std::string parseError;
    DiagnosticEngine diags;
    ConformanceReport report;
    CheckPlan plan;
    ElisionResult elision;
    std::vector<SiteRecord> siteRecords;
    bool validated = false;
    ElisionValidation validation;
    std::vector<std::uint64_t> validationArgs;
    bool hasErrors = false;
    /** Persistency analysis ran (tx module or --persistency). */
    bool persistencyRan = false;
    PersistencyResult persistency;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: uprlint [--json] [--report-elision] "
                 "[--persistency] [--exec-tier model|native] "
                 "[--whole-program] [--flow-refine] [--] "
                 "file.ir...\n");
    return 2;
}

/** Enumerate the plan's check sites in program order. */
void
collectSiteRecords(const ir::Module &mod, FileResult &r)
{
    std::map<std::string, std::string> proof_kind;
    for (const ElisionProof &p : r.elision.proofs) {
        proof_kind[p.function + ":" + std::to_string(p.block) + ":" +
                   std::to_string(p.instIdx) + ":" + p.role] = p.kind;
    }
    for (const auto &fptr : mod.functions) {
        const ir::Function &fn = *fptr;
        const FunctionPlan &fp = r.plan.perFunction.at(fn.name);
        for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
            for (std::size_t i = 0; i < fn.blocks[b].insts.size();
                 ++i) {
                const ir::Inst &in = fn.blocks[b].insts[i];
                const InstPlan &ip = fp.at(b, i);
                auto add = [&](const char *role, bool dynamic,
                               bool refined, bool convert) {
                    SiteRecord rec;
                    rec.id = fn.name + ":" + std::to_string(b) + ":" +
                             std::to_string(i) + ":" + role;
                    rec.line = in.loc.line;
                    rec.col = in.loc.col;
                    rec.role = role;
                    const auto it = proof_kind.find(rec.id);
                    if (it != proof_kind.end())
                        rec.proof = it->second;
                    rec.status = dynamic ? "retained"
                        : it != proof_kind.end() ? "elided"
                        : refined ? "refined"
                        : convert ? "static-convert"
                        : "static";
                    r.siteRecords.push_back(std::move(rec));
                };
                switch (in.op) {
                  case ir::Op::Load:
                  case ir::Op::Free:
                  case ir::Op::Pfree:
                  case ir::Op::Store:
                  case ir::Op::StoreP:
                    add("addr", ip.addrDynamic, ip.addrRefined,
                        ip.addrStaticConvert);
                    if (r.persistencyRan &&
                        (in.op == ir::Op::Store ||
                         in.op == ir::Op::StoreP)) {
                        r.siteRecords.back().logMode =
                            logModeName(ip.logMode);
                    }
                    if (in.op == ir::Op::StoreP) {
                        add("dest", ip.destDynamic, false, false);
                        add("value", ip.valueDynamic, false, false);
                    }
                    break;
                  case ir::Op::PtrToInt:
                    add("op0", ip.cmp0Dynamic, false, false);
                    break;
                  case ir::Op::Eq:
                  case ir::Op::Lt:
                    if (fn.valueTypes[in.operands[0]] ==
                        ir::Type::Ptr) {
                        add("op0", ip.cmp0Dynamic, false, false);
                    }
                    if (fn.valueTypes[in.operands[1]] ==
                        ir::Type::Ptr) {
                        add("op1", ip.cmp1Dynamic, false, false);
                    }
                    break;
                  default:
                    break;
                }
            }
        }
    }
}

FileResult
lintFile(const std::string &path, const Options &opt)
{
    FileResult r;
    r.file = path;

    std::ifstream is(path);
    if (!is) {
        r.parseFailed = true;
        r.parseError = "cannot open file";
        r.hasErrors = true;
        return r;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    ir::Module mod;
    try {
        mod = ir::parseModule(buf.str());
    } catch (const Fault &f) {
        r.parseFailed = true;
        r.parseError = f.what();
        r.hasErrors = true;
        return r;
    }

    const InferenceResult inf =
        inferPointerKinds(mod, !opt.wholeProgram);
    const FlowAnalysis flow(mod, inf);
    r.report = checkFig4Conformance(mod, flow, r.diags);
    r.diags.sortByLocation();
    r.hasErrors = r.diags.hasErrors();

    r.plan = insertChecks(mod, &inf, opt.flowRefine);

    // The persistency lattice runs automatically on any module that
    // uses the tx opcodes; --persistency forces the pass (and its
    // summary/records) on modules without them, where it reports
    // zero findings — diagnostics stay scoped to functions that
    // contain tx opcodes. It writes the per-store LogMode proofs
    // into the plan the lowering bakes.
    if (opt.persistency || moduleUsesTx(mod)) {
        r.persistency = analyzePersistency(mod, flow, &r.plan);
        r.persistencyRan = true;
        for (const Diagnostic &d : r.persistency.diags.all()) {
            r.diags.report(d.severity, d.code, d.loc, d.message,
                           d.function);
        }
        r.diags.sortByLocation();
        r.hasErrors = r.hasErrors || r.diags.hasErrors();
    }

    if (opt.reportElision) {
        const CheckPlan before = r.plan;
        r.elision = elideChecks(mod, flow, r.plan);

        // Validate on @main when it is runnable with integer args.
        const ir::Function *entry = mod.find("main");
        bool runnable = entry != nullptr;
        if (entry) {
            for (ir::Type t : entry->paramTypes)
                runnable = runnable && t == ir::Type::I64;
        }
        if (runnable) {
            r.validationArgs.assign(entry->paramTypes.size(), 8);
            try {
                r.validation = opt.execTierSet
                    ? validateElisionTier(mod, before, r.plan,
                                          "main", r.validationArgs,
                                          opt.execTier)
                    : validateElision(mod, before, r.plan, "main",
                                      r.validationArgs);
                r.validated = true;
                if (!r.validation.bitIdentical)
                    r.hasErrors = true;
            } catch (const Fault &f) {
                // The program faults identically under both plans
                // only if the fault is plan-independent; treat any
                // fault during validation as "not validated".
                r.validated = false;
            }
        }
    }
    collectSiteRecords(mod, r);
    return r;
}

void
printText(const FileResult &r, const Options &opt)
{
    if (r.parseFailed) {
        std::printf("%s: error: %s\n", r.file.c_str(),
                    r.parseError.c_str());
        return;
    }
    std::printf("%s: %llu site(s): %llu proved-safe, %llu "
                "needs-dynamic-check, %llu diagnosed-UB\n",
                r.file.c_str(),
                (unsigned long long)r.report.sites.size(),
                (unsigned long long)r.report.provedSafe,
                (unsigned long long)r.report.needsDynamic,
                (unsigned long long)r.report.diagnosedUB);
    std::fputs(r.diags.render(r.file).c_str(), stdout);

    if (r.persistencyRan) {
        std::printf("%s: persistency: %llu tx store(s), %llu "
                    "finding(s), %llu log elision(s) "
                    "(%llu fresh-alloc, %llu dominated-write)\n",
                    r.file.c_str(),
                    (unsigned long long)r.persistency.txStores,
                    (unsigned long long)r.persistency.findingCount(),
                    (unsigned long long)r.persistency.logElided,
                    (unsigned long long)r.persistency.elidedFresh,
                    (unsigned long long)r.persistency.elidedDominated);
    }

    if (opt.reportElision) {
        std::printf("%s: elision: %llu check(s) elided, %llu of "
                    "%llu site(s) remain dynamic\n",
                    r.file.c_str(),
                    (unsigned long long)r.plan.elidedSites,
                    (unsigned long long)r.plan.remainingSites,
                    (unsigned long long)r.plan.totalSites);
        for (const ElisionProof &p : r.elision.proofs) {
            std::printf("%s:%s: note: [elide-%s] %s [@%s]\n",
                        r.file.c_str(), p.loc.str().c_str(),
                        p.role.c_str(), p.reason.c_str(),
                        p.function.c_str());
        }
        if (r.validated) {
            char tier_tag[32] = "";
            if (opt.execTierSet) {
                std::snprintf(tier_tag, sizeof tier_tag,
                              " (%s tier)",
                              execTierName(opt.execTier));
            }
            std::printf(
                "%s: validation%s: @main result %llu == %llu, "
                "dynamic checks %llu -> %llu, bit-identical: %s\n",
                r.file.c_str(), tier_tag,
                (unsigned long long)r.validation.resultBefore,
                (unsigned long long)r.validation.resultAfter,
                (unsigned long long)r.validation.checksBefore,
                (unsigned long long)r.validation.checksAfter,
                r.validation.bitIdentical ? "yes" : "NO");
        }
    }
}

void
printJson(const std::vector<FileResult> &results, const Options &opt)
{
    std::printf("[");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const FileResult &r = results[i];
        std::printf("%s\n{\n  \"file\": \"%s\",\n",
                    i ? "," : "", jsonEscape(r.file).c_str());
        if (r.parseFailed) {
            std::printf("  \"error\": \"%s\"\n}",
                        jsonEscape(r.parseError).c_str());
            continue;
        }
        std::printf("  \"summary\": {\"sites\": %llu, "
                    "\"provedSafe\": %llu, \"needsDynamic\": %llu, "
                    "\"diagnosedUB\": %llu, \"totalSites\": %llu, "
                    "\"remainingSites\": %llu, "
                    "\"refinedSites\": %llu, "
                    "\"elidedSites\": %llu},\n",
                    (unsigned long long)r.report.sites.size(),
                    (unsigned long long)r.report.provedSafe,
                    (unsigned long long)r.report.needsDynamic,
                    (unsigned long long)r.report.diagnosedUB,
                    (unsigned long long)r.plan.totalSites,
                    (unsigned long long)r.plan.remainingSites,
                    (unsigned long long)r.plan.refinedSites,
                    (unsigned long long)r.plan.elidedSites);
        if (r.persistencyRan) {
            std::printf(
                "  \"persistency\": {\"txStores\": %llu, "
                "\"persistencyDiags\": %llu, \"logElided\": %llu, "
                "\"elidedFresh\": %llu, \"elidedDominated\": "
                "%llu},\n",
                (unsigned long long)r.persistency.txStores,
                (unsigned long long)r.persistency.findingCount(),
                (unsigned long long)r.persistency.logElided,
                (unsigned long long)r.persistency.elidedFresh,
                (unsigned long long)r.persistency.elidedDominated);
        }
        std::printf("  \"siteRecords\": [");
        for (std::size_t s = 0; s < r.siteRecords.size(); ++s) {
            const SiteRecord &sr = r.siteRecords[s];
            std::printf("%s\n    {\"id\": \"%s\", \"line\": %d, "
                        "\"col\": %d, \"role\": \"%s\", "
                        "\"status\": \"%s\", \"proof\": \"%s\"",
                        s ? "," : "", jsonEscape(sr.id).c_str(),
                        sr.line, sr.col,
                        jsonEscape(sr.role).c_str(),
                        jsonEscape(sr.status).c_str(),
                        jsonEscape(sr.proof).c_str());
            if (!sr.logMode.empty()) {
                std::printf(", \"logMode\": \"%s\"",
                            jsonEscape(sr.logMode).c_str());
            }
            std::printf("}");
        }
        std::printf("%s],\n", r.siteRecords.empty() ? "" : "\n  ");
        std::printf("  \"diagnostics\": %s",
                    r.diags.renderJson().c_str());
        if (opt.reportElision) {
            std::printf(",\n  \"elision\": {\"elided\": %llu, "
                        "\"proofs\": [",
                        (unsigned long long)r.elision.elidedSites);
            for (std::size_t p = 0; p < r.elision.proofs.size();
                 ++p) {
                const ElisionProof &pr = r.elision.proofs[p];
                std::printf("%s\n    {\"function\": \"%s\", "
                            "\"line\": %d, \"col\": %d, "
                            "\"role\": \"%s\", \"reason\": \"%s\"}",
                            p ? "," : "",
                            jsonEscape(pr.function).c_str(),
                            pr.loc.line, pr.loc.col,
                            jsonEscape(pr.role).c_str(),
                            jsonEscape(pr.reason).c_str());
            }
            std::printf("%s]",
                        r.elision.proofs.empty() ? "" : "\n  ");
            if (r.validated) {
                if (opt.execTierSet) {
                    std::printf(",\n  \"execTier\": \"%s\"",
                                execTierName(opt.execTier));
                }
                std::printf(
                    ",\n  \"validation\": {\"bitIdentical\": %s, "
                    "\"resultBefore\": %llu, \"resultAfter\": %llu, "
                    "\"checksBefore\": %llu, \"checksAfter\": %llu}",
                    r.validation.bitIdentical ? "true" : "false",
                    (unsigned long long)r.validation.resultBefore,
                    (unsigned long long)r.validation.resultAfter,
                    (unsigned long long)r.validation.checksBefore,
                    (unsigned long long)r.validation.checksAfter);
            }
            std::printf("}");
        }
        std::printf("\n}");
    }
    std::printf("\n]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool options_done = false;
    for (int i = 1; i < argc; ++i) {
        if (options_done)
            opt.files.push_back(argv[i]);
        else if (std::strcmp(argv[i], "--") == 0)
            options_done = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            opt.json = true;
        else if (std::strcmp(argv[i], "--report-elision") == 0)
            opt.reportElision = true;
        else if (std::strcmp(argv[i], "--persistency") == 0)
            opt.persistency = true;
        else if (std::strcmp(argv[i], "--whole-program") == 0)
            opt.wholeProgram = true;
        else if (std::strcmp(argv[i], "--flow-refine") == 0)
            opt.flowRefine = true;
        else if (std::strcmp(argv[i], "--exec-tier") == 0) {
            if (i + 1 >= argc)
                return usage();
            const char *tier = argv[++i];
            if (std::strcmp(tier, "model") == 0)
                opt.execTier = ExecTier::Model;
            else if (std::strcmp(tier, "native") == 0)
                opt.execTier = ExecTier::Native;
            else
                return usage();
            opt.execTierSet = true;
        } else if (argv[i][0] == '-')
            return usage();
        else
            opt.files.push_back(argv[i]);
    }
    if (opt.files.empty())
        return usage();

    std::vector<FileResult> results;
    bool any_errors = false;
    for (const std::string &f : opt.files) {
        results.push_back(lintFile(f, opt));
        any_errors = any_errors || results.back().hasErrors;
    }

    if (opt.json) {
        printJson(results, opt);
    } else {
        for (const FileResult &r : results)
            printText(r, opt);
    }
    return any_errors ? 1 : 0;
}
