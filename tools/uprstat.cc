/**
 * @file
 * uprstat: pretty-print and diff observability metrics JSON.
 *
 *   uprstat FILE               human-readable counter/histogram table
 *   uprstat --json FILE        canonical JSON re-emission (round-trip)
 *   uprstat --diff OLD NEW     per-entry delta between two documents
 *
 * Accepted inputs: a MetricsSnapshot document ({"counters": ...,
 * "histograms": ...}) as written by MetricsSnapshot::toJson(), or a
 * bench_harness BENCH_*.json file, whose per-cell "metrics" sections
 * are aggregated under "<workload>/<version>." prefixed names.
 *
 * Exit status: 0 ok (diff: documents identical), 1 diff found
 * differences, 2 usage/parse error.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_value.hh"

using upr::obs::JsonValue;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: uprstat [--json] FILE\n"
                 "       uprstat --diff OLD NEW\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/**
 * A flattened document: counter name -> value, histogram name ->
 * (field name -> value). Maps give a stable order for printing and
 * diffing regardless of source order.
 */
struct FlatDoc
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::map<std::string, std::uint64_t>>
        histograms;
};

void
flattenHistogram(FlatDoc &doc, const std::string &name,
                 const JsonValue &h)
{
    if (!h.isObject())
        return;
    for (const auto &[field, value] : h.members()) {
        if (value.isUint())
            doc.histograms[name][field] = value.asUint();
    }
}

/** Flatten one MetricsSnapshot object into @p doc with @p prefix. */
void
flattenSnapshot(FlatDoc &doc, const std::string &prefix,
                const JsonValue &snap)
{
    if (const JsonValue *cs = snap.find("counters");
        cs && cs->isObject()) {
        for (const auto &[name, value] : cs->members()) {
            if (value.isUint())
                doc.counters[prefix + name] = value.asUint();
        }
    }
    if (const JsonValue *hs = snap.find("histograms");
        hs && hs->isObject()) {
        for (const auto &[name, h] : hs->members())
            flattenHistogram(doc, prefix + name, h);
    }
}

/** Flatten either document shape (see file comment). */
bool
flatten(const JsonValue &root, FlatDoc &doc)
{
    if (root.find("counters") || root.find("histograms")) {
        flattenSnapshot(doc, "", root);
        return true;
    }
    const JsonValue *cells = root.find("cells");
    if (!cells || !cells->isArray())
        return false;
    for (const JsonValue &cell : cells->items()) {
        const JsonValue *w = cell.find("workload");
        const JsonValue *v = cell.find("version");
        const JsonValue *m = cell.find("metrics");
        if (!w || !v || !m)
            continue;
        const std::string prefix =
            w->asString() + "/" + v->asString() + ".";
        for (const auto &[name, h] : m->members())
            flattenHistogram(doc, prefix + name, h);
    }
    return true;
}

void
printFlat(const FlatDoc &doc)
{
    if (!doc.counters.empty()) {
        std::printf("counters (%zu):\n", doc.counters.size());
        for (const auto &[name, value] : doc.counters)
            std::printf("  %-40s %20" PRIu64 "\n", name.c_str(),
                        value);
    }
    if (!doc.histograms.empty()) {
        std::printf("histograms (%zu):\n", doc.histograms.size());
        for (const auto &[name, fields] : doc.histograms) {
            std::printf("  %s:", name.c_str());
            for (const auto &[field, value] : fields)
                std::printf(" %s=%" PRIu64, field.c_str(), value);
            std::printf("\n");
        }
    }
    if (doc.counters.empty() && doc.histograms.empty())
        std::printf("(no metrics)\n");
}

/** Print one side-by-side diff row. */
void
diffRow(const std::string &name, const std::uint64_t *oldv,
        const std::uint64_t *newv)
{
    if (oldv && newv) {
        const std::int64_t delta =
            static_cast<std::int64_t>(*newv) -
            static_cast<std::int64_t>(*oldv);
        std::printf("  %-40s %20" PRIu64 " -> %20" PRIu64
                    "  (%+" PRId64 ")\n",
                    name.c_str(), *oldv, *newv, delta);
    } else if (newv) {
        std::printf("  %-40s %20s -> %20" PRIu64 "  (new)\n",
                    name.c_str(), "-", *newv);
    } else {
        std::printf("  %-40s %20" PRIu64 " -> %20s  (gone)\n",
                    name.c_str(), *oldv, "-");
    }
}

int
diffDocs(const FlatDoc &olds, const FlatDoc &news)
{
    bool differ = false;

    std::map<std::string, std::uint64_t> oldFlat = olds.counters;
    std::map<std::string, std::uint64_t> newFlat = news.counters;
    // Histogram fields join the same namespace as "name.field".
    for (const auto &[name, fields] : olds.histograms)
        for (const auto &[field, value] : fields)
            oldFlat[name + "." + field] = value;
    for (const auto &[name, fields] : news.histograms)
        for (const auto &[field, value] : fields)
            newFlat[name + "." + field] = value;

    std::vector<std::string> names;
    for (const auto &[name, value] : oldFlat)
        names.push_back(name);
    for (const auto &[name, value] : newFlat) {
        if (!oldFlat.count(name))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());

    for (const std::string &name : names) {
        const auto oi = oldFlat.find(name);
        const auto ni = newFlat.find(name);
        const std::uint64_t *ov =
            oi == oldFlat.end() ? nullptr : &oi->second;
        const std::uint64_t *nv =
            ni == newFlat.end() ? nullptr : &ni->second;
        if (ov && nv && *ov == *nv)
            continue;
        differ = true;
        diffRow(name, ov, nv);
    }

    if (!differ) {
        std::printf("identical: %zu entries\n", oldFlat.size());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool diff = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--diff") == 0)
            diff = true;
        else if (argv[i][0] == '-' && argv[i][1] != '\0')
            return usage();
        else
            files.push_back(argv[i]);
    }
    if (diff ? files.size() != 2 : files.size() != 1)
        return usage();

    std::vector<JsonValue> docs;
    for (const std::string &path : files) {
        std::string text;
        if (!readFile(path, text)) {
            std::fprintf(stderr, "uprstat: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        try {
            docs.push_back(upr::obs::parseJson(text));
        } catch (const upr::obs::JsonParseError &e) {
            std::fprintf(stderr, "uprstat: %s: %s\n", path.c_str(),
                         e.what());
            return 2;
        }
    }

    if (json) {
        // Canonical re-emission: parse(dump(parse(x))) == parse(x),
        // and dump is byte-stable on its own output.
        std::fputs(docs[0].dump().c_str(), stdout);
        return 0;
    }

    std::vector<FlatDoc> flat(docs.size());
    for (std::size_t i = 0; i < docs.size(); ++i) {
        if (!flatten(docs[i], flat[i])) {
            std::fprintf(stderr,
                         "uprstat: %s: neither a metrics snapshot "
                         "nor a bench file\n",
                         files[i].c_str());
            return 2;
        }
    }

    if (diff)
        return diffDocs(flat[0], flat[1]);
    printFlat(flat[0]);
    return 0;
}
