#include "crash/crash_sweep.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/stats.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"
#include "obs/metrics.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/**
 * Process-wide crash-sweep statistics, cumulative across sweeps.
 * Function-local so the group registers with the MetricsRegistry on
 * first use and stays registered for the process lifetime.
 */
struct CrashStats
{
    StatGroup group{"crash"};
    Counter crashPoints;
    Counter rollbacks;
    Counter cleanImages;
    obs::ScopedMetricsGroup reg{group};

    CrashStats()
    {
        group.registerCounter("crashPoints", crashPoints,
                              "crash points injected and recovered");
        group.registerCounter("rollbacks", rollbacks,
                              "recoveries that rolled a txn back");
        group.registerCounter("cleanImages", cleanImages,
                              "recoveries that found a clean image");
    }
};

CrashStats &
crashStats()
{
    static CrashStats stats;
    return stats;
}

} // namespace

CrashSweepResult
crashSweep(const CrashWorkload &workload, const CrashValidator &validate,
           const CrashSweepConfig &config)
{
    // One-command replay of a failed sweep point: UPR_CRASH_SEED in
    // the environment overrides the configured retention seed, and
    // any failure below prints the seed/mode/point needed to set it.
    std::uint64_t seed = config.seed;
    if (const char *env = std::getenv("UPR_CRASH_SEED");
        env != nullptr && *env != '\0') {
        seed = std::strtoull(env, nullptr, 0);
    }

    // Profiling pass: count the workload's persistence events without
    // crashing. This also shakes out workloads that fail on their own.
    std::uint64_t total = 0;
    {
        CrashInjector injector(config.mode, seed);
        injector.arm(0);
        workload(injector);
        total = injector.events();
    }
    if (total == 0) {
        throw Fault(FaultKind::BadUsage,
                    "crash sweep workload generated no persistence "
                    "events (injector never attached?)");
    }

    CrashSweepResult result;
    result.crashPoints = total;
    crashStats().crashPoints.add(total);

    for (std::uint64_t n = 1; n <= total; ++n) {
        CrashInjector injector(config.mode, seed);
        injector.arm(n);
        bool crashed = false;
        try {
            workload(injector);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        if (!crashed || !injector.fired()) {
            throw Fault(FaultKind::BadUsage,
                        "crash point " + std::to_string(n) + " of " +
                        std::to_string(total) + " never fired — the "
                        "workload is not deterministic");
        }

        try {
            // Reopen the dead machine's media image and recover it.
            Backing media;
            media.assign(injector.image());
            Pool pool("crash@" + std::to_string(n), std::move(media));
            const bool rolled_back = TxnEngine::recover(pool);
            obs::traceEvent(obs::EventKind::CrashPoint, n,
                            rolled_back);
            if (rolled_back) {
                ++result.rollbacks;
                ++crashStats().rollbacks;
            } else {
                ++result.cleanImages;
                ++crashStats().cleanImages;
            }
            // Recovery must be idempotent: a crash *during* recovery
            // is just another recovery on the next boot.
            if (TxnEngine::recover(pool)) {
                throw Fault(FaultKind::CorruptPool,
                            "recovery of crash point " +
                            std::to_string(n) + " is not idempotent");
            }

            validate(pool, n, rolled_back);
        } catch (...) {
            // Straight to stderr, not the log sink: sweeps routinely
            // run with warnings silenced, and this line is the whole
            // point of a reproducible failure.
            std::fprintf(stderr,
                         "crash sweep FAILED at point %llu/%llu "
                         "(mode %s, seed %llu)\n"
                         "replay with: UPR_CRASH_SEED=%llu "
                         "<this test>\n",
                         (unsigned long long)n,
                         (unsigned long long)total,
                         crashModeName(config.mode),
                         (unsigned long long)seed,
                         (unsigned long long)seed);
            throw;
        }
    }
    return result;
}

} // namespace upr
