#include "crash/crash_sweep.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "nvm/txn.hh"
#include "obs/metrics.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/**
 * Process-wide crash-sweep statistics, cumulative across sweeps.
 * Function-local so the group registers with the MetricsRegistry on
 * first use and stays registered for the process lifetime.
 */
struct CrashStats
{
    StatGroup group{"crash"};
    Counter crashPoints;
    Counter rollbacks;
    Counter cleanImages;
    obs::ScopedMetricsGroup reg{group};

    CrashStats()
    {
        group.registerCounter("crashPoints", crashPoints,
                              "crash points injected and recovered");
        group.registerCounter("rollbacks", rollbacks,
                              "recoveries that rolled a txn back");
        group.registerCounter("cleanImages", cleanImages,
                              "recoveries that found a clean image");
    }
};

CrashStats &
crashStats()
{
    static CrashStats stats;
    return stats;
}

} // namespace

CrashSweepResult
crashSweep(const CrashWorkload &workload, const CrashValidator &validate,
           const CrashSweepConfig &config)
{
    // Profiling pass: count the workload's persistence events without
    // crashing. This also shakes out workloads that fail on their own.
    std::uint64_t total = 0;
    {
        CrashInjector injector(config.mode, config.seed);
        injector.arm(0);
        workload(injector);
        total = injector.events();
    }
    if (total == 0) {
        throw Fault(FaultKind::BadUsage,
                    "crash sweep workload generated no persistence "
                    "events (injector never attached?)");
    }

    CrashSweepResult result;
    result.crashPoints = total;
    crashStats().crashPoints.add(total);

    for (std::uint64_t n = 1; n <= total; ++n) {
        CrashInjector injector(config.mode, config.seed);
        injector.arm(n);
        bool crashed = false;
        try {
            workload(injector);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        if (!crashed || !injector.fired()) {
            throw Fault(FaultKind::BadUsage,
                        "crash point " + std::to_string(n) + " of " +
                        std::to_string(total) + " never fired — the "
                        "workload is not deterministic");
        }

        // Reopen the dead machine's media image and recover it.
        Backing media;
        media.assign(injector.image());
        Pool pool("crash@" + std::to_string(n), std::move(media));
        const bool rolled_back = Txn::recover(pool);
        obs::traceEvent(obs::EventKind::CrashPoint, n, rolled_back);
        if (rolled_back) {
            ++result.rollbacks;
            ++crashStats().rollbacks;
        } else {
            ++result.cleanImages;
            ++crashStats().cleanImages;
        }
        // Recovery must be idempotent: a crash *during* recovery is
        // just another recovery on the next boot.
        upr_assert_msg(!Txn::recover(pool),
                       "recovery of crash point %llu is not idempotent",
                       (unsigned long long)n);

        validate(pool, n, rolled_back);
    }
    return result;
}

} // namespace upr
