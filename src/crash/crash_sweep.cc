#include "crash/crash_sweep.hh"

#include "common/logging.hh"
#include "nvm/txn.hh"

namespace upr
{

CrashSweepResult
crashSweep(const CrashWorkload &workload, const CrashValidator &validate,
           const CrashSweepConfig &config)
{
    // Profiling pass: count the workload's persistence events without
    // crashing. This also shakes out workloads that fail on their own.
    std::uint64_t total = 0;
    {
        CrashInjector injector(config.mode, config.seed);
        injector.arm(0);
        workload(injector);
        total = injector.events();
    }
    if (total == 0) {
        throw Fault(FaultKind::BadUsage,
                    "crash sweep workload generated no persistence "
                    "events (injector never attached?)");
    }

    CrashSweepResult result;
    result.crashPoints = total;

    for (std::uint64_t n = 1; n <= total; ++n) {
        CrashInjector injector(config.mode, config.seed);
        injector.arm(n);
        bool crashed = false;
        try {
            workload(injector);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        if (!crashed || !injector.fired()) {
            throw Fault(FaultKind::BadUsage,
                        "crash point " + std::to_string(n) + " of " +
                        std::to_string(total) + " never fired — the "
                        "workload is not deterministic");
        }

        // Reopen the dead machine's media image and recover it.
        Backing media;
        media.assign(injector.image());
        Pool pool("crash@" + std::to_string(n), std::move(media));
        const bool rolled_back = Txn::recover(pool);
        if (rolled_back) {
            ++result.rollbacks;
        } else {
            ++result.cleanImages;
        }
        // Recovery must be idempotent: a crash *during* recovery is
        // just another recovery on the next boot.
        upr_assert_msg(!Txn::recover(pool),
                       "recovery of crash point %llu is not idempotent",
                       (unsigned long long)n);

        validate(pool, n, rolled_back);
    }
    return result;
}

} // namespace upr
