#include "crash/mt_crash_sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "containers/concurrent_hash_map.hh"
#include "crash/crash_injector.hh"
#include "nvm/engine.hh"
#include "obs/metrics.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/**
 * Process-wide multi-threaded-sweep statistics, cumulative across
 * sweeps; lazily constructed so the group only enters the metrics
 * registry (and snapshots) once an MT sweep actually runs.
 */
struct MtCrashStats
{
    StatGroup group{"mtcrash"};
    Counter crashPoints;
    Counter silent;
    Counter containment;
    obs::ScopedMetricsGroup reg{group};

    MtCrashStats()
    {
        group.registerCounter("crashPoints", crashPoints,
                              "multi-threaded crash points swept");
        group.registerCounter("silent", silent,
                              "durable-linearizability violations "
                              "(wrong recovered state, no error)");
        group.registerCounter("containment", containment,
                              "exceptions escaping shard recovery");
    }
};

MtCrashStats &
mtCrashStats()
{
    static MtCrashStats stats;
    return stats;
}

/**
 * The multi-backing injector: one shared event counter over every
 * shard pool's persistence-event stream. Event index N is a position
 * in the *total order* across shards — crashing at N captures the
 * durable image of every shard at the same instant, which is what
 * makes the recovered whole-store state checkable against the logged
 * history's linearizations.
 */
class MultiCrashInjector
{
  public:
    MultiCrashInjector(CrashMode mode, std::uint64_t seed)
        : mode_(mode), seed_(seed)
    {}

    ~MultiCrashInjector() { detach(); }

    MultiCrashInjector(const MultiCrashInjector &) = delete;
    MultiCrashInjector &operator=(const MultiCrashInjector &) = delete;

    /** 0 = never crash, only count (the profiling pass). */
    void arm(std::uint64_t crashAt) { crashAt_ = crashAt; }

    /**
     * Start observing every backing in @p backings (the crash window
     * opens: current content becomes the durable baseline on each).
     */
    void
    attach(std::vector<Backing *> backings)
    {
        detach();
        backings_ = std::move(backings);
        events_ = 0;
        fired_ = false;
        order_.clear();
        hook_ = std::make_shared<Hook>(Hook{this});
        for (unsigned s = 0; s < backings_.size(); ++s) {
            backings_[s]->enablePersistenceDomain();
            backings_[s]->setPersistObserver(
                [hook = hook_, s](PersistEvent, Bytes, Bytes) {
                    if (hook->owner != nullptr)
                        hook->owner->onEvent(s);
                });
        }
    }

    /** Go inert; never touches the backings (they may be gone). */
    void
    detach()
    {
        if (hook_ != nullptr) {
            hook_->owner = nullptr;
            hook_.reset();
        }
        backings_.clear();
    }

    std::uint64_t events() const { return events_; }
    bool fired() const { return fired_; }

    /** Shard owning each event, in total order (profiling pass). */
    const std::vector<unsigned> &order() const { return order_; }

    /** Shard @p s's durable image at the crash instant. */
    const std::vector<std::uint8_t> &
    image(unsigned s) const
    {
        upr_assert_msg(fired_, "crash image requested before a crash");
        return images_.at(s);
    }

  private:
    void
    onEvent(unsigned shard)
    {
        ++events_;
        order_.push_back(shard);
        if (crashAt_ != 0 && events_ == crashAt_ && !fired_) {
            // Power fails machine-wide: capture EVERY shard's media
            // at this instant, before the triggering event applies.
            // Each shard gets its own retention-RNG stream so torn
            // lines differ across shards like they would on real
            // independent DIMMs.
            images_.resize(backings_.size());
            for (unsigned s = 0; s < backings_.size(); ++s) {
                images_[s] = backings_[s]->crashImage(
                    mode_, seed_ ^ (crashAt_ * 0x9e3779b9ULL + s));
            }
            fired_ = true;
            // Inert before the throw: unwinding rolls back the other
            // shards' open transactions, and those writes must not
            // count or crash again — the machine is already off.
            hook_->owner = nullptr;
            hook_.reset();
            backings_.clear();
            throw SimulatedCrash(crashAt_);
        }
    }

    struct Hook
    {
        MultiCrashInjector *owner;
    };

    CrashMode mode_;
    std::uint64_t seed_;
    std::shared_ptr<Hook> hook_;
    std::vector<Backing *> backings_;
    std::uint64_t crashAt_ = 0;
    std::uint64_t events_ = 0;
    bool fired_ = false;
    std::vector<unsigned> order_;
    std::vector<std::vector<std::uint8_t>> images_;
};

/** One transactional operation on a shard's own table. */
struct Op
{
    enum class Kind
    {
        Set,
        Erase
    };
    Kind kind;
    std::uint64_t key;
    std::uint64_t value;
};

constexpr std::uint64_t kSetupKeysPerShard = 8;

/** A shard's deterministic slice of the workload. */
struct ShardPlan
{
    std::vector<std::uint64_t> setupKeys; //!< pre-crash-window baseline
    std::vector<std::uint64_t> freshKeys; //!< for in-window inserts
    std::vector<Op> ops;
};

/**
 * Partition consecutive integers into per-shard key lists by fleet
 * ownership, then derive each shard's op list: a rotating mix of
 * fresh insert, overwrite, and erase, entirely over keys that shard
 * owns. Pure function of (shards, opsPerShard) — every sweep run
 * regenerates the identical plan.
 */
std::vector<ShardPlan>
makePlan(unsigned shards, std::size_t opsPerShard)
{
    std::vector<ShardPlan> plan(shards);
    const std::size_t fresh_needed = opsPerShard / 3 + 1;
    std::uint64_t key = 0;
    for (bool done = false; !done; ++key) {
        const unsigned s = ShardedRuntime::shardOfKey(key, shards);
        if (plan[s].setupKeys.size() < kSetupKeysPerShard) {
            plan[s].setupKeys.push_back(key);
        } else if (plan[s].freshKeys.size() < fresh_needed) {
            plan[s].freshKeys.push_back(key);
        }
        done = true;
        for (const ShardPlan &p : plan) {
            if (p.setupKeys.size() < kSetupKeysPerShard ||
                p.freshKeys.size() < fresh_needed)
                done = false;
        }
    }
    for (unsigned s = 0; s < shards; ++s) {
        ShardPlan &p = plan[s];
        for (std::size_t j = 0; j < opsPerShard; ++j) {
            const std::uint64_t round = j / 3;
            switch (j % 3) {
              case 0: // fresh insert
                p.ops.push_back({Op::Kind::Set,
                                 p.freshKeys[round % p.freshKeys.size()],
                                 0x1000 + s * 0x100 + j});
                break;
              case 1: // overwrite an existing key
                p.ops.push_back(
                    {Op::Kind::Set,
                     p.setupKeys[round % kSetupKeysPerShard],
                     0x2000 + s * 0x100 + j});
                break;
              default: // delete (chain unlinks, node freed)
                p.ops.push_back(
                    {Op::Kind::Erase,
                     p.setupKeys[(round + 1) % kSetupKeysPerShard], 0});
                break;
            }
        }
    }
    return plan;
}

/** Shard @p s's reference contents after its first @p n ops. */
std::map<std::uint64_t, std::uint64_t>
referenceState(const ShardPlan &plan, std::size_t n)
{
    std::map<std::uint64_t, std::uint64_t> m;
    for (const std::uint64_t k : plan.setupKeys)
        m[k] = k * 10 + 7;
    for (std::size_t i = 0; i < n && i < plan.ops.size(); ++i) {
        const Op &op = plan.ops[i];
        if (op.kind == Op::Kind::Set) {
            m[op.key] = op.value;
        } else {
            m.erase(op.key);
        }
    }
    return m;
}

ShardedRuntime::Config
fleetConfig(const MtCrashSweepConfig &cfg)
{
    ShardedRuntime::Config fc;
    fc.shards = cfg.shards;
    fc.runtime.version = Version::Hw;
    fc.runtime.seed = 1234; // fixed: the sweep must be deterministic
    fc.poolName = "mtsweep";
    fc.poolSize = 1 << 20;
    fc.engine = cfg.engine;
    fc.groupCommitSize = cfg.groupCommitSize;
    return fc;
}

/**
 * One full workload execution: build the fleet and the sharded map,
 * lay down the setup baseline, open the crash window on every shard
 * backing, then drive the per-shard op lists through the seeded
 * step-interleaving scheduler. @p committed and @p inFlight report
 * per-shard progress at the instant a crash unwinds.
 */
void
runWorkload(MultiCrashInjector &injector, const MtCrashSweepConfig &cfg,
            const std::vector<ShardPlan> &plan,
            std::vector<std::size_t> &committed,
            std::vector<bool> &inFlight)
{
    committed.assign(cfg.shards, 0);
    inFlight.assign(cfg.shards, false);

    ShardedRuntime fleet(fleetConfig(cfg));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);

    // Setup phase: outside the crash window; becomes the durable
    // baseline when the injector enables the persistence domains.
    for (unsigned s = 0; s < cfg.shards; ++s) {
        ShardedRuntime::Bind bind(fleet, s);
        for (const std::uint64_t k : plan[s].setupKeys)
            map.shard(s).insert(k, k * 10 + 7);
    }

    std::vector<Backing *> backings;
    for (unsigned s = 0; s < cfg.shards; ++s) {
        backings.push_back(
            &fleet.runtime(s).pools().pool(fleet.pool(s)).backing());
    }
    injector.attach(std::move(backings));

    // The deterministic scheduler: each shard's next op advances in
    // three steps (begin / apply / commit), and a seeded RNG picks
    // which unfinished shard steps next — so transactions overlap
    // across shards, in the same total order on every run.
    enum class Step
    {
        Begin,
        Apply,
        Commit
    };
    std::vector<std::size_t> opIdx(cfg.shards, 0);
    std::vector<Step> step(cfg.shards, Step::Begin);
    Rng schedule(cfg.scheduleSeed);

    for (;;) {
        std::vector<unsigned> runnable;
        for (unsigned s = 0; s < cfg.shards; ++s) {
            if (opIdx[s] < plan[s].ops.size())
                runnable.push_back(s);
        }
        if (runnable.empty())
            break;
        const unsigned s = runnable[static_cast<std::size_t>(
            schedule.nextBounded(runnable.size()))];

        ShardedRuntime::Bind bind(fleet, s);
        Runtime &rt = fleet.runtime(s);
        const Op &op = plan[s].ops[opIdx[s]];
        switch (step[s]) {
          case Step::Begin:
            rt.beginTxn(fleet.pool(s));
            inFlight[s] = true;
            step[s] = Step::Apply;
            break;
          case Step::Apply:
            if (op.kind == Op::Kind::Set) {
                map.shard(s).insert(op.key, op.value);
            } else {
                map.shard(s).erase(op.key);
            }
            step[s] = Step::Commit;
            break;
          case Step::Commit:
            rt.commitTxn();
            ++committed[s];
            inFlight[s] = false;
            step[s] = Step::Begin;
            ++opIdx[s];
            break;
        }
    }

    // Flush any pending group-commit batches while the crash window
    // is still open — a crash during this tail is just another point.
    for (unsigned s = 0; s < cfg.shards; ++s) {
        ShardedRuntime::Bind bind(fleet, s);
        fleet.runtime(s).flushGroup();
    }
}

/**
 * Recover shard @p s's crash image and compare it against the
 * admissible linearizations of that shard's logged history.
 * @return empty on success, else a violation description
 */
std::string
recoverAndCheckShard(const MtCrashSweepConfig &cfg,
                     const std::vector<std::uint8_t> &img,
                     const ShardPlan &plan, std::size_t committed,
                     std::uint64_t point, unsigned s,
                     MtCrashSweepResult &result)
{
    Backing media;
    media.assign(img);
    Pool pool("mtcrash@" + std::to_string(point) + "#" +
                  std::to_string(s),
              std::move(media));
    const bool rolled_back = TxnEngine::recover(pool);
    obs::traceEvent(obs::EventKind::CrashPoint, point, s);
    if (rolled_back) {
        ++result.rollbacks;
    } else {
        ++result.cleanImages;
    }
    // Idempotence: a crash *during* recovery is just another boot.
    if (TxnEngine::recover(pool))
        return "recovery is not idempotent";

    Backing image;
    image.assign(pool.backing().raw());
    Runtime rt(fleetConfig(cfg).runtime);
    RuntimeScope scope(rt);
    const PoolId id = rt.pools().adoptImage(std::move(image), "crashed");
    rt.pools().allocator(id).checkConsistency();

    const PoolOffset root = rt.pools().pool(id).rootOff();
    if (root == 0)
        return "recovered pool lost its root";
    MemEnv env = MemEnv::persistentEnv(rt, id);
    HashMap<std::uint64_t, std::uint64_t> table(
        env, Ptr<HashMap<std::uint64_t, std::uint64_t>::Header>::
                 fromBits(PtrRepr::makeRelative(id, root)));
    table.validate();

    std::map<std::uint64_t, std::uint64_t> actual;
    table.forEach([&](std::uint64_t k, std::uint64_t v) {
        actual.emplace(k, v);
    });

    // The admissible states of this shard: its committed prefix, or
    // that prefix plus its one in-flight operation applied atomically
    // (group commit coarsens both bounds to batch boundaries). Keys
    // are shard-disjoint, so the store-wide linearization set is
    // exactly the cross product of these per-shard sets.
    std::size_t lo = committed;
    std::size_t hi = std::min(committed + 1, plan.ops.size());
    if (cfg.groupCommitSize > 1) {
        lo = committed - committed % cfg.groupCommitSize;
        hi = std::min(lo + cfg.groupCommitSize, plan.ops.size());
    }
    if (actual == referenceState(plan, lo) ||
        actual == referenceState(plan, hi))
        return "";
    return "recovered state (size " + std::to_string(actual.size()) +
           ") matches neither " + std::to_string(lo) + " nor " +
           std::to_string(hi) + " committed ops";
}

} // namespace

MtCrashSweepResult
mtCrashSweep(const MtCrashSweepConfig &config)
{
    upr_assert_msg(config.shards >= 1 && config.opsPerShard >= 1,
                   "mtCrashSweep needs at least one shard and one op");

    // One-command replay of a failed point, same contract as the
    // single-threaded sweep: UPR_CRASH_SEED overrides the retention
    // seed, and every violation prints the values needed to set it.
    MtCrashSweepConfig cfg = config;
    if (const char *env = std::getenv("UPR_CRASH_SEED");
        env != nullptr && *env != '\0') {
        cfg.seed = std::strtoull(env, nullptr, 0);
    }

    const std::vector<ShardPlan> plan =
        makePlan(cfg.shards, cfg.opsPerShard);
    std::vector<std::size_t> committed;
    std::vector<bool> inFlight;

    // Profiling pass: count the total order's events without
    // crashing, and record which shard owns each position.
    MtCrashSweepResult result;
    {
        MultiCrashInjector injector(cfg.mode, cfg.seed);
        injector.arm(0);
        runWorkload(injector, cfg, plan, committed, inFlight);
        result.crashPoints = injector.events();
        const std::vector<unsigned> &order = injector.order();
        for (std::size_t i = 1; i < order.size(); ++i) {
            if (order[i] != order[i - 1])
                ++result.crossShardEvents;
        }
    }
    if (result.crashPoints == 0) {
        throw Fault(FaultKind::BadUsage,
                    "multi-threaded crash sweep generated no "
                    "persistence events");
    }
    mtCrashStats().crashPoints.add(result.crashPoints);

    for (std::uint64_t n = 1; n <= result.crashPoints; ++n) {
        MultiCrashInjector injector(cfg.mode, cfg.seed);
        injector.arm(n);
        bool crashed = false;
        try {
            runWorkload(injector, cfg, plan, committed, inFlight);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        if (!crashed || !injector.fired()) {
            throw Fault(FaultKind::BadUsage,
                        "crash point " + std::to_string(n) + " of " +
                            std::to_string(result.crashPoints) +
                            " never fired — the multi-threaded "
                            "workload is not deterministic");
        }

        for (unsigned s = 0; s < cfg.shards; ++s) {
            std::string violation;
            bool contained = true;
            try {
                violation = recoverAndCheckShard(
                    cfg, injector.image(s), plan[s], committed[s], n,
                    s, result);
            } catch (const std::exception &e) {
                contained = false;
                violation = std::string("escaped exception: ") +
                            e.what();
            }
            if (violation.empty())
                continue;
            if (contained) {
                ++result.silent;
                ++mtCrashStats().silent;
            } else {
                ++result.containment;
                ++mtCrashStats().containment;
            }
            std::fprintf(
                stderr,
                "mt crash sweep VIOLATION at point %llu/%llu shard "
                "%u/%u (%s engine, mode %s, seed %llu): %s\n"
                "replay with: UPR_CRASH_SEED=%llu <this test>\n",
                (unsigned long long)n,
                (unsigned long long)result.crashPoints, s, cfg.shards,
                cfg.engine == EngineKind::Undo ? "undo" : "redo",
                crashModeName(cfg.mode),
                (unsigned long long)cfg.seed, violation.c_str(),
                (unsigned long long)cfg.seed);
        }
    }
    return result;
}

} // namespace upr
