/**
 * @file
 * CrashInjector: systematic crash-point injection for the simulated
 * persistence domain.
 *
 * The injector attaches to a pool Backing's persistence-event stream
 * (writes, flushes, fences) and counts events. Armed with a crash
 * point N, it simulates power failure *at* the Nth event: the event
 * never takes effect, the durable image is captured exactly as the
 * media would have kept it (per CrashMode), and a SimulatedCrash
 * unwinds the workload — the in-simulation analogue of the
 * Agamotto/XFDetector exhaustive failure schedules.
 */

#ifndef UPR_CRASH_CRASH_INJECTOR_HH
#define UPR_CRASH_CRASH_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/backing.hh"

namespace upr
{

/**
 * Thrown when an armed CrashInjector reaches its crash point.
 * Deliberately NOT a Fault: workload code that catches Fault for
 * error handling must not accidentally swallow a power failure.
 */
class SimulatedCrash : public std::runtime_error
{
  public:
    explicit SimulatedCrash(std::uint64_t at)
        : std::runtime_error("simulated crash at persistence event " +
                             std::to_string(at)),
          at_(at)
    {}

    /** The 1-based persistence-event index the crash fired at. */
    std::uint64_t at() const { return at_; }

  private:
    std::uint64_t at_;
};

/** Counts persistence events on one Backing and crashes at event N. */
class CrashInjector
{
  public:
    /**
     * @param mode fate of unfenced lines in the captured image
     * @param seed retention RNG seed (CrashMode::RetainRandom)
     */
    explicit CrashInjector(CrashMode mode = CrashMode::DiscardUnfenced,
                           std::uint64_t seed = 1)
        : mode_(mode), seed_(seed)
    {}

    ~CrashInjector() { detach(); }

    CrashInjector(const CrashInjector &) = delete;
    CrashInjector &operator=(const CrashInjector &) = delete;

    /**
     * Set the crash point *before* the workload runs (the sweep
     * driver's half of the handshake). 0 = never crash, only count —
     * the profiling pass that sizes an exhaustive sweep.
     */
    void arm(std::uint64_t crashAt) { crashAt_ = crashAt; }

    /**
     * Start observing @p backing (the workload's half: called once
     * its pool exists and the crash window opens). Enables the
     * backing's persistence domain (the current content becomes
     * durable) and resets the event counter.
     *
     * Lifetime: the observer closure holds only a shared hook that
     * detach() (or destruction) nulls out, so the backing may outlive
     * the injector or vice versa — a workload's Runtime (and its pool
     * backings) is routinely destroyed while the sweep driver still
     * holds the injector.
     */
    void
    attach(Backing &backing)
    {
        detach();
        backing_ = &backing;
        events_ = 0;
        fired_ = false;
        hook_ = std::make_shared<Hook>(Hook{this});
        backing.enablePersistenceDomain();
        backing.setPersistObserver(
            [hook = hook_](PersistEvent, Bytes, Bytes) {
                if (hook->owner != nullptr)
                    hook->owner->onEvent();
            });
    }

    /**
     * Stop observing. Never touches the backing (it may already be
     * gone): the installed observer goes inert and dies with it.
     */
    void
    detach()
    {
        if (hook_ != nullptr) {
            hook_->owner = nullptr;
            hook_.reset();
        }
        backing_ = nullptr;
    }

    /** Persistence events seen since attach(). */
    std::uint64_t events() const { return events_; }

    /** True once the crash point fired. */
    bool fired() const { return fired_; }

    /** The retention RNG seed (replay diagnostics). */
    std::uint64_t seed() const { return seed_; }

    /** The retention mode images are captured under. */
    CrashMode mode() const { return mode_; }

    /**
     * The durable image captured at the crash instant. Only valid
     * after fired().
     */
    const std::vector<std::uint8_t> &
    image() const
    {
        upr_assert_msg(fired_, "crash image requested before a crash");
        return image_;
    }

    /**
     * The strict (DiscardUnfenced) image captured at the same crash
     * instant: exactly the lines that were *certainly* on media. The
     * fault model uses it as the revert-to baseline for torn-line and
     * dropped-flush faults. Only valid after fired().
     */
    const std::vector<std::uint8_t> &
    strictImage() const
    {
        upr_assert_msg(fired_, "crash image requested before a crash");
        return strict_;
    }

  private:
    void
    onEvent()
    {
        ++events_;
        if (crashAt_ != 0 && events_ == crashAt_ && !fired_) {
            // Capture the media state *before* this event applies,
            // then go inert: unwinding destructors (e.g. Txn::~Txn
            // rolling back) still touch the backing, but the machine
            // is already off — their writes must not count or crash
            // again. The observer stays installed (we are executing
            // inside it right now) but its hook no longer points here.
            image_ = backing_->crashImage(mode_, seed_ ^ crashAt_);
            strict_ = backing_->crashImage(CrashMode::DiscardUnfenced);
            fired_ = true;
            hook_->owner = nullptr;
            hook_.reset();
            backing_ = nullptr;
            throw SimulatedCrash(crashAt_);
        }
    }

    /** Shared with the observer closure; nulled when we go away. */
    struct Hook
    {
        CrashInjector *owner;
    };

    CrashMode mode_;
    std::uint64_t seed_;
    std::shared_ptr<Hook> hook_;
    Backing *backing_ = nullptr;
    std::uint64_t crashAt_ = 0;
    std::uint64_t events_ = 0;
    bool fired_ = false;
    std::vector<std::uint8_t> image_;
    std::vector<std::uint8_t> strict_;
};

} // namespace upr

#endif // UPR_CRASH_CRASH_INJECTOR_HH
