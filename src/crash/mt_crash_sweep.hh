/**
 * @file
 * Durable-linearizability crash sweep over a sharded, multi-threaded
 * store (the multi-threaded extension of crash_sweep.hh).
 *
 * The workload is the sharded persistent hash map over a
 * ShardedRuntime fleet: per shard, a deterministic list of
 * insert/overwrite/erase operations on that shard's own keys, each in
 * its own transaction. The per-shard operation streams are interleaved
 * into one total order by a seeded scheduler at *transaction-step*
 * granularity (begin / apply / commit), so transactions genuinely
 * overlap across shards while the global persistence-event order stays
 * deterministic — the property an exhaustive sweep requires. (The real
 * thread scheduler is exercised by the concurrent bench and TSan
 * tests; the sweep deliberately replaces it with a seeded one, because
 * "crash at every event" only means something when run i and run j
 * agree on what event N is.)
 *
 * At every index N of that total order the sweep simulates power
 * failure: the durable image of EVERY shard pool is captured at the
 * same instant (per the configured retention mode), every shard is
 * recovered independently through its engine, and the recovered store
 * is checked against the set of linearizations the logged operation
 * history admits. Because each key belongs to exactly one shard, that
 * set factorizes: each shard must recover to its committed prefix,
 * plus-or-minus its single in-flight operation — atomically, never
 * torn. A recovered state outside the set is a *silent* violation; an
 * exception escaping recovery/validation is a *containment* violation.
 * Durable linearizability holds iff both counts are zero.
 */

#ifndef UPR_CRASH_MT_CRASH_SWEEP_HH
#define UPR_CRASH_MT_CRASH_SWEEP_HH

#include <cstdint>

#include "mem/backing.hh"
#include "nvm/pool.hh"

namespace upr
{

/** Parameters of one multi-threaded sweep. */
struct MtCrashSweepConfig
{
    /** Shard count == worker-thread count being modeled. */
    unsigned shards = 2;
    /** Transaction engine on every shard pool. */
    EngineKind engine = EngineKind::Undo;
    /** Fate of unfenced lines in each captured image. */
    CrashMode mode = CrashMode::DiscardUnfenced;
    /** Base seed for the retention RNG (varied per point and shard). */
    std::uint64_t seed = 99;
    /** Seed of the deterministic cross-shard step scheduler. */
    std::uint64_t scheduleSeed = 1234;
    /** Transactional operations per shard (after the setup phase). */
    std::size_t opsPerShard = 6;
    /** Redo group-commit batch size (1 = flush every commit). */
    unsigned groupCommitSize = 1;
};

/** What an exhaustive multi-threaded sweep observed. */
struct MtCrashSweepResult
{
    /** Persistence events in the total order == crash points swept. */
    std::uint64_t crashPoints = 0;
    /** Adjacent event pairs owned by different shards (interleaving
     * really happened; a degenerate schedule would make the sweep a
     * sequential one in disguise). */
    std::uint64_t crossShardEvents = 0;
    /** Shard recoveries that found an active log and rolled back. */
    std::uint64_t rollbacks = 0;
    /** Shard recoveries that found an already-consistent image. */
    std::uint64_t cleanImages = 0;
    /** Recovered shard states outside the admissible linearizations —
     * wrong data with no error raised. Must be zero. */
    std::uint64_t silent = 0;
    /** Recoveries/validations an exception escaped from. Must be
     * zero. */
    std::uint64_t containment = 0;
};

/**
 * Crash the sharded workload at every persistence event in its total
 * order and durable-linearizability-check every recovered image.
 *
 * Unlike crashSweep(), violations are *counted*, not thrown: the
 * result's silent/containment fields are the verdict, and every
 * violation prints a replay line to stderr as it is found.
 *
 * @throws Fault{BadUsage} if the workload is nondeterministic (a
 *         crash point armed from the profiling pass never fires)
 */
MtCrashSweepResult mtCrashSweep(const MtCrashSweepConfig &config = {});

} // namespace upr

#endif // UPR_CRASH_MT_CRASH_SWEEP_HH
