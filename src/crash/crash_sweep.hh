/**
 * @file
 * Exhaustive crash-schedule sweep over a persistent workload.
 *
 * The driver runs a workload once in profiling mode to count its
 * persistence events, then re-runs it crashing at *every* event index
 * 1..N. Each crash's durable image is reopened as a pool, put through
 * hardened crash recovery (Txn::recover — including a second, must-be-
 * no-op recovery to prove idempotence), and handed to a caller-
 * supplied validator that asserts workload invariants.
 *
 * This is the simulator-scale version of the exhaustive failure
 * schedules that Agamotto and XFDetector explore on real PM stacks:
 * because our persistence domain is deterministic, "every crash point"
 * is literally every point, not a sample.
 */

#ifndef UPR_CRASH_CRASH_SWEEP_HH
#define UPR_CRASH_CRASH_SWEEP_HH

#include <cstdint>
#include <functional>

#include "crash/crash_injector.hh"
#include "nvm/pool.hh"

namespace upr
{

/** Parameters of one sweep. */
struct CrashSweepConfig
{
    /** Fate of unfenced lines in each captured image. */
    CrashMode mode = CrashMode::DiscardUnfenced;
    /** Base seed for the retention RNG (varied per crash point). */
    std::uint64_t seed = 1;
};

/** What an exhaustive sweep observed. */
struct CrashSweepResult
{
    /** Persistence events in one workload run == crash points swept. */
    std::uint64_t crashPoints = 0;
    /** Images whose recovery found an active log and rolled back. */
    std::uint64_t rollbacks = 0;
    /** Images that were already consistent (no active log). */
    std::uint64_t cleanImages = 0;
};

/**
 * The workload under test. Called once per crash point with a fresh
 * injector; it must build its pool(s), call injector.attach(backing,
 * ...) on the pool backing when the crash window opens, and then run
 * its operations. Everything it does must be deterministic — the
 * sweep's whole premise is that run i and run j see the same event
 * stream.
 */
using CrashWorkload = std::function<void(CrashInjector &injector)>;

/**
 * Invariant check over one recovered image. @p pool has already been
 * through Txn::recover; @p rolledBack says whether that replayed an
 * undo log. Throw (or fail a test assertion) to flag a violation.
 */
using CrashValidator = std::function<void(
    Pool &pool, std::uint64_t crashPoint, bool rolledBack)>;

/**
 * Run @p workload under every possible crash point and validate every
 * recovered image.
 *
 * @throws whatever @p validate throws, plus Fault{BadUsage} if the
 *         workload completes without the injector ever firing (the
 *         crash point was never reached — nondeterministic workload)
 */
CrashSweepResult crashSweep(const CrashWorkload &workload,
                            const CrashValidator &validate,
                            const CrashSweepConfig &config = {});

} // namespace upr

#endif // UPR_CRASH_CRASH_SWEEP_HH
