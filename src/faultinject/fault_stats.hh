/**
 * @file
 * The process-wide "fault" metrics group: every injected media fault,
 * detection, repair, quarantine, and resilient-open retry in the
 * process bumps a counter here, and the PR-5 metrics registry exports
 * them ("fault.injected", "fault.repaired", ...) next to the machine
 * and crash groups.
 *
 * Header-only singleton on purpose: the *consumers* live on both
 * sides of the library graph (nvm/pool_check repairs, faultinject
 * corrupts, pool_manager quarantines), so a singleton accessed
 * through an inline function is the only shape that avoids a link
 * cycle between upr_nvm and upr_faultinject.
 */

#ifndef UPR_FAULTINJECT_FAULT_STATS_HH
#define UPR_FAULTINJECT_FAULT_STATS_HH

#include "common/stats.hh"
#include "obs/metrics.hh"

namespace upr
{

/** Counters of the media-fault / resilience subsystem. */
class FaultStats
{
  public:
    static FaultStats &
    instance()
    {
        static FaultStats s;
        return s;
    }

    Counter injected;    //!< media faults injected into crash images
    Counter detected;    //!< corruptions caught with a typed diagnosis
    Counter repaired;    //!< pools fully repaired by check/repair
    Counter quarantined; //!< pools contained in read-only quarantine
    Counter benign;      //!< injected faults erased by normal recovery
    Counter retries;     //!< openResilient retry attempts
    Counter scrubbed;    //!< undo-log scrubs (pending logs replayed)

    StatGroup &group() { return group_; }

    /** Zero everything (bench sections, test isolation). */
    void resetAll() { group_.resetAll(); }

  private:
    FaultStats() : group_("fault"), registration_(group_)
    {
        group_.registerCounter("injected", injected,
                               "media faults injected into crash images");
        group_.registerCounter("detected", detected,
                               "corruptions detected with a typed fault");
        group_.registerCounter("repaired", repaired,
                               "pools fully repaired");
        group_.registerCounter("quarantined", quarantined,
                               "pools quarantined read-only");
        group_.registerCounter("benign", benign,
                               "injected faults erased by recovery");
        group_.registerCounter("retries", retries,
                               "resilient-open retry attempts");
        group_.registerCounter("scrubbed", scrubbed,
                               "pending undo logs replayed");
    }

    StatGroup group_;
    obs::ScopedMetricsGroup registration_;
};

} // namespace upr

#endif // UPR_FAULTINJECT_FAULT_STATS_HH
