/**
 * @file
 * Deterministic media-fault model for pool crash images.
 *
 * Where CrashInjector models *power* failure (which lines made it to
 * media), MediaFaultModel models *media* failure: the bytes that did
 * make it are later returned wrong. Faults are seeded and fully
 * reproducible — the same spec against the same image always corrupts
 * the same bytes the same way — so a sweep failure replays from its
 * printed seed.
 *
 * The model corrupts *metadata* regions (header, undo log, allocator
 * boundary tags and links): exactly the byte ranges whose integrity
 * the check/repair subsystem claims to detect or repair. Two target
 * ranges are deliberately excluded, and honestly so:
 *
 *  - rootOff and pool payload bytes: user data carries no checksum in
 *    this design (the paper's pools are checksum-free too), so damage
 *    there is indistinguishable from a legitimate value. Protecting it
 *    is application-level (or a future data-CRC mode), not a claim the
 *    pool layer makes.
 *  - the *final* valid undo-log entry: the write-ahead discipline
 *    means a pure crash can tear exactly that entry, so damage to it
 *    is provably indistinguishable from a benign torn tail. Mid-log
 *    entries ARE targeted — valid entries after a bad one prove media
 *    damage, and the checker must refuse to serve the pool.
 */

#ifndef UPR_FAULTINJECT_MEDIA_FAULT_HH
#define UPR_FAULTINJECT_MEDIA_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace upr
{

/** The ways a byte (or line) of media can go wrong. */
enum class MediaFaultKind
{
    BitFlip,      //!< one bit of one metadata byte flips
    MultiBitFlip, //!< a multi-bit upset within one byte
    StuckAtZero,  //!< a cell reads back 0x00 regardless of contents
    StuckAtOne,   //!< a cell reads back 0xFF regardless of contents
    TornLine,     //!< half a cacheline reverts to its pre-write value
    DroppedFlush, //!< a whole line silently never reached media
};

constexpr std::size_t kMediaFaultKinds = 6;

/** Stable printable name (sweep reports, BENCH output). */
inline const char *
mediaFaultKindName(MediaFaultKind k)
{
    switch (k) {
      case MediaFaultKind::BitFlip:      return "bit-flip";
      case MediaFaultKind::MultiBitFlip: return "multi-bit-flip";
      case MediaFaultKind::StuckAtZero:  return "stuck-at-zero";
      case MediaFaultKind::StuckAtOne:   return "stuck-at-one";
      case MediaFaultKind::TornLine:     return "torn-line";
      case MediaFaultKind::DroppedFlush: return "dropped-flush";
    }
    return "unknown";
}

/** Which metadata structure the fault lands in. */
enum class FaultRegion
{
    Header,        //!< pool header (identity fields, allocator heads)
    UndoLog,       //!< log control block and mid-log entries
    AllocatorMeta, //!< boundary tags and free-list links
};

constexpr std::size_t kFaultRegions = 3;

inline const char *
faultRegionName(FaultRegion r)
{
    switch (r) {
      case FaultRegion::Header:        return "header";
      case FaultRegion::UndoLog:       return "undo-log";
      case FaultRegion::AllocatorMeta: return "allocator-meta";
    }
    return "unknown";
}

/** One fault to inject: what kind, where, and the RNG seed. */
struct MediaFaultSpec
{
    MediaFaultKind kind = MediaFaultKind::BitFlip;
    FaultRegion region = FaultRegion::Header;
    std::uint64_t seed = 1;
};

/** One byte the model actually changed (replay diagnostics). */
struct InjectedByte
{
    Bytes offset;
    std::uint8_t before;
    std::uint8_t after;
};

/** Seeded, deterministic corruptor for one (kind, region) pair. */
class MediaFaultModel
{
  public:
    explicit MediaFaultModel(const MediaFaultSpec &spec) : spec_(spec)
    {}

    const MediaFaultSpec &spec() const { return spec_; }

    /**
     * Byte offsets eligible for corruption in @p region of @p image.
     *
     * Pass the right image per region: Header and AllocatorMeta
     * targets must come from a *recovered* copy of the crash image
     * (the tag walk needs a consistent arena — the crash image may be
     * mid-transaction), while UndoLog targets must come from the
     * crash image itself (recovery truncates the log). Offsets are
     * valid in both: recovery never moves metadata.
     *
     * Returns empty when the region has no eligible bytes (e.g. an
     * unparseable header, or a log with fewer than two entries).
     */
    static std::vector<Bytes> targets(
        const std::vector<std::uint8_t> &image, FaultRegion region);

    /**
     * Corrupt @p image in place, deterministically per the spec.
     * @p baseline is the strict (DiscardUnfenced) image captured at
     * the same crash instant — the revert-to state for TornLine and
     * DroppedFlush, which model writes that never reached media
     * rather than cells returning garbage. Must be image-sized for
     * those kinds; unused otherwise.
     *
     * Bumps the fault.injected counter and emits a MediaFault trace
     * event when at least one byte changed. Returns the changed
     * bytes; empty means the fault had no effect on this image (e.g.
     * stuck-at-zero on already-zero targets) and the caller should
     * skip classification for it.
     */
    std::vector<InjectedByte> corrupt(
        std::vector<std::uint8_t> &image,
        const std::vector<std::uint8_t> &baseline,
        const std::vector<Bytes> &targets) const;

  private:
    MediaFaultSpec spec_;
};

} // namespace upr

#endif // UPR_FAULTINJECT_MEDIA_FAULT_HH
