/**
 * @file
 * Hostile-media corruption sweep: the crash-schedule sweep times the
 * media fault model.
 *
 * The driver samples crash points of a deterministic workload (the
 * same workload contract as crashSweep), and for every sampled point
 * injects each MediaFaultKind into each FaultRegion of the captured
 * crash image, then classifies what PoolManager::openResilient does
 * with the damaged image:
 *
 *   benign      — pool served, contents validate (recovery happened to
 *                 erase the damage, e.g. a corrupted byte was inside a
 *                 range the undo log rolled back);
 *   repaired    — check/repair fixed the damage, contents validate;
 *   quarantined — unrepairable, pool attached read-only, writes
 *                 refused with Fault{PoolQuarantined};
 *   rejected    — header unusable, image refused with a typed fault;
 *   silent      — pool served but its contents are wrong, OR a
 *                 quarantined pool accepted a write. The sweep's
 *                 entire point: this count MUST stay zero.
 *
 * Fleet containment is asserted on every classification: a sibling
 * pool in the same manager must keep allocating no matter what
 * happened to the damaged one.
 */

#ifndef UPR_FAULTINJECT_FAULT_SWEEP_HH
#define UPR_FAULTINJECT_FAULT_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "crash/crash_sweep.hh"
#include "faultinject/media_fault.hh"

namespace upr
{

/** Parameters of one corruption sweep. */
struct FaultSweepConfig
{
    /** Retention schedule the crash images are captured under. */
    CrashMode mode = CrashMode::RetainRandom;
    /** Base seed for retention and fault RNGs (printed on failure). */
    std::uint64_t seed = 1;
    /**
     * Sample every Nth crash point. Each sampled point fans out into
     * kMediaFaultKinds x kFaultRegions classifications, so sampling
     * keeps the sweep minutes-scale while still covering the full
     * kind x region matrix many times over.
     */
    std::uint64_t pointStride = 53;
    /** Size of the fleet-containment sibling pool. */
    Bytes siblingSize = 1 << 20;
};

/** Outcome tally. injections == benign+repaired+quarantined+rejected+silent. */
struct FaultSweepResult
{
    std::uint64_t crashPointsSampled = 0;
    std::uint64_t injections = 0;  //!< corruptions that changed >= 1 byte
    std::uint64_t benign = 0;
    std::uint64_t repaired = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t rejected = 0;
    std::uint64_t noEffect = 0;    //!< fault changed nothing; skipped
    std::uint64_t silent = 0;      //!< MUST be zero (see file comment)
    std::uint64_t containment = 0; //!< sibling-pool failures; MUST be zero
};

/**
 * Deep content validation of a *served* pool: @p image is the raw
 * bytes of the pool openResilient decided to serve read-write, after
 * all recovery and repair. Return true iff the contents are one of
 * the states a pure crash could have left (the crash-sweep
 * before/after-commit contract). A false return is counted as silent
 * corruption.
 */
using FaultValidator = std::function<bool(
    const std::vector<std::uint8_t> &image, std::uint64_t crashPoint)>;

/**
 * Run the corruption sweep. @p workload follows the crashSweep
 * contract (deterministic, attaches the injector when the crash
 * window opens). UPR_CRASH_SEED in the environment overrides
 * config.seed, and any silent/containment failure prints the
 * point/kind/region/seed needed to replay it.
 *
 * @throws Fault{BadUsage} if the workload is nondeterministic, or
 *         Fault{CorruptPool} if an UNcorrupted sampled image fails to
 *         open cleanly (the sweep's control leg)
 */
FaultSweepResult faultSweep(const CrashWorkload &workload,
                            const FaultValidator &contentValid,
                            const FaultSweepConfig &config = {});

} // namespace upr

#endif // UPR_FAULTINJECT_FAULT_SWEEP_HH
