#include "faultinject/fault_sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/fault.hh"
#include "faultinject/fault_stats.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"

namespace upr
{

namespace
{

/** One sweep coordinate, printed whenever an invariant fails. */
struct Coord
{
    std::uint64_t point;
    std::uint64_t total;
    CrashMode mode;
    MediaFaultKind kind;
    FaultRegion region;
    std::uint64_t seed;
};

/**
 * Straight to stderr, not the log sink: fault sweeps run with
 * warnings silenced (every classification spews torn-log warnings),
 * and this line is the whole point of a reproducible failure.
 */
void
banner(const Coord &c, const char *why)
{
    std::fprintf(stderr,
                 "fault sweep FAILED at point %llu/%llu (mode %s, "
                 "fault %s, region %s, seed %llu): %s\n"
                 "replay with: UPR_CRASH_SEED=%llu <this test>\n",
                 (unsigned long long)c.point,
                 (unsigned long long)c.total, crashModeName(c.mode),
                 mediaFaultKindName(c.kind), faultRegionName(c.region),
                 (unsigned long long)c.seed, why,
                 (unsigned long long)c.seed);
}

/** Capture the crash image at point @p n (plus its strict baseline). */
void
captureAt(const CrashWorkload &workload, CrashMode mode,
          std::uint64_t seed, std::uint64_t n,
          std::vector<std::uint8_t> &image,
          std::vector<std::uint8_t> &strict)
{
    CrashInjector injector(mode, seed);
    injector.arm(n);
    bool crashed = false;
    try {
        workload(injector);
    } catch (const SimulatedCrash &) {
        crashed = true;
    }
    if (!crashed || !injector.fired()) {
        throw Fault(FaultKind::BadUsage,
                    "fault sweep point " + std::to_string(n) +
                    " never fired — the workload is not deterministic");
    }
    image = injector.image();
    strict = injector.strictImage();
}

} // namespace

FaultSweepResult
faultSweep(const CrashWorkload &workload,
           const FaultValidator &contentValid,
           const FaultSweepConfig &config)
{
    std::uint64_t seed = config.seed;
    if (const char *env = std::getenv("UPR_CRASH_SEED");
        env != nullptr && *env != '\0') {
        seed = std::strtoull(env, nullptr, 0);
    }

    // Profiling pass: size the crash-point space.
    std::uint64_t total = 0;
    {
        CrashInjector injector(config.mode, seed);
        injector.arm(0);
        workload(injector);
        total = injector.events();
    }
    if (total == 0) {
        throw Fault(FaultKind::BadUsage,
                    "fault sweep workload generated no persistence "
                    "events (injector never attached?)");
    }

    const std::uint64_t stride = config.pointStride ? config.pointStride
                                                    : 1;
    FaultSweepResult result;

    for (std::uint64_t n = 1; n <= total; n += stride) {
        std::vector<std::uint8_t> image, strict;
        captureAt(workload, config.mode, seed, n, image, strict);
        ++result.crashPointsSampled;

        // Control leg: the UNcorrupted image must open clean — any
        // other outcome means the sweep would blame the checker for
        // damage it never injected.
        {
            AddressSpace space;
            PoolManager mgr(space, Placement::Sequential, seed);
            Backing fb;
            fb.assign(image);
            const ResilientOpenReport rep =
                mgr.openResilient(std::move(fb), "control");
            if (rep.outcome != OpenOutcome::Clean &&
                rep.outcome != OpenOutcome::Recovered) {
                Coord c{n, total, config.mode, MediaFaultKind::BitFlip,
                        FaultRegion::Header, seed};
                banner(c, "uncorrupted control image did not open "
                          "clean");
                throw Fault(FaultKind::CorruptPool,
                            "fault sweep control image at point " +
                            std::to_string(n) + " opened as '" +
                            openOutcomeName(rep.outcome) + "'");
            }
        }

        // Header and arena targets come from a *recovered* copy: the
        // crash image is legitimately mid-transaction, and a tag walk
        // over it would aim faults at payload bytes that recovery is
        // about to overwrite — silently weakening the sweep. Undo-log
        // targets come from the crash image itself (recovery
        // truncates the log).
        Backing rb;
        rb.assign(image);
        Pool ref("ref", std::move(rb));
        TxnEngine::recover(ref);
        const std::vector<std::uint8_t> recovered =
            ref.backing().raw().toVector();

        for (std::size_t k = 0; k < kMediaFaultKinds; ++k) {
            for (std::size_t r = 0; r < kFaultRegions; ++r) {
                MediaFaultSpec spec;
                spec.kind = static_cast<MediaFaultKind>(k);
                spec.region = static_cast<FaultRegion>(r);
                spec.seed = seed ^ (n * 0x9E37'79B9'7F4A'7C15ULL) ^
                            (k * 0x0000'0100'0000'01B3ULL) ^
                            (r * 0x1000'0193ULL);
                const Coord coord{n, total, config.mode, spec.kind,
                                  spec.region, seed};

                const std::vector<Bytes> targets =
                    MediaFaultModel::targets(
                        spec.region == FaultRegion::UndoLog ? image
                                                            : recovered,
                        spec.region);

                std::vector<std::uint8_t> damaged = image;
                const MediaFaultModel model(spec);
                if (model.corrupt(damaged, strict, targets).empty()) {
                    ++result.noEffect;
                    continue;
                }
                ++result.injections;

                // Fresh fleet per classification. The damaged image
                // adopts first (its header claims a pool ID; a
                // sibling created before it would race for the same
                // one), then a sibling pool joins the fleet and must
                // keep serving regardless of what the image did.
                AddressSpace space;
                PoolManager mgr(space, Placement::Sequential, seed);

                Backing fb;
                fb.assign(damaged);
                const ResilientOpenReport rep =
                    mgr.openResilient(std::move(fb), "uut");
                const PoolId sibling =
                    mgr.createPool("sibling", config.siblingSize);

                switch (rep.outcome) {
                  case OpenOutcome::Rejected:
                    ++result.rejected;
                    break;
                  case OpenOutcome::Quarantined: {
                    bool refused = false;
                    try {
                        mgr.pmalloc(rep.id, 16);
                    } catch (const Fault &f) {
                        refused =
                            f.kind() == FaultKind::PoolQuarantined;
                    }
                    if (refused) {
                        ++result.quarantined;
                    } else {
                        ++result.silent;
                        banner(coord,
                               "quarantined pool accepted a write");
                    }
                    break;
                  }
                  case OpenOutcome::Clean:
                  case OpenOutcome::Recovered:
                  case OpenOutcome::Repaired: {
                    // Served read-write: the contents must be a state
                    // a pure crash could have produced. Anything else
                    // is the one unforgivable outcome.
                    if (!contentValid(
                            mgr.pool(rep.id).backing().raw().toVector(),
                            n)) {
                        ++result.silent;
                        banner(coord, "served pool fails content "
                                      "validation");
                    } else if (rep.outcome == OpenOutcome::Repaired) {
                        ++result.repaired;
                    } else {
                        ++result.benign;
                        FaultStats::instance().benign.add(1);
                    }
                    break;
                  }
                }

                // Fleet containment: the sibling keeps serving.
                try {
                    mgr.pmalloc(sibling, 64);
                } catch (const Fault &) {
                    ++result.containment;
                    banner(coord, "sibling pool stopped serving");
                }
            }
        }
    }
    return result;
}

} // namespace upr
