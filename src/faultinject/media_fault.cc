#include "faultinject/media_fault.hh"

#include <cstddef>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "faultinject/fault_stats.hh"
#include "mem/backing.hh"
#include "nvm/pool.hh"
#include "nvm/pool_allocator.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/** splitmix64 step: the sweep's only randomness, fully seed-driven. */
std::uint64_t
mix(std::uint64_t &state)
{
    state += 0x9E37'79B9'7F4A'7C15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBULL;
    return x ^ (x >> 31);
}

/** Read a little struct field out of a raw image. */
template <typename T>
bool
readAt(const std::vector<std::uint8_t> &image, Bytes off, T &out)
{
    if (off > image.size() || image.size() - off < sizeof(T))
        return false;
    std::memcpy(&out, image.data() + off, sizeof(T));
    return true;
}

void
addRange(std::vector<Bytes> &out, Bytes off, Bytes len)
{
    for (Bytes i = 0; i < len; ++i)
        out.push_back(off + i);
}

/**
 * Header bytes the subsystem claims to protect: the identity fields
 * and their CRC, plus the recomputable allocator heads. rootOff and
 * the pad are excluded (see the file comment in media_fault.hh).
 */
std::vector<Bytes>
headerTargets(const std::vector<std::uint8_t> &image)
{
    std::vector<Bytes> out;
    if (image.size() < sizeof(PoolHeader))
        return out;
    addRange(out, offsetof(PoolHeader, magic), sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, version), sizeof(std::uint32_t));
    addRange(out, offsetof(PoolHeader, poolId), sizeof(std::uint32_t));
    addRange(out, offsetof(PoolHeader, size), sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, freeHead), sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, usedBytes),
             sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, arenaStart),
             sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, logStart), sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, logSize), sizeof(std::uint64_t));
    addRange(out, offsetof(PoolHeader, identCrc),
             sizeof(std::uint32_t));
    // The engine field joined the identity CRC when the redo engine
    // arrived, but only for nonzero values: on legacy-layout (undo)
    // images it is CRC-unprotected padding, so damage there would be
    // undetectable by design and targeting it would break the
    // zero-silent-corruption invariant. Target it on redo images only.
    PoolHeader h;
    if (readAt(image, 0, h) && h.engine != 0)
        addRange(out, offsetof(PoolHeader, engine),
                 sizeof(std::uint32_t));
    return out;
}

/** Mirror of the Txn log structures (kept private there on purpose —
 * the fault model reads raw images, not live pools). */
struct RawLogControl
{
    std::uint32_t tail;
    std::uint32_t generation;
    std::uint32_t active;
    std::uint32_t crc;
};
static_assert(sizeof(RawLogControl) == 16);

struct RawLogEntry
{
    std::uint32_t length;
    std::uint32_t crc;
    std::uint64_t poolOffset;
};
static_assert(sizeof(RawLogEntry) == 16);

/**
 * The control block plus every valid entry except the last: the last
 * entry's damage is indistinguishable from a benign torn tail, so
 * targeting it would make the zero-silent-corruption invariant
 * unprovable (media_fault.hh explains why).
 */
std::vector<Bytes>
undoLogTargets(const std::vector<std::uint8_t> &image)
{
    std::vector<Bytes> out;
    PoolHeader h;
    if (!readAt(image, 0, h) || h.magic != PoolHeader::kMagic)
        return out;
    if (h.logStart + h.logSize < h.logStart ||
        h.logStart + h.logSize > image.size() ||
        h.logSize < sizeof(RawLogControl))
        return out;

    addRange(out, h.logStart, sizeof(RawLogControl));

    RawLogControl c;
    if (!readAt(image, h.logStart, c) || c.active == 0)
        return out;
    const Bytes area = h.logStart + sizeof(RawLogControl);
    const Bytes cap = h.logSize - sizeof(RawLogControl);
    const Bytes tail = c.tail <= cap ? c.tail : cap;

    // Walk the valid prefix exactly the way recovery does.
    std::vector<std::pair<Bytes, Bytes>> entries; // (offset, extent)
    Bytes cursor = 0;
    while (cursor + sizeof(RawLogEntry) <= tail) {
        RawLogEntry e;
        if (!readAt(image, area + cursor, e))
            break;
        if (e.length == 0 ||
            cursor + sizeof(RawLogEntry) + e.length > tail)
            break;
        if (e.poolOffset > h.size || e.length > h.size - e.poolOffset)
            break;
        std::uint32_t crc = crc32(&c.generation, sizeof(c.generation));
        crc = crc32Update(crc, &e.poolOffset, sizeof(e.poolOffset));
        crc = crc32Update(crc, &e.length, sizeof(e.length));
        crc = crc32Update(crc, image.data() + area + cursor +
                          sizeof(RawLogEntry), e.length);
        if (crc != e.crc)
            break;
        entries.emplace_back(cursor, sizeof(RawLogEntry) + e.length);
        cursor += sizeof(RawLogEntry) + e.length;
    }
    for (std::size_t i = 0; i + 1 < entries.size(); ++i)
        addRange(out, area + entries[i].first, entries[i].second);
    return out;
}

/**
 * Boundary tags and free-list links from a guarded tag walk. Must run
 * on a *recovered* image: a mid-transaction arena is legitimately
 * torn, and a walk over it would target pre-image payload bytes.
 */
std::vector<Bytes>
allocatorMetaTargets(const std::vector<std::uint8_t> &image)
{
    std::vector<Bytes> out;
    PoolHeader h;
    if (!readAt(image, 0, h) || h.magic != PoolHeader::kMagic)
        return out;
    if (h.arenaStart >= image.size() || h.size != image.size())
        return out;

    Bytes b = h.arenaStart + 8;
    while (b + PoolAllocator::kMinBlock <= h.size) {
        std::uint64_t tag;
        if (!readAt(image, b, tag))
            break;
        const Bytes size = tag & ~std::uint64_t{1};
        const bool allocated = (tag & 1) != 0;
        if (size < PoolAllocator::kMinBlock ||
            size % PoolAllocator::kAlign != 0 || size > h.size - b)
            break; // damaged or unparseable: stop, don't guess
        addRange(out, b, 8);            // header tag
        addRange(out, b + size - 8, 8); // footer tag
        if (!allocated)
            addRange(out, b + 8, 16);   // nextFree, prevFree
        b += size;
    }
    return out;
}

} // namespace

std::vector<Bytes>
MediaFaultModel::targets(const std::vector<std::uint8_t> &image,
                         FaultRegion region)
{
    switch (region) {
      case FaultRegion::Header:        return headerTargets(image);
      case FaultRegion::UndoLog:       return undoLogTargets(image);
      case FaultRegion::AllocatorMeta:
        return allocatorMetaTargets(image);
    }
    return {};
}

std::vector<InjectedByte>
MediaFaultModel::corrupt(std::vector<std::uint8_t> &image,
                         const std::vector<std::uint8_t> &baseline,
                         const std::vector<Bytes> &targets) const
{
    std::vector<InjectedByte> changed;
    if (targets.empty())
        return changed;

    std::uint64_t rng = spec_.seed;
    const auto touch = [&](Bytes off, std::uint8_t value) {
        if (off >= image.size() || image[off] == value)
            return;
        changed.push_back(InjectedByte{off, image[off], value});
        image[off] = value;
    };

    // Several kinds can be no-ops on a given byte (stuck-at-zero on a
    // zero byte, a revert to an identical baseline): retry across the
    // target set a bounded number of times before giving up.
    const std::size_t attempts = targets.size();
    switch (spec_.kind) {
      case MediaFaultKind::BitFlip: {
        const Bytes t = targets[mix(rng) % targets.size()];
        touch(t, image[t] ^ static_cast<std::uint8_t>(
                                1u << (mix(rng) % 8)));
        break;
      }
      case MediaFaultKind::MultiBitFlip: {
        // A multi-bit upset within one byte. Deliberately NOT spread
        // across independent bytes: independent flips could land on a
        // tag and its mirror footer identically, manufacturing a
        // consistent-but-wrong arena no checker could ever catch.
        const Bytes t = targets[mix(rng) % targets.size()];
        std::uint8_t mask = 0;
        while (__builtin_popcount(mask) < 3)
            mask |= static_cast<std::uint8_t>(1u << (mix(rng) % 8));
        touch(t, image[t] ^ mask);
        break;
      }
      case MediaFaultKind::StuckAtZero:
      case MediaFaultKind::StuckAtOne: {
        const std::uint8_t v =
            spec_.kind == MediaFaultKind::StuckAtZero ? 0x00 : 0xFF;
        for (std::size_t a = 0; a < attempts && changed.empty(); ++a)
            touch(targets[mix(rng) % targets.size()], v);
        break;
      }
      case MediaFaultKind::TornLine:
      case MediaFaultKind::DroppedFlush: {
        upr_assert_msg(baseline.size() == image.size(),
                       "torn-line faults need the strict crash image "
                       "as a baseline");
        // Revert a line (or the seed-chosen half of it) to the bytes
        // that were certainly durable — a write the media claimed to
        // accept but never kept.
        for (std::size_t a = 0; a < attempts && changed.empty(); ++a) {
            const Bytes t = targets[mix(rng) % targets.size()];
            Bytes from = t & ~(Backing::kLineBytes - 1);
            Bytes len = Backing::kLineBytes;
            if (spec_.kind == MediaFaultKind::TornLine) {
                len = Backing::kLineBytes / 2;
                if (mix(rng) & 1)
                    from += len;
            }
            for (Bytes o = from; o < from + len && o < image.size();
                 ++o)
                touch(o, baseline[o]);
        }
        break;
      }
    }

    if (!changed.empty()) {
        FaultStats::instance().injected.add(1);
        obs::traceEvent(obs::EventKind::MediaFault,
                        static_cast<std::uint64_t>(spec_.kind),
                        changed.front().offset);
    }
    return changed;
}

} // namespace upr
