/**
 * @file
 * Transient media-error injection site for the resilient open path.
 *
 * Real NVM opens can fail transiently (device resets, DIMM address
 * range scrub in progress); the simulation models that as an armed
 * counter: the next N openResilient attempts throw Fault{MediaError}
 * before touching the image, then the fault clears. Deterministic —
 * no RNG — so retry/backoff tests are exact.
 *
 * Header-only for the same layering reason as fault_stats.hh: the
 * *throw* site lives in nvm (PoolManager) while the *arming* side
 * lives in tests and the fault sweep.
 */

#ifndef UPR_FAULTINJECT_TRANSIENT_HH
#define UPR_FAULTINJECT_TRANSIENT_HH

#include "common/fault.hh"

namespace upr
{

namespace detail
{
inline unsigned g_transientOpenFaults = 0;
} // namespace detail

/** Make the next @p n resilient opens fail with Fault{MediaError}. */
inline void
armTransientOpenFailures(unsigned n)
{
    detail::g_transientOpenFaults = n;
}

/** Armed failures not yet consumed. */
inline unsigned
pendingTransientOpenFailures()
{
    return detail::g_transientOpenFaults;
}

/**
 * The injection site: called by PoolManager::openResilient at the top
 * of each attempt. Consumes one armed failure, if any.
 * @throws Fault{MediaError} while failures are armed
 */
inline void
maybeTransientOpenFault()
{
    if (detail::g_transientOpenFaults == 0)
        return;
    --detail::g_transientOpenFaults;
    throw Fault(FaultKind::MediaError,
                "transient media error (injected)");
}

} // namespace upr

#endif // UPR_FAULTINJECT_TRANSIENT_HH
