#include "common/diag.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace upr
{

std::string
SrcLoc::str() const
{
    if (!known())
        return "?";
    return std::to_string(line) + ":" + std::to_string(col);
}

const char *
diagSeverityName(DiagSeverity sev)
{
    switch (sev) {
      case DiagSeverity::Note:    return "note";
      case DiagSeverity::Warning: return "warning";
      case DiagSeverity::Error:   return "error";
    }
    return "?";
}

std::string
Diagnostic::render(const std::string &file) const
{
    std::string out;
    if (!file.empty())
        out += file + ":";
    if (loc.known())
        out += loc.str() + ":";
    if (!out.empty())
        out += " ";
    out += diagSeverityName(severity);
    out += ": [" + code + "] " + message;
    if (!function.empty())
        out += " [@" + function + "]";
    return out;
}

std::size_t
DiagnosticEngine::errorCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags_)
        n += d.severity == DiagSeverity::Error ? 1 : 0;
    return n;
}

std::size_t
DiagnosticEngine::warningCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags_)
        n += d.severity == DiagSeverity::Warning ? 1 : 0;
    return n;
}

void
DiagnosticEngine::sortByLocation()
{
    std::stable_sort(
        diags_.begin(), diags_.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.loc.line != b.loc.line)
                return a.loc.line < b.loc.line;
            if (a.loc.col != b.loc.col)
                return a.loc.col < b.loc.col;
            if (a.severity != b.severity)
                return a.severity > b.severity; // errors first
            return a.code < b.code;
        });
}

std::string
DiagnosticEngine::render(const std::string &file) const
{
    std::string out;
    for (const Diagnostic &d : diags_) {
        out += d.render(file);
        out += '\n';
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
DiagnosticEngine::renderJson() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        os << (i ? "," : "") << "\n    {\"severity\": \""
           << diagSeverityName(d.severity) << "\", \"code\": \""
           << jsonEscape(d.code) << "\", \"line\": " << d.loc.line
           << ", \"col\": " << d.loc.col << ", \"function\": \""
           << jsonEscape(d.function) << "\", \"message\": \""
           << jsonEscape(d.message) << "\"}";
    }
    os << (diags_.empty() ? "]" : "\n  ]");
    return os.str();
}

} // namespace upr
