/**
 * @file
 * Fundamental scalar types shared across all uprlib modules.
 *
 * The whole library operates on a *simulated* 48-bit virtual address
 * space (see src/mem/address_space.hh); SimAddr values are addresses in
 * that space, never host pointers.
 */

#ifndef UPR_COMMON_TYPES_HH
#define UPR_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace upr
{

/** An address in the simulated 48-bit virtual address space. */
using SimAddr = std::uint64_t;

/** A raw 64-bit pointer value (may be a virtual or a relative address). */
using PtrBits = std::uint64_t;

/** Identifier of a persistent memory object pool (31 bits used). */
using PoolId = std::uint32_t;

/** Byte offset within a persistent pool (32 bits used). */
using PoolOffset = std::uint32_t;

/** Simulated processor cycles. */
using Cycles = std::uint64_t;

/** Number of bytes. */
using Bytes = std::uint64_t;

/** The null simulated address; also the null pointer value. */
constexpr SimAddr kNullAddr = 0;

} // namespace upr

#endif // UPR_COMMON_TYPES_HH
