/**
 * @file
 * Typed faults raised by the simulated machine and the UPR runtime.
 *
 * Faults model the hardware/OS error conditions in the paper: the
 * storeP fault cases of Table I, the detached-pool fault of Fig 10,
 * and the usual unmapped-access and allocation failures.
 */

#ifndef UPR_COMMON_FAULT_HH
#define UPR_COMMON_FAULT_HH

#include <stdexcept>
#include <string>

#include "obs/trace_ring.hh"

namespace upr
{

/** Enumerates every fault the simulated system can raise. */
enum class FaultKind
{
    /** Access to a virtual address with no mapping. */
    UnmappedAccess,
    /** ra2va on a pool that is not currently attached (Fig 10). */
    PoolDetached,
    /** A relative address names a pool ID that never existed. */
    BadRelativeAddress,
    /** An offset past the end of its pool. */
    OffsetOutOfPool,
    /** storeP misuse per Table I (e.g. unconverted VA into NVM). */
    StorePFault,
    /** Persistent allocation failed: pool exhausted. */
    PoolFull,
    /** Volatile allocation failed: heap exhausted. */
    HeapFull,
    /** Inconsistent configuration or API misuse by the embedder. */
    BadUsage,
    /**
     * A pool image failed validation: bad magic/version, impossible
     * header geometry, or an undo log whose checksums do not match.
     * Raised instead of proceeding on garbage bytes.
     */
    CorruptPool,
    /**
     * The media reported a (possibly transient) I/O error: the open
     * or read may succeed on retry. openResilient retries these with
     * backoff before giving up.
     */
    MediaError,
    /**
     * The pool is quarantined (attached read-only after unrepairable
     * damage): mutating operations are rejected while the rest of
     * the fleet keeps serving.
     */
    PoolQuarantined,
    /**
     * A transaction engine was asked to drive a pool formatted for a
     * different engine (e.g. the undo path handed a redo pool).
     * Raised instead of misparsing the log region, whose wire bytes
     * mean different things per engine.
     */
    EngineMismatch,
    /**
     * A pointer operation ran on a thread with no Runtime bound.
     * Raised instead of dereferencing the null thread-current slot:
     * worker threads must bind their shard's runtime first (see
     * bindRuntime / RuntimeScope, docs/CONCURRENCY.md).
     */
    NoRuntimeBound,
    /**
     * A thread touched state owned by a different shard: binding a
     * Runtime another live thread currently owns, or driving a
     * sharded container operation for a key homed on another shard.
     */
    WrongShard,
};

/** Human-readable name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** Exception carrying a fault kind plus context text. */
class Fault : public std::runtime_error
{
  public:
    Fault(FaultKind kind, const std::string &what)
        : std::runtime_error(std::string(faultKindName(kind)) + ": " +
                             what),
          kind_(kind)
    {
        // Every raised fault is a structured trace event; the kind
        // ordinal rides in 'a' so exported traces can histogram
        // fault rates without string matching.
        obs::traceEvent(obs::EventKind::FaultRaised,
                        static_cast<std::uint64_t>(kind));
    }

    /** Which fault this is. */
    FaultKind kind() const { return kind_; }

  private:
    FaultKind kind_;
};

inline const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::UnmappedAccess:     return "unmapped-access";
      case FaultKind::PoolDetached:       return "pool-detached";
      case FaultKind::BadRelativeAddress: return "bad-relative-address";
      case FaultKind::OffsetOutOfPool:    return "offset-out-of-pool";
      case FaultKind::StorePFault:        return "storep-fault";
      case FaultKind::PoolFull:           return "pool-full";
      case FaultKind::HeapFull:           return "heap-full";
      case FaultKind::BadUsage:           return "bad-usage";
      case FaultKind::CorruptPool:        return "corrupt-pool";
      case FaultKind::MediaError:         return "media-error";
      case FaultKind::PoolQuarantined:    return "pool-quarantined";
      case FaultKind::EngineMismatch:     return "engine-mismatch";
      case FaultKind::NoRuntimeBound:     return "no-runtime-bound";
      case FaultKind::WrongShard:         return "wrong-shard";
    }
    return "unknown-fault";
}

} // namespace upr

#endif // UPR_COMMON_FAULT_HH
