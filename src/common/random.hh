/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All workload generators in uprlib derive their randomness from this
 * class so experiments are exactly reproducible from a seed.
 */

#ifndef UPR_COMMON_RANDOM_HH
#define UPR_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

#include "logging.hh"

namespace upr
{

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded through
 * splitmix64 so any 64-bit seed gives a well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        upr_assert(bound != 0);
        // Rejection sampling to remove modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Standard-normal sample via Box-Muller (one value per call). */
    double
    nextGaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1;
        do {
            u1 = nextDouble();
        } while (u1 <= 1e-300);
        const double u2 = nextDouble();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double twoPi = 6.283185307179586;
        spare_ = mag * std::sin(twoPi * u2);
        haveSpare_ = true;
        return mag * std::cos(twoPi * u2);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace upr

#endif // UPR_COMMON_RANDOM_HH
