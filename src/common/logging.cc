#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace upr
{

namespace
{

std::atomic<LogSink> gSink{nullptr};
std::atomic<std::uint64_t> gWarnCount{0};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
defaultSink(LogLevel level, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
dispatch(LogLevel level, const std::string &message)
{
    if (level == LogLevel::Warn)
        gWarnCount.fetch_add(1, std::memory_order_relaxed);
    LogSink sink = gSink.load(std::memory_order_acquire);
    (sink ? sink : defaultSink)(level, message);
}

} // namespace

void
setLogSink(LogSink sink)
{
    gSink.store(sink, std::memory_order_release);
}

std::uint64_t
warnCount()
{
    return gWarnCount.load(std::memory_order_relaxed);
}

namespace detail
{

void
logf(LogLevel level, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    dispatch(level, vformat(fmt, ap));
    va_end(ap);
}

void
failf(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string body = vformat(fmt, ap);
    va_end(ap);

    char loc[512];
    std::snprintf(loc, sizeof(loc), "%s (%s:%d)", body.c_str(), file, line);
    dispatch(level, loc);

    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace upr
