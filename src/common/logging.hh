/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (a uprlib bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something works, but not as well as it should.
 * inform() - neutral status messages.
 *
 * All take printf-like format strings via std::format-free variadic
 * helpers so the library has no iostream dependence on hot paths.
 */

#ifndef UPR_COMMON_LOGGING_HH
#define UPR_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace upr
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Sink invoked for every log message; replaceable for tests.
 *
 * @param level severity of the message
 * @param message fully formatted message text
 */
using LogSink = void (*)(LogLevel level, const std::string &message);

/** Install a custom log sink; passing nullptr restores the default. */
void setLogSink(LogSink sink);

/** Number of warnings emitted since process start (for tests). */
std::uint64_t warnCount();

namespace detail
{
/** Format and dispatch a message; Fatal exits, Panic aborts. */
[[gnu::format(printf, 2, 3)]]
void logf(LogLevel level, const char *fmt, ...);

[[noreturn, gnu::format(printf, 4, 5)]]
void failf(LogLevel level, const char *file, int line,
           const char *fmt, ...);
} // namespace detail

} // namespace upr

/** Report an internal invariant violation and abort. */
#define upr_panic(...) \
    ::upr::detail::failf(::upr::LogLevel::Panic, __FILE__, __LINE__, \
                         __VA_ARGS__)

/** Report an unrecoverable user/configuration error and exit(1). */
#define upr_fatal(...) \
    ::upr::detail::failf(::upr::LogLevel::Fatal, __FILE__, __LINE__, \
                         __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define upr_warn(...) \
    ::upr::detail::logf(::upr::LogLevel::Warn, __VA_ARGS__)

/** Report neutral status. */
#define upr_inform(...) \
    ::upr::detail::logf(::upr::LogLevel::Inform, __VA_ARGS__)

/** Assert an internal invariant; compiled in all build types. */
#define upr_assert(cond) \
    do { \
        if (!(cond)) { \
            upr_panic("assertion '%s' failed", #cond); \
        } \
    } while (0)

/** Assert an internal invariant with an explanatory printf message. */
#define upr_assert_msg(cond, ...) \
    do { \
        if (!(cond)) { \
            upr_panic(__VA_ARGS__); \
        } \
    } while (0)

#endif // UPR_COMMON_LOGGING_HH
