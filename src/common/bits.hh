/**
 * @file
 * Bit-manipulation helpers used by the pointer representation and the
 * cache/TLB models.
 */

#ifndef UPR_COMMON_BITS_HH
#define UPR_COMMON_BITS_HH

#include <bit>
#include <cstdint>

#include "types.hh"

namespace upr
{

/** Extract bit @p pos (0 = LSB) of @p value. */
constexpr bool
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Return @p value with bit @p pos set to @p on. */
constexpr std::uint64_t
setBit(std::uint64_t value, unsigned pos, bool on)
{
    const std::uint64_t mask = 1ULL << pos;
    return on ? (value | mask) : (value & ~mask);
}

/**
 * Extract the bit field [@p hi : @p lo] (inclusive) of @p value,
 * right-justified.
 */
constexpr std::uint64_t
bitsOf(std::uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
    return (value >> lo) & mask;
}

/** Insert @p field into bits [@p hi : @p lo] of @p value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned hi, unsigned lo,
           std::uint64_t field)
{
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** True if @p value is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2i(std::uint64_t value)
{
    return static_cast<unsigned>(std::bit_width(value) - 1);
}

/** Round @p value up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace upr

#endif // UPR_COMMON_BITS_HH
