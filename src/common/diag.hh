/**
 * @file
 * Structured diagnostics engine shared by the IR parser, the IR
 * verifier, and the Fig-4 conformance checker (uprlint).
 *
 * A Diagnostic carries a severity, a stable machine-readable code
 * (e.g. "fig4-mixed-storep"), the source location threaded through
 * the IR parser, and a human message. The engine collects, sorts,
 * and renders them either clang-style ("file:line:col: error: ...")
 * or as JSON for tooling.
 */

#ifndef UPR_COMMON_DIAG_HH
#define UPR_COMMON_DIAG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace upr
{

/** A position in an IR source file (1-based; 0 = unknown). */
struct SrcLoc
{
    int line = 0;
    int col = 0;

    bool known() const { return line > 0; }

    /** "12:3" or "?" when unknown. */
    std::string str() const;
};

/** How bad a diagnostic is. */
enum class DiagSeverity
{
    Note,    //!< supporting information
    Warning, //!< suspicious but not certainly wrong
    Error,   //!< the program is malformed or has UB
};

const char *diagSeverityName(DiagSeverity sev);

/** One finding. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::Error;
    /** Stable machine-readable code, kebab-case. */
    std::string code;
    /** Human-readable message (no trailing period/newline). */
    std::string message;
    /** Function context ("@name"), may be empty. */
    std::string function;
    SrcLoc loc;

    /** "12:3: error: [code] message [@fn]" */
    std::string render(const std::string &file = "") const;
};

/** Collects diagnostics across passes. */
class DiagnosticEngine
{
  public:
    void
    report(DiagSeverity sev, std::string code, SrcLoc loc,
           std::string message, std::string function = "")
    {
        diags_.push_back(Diagnostic{sev, std::move(code),
                                    std::move(message),
                                    std::move(function), loc});
    }

    void
    error(std::string code, SrcLoc loc, std::string message,
          std::string function = "")
    {
        report(DiagSeverity::Error, std::move(code), loc,
               std::move(message), std::move(function));
    }

    void
    warning(std::string code, SrcLoc loc, std::string message,
            std::string function = "")
    {
        report(DiagSeverity::Warning, std::move(code), loc,
               std::move(message), std::move(function));
    }

    void
    note(std::string code, SrcLoc loc, std::string message,
         std::string function = "")
    {
        report(DiagSeverity::Note, std::move(code), loc,
               std::move(message), std::move(function));
    }

    const std::vector<Diagnostic> &all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t errorCount() const;
    std::size_t warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /** Stable order: by line, col, severity, code. */
    void sortByLocation();

    /** One rendered line per diagnostic, newline-terminated. */
    std::string render(const std::string &file = "") const;

    /** JSON array of diagnostic objects. */
    std::string renderJson() const;

    void clear() { diags_.clear(); }

  private:
    std::vector<Diagnostic> diags_;
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

} // namespace upr

#endif // UPR_COMMON_DIAG_HH
