/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) for integrity-checking
 * persistent structures — undo-log entries, pool images.
 *
 * Table-driven, byte-at-a-time; the table is built at compile time so
 * the header stays dependency-free.
 */

#ifndef UPR_COMMON_CRC32_HH
#define UPR_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace upr
{

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xEDB8'8320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/**
 * Continue a CRC-32 over @p n bytes at @p data.
 *
 * @param crc the running checksum (pass the previous return value to
 *            chain several buffers into one checksum)
 */
inline std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < n; ++i)
        crc = detail::kCrc32Table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

/** CRC-32 of one buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    return crc32Update(0, data, n);
}

} // namespace upr

#endif // UPR_COMMON_CRC32_HH
