/**
 * @file
 * Lightweight named statistics: scalar counters and formulas grouped
 * into StatGroup objects, with text dumping for bench output.
 *
 * This is a deliberately small cousin of gem5's stats package: every
 * simulator component owns a StatGroup; benches dump or query them.
 */

#ifndef UPR_COMMON_STATS_HH
#define UPR_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "logging.hh"

namespace upr
{

/** A single monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n to the counter. */
    void add(std::uint64_t n = 1) { value_ += n; }

    /**
     * Subtract @p n (for gauge-style counters such as bytes-in-use).
     * Subtracting below zero is a caller bug: a sanitized build
     * panics on it; a regular build saturates at zero rather than
     * silently wrapping to 2^64 - n and poisoning every dump and
     * snapshot downstream.
     */
    void
    sub(std::uint64_t n)
    {
        if (n > value_) {
#ifdef UPR_SANITIZE
            upr_panic("counter underflow: %llu - %llu",
                      (unsigned long long)value_,
                      (unsigned long long)n);
#else
            value_ = 0;
            return;
#endif
        }
        value_ -= n;
    }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters. Components register their counters
 * once; benches iterate/dump them.
 */
class StatGroup
{
  public:
    /** @param name dotted path prefix used when dumping, e.g. "l1d". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /**
     * Register a counter under @p stat_name with a description.
     * The counter object must outlive the group (typically both are
     * members of the same component).
     */
    void
    registerCounter(const std::string &stat_name, Counter &counter,
                    const std::string &description)
    {
        auto [it, inserted] =
            counters_.emplace(stat_name, Entry{&counter, description});
        (void)it;
        upr_assert_msg(inserted, "duplicate stat '%s' in group '%s'",
                       stat_name.c_str(), name_.c_str());
    }

    /** Look up a counter's current value; panics if absent. */
    std::uint64_t
    lookup(const std::string &stat_name) const
    {
        auto it = counters_.find(stat_name);
        upr_assert_msg(it != counters_.end(), "no stat '%s' in group '%s'",
                       stat_name.c_str(), name_.c_str());
        return it->second.counter->value();
    }

    /** Reset every counter in the group. */
    void
    resetAll()
    {
        for (auto &kv : counters_)
            kv.second.counter->reset();
    }

    /**
     * Visit every counter as (stat_name, value, description), in
     * name order. This is how the observability registry flattens a
     * group without owning its counters.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : counters_)
            fn(kv.first, kv.second.counter->value(),
               kv.second.description);
    }

    /** Dump all counters as "group.stat value  # description" lines. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters_) {
            os << name_ << '.' << kv.first << ' '
               << kv.second.counter->value()
               << "  # " << kv.second.description << '\n';
        }
    }

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        Counter *counter;
        std::string description;
    };

    std::string name_;
    std::map<std::string, Entry> counters_;
};

} // namespace upr

#endif // UPR_COMMON_STATS_HH
