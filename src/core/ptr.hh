/**
 * @file
 * Ptr<T> — the user-transparent pointer facade.
 *
 * A Ptr<T> is exactly 8 bytes: the tagged pointer value of Fig 2. A
 * library written against Ptr<T> works identically whether the object
 * lives on DRAM (virtual-address form) or NVM (relative-address form)
 * — that *is* the paper's user transparency. All operations route
 * through the thread-current Runtime, which applies the version's
 * check/translation semantics and timing.
 *
 * Containers access object members with member-pointer accessors:
 *
 *     struct Node { Ptr<Node> next; std::uint64_t value; };
 *     Ptr<Node> n = env.alloc<Node>();
 *     n.setPtrField(&Node::next, head);       // storeP semantics
 *     std::uint64_t v = n.field(&Node::value); // storeD/load semantics
 *
 * Because Ptr<T> is 8 bytes and trivially copyable, a host-side node
 * struct has byte-for-byte the layout of its simulated-memory image.
 */

#ifndef UPR_CORE_PTR_HH
#define UPR_CORE_PTR_HH

#include <cstddef>
#include <type_traits>

#include "core/runtime.hh"

namespace upr
{

namespace detail
{
/** The thread-bound runtime (one per simulation thread). */
extern thread_local Runtime *tCurrentRuntime;
} // namespace detail

/**
 * The thread-current runtime.
 * @throws Fault{NoRuntimeBound} if this thread has none bound —
 * a typed, catchable fault instead of a null dereference: worker
 * threads must bind their shard first (RuntimeScope / bindRuntime).
 */
inline Runtime &
currentRuntime()
{
    if (detail::tCurrentRuntime == nullptr) [[unlikely]] {
        throw Fault(FaultKind::NoRuntimeBound,
                    "no Runtime bound on this thread; create a "
                    "RuntimeScope or call bindRuntime() first");
    }
    return *detail::tCurrentRuntime;
}

/** True if a runtime is currently bound on this thread. */
inline bool
hasCurrentRuntime()
{
    return detail::tCurrentRuntime != nullptr;
}

/**
 * Bind @p rt as the calling thread's current runtime and claim shard
 * ownership (the non-RAII half of the bind/unbind API, for worker
 * threads whose bind and unbind sites are not lexically nested).
 * @throws Fault{BadUsage}    if this thread already has a binding
 * @throws Fault{WrongShard}  if another live thread owns @p rt
 */
void bindRuntime(Runtime &rt);

/**
 * Undo bindRuntime: release shard ownership and clear the thread's
 * current-runtime slot.
 * @throws Fault{NoRuntimeBound} if nothing is bound on this thread
 */
void unbindRuntime();

/**
 * RAII binder making one Runtime current for the enclosing scope.
 * Claims shard ownership for the calling thread (re-entrant on the
 * same thread, restoring any previously bound runtime on exit);
 * faults WrongShard if another live thread owns the runtime.
 */
class RuntimeScope
{
  public:
    explicit RuntimeScope(Runtime &rt);
    ~RuntimeScope();

    RuntimeScope(const RuntimeScope &) = delete;
    RuntimeScope &operator=(const RuntimeScope &) = delete;

  private:
    Runtime *bound_;
    Runtime *previous_;
};

namespace detail
{
/** Fresh per-instantiation site salt for the branch predictor. */
std::uint64_t nextSiteSalt();
} // namespace detail

/**
 * Byte offset of member @p member within @p T, computed from a real
 * object (no null-pointer UB). Requires T to be default-constructible.
 */
template <typename T, typename M>
Bytes
memberOffset(M T::*member)
{
    static const T dummy{};
    return static_cast<Bytes>(
        reinterpret_cast<const char *>(&(dummy.*member)) -
        reinterpret_cast<const char *>(&dummy));
}

template <typename T>
class Ptr;

namespace detail
{
/** Trait: is F a Ptr<U> instantiation? */
template <typename F>
struct IsUprPtr : std::false_type
{
};
template <typename U>
struct IsUprPtr<Ptr<U>> : std::true_type
{
};
} // namespace detail

/** The 8-byte user-transparent pointer. */
template <typename T>
class Ptr
{
  public:
    constexpr Ptr() = default;

    /** Wrap raw tagged bits. */
    static Ptr
    fromBits(PtrBits bits)
    {
        Ptr p;
        p.bits_ = bits;
        return p;
    }

    /** The null pointer. */
    static constexpr Ptr null() { return Ptr(); }

    /** Raw tagged 64-bit value. */
    PtrBits bits() const { return bits_; }

    /**
     * True for the null pointer. The outcome is modeled as a program
     * branch when a runtime is bound (null checks dominate the
     * data-dependent branches of pointer-chasing code).
     */
    bool
    isNull() const
    {
        const bool r = bits_ == 0;
        if (hasCurrentRuntime())
            currentRuntime().nullCheck(r, site(12));
        return r;
    }

    explicit operator bool() const { return !isNull(); }

    /**
     * Effective-address generation for a dereference of this pointer
     * (checks + translation per the current version). The returned
     * VA is transient; it is never stored back by this call.
     */
    SimAddr
    resolve(std::uint64_t op = 0) const
    {
        return currentRuntime().resolveForAccess(bits_, site(op));
    }

    // ------------------------------------------------------------------
    // Whole-object access (pointer-free payloads only: a whole-struct
    // copy would bypass storeP canonicalization of pointer members).
    // ------------------------------------------------------------------

    /** Load the whole object. */
    T
    load() const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T out;
        currentRuntime().loadBytes(resolve(1), &out, sizeof(T));
        return out;
    }

    /** Store the whole object. */
    void
    store(const T &value) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        currentRuntime().storeBytes(resolve(2), &value, sizeof(T));
    }

    // ------------------------------------------------------------------
    // Member access
    // ------------------------------------------------------------------

    /**
     * Load data member @p member (load instruction). Pointer-typed
     * members automatically take the pointer-load path — the static
     * type information a compiler has is exactly what selects the
     * instruction (paper Fig 5: "the compiler chooses storeD or
     * storeP"), so the facade does the same.
     */
    template <typename F, typename T2 = T>
    F
    field(F T2::*member) const
    {
        static_assert(std::is_trivially_copyable_v<F>);
        if constexpr (detail::IsUprPtr<F>::value) {
            return ptrField(member);
        } else {
            const Bytes off = memberOffset(member);
            return currentRuntime().loadData<F>(
                resolve(off * 16 + 3) + off);
        }
    }

    /**
     * Store data member @p member. Data members use storeD;
     * pointer-typed members dispatch to storeP semantics so their
     * stored format is always canonical.
     */
    template <typename F, typename T2 = T>
    void
    setField(F T2::*member, const F &value) const
    {
        static_assert(std::is_trivially_copyable_v<F>);
        if constexpr (detail::IsUprPtr<F>::value) {
            setPtrField(member, value);
        } else {
            const Bytes off = memberOffset(member);
            currentRuntime().storeData<F>(resolve(off * 16 + 4) + off,
                                          value);
        }
    }

    /** Load pointer member @p member (value format preserved). */
    template <typename U, typename T2 = T>
    Ptr<U>
    ptrField(Ptr<U> T2::*member) const
    {
        const Bytes off = memberOffset(member);
        return Ptr<U>::fromBits(
            currentRuntime().loadPtr(resolve(off * 16 + 5) + off));
    }

    /**
     * Store pointer member @p member with pointerAssignment/storeP
     * semantics: the stored bits are canonicalized to the destination
     * medium's format.
     */
    template <typename U, typename T2 = T>
    void
    setPtrField(Ptr<U> T2::*member, Ptr<U> value) const
    {
        const Bytes off = memberOffset(member);
        currentRuntime().storePtr(resolve(off * 16 + 6) + off,
                                  value.bits(), site(off * 16 + 6));
    }

    // ------------------------------------------------------------------
    // Fig 4 value operations
    // ------------------------------------------------------------------

    bool
    operator==(const Ptr &other) const
    {
        return currentRuntime().ptrEq(bits_, other.bits_, site(7));
    }

    bool operator!=(const Ptr &other) const
    {
        return !(*this == other);
    }

    bool
    operator<(const Ptr &other) const
    {
        return currentRuntime().ptrLt(bits_, other.bits_, site(8));
    }

    /** Array arithmetic: advance by @p n elements. */
    Ptr
    operator+(std::ptrdiff_t n) const
    {
        return fromBits(currentRuntime().ptrAddBytes(
            bits_, n * static_cast<std::ptrdiff_t>(sizeof(T)),
            site(9)));
    }

    Ptr operator-(std::ptrdiff_t n) const { return *this + (-n); }

    /** Element difference between two pointers into one array. */
    std::ptrdiff_t
    operator-(const Ptr &other) const
    {
        const std::int64_t bytes = currentRuntime().ptrDiffBytes(
            bits_, other.bits_, site(10));
        return static_cast<std::ptrdiff_t>(
            bytes / static_cast<std::int64_t>(sizeof(T)));
    }

    /** Element access: load *(p + i). */
    T
    at(std::ptrdiff_t i) const
    {
        return (*this + i).load();
    }

    /** (I)p cast with Fig 4 semantics. */
    std::uint64_t
    toInt() const
    {
        return currentRuntime().ptrToInt(bits_, site(11));
    }

    /** Reinterpret as a pointer to another type ((T*)p cast row). */
    template <typename U>
    Ptr<U>
    cast() const
    {
        return Ptr<U>::fromBits(bits_);
    }

  private:
    /** Static-instruction site id for branch-predictor realism. */
    static std::uint64_t
    site(std::uint64_t op)
    {
        static const std::uint64_t salt = detail::nextSiteSalt();
        return salt * 0x9e3779b97f4a7c15ULL + op;
    }

    PtrBits bits_ = 0;
};

static_assert(sizeof(Ptr<int>) == 8,
              "Ptr must be exactly one machine word (paper Fig 2)");
static_assert(std::is_trivially_copyable_v<Ptr<int>>);

} // namespace upr

#endif // UPR_CORE_PTR_HH
