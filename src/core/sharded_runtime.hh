/**
 * @file
 * ShardedRuntime: N worker threads, each owning one shard — a full
 * Runtime (address space, machine model, pools, transaction engine)
 * plus a shard-local TxnStats, federated in the MetricsRegistry
 * under shard-prefixed names ("shard0.core.*", "shard0.txn.*", ...).
 *
 * Ownership model (docs/CONCURRENCY.md): a shard's Runtime is
 * single-owner — exactly one thread may have it bound at a time,
 * enforced by Runtime::claimOwner (Fault{WrongShard} on violation).
 * Nothing inside a Runtime is made atomic; instead the sharding
 * keeps every mutable structure thread-confined, which is both the
 * performance model (no coherence traffic in the hot paths) and the
 * correctness argument (per-shard histories are sequential; cross-
 * shard correctness is durable linearizability, tested by
 * mtCrashSweep).
 */

#ifndef UPR_CORE_SHARDED_RUNTIME_HH
#define UPR_CORE_SHARDED_RUNTIME_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ptr.hh"
#include "nvm/txn_stats.hh"

namespace upr
{

/** A fleet of single-owner Runtime shards with federated metrics. */
class ShardedRuntime
{
  public:
    struct Config
    {
        /** Worker/shard count (>= 1). */
        unsigned shards = 2;
        /** Per-shard runtime configuration (identical across shards
         * so a T=1 fleet is bit-identical to a plain Runtime). */
        Runtime::Config runtime = {};
        /** Each shard creates one pool of this name/size/engine. */
        std::string poolName = "shard";
        Bytes poolSize = 32ULL << 20;
        EngineKind engine = EngineKind::Undo;
        unsigned groupCommitSize = 1;
    };

    explicit ShardedRuntime(Config config) : config_(std::move(config))
    {
        upr_assert_msg(config_.shards >= 1,
                       "ShardedRuntime needs at least one shard");
        shards_.reserve(config_.shards);
        for (unsigned i = 0; i < config_.shards; ++i) {
            auto shard = std::make_unique<Shard>();
            // Everything the shard constructs — its Runtime's stat
            // groups and histograms, its TxnStats — registers under
            // the shard prefix, so uprstat and snapshots see
            // "shard<i>.core.*" / "shard<i>.txn.*" side by side.
            obs::ScopedRegistrationPrefix prefix(
                "shard" + std::to_string(i) + ".");
            shard->txnStats = std::make_unique<TxnStats>();
            shard->runtime = std::make_unique<Runtime>(config_.runtime);
            {
                RuntimeScope scope(*shard->runtime);
                shard->pool = shard->runtime->createPool(
                    config_.poolName, config_.poolSize, config_.engine);
                shard->runtime->setGroupCommitSize(
                    config_.groupCommitSize);
            }
            shards_.push_back(std::move(shard));
        }
    }

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    const Config &config() const { return config_; }

    /** Shard @p s's runtime (bind before driving it). */
    Runtime &runtime(unsigned s) { return *shards_.at(s)->runtime; }

    /** Shard @p s's pool within its own runtime. */
    PoolId pool(unsigned s) const { return shards_.at(s)->pool; }

    /** Shard @p s's transaction-engine tallies. */
    TxnStats &txnStats(unsigned s) { return *shards_.at(s)->txnStats; }

    /** The owning shard of @p key among @p shards (splitmix64
     * finalizer, mod N) — a pure function so workload generators can
     * partition key streams without a live fleet. */
    static unsigned
    shardOfKey(std::uint64_t key, unsigned shards)
    {
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ULL;
        key ^= key >> 27;
        key *= 0x94d049bb133111ebULL;
        key ^= key >> 31;
        return static_cast<unsigned>(key % shards);
    }

    /** The owning shard of @p key in this fleet. */
    unsigned
    shardOf(std::uint64_t key) const
    {
        return shardOfKey(key, static_cast<unsigned>(shards_.size()));
    }

    /**
     * RAII: bind shard @p s to the calling thread — its Runtime
     * becomes the thread-current runtime (claiming ownership) and
     * its TxnStats receives the thread's transaction accounting.
     */
    class Bind
    {
      public:
        Bind(ShardedRuntime &fleet, unsigned s)
            : scope_(fleet.runtime(s)), stats_(fleet.txnStats(s))
        {}

      private:
        RuntimeScope scope_;
        ScopedTxnStatsBinding stats_;
    };

    /**
     * Run @p fn(shard) on shardCount() real threads, one per shard,
     * each with its shard bound for the duration. Joins all threads;
     * the first exception any worker threw is rethrown afterwards
     * (remaining workers still run to completion — a shard is never
     * abandoned mid-operation because a sibling failed).
     */
    void
    runOnShards(const std::function<void(unsigned)> &fn)
    {
        std::vector<std::thread> workers;
        workers.reserve(shards_.size());
        std::mutex mu;
        std::exception_ptr first;
        for (unsigned i = 0; i < shards_.size(); ++i) {
            workers.emplace_back([this, &fn, &mu, &first, i] {
                try {
                    Bind bind(*this, i);
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mu);
                    if (!first)
                        first = std::current_exception();
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        if (first)
            std::rethrow_exception(first);
    }

  private:
    struct Shard
    {
        /** Declared before the runtime: engines tally into it while
         * the runtime commits, so it must outlive the runtime. */
        std::unique_ptr<TxnStats> txnStats;
        std::unique_ptr<Runtime> runtime;
        PoolId pool = 0;
    };

    Config config_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace upr

#endif // UPR_CORE_SHARDED_RUNTIME_HH
