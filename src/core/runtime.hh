/**
 * @file
 * The UPR runtime: one simulated process — address space, volatile
 * heap, pool manager, timing machine — plus the user-transparent
 * persistent-reference semantics of paper Figs 3/4, implemented under
 * four interchangeable versions (Sec VII-A):
 *
 *  - Volatile:  native pointers, no NVM anywhere (reference point).
 *  - Sw:        compiler-inserted software checks: every pointer
 *               operation runs determineX/determineY as real branches
 *               through the branch predictor plus software-conversion
 *               call overhead.
 *  - Hw:        the paper's architecture support: conversions happen
 *               at effective-address generation (POLB) and inside the
 *               storeP unit (VALB + FSM buffer); no check branches.
 *  - Explicit:  explicit persistent references [26]: object IDs are
 *               translated through the POLB at *every* access to a
 *               persistent object, with no reuse of conversion
 *               results (contrast paper Fig 12).
 *
 * All counters for Table V (dynamic checks, abs->rel, rel->abs) and
 * Fig 15 (storeP / VALB / POLB access fractions) accumulate here.
 */

#ifndef UPR_CORE_RUNTIME_HH
#define UPR_CORE_RUNTIME_HH

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/machine.hh"
#include "common/stats.hh"
#include "core/pointer_repr.hh"
#include "mem/vmalloc.hh"
#include "nvm/pool_manager.hh"
#include "nvm/txn.hh"

namespace upr
{

/** The four compared implementations (paper Sec VII-A). */
enum class Version
{
    Volatile,
    Sw,
    Hw,
    Explicit,
};

/** Printable version name. */
const char *versionName(Version v);

/** Per-check-site identifiers for the branch predictor (SW mode). */
enum class CheckSite : std::uint64_t
{
    ResolveY = 1,      //!< determineY before a dereference
    StoreDetX,         //!< determineX on a store destination
    StoreDetY,         //!< determineY on a stored pointer value
    CmpLhs,            //!< determineY on a comparison's left side
    CmpRhs,            //!< determineY on a comparison's right side
    ArithY,            //!< determineY in pointer arithmetic
    CastY,             //!< determineY in a pointer-to-int cast
};

/** One simulated process running one version. */
class Runtime
{
  public:
    struct Config
    {
        Version version = Version::Hw;
        MachineParams machine = {};
        Placement placement = Placement::Randomized;
        std::uint64_t seed = 0x5eed;
        /**
         * Fault (instead of storing the raw virtual address) when a
         * DRAM pointer is stored into an NVM location — the strict
         * reading of Table I's fault rows.
         */
        bool strictStoreP = false;
        /**
         * Model register reuse of conversion results in HW mode
         * (paper Fig 12). Disabling this is the bench_fig12 ablation:
         * HW degenerates to Explicit-like per-access translation.
         */
        bool hwConversionReuse = true;

        /**
         * libvmmalloc mode (paper Sec VII-B): transparently override
         * malloc so the *entire heap* is persistent — every
         * mallocBytes() allocation lands in an internal pool and
         * returns an NVM virtual address. This is how the paper ran
         * its soundness campaign on the LLVM test-suite. Ignored
         * under the Volatile version.
         */
        bool persistHeap = false;

        /** Size of the internal libvmmalloc pool. */
        Bytes persistHeapPoolSize = 256ULL << 20;

        /**
         * MMU-front modeling for the HW/Explicit versions: the
         * POLB/VALB probe ahead of the TLB, optionally hidden by the
         * non-PMO bypass predictor (the paper's future work; see
         * arch/bypass.hh). None keeps the calibrated behaviour.
         */
        MmuFrontModel mmuFront = MmuFrontModel::None;
    };

    /** Construct with default configuration (HW version). */
    Runtime();

    explicit Runtime(Config config);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    // ------------------------------------------------------------------
    // Subsystems
    // ------------------------------------------------------------------
    Version version() const { return config_.version; }
    const Config &config() const { return config_; }
    AddressSpace &space() { return space_; }
    VolatileHeap &heap() { return heap_; }
    PoolManager &pools() { return pools_; }
    Machine &machine() { return machine_; }

    // ------------------------------------------------------------------
    // Allocation facade
    // ------------------------------------------------------------------

    /** Volatile allocation; returns a DRAM virtual address. */
    SimAddr mallocBytes(Bytes n);

    /** Free a volatile allocation. */
    void freeBytes(SimAddr va);

    /**
     * Persistent allocation in @p pool. Returns the canonical pointer
     * value of the version: a relative address for Sw/Hw/Explicit
     * (pmalloc returns relative addresses per its definition, Sec
     * V-B), or a plain DRAM address under Volatile (where no NVM
     * exists at all).
     */
    PtrBits pmallocBits(PoolId pool, Bytes n);

    /** Free a persistent (or Volatile-version) allocation. */
    void pfreeBits(PtrBits p);

    /** Create-and-attach a pool (no-op handle under Volatile). */
    PoolId createPool(const std::string &name, Bytes size);

    // ------------------------------------------------------------------
    // Persistent transactions (paper Sec VI)
    // ------------------------------------------------------------------

    /**
     * Open an undo-log transaction on @p pool. While active, every
     * store this runtime performs into that pool — including stores
     * issued from inside recompiled legacy-library code, which is
     * the paper's point: the application's transaction covers the
     * library's writes with no library changes — logs its pre-image
     * first. No-op under the Volatile version.
     * @throws Fault{BadUsage} if a transaction is already active
     */
    void beginTxn(PoolId pool);

    /** Commit the active transaction (durable; log truncated). */
    void commitTxn();

    /** Roll every logged write back and close the transaction. */
    void abortTxn();

    /** True while a transaction is open. */
    bool inTxn() const { return activeTxn_ != nullptr; }

    // ------------------------------------------------------------------
    // Pointer-operation semantics (paper Figs 3 and 4)
    // ------------------------------------------------------------------

    /**
     * Produce the virtual address to feed the memory system for a
     * dereference of @p p (load/storeD effective-address generation).
     * Version-dependent checks/translations are performed and timed.
     *
     * @param site static-instruction id for the SW check branch
     */
    SimAddr resolveForAccess(PtrBits p, std::uint64_t site);

    /** Timed load of a pointer-sized value at location @p loc_va. */
    PtrBits loadPtr(SimAddr loc_va);

    /**
     * pointerAssignment (Fig 3) / storeP (Table I): store pointer
     * value @p value into the location at @p loc_va, converting the
     * value to the canonical form of the destination medium.
     */
    void storePtr(SimAddr loc_va, PtrBits value, std::uint64_t site);

    /** Timed data load of a trivially copyable value. */
    template <typename T>
    T
    loadData(SimAddr va)
    {
        machine_.memAccess(va, false, Machine::AccessKind::Load);
        return space_.read<T>(va);
    }

    /** Timed data store (storeD). */
    template <typename T>
    void
    storeData(SimAddr va, const T &value)
    {
        machine_.memAccess(va, true, Machine::AccessKind::StoreD);
        space_.write<T>(va, value);
    }

    /** Timed bulk read. */
    void loadBytes(SimAddr va, void *dst, Bytes n);

    /** Timed bulk write. */
    void storeBytes(SimAddr va, const void *src, Bytes n);

    // Value-level operations (Fig 4 rows) --------------------------------

    /** Equality with full Fig 4 semantics (converting as needed). */
    bool ptrEq(PtrBits a, PtrBits b, std::uint64_t site);

    /** Ordering: a < b after normalizing both to virtual addresses. */
    bool ptrLt(PtrBits a, PtrBits b, std::uint64_t site);

    /** Additive operator: p + delta bytes (stays in its form). */
    PtrBits ptrAddBytes(PtrBits p, std::int64_t delta,
                        std::uint64_t site);

    /** Pointer difference in bytes (Fig 4 additive rows). */
    std::int64_t ptrDiffBytes(PtrBits a, PtrBits b, std::uint64_t site);

    /** (I)p cast: a relative pointer converts to its VA first. */
    std::uint64_t ptrToInt(PtrBits p, std::uint64_t site);

    /** (T*)i cast: bits pass through unchanged. */
    PtrBits intToPtr(std::uint64_t i) { return i; }

    /**
     * A program null-check branch: the outcome goes through the
     * branch predictor (identical in every version — this is the
     * program's own control flow, not a UPR check).
     */
    bool nullCheck(bool outcome, std::uint64_t site);

    /**
     * Any other data-dependent program branch (e.g. a key
     * comparison in a search tree); predictor-modeled, all versions.
     */
    bool dataBranch(bool outcome, std::uint64_t site);

    /**
     * Software ra2va with version-appropriate cost. Exposed for the
     * IR interpreter; also used internally.
     */
    SimAddr ra2va(PtrBits p, std::uint64_t site);

    /** Software va2ra with version-appropriate cost. */
    PtrBits va2ra(SimAddr va, std::uint64_t site);

    // ------------------------------------------------------------------
    // Counters (Table V / Fig 15)
    // ------------------------------------------------------------------
    std::uint64_t dynamicChecks() const { return dynChecks_.value(); }
    std::uint64_t absToRel() const { return absToRel_.value(); }
    std::uint64_t relToAbs() const { return relToAbs_.value(); }
    const StatGroup &stats() const { return stats_; }

    /** Reset UPR counters (machine counters are reset separately). */
    void resetCounters();

    /** Attach-epoch passthrough (register-reuse invalidation). */
    std::uint64_t poolEpoch() const { return pools_.epoch(); }

    /** The internal libvmmalloc pool (0 unless persistHeap is on). */
    PoolId vmmallocPool() const { return vmPool_; }

    /** Conversion results reused from registers (Fig 12), HW only. */
    std::uint64_t reuseHits() const { return reuseHits_.value(); }

  private:
    /** SW-mode dynamic check: one predictor branch plus ALU work. */
    bool swCheck(std::uint64_t site, bool outcome);

    /** Data-dependent branches of a software pool-table lookup. */
    void swLookupBranches(std::uint64_t key, std::uint64_t site);

    /** Normalize one comparison operand to a virtual address. */
    SimAddr normalizeCmp(PtrBits p, std::uint64_t site);

    /**
     * Register/temporary reuse of a previous ra2va result for the
     * same pointer value (HW version, Fig 12). Returns the virtual
     * address with zero cost on a hit, or kNullAddr on a miss.
     */
    SimAddr reuseLookup(PtrBits ra);

    /** Park a fresh conversion result for later reuse. */
    void reuseFill(PtrBits ra, SimAddr va);

    struct ReuseEntry
    {
        bool valid = false;
        PtrBits ra = 0;
        SimAddr va = 0;
        std::uint64_t epoch = 0;
    };

    Config config_;
    AddressSpace space_;
    VolatileHeap heap_;
    PoolManager pools_;
    Machine machine_;

    std::vector<ReuseEntry> reuse_;

    /**
     * In-flight storeP completions by cache line (HW): a load that
     * hits a line whose storeP translation is still in the FSM
     * buffer must wait for it — the memory-dependence path through
     * which VALB latency becomes visible (Fig 14 sensitivity).
     */
    std::unordered_map<SimAddr, Cycles> pendingStoreP_;
    /** Dependent-load round-robin state for forwarding coverage. */
    std::uint64_t depLoads_ = 0;

    /** Internal pool backing libvmmalloc mode (0 = off). */
    PoolId vmPool_ = 0;

    /** Active undo-log transaction, if any. */
    std::unique_ptr<Txn> activeTxn_;
    PoolId txnPool_ = 0;
    /** Re-entrancy guard: the undo log's own writes are not logged. */
    bool txnLogging_ = false;

    StatGroup stats_;
    Counter dynChecks_;
    Counter absToRel_;
    Counter relToAbs_;
    Counter storePOps_;
    Counter reuseHits_;
};

} // namespace upr

#endif // UPR_CORE_RUNTIME_HH
