/**
 * @file
 * The UPR runtime: one simulated process — address space, volatile
 * heap, pool manager, timing machine — plus the user-transparent
 * persistent-reference semantics of paper Figs 3/4, implemented under
 * four interchangeable versions (Sec VII-A):
 *
 *  - Volatile:  native pointers, no NVM anywhere (reference point).
 *  - Sw:        compiler-inserted software checks: every pointer
 *               operation runs determineX/determineY as real branches
 *               through the branch predictor plus software-conversion
 *               call overhead.
 *  - Hw:        the paper's architecture support: conversions happen
 *               at effective-address generation (POLB) and inside the
 *               storeP unit (VALB + FSM buffer); no check branches.
 *  - Explicit:  explicit persistent references [26]: object IDs are
 *               translated through the POLB at *every* access to a
 *               persistent object, with no reuse of conversion
 *               results (contrast paper Fig 12).
 *
 * All counters for Table V (dynamic checks, abs->rel, rel->abs) and
 * Fig 15 (storeP / VALB / POLB access fractions) accumulate here.
 */

#ifndef UPR_CORE_RUNTIME_HH
#define UPR_CORE_RUNTIME_HH

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine.hh"
#include "common/stats.hh"
#include "core/pointer_repr.hh"
#include "mem/vmalloc.hh"
#include "nvm/pool_manager.hh"
#include "nvm/redo_log.hh"
#include "nvm/txn.hh"
#include "obs/metrics.hh"

namespace upr
{

/** The four compared implementations (paper Sec VII-A). */
enum class Version
{
    Volatile,
    Sw,
    Hw,
    Explicit,
};

/** Printable version name. */
const char *versionName(Version v);

/**
 * How compiled IR executes against this runtime (see
 * compiler/exec_fast.hh). Model drives every pointer operation
 * through the full timing model and is bit-exact to the Interpreter
 * (same cycles, counters, and histograms); Native skips the timing
 * model for raw host throughput while preserving results, faults,
 * and the executor-level dynamic-check count.
 */
enum class ExecTier
{
    Model,
    Native,
};

/** Printable tier name ("model" / "native", as in BENCH_exec.json). */
const char *execTierName(ExecTier t);

/**
 * Per-store logging hint the compiled code passes down from the
 * persistency analysis (compiler LogMode, mirrored here so the core
 * layer stays independent of the compiler headers). Only consulted
 * while a transaction is open; Log is always sound.
 */
enum class TxnLogHint : std::uint8_t
{
    Log,            //!< full pre-image / journal entry
    ElideFresh,     //!< target pmalloc'd inside this transaction
    ElideDominated, //!< exact range already logged in this transaction
};

namespace detail
{
/**
 * A process-unique nonzero token for the calling thread (dense, not
 * a hash of std::thread::id). Identifies the owner of a claimed
 * Runtime shard.
 */
inline std::uint64_t
threadToken()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local const std::uint64_t token =
        next.fetch_add(1, std::memory_order_relaxed);
    return token;
}
} // namespace detail

/** Per-check-site identifiers for the branch predictor (SW mode). */
enum class CheckSite : std::uint64_t
{
    ResolveY = 1,      //!< determineY before a dereference
    StoreDetX,         //!< determineX on a store destination
    StoreDetY,         //!< determineY on a stored pointer value
    CmpLhs,            //!< determineY on a comparison's left side
    CmpRhs,            //!< determineY on a comparison's right side
    ArithY,            //!< determineY in pointer arithmetic
    CastY,             //!< determineY in a pointer-to-int cast
};

/** One simulated process running one version. */
class Runtime
{
  public:
    struct Config
    {
        Version version = Version::Hw;
        MachineParams machine = {};
        Placement placement = Placement::Randomized;
        std::uint64_t seed = 0x5eed;
        /**
         * Fault (instead of storing the raw virtual address) when a
         * DRAM pointer is stored into an NVM location — the strict
         * reading of Table I's fault rows.
         */
        bool strictStoreP = false;
        /**
         * Model register reuse of conversion results in HW mode
         * (paper Fig 12). Disabling this is the bench_fig12 ablation:
         * HW degenerates to Explicit-like per-access translation.
         */
        bool hwConversionReuse = true;

        /**
         * libvmmalloc mode (paper Sec VII-B): transparently override
         * malloc so the *entire heap* is persistent — every
         * mallocBytes() allocation lands in an internal pool and
         * returns an NVM virtual address. This is how the paper ran
         * its soundness campaign on the LLVM test-suite. Ignored
         * under the Volatile version.
         */
        bool persistHeap = false;

        /** Size of the internal libvmmalloc pool. */
        Bytes persistHeapPoolSize = 256ULL << 20;

        /**
         * MMU-front modeling for the HW/Explicit versions: the
         * POLB/VALB probe ahead of the TLB, optionally hidden by the
         * non-PMO bypass predictor (the paper's future work; see
         * arch/bypass.hh). None keeps the calibrated behaviour.
         */
        MmuFrontModel mmuFront = MmuFrontModel::None;

        /**
         * Default execution tier for compiled-IR runs against this
         * runtime: FastExecutor instances constructed without an
         * explicit tier inherit it (the Interpreter is always
         * Model-equivalent).
         */
        ExecTier execTier = ExecTier::Model;
    };

    /** Construct with default configuration (HW version). */
    Runtime();

    explicit Runtime(Config config);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    // ------------------------------------------------------------------
    // Subsystems
    // ------------------------------------------------------------------
    Version version() const { return config_.version; }
    const Config &config() const { return config_; }
    AddressSpace &space() { return space_; }
    VolatileHeap &heap() { return heap_; }
    PoolManager &pools() { return pools_; }
    Machine &machine() { return machine_; }

    // ------------------------------------------------------------------
    // Allocation facade
    // ------------------------------------------------------------------

    /** Volatile allocation; returns a DRAM virtual address. */
    SimAddr mallocBytes(Bytes n);

    /** Free a volatile allocation. */
    void freeBytes(SimAddr va);

    /**
     * Persistent allocation in @p pool. Returns the canonical pointer
     * value of the version: a relative address for Sw/Hw/Explicit
     * (pmalloc returns relative addresses per its definition, Sec
     * V-B), or a plain DRAM address under Volatile (where no NVM
     * exists at all).
     */
    PtrBits pmallocBits(PoolId pool, Bytes n);

    /** Free a persistent (or Volatile-version) allocation. */
    void pfreeBits(PtrBits p);

    /**
     * Create-and-attach a pool (no-op handle under Volatile). The
     * engine choice is persisted in the pool header: it decides how
     * beginTxn() on this pool logs (undo pre-images vs staged redo
     * journal) and how recovery replays after a crash.
     */
    PoolId createPool(const std::string &name, Bytes size,
                      EngineKind engine = EngineKind::Undo);

    // ------------------------------------------------------------------
    // Persistent transactions (paper Sec VI)
    // ------------------------------------------------------------------

    /**
     * Open a transaction on @p pool, speaking whatever engine the
     * pool was created with. While active, every store this runtime
     * performs into that pool — including stores issued from inside
     * recompiled legacy-library code, which is the paper's point: the
     * application's transaction covers the library's writes with no
     * library changes — is covered: an undo pool logs each store's
     * pre-image first; a redo pool stages the store in DRAM until
     * commit journals it. No-op under the Volatile version.
     * @throws Fault{BadUsage} if a transaction is already active
     */
    void beginTxn(PoolId pool);

    /**
     * Commit the active transaction. On an undo pool this is durable
     * on return (log truncated). On a redo pool the transaction
     * enters the group-commit batch; it is durable on return iff the
     * batch reached groupCommitSize() (size 1, the default, makes
     * every commit durable immediately).
     */
    void commitTxn();

    /** Discard the active transaction (undo: roll back; redo: drop). */
    void abortTxn();

    /** True while a transaction is open. */
    bool
    inTxn() const
    {
        return activeTxn_ != nullptr ||
               (redoBatch_ && redoBatch_->txnOpen());
    }

    /**
     * Arm the logging hint for the next store(s). The executors set
     * this from the store's proven LogMode immediately before the
     * write and reset it to Log right after; it changes nothing
     * outside a transaction.
     */
    void setTxnLogHint(TxnLogHint h) { txnLogHint_ = h; }

    /** Current store-logging hint. */
    TxnLogHint txnLogHint() const { return txnLogHint_; }

    /**
     * Batch size for redo group commit: commitTxn() folds redo
     * transactions into a DRAM batch and pays the journal's flushes
     * and fences once every @p n commits. 0 is treated as 1 (flush
     * every commit). Undo pools ignore this. Lowering the size does
     * not flush an already-pending batch — call flushGroup().
     */
    void setGroupCommitSize(unsigned n)
    {
        groupCommitSize_ = n == 0 ? 1 : n;
    }

    /** Current redo group-commit batch size. */
    unsigned groupCommitSize() const { return groupCommitSize_; }

    /** Redo transactions committed but not yet flushed to the pool. */
    std::size_t
    pendingGroupTxns() const
    {
        return redoBatch_ ? redoBatch_->pendingTxns() : 0;
    }

    /**
     * Flush the pending redo group-commit batch now (no-op when
     * nothing is pending). Unflushed batches are *volatile*: anything
     * not flushed before the runtime goes away is discarded.
     * @throws Fault{BadUsage} while a transaction is open
     */
    void flushGroup();

    // ------------------------------------------------------------------
    // Pointer-operation semantics (paper Figs 3 and 4)
    // ------------------------------------------------------------------

    /**
     * Produce the virtual address to feed the memory system for a
     * dereference of @p p (load/storeD effective-address generation).
     * Version-dependent checks/translations are performed and timed.
     *
     * @param site static-instruction id for the SW check branch
     */
    SimAddr resolveForAccess(PtrBits p, std::uint64_t site);

    /** Timed load of a pointer-sized value at location @p loc_va. */
    PtrBits loadPtr(SimAddr loc_va);

    /**
     * pointerAssignment (Fig 3) / storeP (Table I): store pointer
     * value @p value into the location at @p loc_va, converting the
     * value to the canonical form of the destination medium.
     */
    void storePtr(SimAddr loc_va, PtrBits value, std::uint64_t site);

    /** Timed data load of a trivially copyable value. */
    template <typename T>
    T
    loadData(SimAddr va)
    {
        machine_.memAccess(va, false, Machine::AccessKind::Load);
        return space_.read<T>(va);
    }

    /** Timed data store (storeD). */
    template <typename T>
    void
    storeData(SimAddr va, const T &value)
    {
        machine_.memAccess(va, true, Machine::AccessKind::StoreD);
        space_.write<T>(va, value);
    }

    /** Timed bulk read. */
    void loadBytes(SimAddr va, void *dst, Bytes n);

    /** Timed bulk write. */
    void storeBytes(SimAddr va, const void *src, Bytes n);

    // Value-level operations (Fig 4 rows) --------------------------------

    /** Equality with full Fig 4 semantics (converting as needed). */
    bool ptrEq(PtrBits a, PtrBits b, std::uint64_t site);

    /** Ordering: a < b after normalizing both to virtual addresses. */
    bool ptrLt(PtrBits a, PtrBits b, std::uint64_t site);

    /** Additive operator: p + delta bytes (stays in its form). */
    PtrBits ptrAddBytes(PtrBits p, std::int64_t delta,
                        std::uint64_t site);

    /** Pointer difference in bytes (Fig 4 additive rows). */
    std::int64_t ptrDiffBytes(PtrBits a, PtrBits b, std::uint64_t site);

    /** (I)p cast: a relative pointer converts to its VA first. */
    std::uint64_t ptrToInt(PtrBits p, std::uint64_t site);

    /** (T*)i cast: bits pass through unchanged. */
    PtrBits intToPtr(std::uint64_t i) { return i; }

    /**
     * A program null-check branch: the outcome goes through the
     * branch predictor (identical in every version — this is the
     * program's own control flow, not a UPR check).
     */
    bool nullCheck(bool outcome, std::uint64_t site);

    /**
     * Any other data-dependent program branch (e.g. a key
     * comparison in a search tree); predictor-modeled, all versions.
     */
    bool dataBranch(bool outcome, std::uint64_t site);

    /**
     * Software ra2va with version-appropriate cost. Exposed for the
     * IR interpreter; also used internally.
     */
    SimAddr ra2va(PtrBits p, std::uint64_t site);

    /** Software va2ra with version-appropriate cost. */
    PtrBits va2ra(SimAddr va, std::uint64_t site);

    // ------------------------------------------------------------------
    // Counters (Table V / Fig 15)
    // ------------------------------------------------------------------
    std::uint64_t dynamicChecks() const { return dynChecks_.value(); }
    std::uint64_t absToRel() const { return absToRel_.value(); }
    std::uint64_t relToAbs() const { return relToAbs_.value(); }
    const StatGroup &stats() const { return stats_; }

    // ------------------------------------------------------------------
    // Latency histograms (observability layer)
    // ------------------------------------------------------------------

    /** Cycles charged per software dynamic check (deterministic). */
    const obs::LatencyHistogram &checkHistogram() const
    {
        return checkCycles_;
    }

    /**
     * Cycles charged per pointerAssignment / storeP (deterministic;
     * assignments that fault are not recorded).
     */
    const obs::LatencyHistogram &ptrAssignHistogram() const
    {
        return ptrAssignCycles_;
    }

    /** Host nanoseconds per transaction commit (wall clock). */
    const obs::LatencyHistogram &txnCommitHistogram() const
    {
        return txnCommitNs_;
    }

    /** Reset UPR counters (machine counters are reset separately). */
    void resetCounters();

    /** Attach-epoch passthrough (register-reuse invalidation). */
    std::uint64_t poolEpoch() const { return pools_.epoch(); }

    /** The internal libvmmalloc pool (0 unless persistHeap is on). */
    PoolId vmmallocPool() const { return vmPool_; }

    /** Conversion results reused from registers (Fig 12), HW only. */
    std::uint64_t reuseHits() const { return reuseHits_.value(); }

    // ------------------------------------------------------------------
    // Shard ownership (docs/CONCURRENCY.md)
    // ------------------------------------------------------------------

    /**
     * Claim this runtime for the calling thread (re-entrant: the
     * owning thread may claim again, e.g. nested RuntimeScopes).
     * A Runtime is a *shard*: exactly one thread may drive it at a
     * time — its counters, machine model, and transaction state are
     * all single-owner by design.
     * @throws Fault{WrongShard} if another live thread owns it
     */
    void
    claimOwner()
    {
        const std::uint64_t me = detail::threadToken();
        std::uint64_t expected = 0;
        if (ownerToken_.compare_exchange_strong(
                expected, me, std::memory_order_acquire,
                std::memory_order_acquire)) {
            bindDepth_ = 1;
            return;
        }
        if (expected == me) {
            ++bindDepth_;
            return;
        }
        throw Fault(FaultKind::WrongShard,
                    "Runtime is bound to another thread; each shard "
                    "runtime has exactly one owner at a time");
    }

    /** Release one claim level; frees the shard at depth zero. */
    void
    releaseOwner()
    {
        upr_assert_msg(
            ownerToken_.load(std::memory_order_relaxed) ==
                detail::threadToken() && bindDepth_ > 0,
            "releaseOwner by a thread that does not own this Runtime");
        if (--bindDepth_ == 0)
            ownerToken_.store(0, std::memory_order_release);
    }

    /** Owning thread's token (0 = unowned); tests/diagnostics. */
    std::uint64_t
    ownerToken() const
    {
        return ownerToken_.load(std::memory_order_relaxed);
    }

  private:
    /** SW-mode dynamic check: one predictor branch plus ALU work. */
    bool swCheck(std::uint64_t site, bool outcome);

    /** Data-dependent branches of a software pool-table lookup. */
    void swLookupBranches(std::uint64_t key, std::uint64_t site);

    /** Normalize one comparison operand to a virtual address. */
    SimAddr normalizeCmp(PtrBits p, std::uint64_t site);

    /**
     * Register/temporary reuse of a previous ra2va result for the
     * same pointer value (HW version, Fig 12). Returns the virtual
     * address with zero cost on a hit, or kNullAddr on a miss.
     */
    SimAddr reuseLookup(PtrBits ra);

    /** Park a fresh conversion result for later reuse. */
    void reuseFill(PtrBits ra, SimAddr va);

    struct ReuseEntry
    {
        bool valid = false;
        PtrBits ra = 0;
        SimAddr va = 0;
        std::uint64_t epoch = 0;
    };

    /**
     * Fixed-capacity open-addressing map from cache line to storeP
     * completion cycle. Drop-in for the unordered_map it replaces on
     * the loadPtr/storePtr hot path, with identical contents at every
     * step: collisions probe instead of evicting, erasures leave
     * tombstones, and the same "flush everything past 4096 live
     * entries" policy applies — so dependent-load timing (depLoads_
     * and the cycles it adds) is bit-exact with the old container.
     */
    class PendingStorePTable
    {
      public:
        PendingStorePTable() : slots_(kCapacity) {}

        bool empty() const { return live_ == 0; }

        /** Insert or overwrite the completion cycle for @p line. */
        void
        put(SimAddr line, Cycles deadline)
        {
            std::size_t i = indexOf(line);
            std::size_t at = kCapacity; // first tombstone on the path
            for (;;) {
                Slot &s = slots_[i];
                if (s.state == kLive && s.line == line) {
                    s.deadline = deadline;
                    return;
                }
                if (s.state == kDead && at == kCapacity)
                    at = i;
                if (s.state == kEmpty) {
                    if (at == kCapacity) {
                        at = i;
                        ++used_;
                    }
                    break;
                }
                i = (i + 1) & (kCapacity - 1);
            }
            slots_[at] = Slot{line, deadline, kLive};
            ++live_;
            if (live_ > kMaxLive) {
                clear(); // stale entries, long since done
                return;
            }
            if (used_ > kRebuild)
                rebuild();
        }

        /** Remove @p line if present; its deadline goes to @p out. */
        bool
        take(SimAddr line, Cycles &out)
        {
            std::size_t i = indexOf(line);
            for (;;) {
                Slot &s = slots_[i];
                if (s.state == kEmpty)
                    return false;
                if (s.state == kLive && s.line == line) {
                    out = s.deadline;
                    s.state = kDead;
                    --live_;
                    return true;
                }
                i = (i + 1) & (kCapacity - 1);
            }
        }

        void
        clear()
        {
            for (Slot &s : slots_)
                s.state = kEmpty;
            live_ = 0;
            used_ = 0;
        }

      private:
        static constexpr std::uint8_t kEmpty = 0;
        static constexpr std::uint8_t kLive = 1;
        static constexpr std::uint8_t kDead = 2;
        /** Must stay a power of two (and above kRebuild + slack). */
        static constexpr std::size_t kCapacity = 8192;
        /** The flush threshold the unordered_map version used. */
        static constexpr std::size_t kMaxLive = 4096;
        /** Used (live + tombstone) slots before de-tombstoning. */
        static constexpr std::size_t kRebuild = 6144;

        struct Slot
        {
            SimAddr line = 0;
            Cycles deadline = 0;
            std::uint8_t state = kEmpty;
        };

        static std::size_t
        indexOf(SimAddr line)
        {
            static_assert(kCapacity == std::size_t{1} << 13);
            return (line * 0x9E3779B97F4A7C15ULL) >> (64 - 13);
        }

        /** Reinsert live entries to shed accumulated tombstones. */
        void
        rebuild()
        {
            std::vector<Slot> old(kCapacity);
            old.swap(slots_);
            live_ = 0;
            used_ = 0;
            for (const Slot &s : old) {
                if (s.state != kLive)
                    continue;
                std::size_t i = indexOf(s.line);
                while (slots_[i].state != kEmpty)
                    i = (i + 1) & (kCapacity - 1);
                slots_[i] = s;
                ++live_;
                ++used_;
            }
        }

        std::vector<Slot> slots_;
        std::size_t live_ = 0;
        std::size_t used_ = 0;
    };

    Config config_;
    AddressSpace space_;
    VolatileHeap heap_;
    PoolManager pools_;
    Machine machine_;

    /** threadToken() of the owning thread; 0 while unclaimed. */
    std::atomic<std::uint64_t> ownerToken_{0};
    /** Re-entrant claim depth; touched only by the owning thread. */
    std::uint32_t bindDepth_ = 0;

    std::vector<ReuseEntry> reuse_;

    /**
     * In-flight storeP completions by cache line (HW): a load that
     * hits a line whose storeP translation is still in the FSM
     * buffer must wait for it — the memory-dependence path through
     * which VALB latency becomes visible (Fig 14 sensitivity).
     */
    PendingStorePTable pendingStoreP_;
    /** Dependent-load round-robin state for forwarding coverage. */
    std::uint64_t depLoads_ = 0;

    /** Internal pool backing libvmmalloc mode (0 = off). */
    PoolId vmPool_ = 0;

    /** Active undo-log transaction, if any. */
    std::unique_ptr<Txn> activeTxn_;
    /**
     * Redo group-commit driver for the pool named by txnPool_, kept
     * across transactions so a batch can span commits. Declared after
     * pools_: it holds a reference into the pool table and must be
     * destroyed first.
     */
    std::unique_ptr<RedoBatch> redoBatch_;
    PoolId txnPool_ = 0;
    /** Re-entrancy guard: the undo log's own writes are not logged. */
    bool txnLogging_ = false;
    /** Armed per store by the executors (persistency proofs). */
    TxnLogHint txnLogHint_ = TxnLogHint::Log;
    /** Redo commits per journal flush (1 = no batching). */
    unsigned groupCommitSize_ = 1;

    StatGroup stats_;
    Counter dynChecks_;
    Counter absToRel_;
    Counter relToAbs_;
    Counter storePOps_;
    Counter reuseHits_;

    /** Simulated-cycle cost per software check (see swCheck). */
    obs::LatencyHistogram checkCycles_;
    /** Simulated-cycle cost per pointerAssignment (see storePtr). */
    obs::LatencyHistogram ptrAssignCycles_;
    /** Host nanoseconds per commitTxn (wall clock, non-model). */
    obs::LatencyHistogram txnCommitNs_;

    /** Observability federation (deregisters on destruction). */
    obs::ScopedMetricsGroup obsStats_{stats_};
    obs::ScopedMetricsHistogram obsCheckCycles_{"upr.checkCycles",
                                                checkCycles_};
    obs::ScopedMetricsHistogram obsPtrAssignCycles_{
        "upr.ptrAssignCycles", ptrAssignCycles_};
    obs::ScopedMetricsHistogram obsTxnCommitNs_{"upr.txnCommitNs",
                                                txnCommitNs_};
};

/**
 * RAII hint armer: sets the runtime's store-logging hint for the
 * duration of one store and restores Log on scope exit (including the
 * faulting paths).
 */
class ScopedTxnLogHint
{
  public:
    ScopedTxnLogHint(Runtime &rt, TxnLogHint h) : rt_(rt)
    {
        rt_.setTxnLogHint(h);
    }
    ~ScopedTxnLogHint() { rt_.setTxnLogHint(TxnLogHint::Log); }
    ScopedTxnLogHint(const ScopedTxnLogHint &) = delete;
    ScopedTxnLogHint &operator=(const ScopedTxnLogHint &) = delete;

  private:
    Runtime &rt_;
};

// ----------------------------------------------------------------------
// Hot-path inline definitions. These sit under every simulated pointer
// operation (millions of calls per benchmark cell); defining them here
// lets callers in other translation units inline them without LTO.
// ----------------------------------------------------------------------

inline bool
Runtime::nullCheck(bool outcome, std::uint64_t site)
{
    machine_.branch(site, outcome);
    return outcome;
}

inline bool
Runtime::dataBranch(bool outcome, std::uint64_t site)
{
    machine_.branch(site, outcome);
    return outcome;
}

inline SimAddr
Runtime::reuseLookup(PtrBits ra)
{
    if (config_.version != Version::Hw || !config_.hwConversionReuse)
        return kNullAddr;
    const std::size_t idx =
        static_cast<std::size_t>((ra ^ (ra >> 16)) &
                                 (reuse_.size() - 1));
    const ReuseEntry &e = reuse_[idx];
    if (e.valid && e.ra == ra && e.epoch == pools_.epoch()) {
        ++reuseHits_;
        return e.va;
    }
    return kNullAddr;
}

inline void
Runtime::reuseFill(PtrBits ra, SimAddr va)
{
    if (config_.version != Version::Hw || !config_.hwConversionReuse)
        return;
    const std::size_t idx =
        static_cast<std::size_t>((ra ^ (ra >> 16)) &
                                 (reuse_.size() - 1));
    reuse_[idx] = ReuseEntry{true, ra, va, pools_.epoch()};
}

inline SimAddr
Runtime::ra2va(PtrBits p, std::uint64_t site)
{
    (void)site;
    upr_assert_msg(PtrRepr::isRelative(p), "ra2va of non-relative bits");
    const PoolId id = PtrRepr::poolOf(p);
    const PoolOffset off = PtrRepr::offsetOf(p);
    switch (config_.version) {
      case Version::Volatile:
        upr_panic("relative address under the Volatile version");
      case Version::Sw:
        ++relToAbs_;
        machine_.tick(config_.machine.swConvertLatency);
        swLookupBranches(off, site * 16 + 9);
        return pools_.ra2va(id, off);
      case Version::Hw: {
        // Conversion results live on in registers/temporaries under
        // user transparency (Fig 12): a reuse hit costs nothing and
        // performs no translation.
        if (const SimAddr va = reuseLookup(p); va != kNullAddr)
            return va;
        ++relToAbs_;
        const SimAddr va = machine_.ra2vaHw(id, off);
        reuseFill(p, va);
        return va;
      }
      case Version::Explicit:
        // The object-ID API cannot park conversions in normal
        // pointers: every access translates anew.
        ++relToAbs_;
        machine_.tick(config_.machine.explicitApiLatency);
        return machine_.ra2vaHw(id, off);
    }
    upr_panic("unreachable");
}

inline SimAddr
Runtime::resolveForAccess(PtrBits p, std::uint64_t site)
{
    if (PtrRepr::isNull(p))
        throw Fault(FaultKind::BadUsage, "dereference of null pointer");

    switch (config_.version) {
      case Version::Volatile:
        return PtrRepr::toVa(p);

      case Version::Sw: {
        // determineY as a real branch, then software conversion.
        const bool rel = swCheck(site, PtrRepr::isRelative(p));
        if (rel)
            return ra2va(p, site);
        return PtrRepr::toVa(p);
      }

      case Version::Hw:
        // The check is wired logic at effective-address generation
        // (bit 63): no branch, no ALU cost; relative addresses pay
        // the POLB lookup.
        if (PtrRepr::isRelative(p))
            return ra2va(p, site);
        return PtrRepr::toVa(p);

      case Version::Explicit:
        // Object-ID API: translation at every persistent access.
        if (PtrRepr::isRelative(p))
            return ra2va(p, site);
        return PtrRepr::toVa(p);
    }
    upr_panic("unreachable");
}

inline PtrBits
Runtime::loadPtr(SimAddr loc_va)
{
    // Memory dependence on an in-flight storeP. The store queue can
    // usually forward the (unconverted) operand early; when
    // forwarding misses — the load straddles the store or arrives at
    // the wrong LSQ moment — it waits for the storeP's translation.
    // Forwarding coverage is modeled at 2 of 3 dependent loads.
    if (!pendingStoreP_.empty()) {
        const SimAddr line =
            roundDown(loc_va, config_.machine.cacheLineBytes);
        Cycles ready = 0;
        if (pendingStoreP_.take(line, ready)) {
            if (ready > machine_.now() && ++depLoads_ % 3 == 0) {
                machine_.tick(ready - machine_.now());
            }
        }
    }
    machine_.memAccess(loc_va, false, Machine::AccessKind::Load);
    return space_.read<PtrBits>(loc_va);
}

} // namespace upr

#endif // UPR_CORE_RUNTIME_HH
