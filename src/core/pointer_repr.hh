/**
 * @file
 * The user-transparent persistent pointer representation (paper Fig 2).
 *
 * A pointer is 64 bits — the same width as a conventional pointer, the
 * property that makes user transparency possible:
 *
 *   bit 63 = 0:  virtual address (48 significant bits)
 *                bit 47 = 0 -> object lives on DRAM
 *                bit 47 = 1 -> object lives on NVM
 *   bit 63 = 1:  relative address
 *                bits 62..32 -> 31-bit pool ID
 *                bits 31..0  -> 32-bit intra-pool offset
 *
 * determineY (what format is a pointer *value*) checks bit 63;
 * determineX (where does a *location* live) checks bit 47 of the
 * location's virtual address — never a physical translation.
 */

#ifndef UPR_CORE_POINTER_REPR_HH
#define UPR_CORE_POINTER_REPR_HH

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "mem/address_space.hh"

namespace upr
{

/** determineY result: how the 64 pointer bits must be interpreted. */
enum class PtrForm
{
    /** bit63=0, bit47=0: virtual address of a DRAM object. */
    VirtualDram,
    /** bit63=0, bit47=1: virtual address of an NVM object. */
    VirtualNvm,
    /** bit63=1: relative address {pool ID, offset}. */
    Relative,
};

/** determineX result: which medium a memory *location* is on. */
enum class LocKind
{
    Dram,
    Nvm,
};

/** Static encode/decode helpers over raw pointer bits. */
struct PtrRepr
{
    static constexpr unsigned kFormBit = 63;
    static constexpr unsigned kPoolIdHi = 62;
    static constexpr unsigned kPoolIdLo = 32;
    static constexpr unsigned kOffsetHi = 31;
    /** Largest encodable pool ID (31 bits). */
    static constexpr PoolId kMaxPoolId = (1U << 31) - 1;

    /** determineY: classify the 64 bits of a pointer value. */
    static PtrForm
    determineY(PtrBits p)
    {
        if (bit(p, kFormBit))
            return PtrForm::Relative;
        return bit(p, Layout::kNvmBit) ? PtrForm::VirtualNvm
                                       : PtrForm::VirtualDram;
    }

    /** determineX: classify the location at virtual address @p va. */
    static LocKind
    determineX(SimAddr va)
    {
        return Layout::isNvm(va) ? LocKind::Nvm : LocKind::Dram;
    }

    /** True if @p p is in relative-address form. */
    static bool isRelative(PtrBits p) { return bit(p, kFormBit); }

    /** True if @p p is the null pointer (all zero bits). */
    static bool isNull(PtrBits p) { return p == 0; }

    /** Compose a relative address from pool ID and offset. */
    static PtrBits
    makeRelative(PoolId id, PoolOffset off)
    {
        upr_assert_msg(id != 0 && id <= kMaxPoolId,
                       "pool id %u not encodable", id);
        PtrBits p = 0;
        p = setBit(p, kFormBit, true);
        p = insertBits(p, kPoolIdHi, kPoolIdLo, id);
        p = insertBits(p, kOffsetHi, 0, off);
        return p;
    }

    /** Pool ID of a relative address. */
    static PoolId
    poolOf(PtrBits p)
    {
        upr_assert(isRelative(p));
        return static_cast<PoolId>(bitsOf(p, kPoolIdHi, kPoolIdLo));
    }

    /** Intra-pool offset of a relative address. */
    static PoolOffset
    offsetOf(PtrBits p)
    {
        upr_assert(isRelative(p));
        return static_cast<PoolOffset>(bitsOf(p, kOffsetHi, 0));
    }

    /** A virtual address used as a pointer value (bit 63 clear). */
    static PtrBits
    fromVa(SimAddr va)
    {
        upr_assert_msg(va < Layout::kVaEnd,
                       "va 0x%llx exceeds 48 bits",
                       (unsigned long long)va);
        return va;
    }

    /** The virtual address carried by a non-relative pointer. */
    static SimAddr
    toVa(PtrBits p)
    {
        upr_assert(!isRelative(p));
        return p;
    }

    /**
     * Pointer arithmetic on the raw representation: a relative
     * address adjusts its offset field (staying relative, per the
     * Fig 4 additive rows); a virtual address adjusts directly.
     */
    static PtrBits
    addBytes(PtrBits p, std::int64_t delta)
    {
        if (isRelative(p)) {
            const std::int64_t off =
                static_cast<std::int64_t>(offsetOf(p)) + delta;
            upr_assert_msg(off >= 0 && off <= 0xffffffffLL,
                           "relative-pointer arithmetic overflows the "
                           "32-bit offset field");
            return makeRelative(poolOf(p),
                                static_cast<PoolOffset>(off));
        }
        return static_cast<PtrBits>(static_cast<std::int64_t>(p) +
                                    delta);
    }
};

} // namespace upr

#endif // UPR_CORE_POINTER_REPR_HH
