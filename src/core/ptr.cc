#include "core/ptr.hh"

#include <atomic>

namespace upr
{

namespace detail
{
thread_local Runtime *tCurrentRuntime = nullptr;
} // namespace detail

RuntimeScope::RuntimeScope(Runtime &rt)
    : bound_(&rt), previous_(detail::tCurrentRuntime)
{
    rt.claimOwner(); // throws WrongShard if owned elsewhere
    detail::tCurrentRuntime = &rt;
}

RuntimeScope::~RuntimeScope()
{
    detail::tCurrentRuntime = previous_;
    bound_->releaseOwner();
}

void
bindRuntime(Runtime &rt)
{
    if (detail::tCurrentRuntime != nullptr) {
        throw Fault(FaultKind::BadUsage,
                    "bindRuntime: this thread already has a Runtime "
                    "bound; unbind it first (or use RuntimeScope for "
                    "nested bindings)");
    }
    rt.claimOwner();
    detail::tCurrentRuntime = &rt;
}

void
unbindRuntime()
{
    if (detail::tCurrentRuntime == nullptr) {
        throw Fault(FaultKind::NoRuntimeBound,
                    "unbindRuntime: nothing bound on this thread");
    }
    Runtime *rt = detail::tCurrentRuntime;
    detail::tCurrentRuntime = nullptr;
    rt->releaseOwner();
}

namespace detail
{

std::uint64_t
nextSiteSalt()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

} // namespace upr
