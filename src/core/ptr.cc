#include "core/ptr.hh"

#include <atomic>

namespace upr
{

namespace
{
thread_local Runtime *tCurrent = nullptr;
} // namespace

Runtime &
currentRuntime()
{
    upr_assert_msg(tCurrent != nullptr,
                   "no Runtime bound; create a RuntimeScope first");
    return *tCurrent;
}

bool
hasCurrentRuntime()
{
    return tCurrent != nullptr;
}

RuntimeScope::RuntimeScope(Runtime &rt) : previous_(tCurrent)
{
    tCurrent = &rt;
}

RuntimeScope::~RuntimeScope()
{
    tCurrent = previous_;
}

namespace detail
{

std::uint64_t
nextSiteSalt()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

} // namespace upr
