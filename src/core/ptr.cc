#include "core/ptr.hh"

#include <atomic>

namespace upr
{

namespace detail
{
thread_local Runtime *tCurrentRuntime = nullptr;
} // namespace detail

RuntimeScope::RuntimeScope(Runtime &rt)
    : previous_(detail::tCurrentRuntime)
{
    detail::tCurrentRuntime = &rt;
}

RuntimeScope::~RuntimeScope()
{
    detail::tCurrentRuntime = previous_;
}

namespace detail
{

std::uint64_t
nextSiteSalt()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

} // namespace upr
