#include "core/runtime.hh"

#include <chrono>
#include <cstdio>

namespace upr
{

const char *
versionName(Version v)
{
    switch (v) {
      case Version::Volatile: return "Volatile";
      case Version::Sw:       return "SW";
      case Version::Hw:       return "HW";
      case Version::Explicit: return "Explicit";
    }
    return "?";
}

const char *
execTierName(ExecTier t)
{
    switch (t) {
      case ExecTier::Model:  return "model";
      case ExecTier::Native: return "native";
    }
    return "?";
}

Runtime::Runtime() : Runtime(Config{}) {}

Runtime::Runtime(Config config)
    : config_(config),
      space_(),
      heap_(space_),
      pools_(space_, config.placement, config.seed),
      machine_(config.machine, space_, pools_),
      reuse_(config.machine.reuseBufferEntries),
      stats_("upr")
{
    upr_assert(isPow2(config_.machine.reuseBufferEntries));
    if (config_.version == Version::Hw ||
        config_.version == Version::Explicit) {
        machine_.setMmuFrontModel(config_.mmuFront);
    }
    if (config_.persistHeap && config_.version != Version::Volatile) {
        // libvmmalloc: the whole heap lives in one persistent pool.
        vmPool_ = pools_.createPool("__vmmalloc",
                                    config_.persistHeapPoolSize);
    }
    stats_.registerCounter("dynamicChecks", dynChecks_,
                           "software determineX/determineY checks");
    stats_.registerCounter("absToRel", absToRel_,
                           "virtual-to-relative conversions");
    stats_.registerCounter("relToAbs", relToAbs_,
                           "relative-to-virtual conversions");
    stats_.registerCounter("storePOps", storePOps_,
                           "pointer stores through storeP semantics");
}

// ----------------------------------------------------------------------
// Allocation facade
// ----------------------------------------------------------------------

SimAddr
Runtime::mallocBytes(Bytes n)
{
    machine_.tick(config_.machine.allocatorLatency);
    if (vmPool_ != 0) {
        // libvmmalloc mode: malloc transparently allocates on NVM
        // and hands back an ordinary (virtual) address — the calling
        // code cannot tell, which is the point.
        return pools_.pmalloc(vmPool_, n);
    }
    return heap_.allocate(n);
}

void
Runtime::freeBytes(SimAddr va)
{
    machine_.tick(config_.machine.allocatorLatency);
    if (Layout::isNvm(va)) {
        pools_.pfree(va);
        return;
    }
    heap_.deallocate(va);
}

PtrBits
Runtime::pmallocBits(PoolId pool, Bytes n)
{
    machine_.tick(config_.machine.allocatorLatency);
    if (config_.version == Version::Volatile) {
        // The Volatile reference version has no NVM at all: persistent
        // allocations degrade to ordinary heap allocations.
        return PtrRepr::fromVa(heap_.allocate(n));
    }
    const SimAddr va = pools_.pmalloc(pool, n);
    auto [id, off] = pools_.va2ra(va);
    return PtrRepr::makeRelative(id, off);
}

void
Runtime::pfreeBits(PtrBits p)
{
    machine_.tick(config_.machine.allocatorLatency);
    if (config_.version == Version::Volatile) {
        heap_.deallocate(PtrRepr::toVa(p));
        return;
    }
    if (PtrRepr::isRelative(p)) {
        pools_.allocator(PtrRepr::poolOf(p)).free(PtrRepr::offsetOf(p));
        return;
    }
    // A persistent object referenced through its virtual address.
    pools_.pfree(PtrRepr::toVa(p));
}

PoolId
Runtime::createPool(const std::string &name, Bytes size,
                    EngineKind engine)
{
    return pools_.createPool(name, size, engine);
}

// ----------------------------------------------------------------------
// Persistent transactions (Sec VI)
// ----------------------------------------------------------------------

void
Runtime::beginTxn(PoolId pool)
{
    if (config_.version == Version::Volatile)
        return; // no NVM, nothing to make crash-consistent
    if (activeTxn_ || (redoBatch_ && redoBatch_->txnOpen())) {
        throw Fault(FaultKind::BadUsage,
                    "a transaction is already active");
    }
    if (!pools_.isAttached(pool)) {
        throw Fault(FaultKind::PoolDetached,
                    "beginTxn on a detached pool");
    }
    Pool &p = pools_.pool(pool);

    if (p.engineKind() == EngineKind::Redo) {
        // Redo path: no per-store log latency — stores are staged in
        // DRAM by the Backing itself and cost nothing extra until
        // commit journals them. The observer only harvests elision
        // hints: ranges a proof marks fresh skip the journal at
        // flush time.
        if (redoBatch_ && txnPool_ != pool) {
            redoBatch_->flush(); // drain the old pool's batch first
            redoBatch_.reset();
        }
        if (!redoBatch_)
            redoBatch_ = std::make_unique<RedoBatch>(p);
        redoBatch_->begin();
        txnPool_ = pool;
        p.backing().setWriteObserver([this](Bytes off, Bytes n) {
            if (txnLogHint_ == TxnLogHint::ElideFresh && redoBatch_)
                redoBatch_->noteElided(off, n);
        });
        return;
    }
    if (redoBatch_) {
        redoBatch_->flush(); // leaving redo: make its batch durable
        redoBatch_.reset();
    }
    activeTxn_ = std::make_unique<Txn>(p);
    txnPool_ = pool;

    // Log at the backing layer: *every* write into the pool — data,
    // pointer, and allocator/header metadata alike — records its
    // pre-image, so abort restores a fully consistent pool. The
    // guard breaks the recursion on the log's own writes.
    p.backing().setWriteObserver([this](Bytes off, Bytes n) {
        if (txnLogging_)
            return;
        txnLogging_ = true;
        if (txnLogHint_ == TxnLogHint::Log) {
            machine_.tick(config_.machine.txnLogLatency);
            activeTxn_->recordWrite(static_cast<PoolOffset>(off), n);
        } else {
            // Proven elidable: no pre-image, no fence, no log
            // latency — the range is only remembered for the commit
            // flush.
            activeTxn_->recordElidedWrite(static_cast<PoolOffset>(off),
                                          n);
        }
        txnLogging_ = false;
    });
}

void
Runtime::commitTxn()
{
    if (config_.version == Version::Volatile)
        return;
    if (redoBatch_ && redoBatch_->txnOpen()) {
        pools_.pool(txnPool_).backing().setWriteObserver(nullptr);
        const auto t0 = std::chrono::steady_clock::now();
        redoBatch_->commit();
        if (groupCommitSize_ <= 1 ||
            redoBatch_->pendingTxns() >= groupCommitSize_) {
            redoBatch_->flush();
        }
        txnCommitNs_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        return;
    }
    upr_assert_msg(activeTxn_ != nullptr, "commit without beginTxn");
    pools_.pool(txnPool_).backing().setWriteObserver(nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    activeTxn_->commit();
    txnCommitNs_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    activeTxn_.reset();
}

void
Runtime::abortTxn()
{
    if (config_.version == Version::Volatile)
        return;
    if (redoBatch_ && redoBatch_->txnOpen()) {
        pools_.pool(txnPool_).backing().setWriteObserver(nullptr);
        redoBatch_->abort();
        return;
    }
    upr_assert_msg(activeTxn_ != nullptr, "abort without beginTxn");
    pools_.pool(txnPool_).backing().setWriteObserver(nullptr);
    activeTxn_->abort();
    activeTxn_.reset();
}

void
Runtime::flushGroup()
{
    if (config_.version == Version::Volatile)
        return;
    if (redoBatch_)
        redoBatch_->flush();
}

// ----------------------------------------------------------------------
// Checks and conversions
// ----------------------------------------------------------------------

bool
Runtime::swCheck(std::uint64_t site, bool outcome)
{
    const Cycles t0 = machine_.now();
    ++dynChecks_;
    machine_.tick(config_.machine.swCheckAluLatency);
    machine_.branch(site, outcome);
    // Simulated-cycle cost of this check (ALU + branch, including a
    // possible misprediction penalty) — deterministic, so the bench
    // goldens can assert on the histogram.
    checkCycles_.record(machine_.now() - t0);
    return outcome;
}

void
Runtime::swLookupBranches(std::uint64_t key, std::uint64_t site)
{
    // The software conversion walks a pool table (hash probe or
    // binary search); its branches turn on address bits and are
    // data-dependent, so they predict poorly across many objects.
    for (unsigned i = 0; i < config_.machine.swConvertBranches; ++i)
        machine_.branch(site + i, bit(key, 4 + 5 * i));
}




PtrBits
Runtime::va2ra(SimAddr va, std::uint64_t site)
{
    (void)site;
    ++absToRel_;
    switch (config_.version) {
      case Version::Volatile:
        upr_panic("va2ra under the Volatile version");
      case Version::Sw: {
        machine_.tick(config_.machine.swConvertLatency);
        swLookupBranches(va, site * 16 + 13);
        auto [id, off] = pools_.va2ra(va);
        return PtrRepr::makeRelative(id, off);
      }
      case Version::Hw:
      case Version::Explicit: {
        if (config_.version == Version::Explicit)
            machine_.tick(config_.machine.explicitApiLatency);
        const Va2RaResult r = machine_.va2raHw(va);
        machine_.tick(r.latency);
        return PtrRepr::makeRelative(r.id, r.offset);
      }
    }
    upr_panic("unreachable");
}

// ----------------------------------------------------------------------
// Dereference path
// ----------------------------------------------------------------------



void
Runtime::storePtr(SimAddr loc_va, PtrBits value, std::uint64_t site)
{
    if (config_.version == Version::Volatile) {
        storeData<PtrBits>(loc_va, value);
        return;
    }

    const Cycles assign_t0 = machine_.now();
    const bool dest_nvm =
        PtrRepr::determineX(loc_va) == LocKind::Nvm;
    const PtrForm form = PtrRepr::determineY(value);
    ++storePOps_;

    if (config_.version == Version::Explicit) {
        // Explicit programs store object IDs directly; no conversion
        // is ever needed (nor any check: the types are distinct).
        // (Pre-image already logged above when in a transaction.)
        machine_.memAccess(loc_va, true, Machine::AccessKind::StoreD);
        space_.write<PtrBits>(loc_va, value);
        ptrAssignCycles_.record(machine_.now() - assign_t0);
        return;
    }

    if (config_.version == Version::Sw) {
        // pointerAssignment (Fig 3) in software: two checks plus a
        // conversion when formats disagree with the destination.
        const bool is_rel =
            swCheck(site * 4 + 1, form == PtrForm::Relative);
        swCheck(site * 4 + 2, dest_nvm);
        PtrBits out = value;
        if (!PtrRepr::isNull(value)) {
            if (dest_nvm && !is_rel) {
                if (form == PtrForm::VirtualNvm) {
                    out = va2ra(PtrRepr::toVa(value), site);
                } else if (config_.strictStoreP) {
                    throw Fault(FaultKind::StorePFault,
                                "DRAM pointer stored into NVM");
                }
            } else if (!dest_nvm && is_rel) {
                out = PtrRepr::fromVa(ra2va(value, site));
            }
        }
        machine_.memAccess(loc_va, true, Machine::AccessKind::StoreD);
        space_.write<PtrBits>(loc_va, out);
        ptrAssignCycles_.record(machine_.now() - assign_t0);
        return;
    }

    // HW version: the storeP instruction (Table I). Rs may need
    // translation through VALB (va2ra) or POLB (ra2va); Rd here is
    // already a virtual address, so its translation latency is zero.
    Cycles rs_latency = 0;
    PtrBits out = value;
    if (!PtrRepr::isNull(value)) {
        if (dest_nvm && form == PtrForm::VirtualNvm) {
            const Va2RaResult r =
                machine_.va2raHw(PtrRepr::toVa(value));
            ++absToRel_;
            rs_latency = r.latency;
            out = PtrRepr::makeRelative(r.id, r.offset);
        } else if (dest_nvm && form == PtrForm::VirtualDram &&
                   config_.strictStoreP) {
            throw Fault(FaultKind::StorePFault,
                        "DRAM pointer stored into NVM");
        } else if (dest_nvm && form == PtrForm::Relative &&
                   reuseLookup(value) != kNullAddr) {
            // The program holds this pointer as a converted virtual
            // address in a register (paper Fig 7: pointer values pass
            // through stack temporaries in VA form); the compiled
            // storeP stores the VA operand and converts it back
            // through the VALB. The stored bits are the same
            // canonical relative value either way.
            const Va2RaResult r =
                machine_.va2raHw(reuseLookup(value));
            ++absToRel_;
            rs_latency = r.latency;
            upr_assert(PtrRepr::makeRelative(r.id, r.offset) == value);
        } else if (!dest_nvm && form == PtrForm::Relative) {
            const XlatResult r = machine_.rdXlatHw(
                PtrRepr::poolOf(value), PtrRepr::offsetOf(value));
            ++relToAbs_;
            rs_latency = r.latency;
            out = PtrRepr::fromVa(r.value);
        }
    }
    machine_.issueStoreP(rs_latency, 0);
    if (rs_latency > 0) {
        const SimAddr line =
            roundDown(loc_va, config_.machine.cacheLineBytes);
        pendingStoreP_.put(line, machine_.now() + rs_latency);
    }
    machine_.memAccess(loc_va, true, Machine::AccessKind::StoreP);
    space_.write<PtrBits>(loc_va, out);
    ptrAssignCycles_.record(machine_.now() - assign_t0);
}

void
Runtime::loadBytes(SimAddr va, void *dst, Bytes n)
{
    const Bytes line = config_.machine.cacheLineBytes;
    for (SimAddr a = roundDown(va, line); a < va + n; a += line)
        machine_.memAccess(a, false, Machine::AccessKind::Load);
    space_.readBytes(va, dst, n);
}

void
Runtime::storeBytes(SimAddr va, const void *src, Bytes n)
{
    const Bytes line = config_.machine.cacheLineBytes;
    for (SimAddr a = roundDown(va, line); a < va + n; a += line)
        machine_.memAccess(a, true, Machine::AccessKind::StoreD);
    space_.writeBytes(va, src, n);
}

// ----------------------------------------------------------------------
// Value-level Fig 4 operations
// ----------------------------------------------------------------------

bool
Runtime::ptrEq(PtrBits a, PtrBits b, std::uint64_t site)
{
    // The comparison result feeds a conditional branch in the
    // program (all versions): run it through the predictor so the
    // Fig 13 baseline is a real branch stream, not zero.
    // p op NULL: direct comparison, no conversion (Fig 4).
    if (PtrRepr::isNull(a) || PtrRepr::isNull(b)) {
        const bool r = a == b;
        machine_.branch(site * 8 + 1, r);
        return r;
    }
    if (config_.version == Version::Volatile ||
        config_.version == Version::Explicit) {
        // Volatile: plain compare. Explicit: object IDs compare
        // directly (the typed API guarantees both sides are IDs).
        const bool r = a == b;
        machine_.branch(site * 8 + 1, r);
        return r;
    }
    const SimAddr va_a = normalizeCmp(a, site * 8 + 1);
    const SimAddr vb = normalizeCmp(b, site * 8 + 2);
    const bool r = va_a == vb;
    machine_.branch(site * 8 + 3, r);
    return r;
}

bool
Runtime::ptrLt(PtrBits a, PtrBits b, std::uint64_t site)
{
    if (config_.version == Version::Volatile) {
        const bool r = a < b;
        machine_.branch(site * 8 + 3, r);
        return r;
    }
    const SimAddr va_a = normalizeCmp(a, site * 8 + 3);
    const SimAddr vb = normalizeCmp(b, site * 8 + 4);
    const bool r = va_a < vb;
    machine_.branch(site * 8 + 5, r);
    return r;
}



PtrBits
Runtime::ptrAddBytes(PtrBits p, std::int64_t delta, std::uint64_t site)
{
    if (config_.version == Version::Sw)
        swCheck(site * 8 + 5, PtrRepr::isRelative(p));
    if (PtrRepr::isRelative(p)) {
        // Relative pointers carry a 32-bit offset; arithmetic that
        // leaves [0, 2^32) cannot name anything in the pool. Raise a
        // catchable fault rather than dying on the representation
        // assert inside PtrRepr::addBytes.
        const std::int64_t off =
            static_cast<std::int64_t>(PtrRepr::offsetOf(p)) + delta;
        if (off < 0 || off > 0xffffffffLL) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "pointer arithmetic wraps the 32-bit offset "
                          "(offset %llu, delta %lld)",
                          (unsigned long long)PtrRepr::offsetOf(p),
                          (long long)delta);
            throw Fault(FaultKind::OffsetOutOfPool, buf);
        }
    }
    machine_.tick(1);
    return PtrRepr::addBytes(p, delta);
}

std::int64_t
Runtime::ptrDiffBytes(PtrBits a, PtrBits b, std::uint64_t site)
{
    // pxr - pxr' within one pool subtracts offsets directly (Fig 4).
    if (PtrRepr::isRelative(a) && PtrRepr::isRelative(b) &&
        PtrRepr::poolOf(a) == PtrRepr::poolOf(b)) {
        if (config_.version == Version::Sw) {
            swCheck(site * 8 + 6, true);
            swCheck(site * 8 + 7, true);
        }
        machine_.tick(1);
        return static_cast<std::int64_t>(PtrRepr::offsetOf(a)) -
               static_cast<std::int64_t>(PtrRepr::offsetOf(b));
    }
    const SimAddr va_a = normalizeCmp(a, site * 8 + 6);
    const SimAddr vb = normalizeCmp(b, site * 8 + 7);
    machine_.tick(1);
    return static_cast<std::int64_t>(va_a) -
           static_cast<std::int64_t>(vb);
}

std::uint64_t
Runtime::ptrToInt(PtrBits p, std::uint64_t site)
{
    // (I)pxv passes through; (I)pxr converts to the virtual address.
    if (config_.version == Version::Sw)
        swCheck(site * 8 + 1, PtrRepr::isRelative(p));
    if (PtrRepr::isRelative(p) && config_.version != Version::Volatile)
        return ra2va(p, site);
    return p;
}

SimAddr
Runtime::normalizeCmp(PtrBits p, std::uint64_t site)
{
    if (config_.version == Version::Sw) {
        const bool rel = swCheck(site, PtrRepr::isRelative(p));
        return rel ? ra2va(p, site) : PtrRepr::toVa(p);
    }
    if (PtrRepr::isRelative(p))
        return ra2va(p, site);
    return PtrRepr::toVa(p);
}

void
Runtime::resetCounters()
{
    stats_.resetAll();
    // The histograms cover the same measured region as the counters:
    // resetting one without the other would break the
    // count-equals-counter invariants the obs tests assert.
    checkCycles_.reset();
    ptrAssignCycles_.reset();
    txnCommitNs_.reset();
}

} // namespace upr
