/**
 * @file
 * Log-bucketed latency histogram for the observability layer.
 *
 * Values land in power-of-two buckets: bucket 0 holds exactly the
 * value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1]. 65 buckets cover
 * the whole uint64 range, so recording never saturates or clips.
 * Recording is a handful of arithmetic ops — cheap enough for the
 * simulator's per-operation hot paths — and percentile queries are
 * deterministic functions of the recorded multiset, which is what
 * lets tests and bench goldens assert on them.
 */

#ifndef UPR_OBS_HISTOGRAM_HH
#define UPR_OBS_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

namespace upr::obs
{

/** Plain-data snapshot of a histogram (registry / JSON currency). */
struct HistogramData
{
    static constexpr unsigned kBuckets = 65;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets = {};

    /**
     * Deterministic percentile estimate: the upper bound of the
     * bucket holding the rank-ceil(p/100 * count) smallest sample,
     * clamped to the observed [min, max]. Exact for values that are
     * themselves bucket bounds; otherwise an upper estimate within
     * 2x. @p p in [0, 100]; returns 0 on an empty histogram.
     */
    std::uint64_t percentile(double p) const;

    /** Add another histogram's samples into this one. */
    void merge(const HistogramData &other);

    /**
     * The samples in *this that are not in @p older (interval
     * arithmetic for snapshot deltas). Bucket counts and sums
     * subtract; min/max keep the newer values since the interval's
     * own extrema are not recoverable from totals.
     */
    HistogramData minus(const HistogramData &older) const;
};

/** Bucket index for a value: 0 for 0, else bit_width(v). */
constexpr unsigned
histogramBucketOf(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v));
}

/** Inclusive [lo, hi] range of values mapping to bucket @p b. */
constexpr std::uint64_t
histogramBucketLow(unsigned b)
{
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

constexpr std::uint64_t
histogramBucketHigh(unsigned b)
{
    if (b == 0)
        return 0;
    if (b >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
}

/** A recordable log2 histogram (a thin mutator over HistogramData). */
class LatencyHistogram
{
  public:
    /** Record one sample. */
    void
    record(std::uint64_t v)
    {
        if (data_.count == 0 || v < data_.min)
            data_.min = v;
        if (v > data_.max)
            data_.max = v;
        ++data_.count;
        data_.sum += v;
        ++data_.buckets[histogramBucketOf(v)];
    }

    std::uint64_t count() const { return data_.count; }
    std::uint64_t sum() const { return data_.sum; }
    std::uint64_t min() const { return data_.min; }
    std::uint64_t max() const { return data_.max; }

    std::uint64_t
    percentile(double p) const
    {
        return data_.percentile(p);
    }

    const HistogramData &data() const { return data_; }

    void reset() { data_ = HistogramData{}; }

  private:
    HistogramData data_;
};

inline std::uint64_t
HistogramData::percentile(double p) const
{
    if (count == 0)
        return 0;
    if (p <= 0)
        return min;
    if (p >= 100)
        return max;
    // Rank of the requested sample, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count));
    if (static_cast<double>(rank) * 100.0 <
        p * static_cast<double>(count))
        ++rank; // ceil
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            std::uint64_t v = histogramBucketHigh(b);
            if (v > max)
                v = max;
            if (v < min)
                v = min;
            return v;
        }
    }
    return max;
}

inline void
HistogramData::merge(const HistogramData &other)
{
    if (other.count == 0)
        return;
    if (count == 0 || other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    count += other.count;
    sum += other.sum;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += other.buckets[b];
}

inline HistogramData
HistogramData::minus(const HistogramData &older) const
{
    HistogramData d;
    d.count = count - older.count;
    d.sum = sum - older.sum;
    for (unsigned b = 0; b < kBuckets; ++b)
        d.buckets[b] = buckets[b] - older.buckets[b];
    // Interval extrema are unknowable from totals; report the
    // endpoint values (documented, and harmless for assertions on
    // counts/sums, the delta use case).
    d.min = d.count ? min : 0;
    d.max = d.count ? max : 0;
    return d;
}

} // namespace upr::obs

#endif // UPR_OBS_HISTOGRAM_HH
