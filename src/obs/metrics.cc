#include "obs/metrics.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/fault.hh"
#include "common/stats.hh"

namespace upr::obs
{

namespace detail
{

std::string &
registrationPrefixSlot()
{
    thread_local std::string prefix;
    return prefix;
}

} // namespace detail

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::addGroup(const StatGroup *group)
{
    const std::string &prefix = registrationPrefix();
    std::lock_guard<std::mutex> lock(mu_);
    GroupEntry entry{group, prefix + group->name(), !prefix.empty()};
    if (entry.prefixed) {
        // A prefixed name claims uniqueness: a collision means two
        // live components think they own the same shard-qualified
        // name. Fail loudly under the sanitized build; otherwise keep
        // both registrations distinguishable with a "#N" suffix.
        const auto taken = [&](const std::string &name) {
            return std::any_of(groups_.begin(), groups_.end(),
                               [&](const GroupEntry &e) {
                                   return e.prefixed &&
                                          e.displayName == name;
                               });
        };
        if (taken(entry.displayName)) {
#ifdef UPR_SANITIZE
            throw Fault(FaultKind::BadUsage,
                        "duplicate metrics group '" +
                            entry.displayName +
                            "' registered under a shard prefix");
#else
            unsigned n = 2;
            std::string renamed;
            do {
                renamed = entry.displayName + "#" + std::to_string(n);
                ++n;
            } while (taken(renamed));
            entry.displayName = std::move(renamed);
#endif
        }
    }
    groups_.push_back(std::move(entry));
}

void
MetricsRegistry::removeGroup(const StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu_);
    groups_.erase(std::remove_if(groups_.begin(), groups_.end(),
                                 [group](const GroupEntry &e) {
                                     return e.group == group;
                                 }),
                  groups_.end());
}

void
MetricsRegistry::addHistogram(const std::string &name,
                              const LatencyHistogram *hist)
{
    const std::string full = registrationPrefix() + name;
    std::lock_guard<std::mutex> lock(mu_);
    histograms_.emplace_back(full, hist);
}

void
MetricsRegistry::removeHistogram(const LatencyHistogram *hist)
{
    std::lock_guard<std::mutex> lock(mu_);
    histograms_.erase(
        std::remove_if(histograms_.begin(), histograms_.end(),
                       [hist](const auto &kv) {
                           return kv.second == hist;
                       }),
        histograms_.end());
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const GroupEntry &e : groups_) {
        e.group->forEach([&](const std::string &stat,
                             std::uint64_t value, const std::string &) {
            snap.counters[e.displayName + "." + stat] += value;
        });
    }
    for (const auto &[name, hist] : histograms_)
        snap.histograms[name].merge(hist->data());
    return snap;
}

void
MetricsRegistry::saveNamed(const std::string &name)
{
    MetricsSnapshot snap = snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    named_[name] = std::move(snap);
}

MetricsSnapshot
MetricsRegistry::named(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = named_.find(name);
    return it == named_.end() ? MetricsSnapshot{} : it->second;
}

void
MetricsRegistry::dropNamed(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    named_.erase(name);
}

std::size_t
MetricsRegistry::groupCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return groups_.size();
}

std::size_t
MetricsRegistry::histogramCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_.size();
}

MetricsSnapshot
MetricsSnapshot::minus(const MetricsSnapshot &older) const
{
    MetricsSnapshot d;
    for (const auto &[name, value] : counters) {
        auto it = older.counters.find(name);
        const std::uint64_t base =
            it == older.counters.end() ? 0 : it->second;
        d.counters[name] = value >= base ? value - base : 0;
    }
    for (const auto &[name, hist] : histograms) {
        auto it = older.histograms.find(name);
        d.histograms[name] =
            it == older.histograms.end() ? hist
                                         : hist.minus(it->second);
    }
    return d;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n    " : ",\n    ";
        appendEscaped(out, name);
        out += ": ";
        appendU64(out, value);
        first = false;
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n    " : ",\n    ";
        appendEscaped(out, name);
        out += ": {\"count\": ";
        appendU64(out, h.count);
        out += ", \"sum\": ";
        appendU64(out, h.sum);
        out += ", \"min\": ";
        appendU64(out, h.min);
        out += ", \"max\": ";
        appendU64(out, h.max);
        out += ", \"p50\": ";
        appendU64(out, h.percentile(50));
        out += ", \"p90\": ";
        appendU64(out, h.percentile(90));
        out += ", \"p99\": ";
        appendU64(out, h.percentile(99));
        out += "}";
        first = false;
    }
    out += first ? "}" : "\n  }";
    out += "\n}\n";
    return out;
}

} // namespace upr::obs
