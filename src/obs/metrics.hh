/**
 * @file
 * MetricsRegistry: the process-wide federation point of every
 * StatGroup and latency histogram in the runtime.
 *
 * Components register their StatGroup (and histograms) on
 * construction through the RAII handles below and deregister on
 * destruction. A snapshot flattens everything live into a
 * name -> value map ("group.stat") plus histogram data; same-named
 * entries from multiple live instances (e.g. two Runtimes, each with
 * a "core" machine group) sum — the registry reports the fleet, not
 * one instance.
 *
 * Sharded components instead register under a per-shard name prefix
 * (ScopedRegistrationPrefix, e.g. "shard0."): a prefixed name is a
 * *claim of uniqueness*, so a second registration under the same
 * prefixed name is a collision — faulted under UPR_SANITIZE, renamed
 * with a "#2"-style suffix otherwise. Unprefixed registrations keep
 * the legacy fleet-summing semantics.
 *
 * Named snapshots + delta() let benches and tests assert on
 * *intervals* ("what did phase 2 add?") instead of process totals.
 */

#ifndef UPR_OBS_METRICS_HH
#define UPR_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hh"

namespace upr
{
class StatGroup; // from common/stats.hh; not included to stay light
} // namespace upr

namespace upr::obs
{

/** Flattened view of everything registered at one instant. */
struct MetricsSnapshot
{
    /** "group.stat" -> value, summed across live instances. */
    std::map<std::string, std::uint64_t> counters;
    /** histogram name -> merged data across live instances. */
    std::map<std::string, HistogramData> histograms;

    /**
     * The interval this - older: counters subtract (saturating at
     * zero so a component re-created between snapshots cannot
     * underflow), histograms subtract bucket-wise. Entries absent
     * from @p older pass through unchanged.
     */
    MetricsSnapshot minus(const MetricsSnapshot &older) const;

    /** Render as a deterministic JSON document. */
    std::string toJson() const;
};

/** The process-wide registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    // Registration (prefer the RAII handles below) ------------------
    void addGroup(const StatGroup *group);
    void removeGroup(const StatGroup *group);
    void addHistogram(const std::string &name,
                      const LatencyHistogram *hist);
    void removeHistogram(const LatencyHistogram *hist);

    /** Flatten everything currently registered. */
    MetricsSnapshot snapshot() const;

    /** Store snapshot() under @p name (overwrites). */
    void saveNamed(const std::string &name);

    /**
     * Retrieve a named snapshot.
     * @return empty snapshot if @p name was never saved
     */
    MetricsSnapshot named(const std::string &name) const;

    /** Drop a named snapshot (no-op if absent). */
    void dropNamed(const std::string &name);

    /** Live registration counts (tests). */
    std::size_t groupCount() const;
    std::size_t histogramCount() const;

  private:
    MetricsRegistry() = default;

    struct GroupEntry
    {
        const StatGroup *group;
        /** Snapshot name: prefix + group name (+ "#N" on collision).
         * Empty prefix ("displayName" == group name) marks a legacy
         * registration, which sums with same-named peers. */
        std::string displayName;
        bool prefixed;
    };

    mutable std::mutex mu_;
    std::vector<GroupEntry> groups_;
    std::vector<std::pair<std::string, const LatencyHistogram *>>
        histograms_;
    std::map<std::string, MetricsSnapshot> named_;
};

namespace detail
{
/** The calling thread's registration prefix ("" = legacy). */
std::string &registrationPrefixSlot();
} // namespace detail

/** The prefix the calling thread registers metrics under. */
inline const std::string &
registrationPrefix()
{
    return detail::registrationPrefixSlot();
}

/**
 * RAII: every StatGroup/histogram registered by this thread inside
 * the scope gets @p prefix prepended to its snapshot name (the shard
 * federation hook: construct a shard's Runtime and stats under
 * ScopedRegistrationPrefix("shardN.") and its metrics appear as
 * "shardN.core.*", "shardN.txn.*", ...). Nested scopes concatenate.
 */
class ScopedRegistrationPrefix
{
  public:
    explicit ScopedRegistrationPrefix(const std::string &prefix)
        : previous_(detail::registrationPrefixSlot())
    {
        detail::registrationPrefixSlot() = previous_ + prefix;
    }

    ~ScopedRegistrationPrefix()
    {
        detail::registrationPrefixSlot() = previous_;
    }

    ScopedRegistrationPrefix(const ScopedRegistrationPrefix &) = delete;
    ScopedRegistrationPrefix &
    operator=(const ScopedRegistrationPrefix &) = delete;

  private:
    std::string previous_;
};

/** RAII registration of one StatGroup for an owning component. */
class ScopedMetricsGroup
{
  public:
    explicit ScopedMetricsGroup(const StatGroup &group) : group_(&group)
    {
        MetricsRegistry::instance().addGroup(group_);
    }

    ~ScopedMetricsGroup()
    {
        MetricsRegistry::instance().removeGroup(group_);
    }

    ScopedMetricsGroup(const ScopedMetricsGroup &) = delete;
    ScopedMetricsGroup &operator=(const ScopedMetricsGroup &) = delete;

  private:
    const StatGroup *group_;
};

/** RAII registration of one histogram under a fixed name. */
class ScopedMetricsHistogram
{
  public:
    ScopedMetricsHistogram(std::string name,
                           const LatencyHistogram &hist)
        : hist_(&hist)
    {
        MetricsRegistry::instance().addHistogram(std::move(name),
                                                 hist_);
    }

    ~ScopedMetricsHistogram()
    {
        MetricsRegistry::instance().removeHistogram(hist_);
    }

    ScopedMetricsHistogram(const ScopedMetricsHistogram &) = delete;
    ScopedMetricsHistogram &
    operator=(const ScopedMetricsHistogram &) = delete;

  private:
    const LatencyHistogram *hist_;
};

} // namespace upr::obs

#endif // UPR_OBS_METRICS_HH
