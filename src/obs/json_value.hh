/**
 * @file
 * Minimal JSON reader for the observability tools (uprstat): a
 * recursive-descent parser producing an ordered value tree, plus a
 * canonical re-emitter.
 *
 * Two properties matter more than generality here:
 *
 *  - Numbers keep their source spelling. BENCH_*.json carries exact
 *    64-bit counters; round-tripping through double would corrupt
 *    values above 2^53. The raw token is preserved and re-emitted
 *    verbatim (asUint/asDouble parse on demand).
 *  - Object members keep insertion order, so parse -> emit -> parse
 *    is byte-stable on the canonical form (the uprstat round-trip
 *    test).
 *
 * Not supported (not needed for our emitters): \uXXXX escapes beyond
 * pass-through, duplicate-key policies, numbers with leading '+'.
 */

#ifndef UPR_OBS_JSON_VALUE_HH
#define UPR_OBS_JSON_VALUE_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace upr::obs
{

/** Thrown on malformed input, with a byte offset for context. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t at)
        : std::runtime_error(what + " at byte " + std::to_string(at)),
          at_(at)
    {}

    std::size_t at() const { return at_; }

  private:
    std::size_t at_;
};

/** One JSON value; objects/arrays own their children. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    static JsonValue makeNull() { return JsonValue(Kind::Null); }

    static JsonValue
    makeBool(bool b)
    {
        JsonValue v(Kind::Bool);
        v.flag_ = b;
        return v;
    }

    /** @p raw is the verbatim number token, e.g. "-12" or "3.5e2". */
    static JsonValue
    makeNumber(std::string raw)
    {
        JsonValue v(Kind::Number);
        v.text_ = std::move(raw);
        return v;
    }

    static JsonValue
    makeString(std::string s)
    {
        JsonValue v(Kind::String);
        v.text_ = std::move(s);
        return v;
    }

    static JsonValue makeArray() { return JsonValue(Kind::Array); }
    static JsonValue makeObject() { return JsonValue(Kind::Object); }

    bool asBool() const { return flag_; }

    /** Decoded string contents (escapes already resolved). */
    const std::string &asString() const { return text_; }

    /** The number's source spelling. */
    const std::string &raw() const { return text_; }

    double asDouble() const { return std::strtod(text_.c_str(), nullptr); }

    std::uint64_t
    asUint() const
    {
        return std::strtoull(text_.c_str(), nullptr, 10);
    }

    /** True if the number token is a plain non-negative integer. */
    bool
    isUint() const
    {
        if (kind_ != Kind::Number || text_.empty() || text_[0] == '-')
            return false;
        return text_.find_first_of(".eE") == std::string::npos;
    }

    // Array access ---------------------------------------------------
    std::vector<JsonValue> &items() { return items_; }
    const std::vector<JsonValue> &items() const { return items_; }

    // Object access --------------------------------------------------
    using Member = std::pair<std::string, JsonValue>;
    std::vector<Member> &members() { return members_; }
    const std::vector<Member> &members() const { return members_; }

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *
    find(const std::string &key) const
    {
        for (const Member &m : members_) {
            if (m.first == key)
                return &m.second;
        }
        return nullptr;
    }

    /** Emit canonical JSON (2-space indent, key order preserved). */
    std::string
    dump() const
    {
        std::string out;
        emit(out, 0);
        out += '\n';
        return out;
    }

  private:
    explicit JsonValue(Kind k) : kind_(k) {}

    void
    emit(std::string &out, unsigned depth) const
    {
        switch (kind_) {
          case Kind::Null:
            out += "null";
            return;
          case Kind::Bool:
            out += flag_ ? "true" : "false";
            return;
          case Kind::Number:
            out += text_;
            return;
          case Kind::String:
            emitString(out, text_);
            return;
          case Kind::Array: {
            if (items_.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                out += i ? ",\n" : "\n";
                out.append(2 * (depth + 1), ' ');
                items_[i].emit(out, depth + 1);
            }
            out += '\n';
            out.append(2 * depth, ' ');
            out += ']';
            return;
          }
          case Kind::Object: {
            if (members_.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                out += i ? ",\n" : "\n";
                out.append(2 * (depth + 1), ' ');
                emitString(out, members_[i].first);
                out += ": ";
                members_[i].second.emit(out, depth + 1);
            }
            out += '\n';
            out.append(2 * depth, ' ');
            out += '}';
            return;
          }
        }
    }

    static void
    emitString(std::string &out, const std::string &s)
    {
        out += '"';
        for (const char c : s) {
            switch (c) {
              case '"':  out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n";  break;
              case '\t': out += "\\t";  break;
              case '\r': out += "\\r";  break;
              default:   out += c;
            }
        }
        out += '"';
    }

    Kind kind_ = Kind::Null;
    bool flag_ = false;
    std::string text_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

namespace detail
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &src) : src_(src) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != src_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonParseError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t' ||
                src_[pos_] == '\n' || src_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= src_.size())
            fail("unexpected end of input");
        return src_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::strlen(w);
        if (src_.compare(pos_, n, w) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (consumeWord("true"))
                return JsonValue::makeBool(true);
            fail("bad literal");
          case 'f':
            if (consumeWord("false"))
                return JsonValue::makeBool(false);
            fail("bad literal");
          case 'n':
            if (consumeWord("null"))
                return JsonValue::makeNull();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.members().emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items().push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= src_.size())
                fail("unterminated string");
            const char c = src_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= src_.size())
                fail("unterminated escape");
            const char e = src_[pos_++];
            switch (e) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                // Pass low \u00XX escapes through as a byte; anything
                // else is out of scope for our emitters.
                if (pos_ + 4 > src_.size())
                    fail("truncated \\u escape");
                const std::string hex = src_.substr(pos_, 4);
                pos_ += 4;
                const unsigned long cp =
                    std::strtoul(hex.c_str(), nullptr, 16);
                if (cp > 0xFF)
                    fail("unsupported \\u escape");
                out += static_cast<char>(cp);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.' || src_[pos_] == 'e' ||
                src_[pos_] == 'E' || src_[pos_] == '+' ||
                src_[pos_] == '-')) {
            digits = digits ||
                     std::isdigit(static_cast<unsigned char>(
                         src_[pos_]));
            ++pos_;
        }
        if (!digits)
            fail("bad number");
        return JsonValue::makeNumber(src_.substr(start, pos_ - start));
    }

    const std::string &src_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse @p src; throws JsonParseError on malformed input. */
inline JsonValue
parseJson(const std::string &src)
{
    return detail::JsonParser(src).parse();
}

} // namespace upr::obs

#endif // UPR_OBS_JSON_VALUE_HH
