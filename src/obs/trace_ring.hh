/**
 * @file
 * TraceRing: a fixed-capacity, lock-free(ish) ring of structured
 * runtime events — fault raised, recovery applied, pool adopt,
 * undo-log truncation, elision decision, and friends.
 *
 * Design constraints, in order:
 *
 *  1. Disabled must be (almost) free. Every emission site goes
 *     through traceEvent(), whose fast path is a single well-predicted
 *     branch on a plain bool; no atomics, no call. The runtime flag
 *     comes from the UPR_OBS_TRACE environment variable (any value
 *     except "" or "0") or setTraceEnabled().
 *
 *  2. Emission never blocks and never allocates. append() claims a
 *     slot with one relaxed fetch_add and overwrites the oldest event
 *     on wrap; a reader snapshotting concurrently can observe a slot
 *     mid-overwrite, which the per-slot sequence stamp detects (the
 *     slot is skipped, not torn).
 *
 *  3. This header is self-contained (no other upr headers), so even
 *     common/fault.hh can emit events without a dependency cycle.
 *
 * Export formats: JSONL (one event object per line) and the Chrome
 * trace_event JSON array loadable in about://tracing / Perfetto.
 */

#ifndef UPR_OBS_TRACE_RING_HH
#define UPR_OBS_TRACE_RING_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <vector>

namespace upr::obs
{

/** What happened. Names are stable: they appear in exported JSON. */
enum class EventKind : std::uint32_t
{
    FaultRaised,      //!< a=FaultKind ordinal
    RecoveryApplied,  //!< a=entries replayed, b=1 if rollback ran
    PoolAttach,       //!< a=pool id, b=base VA
    PoolDetach,       //!< a=pool id
    PoolAdopt,        //!< a=pool id, b=1 if recovery rolled back
    PoolOpen,         //!< a=pool id
    UndoTruncate,     //!< a=pool id, b=bytes discarded from the log
    TxnBegin,         //!< a=pool id
    TxnCommit,        //!< a=pool id, b=ranges logged
    TxnAbort,         //!< a=pool id
    CrashPoint,       //!< a=crash point index, b=1 if rolled back
    ElisionDecision,  //!< a=site line, b=1 elided / 0 kept
    MediaFault,       //!< a=MediaFaultKind ordinal, b=byte offset
    PoolQuarantine,   //!< a=pool id
    PoolRepair,       //!< a=pool id, b=issues repaired
    OpenRetry,        //!< a=retry number, b=backoff "ns" (simulated)
    RedoCommit,       //!< a=pool id, b=journal runs written
    RedoApply,        //!< a=pool id, b=entries replayed forward
    GroupFlush,       //!< a=pool id, b=transactions in the batch
};

/** Printable kind name (stable identifiers for exports and tests). */
inline const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::FaultRaised:     return "fault-raised";
      case EventKind::RecoveryApplied: return "recovery-applied";
      case EventKind::PoolAttach:      return "pool-attach";
      case EventKind::PoolDetach:      return "pool-detach";
      case EventKind::PoolAdopt:       return "pool-adopt";
      case EventKind::PoolOpen:        return "pool-open";
      case EventKind::UndoTruncate:    return "undo-truncate";
      case EventKind::TxnBegin:        return "txn-begin";
      case EventKind::TxnCommit:       return "txn-commit";
      case EventKind::TxnAbort:        return "txn-abort";
      case EventKind::CrashPoint:      return "crash-point";
      case EventKind::ElisionDecision: return "elision-decision";
      case EventKind::MediaFault:      return "media-fault";
      case EventKind::PoolQuarantine:  return "pool-quarantine";
      case EventKind::PoolRepair:      return "pool-repair";
      case EventKind::OpenRetry:       return "open-retry";
      case EventKind::RedoCommit:      return "redo-commit";
      case EventKind::RedoApply:       return "redo-apply";
      case EventKind::GroupFlush:      return "group-flush";
    }
    return "unknown";
}

/** One traced event. seq is a global order stamp (0-based). */
struct TraceRingEvent
{
    std::uint64_t seq = 0;
    EventKind kind = EventKind::FaultRaised;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** The ring itself. One process-wide instance via traceRing(). */
class TraceRing
{
  public:
    /** Slots in the ring; power of two. */
    static constexpr std::size_t kCapacity = 4096;

    /** Append one event, overwriting the oldest on wrap. */
    void
    append(EventKind kind, std::uint64_t a, std::uint64_t b)
    {
        const std::uint64_t seq =
            head_.fetch_add(1, std::memory_order_relaxed);
        Slot &s = slots_[seq & (kCapacity - 1)];
        // Seqlock write: mark the slot in-progress (odd stamp), fill
        // the payload with relaxed atomic stores, then publish (even
        // stamp, release). The release fence orders the odd stamp
        // before the payload, so a reader that observes fresh payload
        // bytes is guaranteed to also observe a changed stamp.
        s.stamp.store(2 * seq + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        s.seq.store(seq, std::memory_order_relaxed);
        s.kind.store(static_cast<std::uint32_t>(kind),
                     std::memory_order_relaxed);
        s.a.store(a, std::memory_order_relaxed);
        s.b.store(b, std::memory_order_relaxed);
        s.stamp.store(2 * seq + 2, std::memory_order_release);
    }

    /** Events appended since the last clear(). */
    std::uint64_t
    appended() const
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t floor = floor_.load(std::memory_order_relaxed);
        return head > floor ? head - floor : 0;
    }

    /** Events overwritten before they could be read. */
    std::uint64_t
    dropped() const
    {
        const std::uint64_t n = appended();
        return n > kCapacity ? n - kCapacity : 0;
    }

    /**
     * Copy out the retained events, oldest first. Slots being
     * overwritten concurrently are skipped. Reported seq numbers are
     * relative to the last clear() (0-based).
     */
    std::vector<TraceRingEvent>
    snapshot() const
    {
        std::vector<TraceRingEvent> out;
        const std::uint64_t floor =
            floor_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head <= floor)
            return out;
        const std::uint64_t first =
            head - floor > kCapacity ? head - kCapacity : floor;
        out.reserve(static_cast<std::size_t>(head - first));
        for (std::uint64_t seq = first; seq < head; ++seq) {
            const Slot &s = slots_[seq & (kCapacity - 1)];
            const std::uint64_t pre =
                s.stamp.load(std::memory_order_acquire);
            if (pre != 2 * seq + 2)
                continue; // overwritten or in flight
            TraceRingEvent e{
                s.seq.load(std::memory_order_relaxed),
                static_cast<EventKind>(
                    s.kind.load(std::memory_order_relaxed)),
                s.a.load(std::memory_order_relaxed),
                s.b.load(std::memory_order_relaxed)};
            // Seqlock read validation: the acquire fence orders the
            // payload loads before the stamp re-check, so a racing
            // overwrite is always detected and the slot skipped.
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.stamp.load(std::memory_order_relaxed) != pre)
                continue;
            e.seq -= floor;
            out.push_back(e);
        }
        return out;
    }

    /**
     * Forget everything. Safe against concurrent writers: instead of
     * rewinding head_ (which would hand out already-claimed slot
     * stamps again and let a racing append tear a slot), the head
     * jumps forward a full capacity window — every retained slot's
     * stamp is now stale — and the floor advances to the new head.
     * Readers never see pre-clear events again; a writer racing the
     * clear keeps its claimed slot and is either (harmlessly) dropped
     * below the floor or retained intact, never torn.
     */
    void
    clear()
    {
        const std::uint64_t head =
            head_.fetch_add(kCapacity, std::memory_order_relaxed) +
            kCapacity;
        // Floor only moves forward: a concurrent clear() pair cannot
        // leave the floor behind a slot another thread re-claims.
        std::uint64_t prev = floor_.load(std::memory_order_relaxed);
        while (prev < head &&
               !floor_.compare_exchange_weak(prev, head,
                                             std::memory_order_relaxed))
        {}
    }

    /** Export as JSONL: one {"seq","kind","a","b"} object per line. */
    void
    exportJsonl(std::ostream &os) const
    {
        for (const TraceRingEvent &e : snapshot()) {
            os << "{\"seq\": " << e.seq << ", \"kind\": \""
               << eventKindName(e.kind) << "\", \"a\": " << e.a
               << ", \"b\": " << e.b << "}\n";
        }
    }

    /**
     * Export in Chrome trace_event format (instant events; the seq
     * number stands in for a timestamp so ordering is preserved).
     */
    void
    exportChromeTrace(std::ostream &os) const
    {
        os << "{\"traceEvents\": [";
        bool first = true;
        for (const TraceRingEvent &e : snapshot()) {
            os << (first ? "\n" : ",\n")
               << "  {\"name\": \"" << eventKindName(e.kind)
               << "\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, "
                  "\"tid\": 1, \"ts\": "
               << e.seq << ", \"args\": {\"a\": " << e.a
               << ", \"b\": " << e.b << "}}";
            first = false;
        }
        os << "\n]}\n";
    }

  private:
    /** Payload fields are relaxed atomics so a snapshot racing an
     * overwrite reads defined (possibly stale, stamp-detected) bytes
     * instead of tearing — keeps the seqlock data-race-free for TSan. */
    struct Slot
    {
        std::atomic<std::uint64_t> stamp{0};
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint32_t> kind{0};
        std::atomic<std::uint64_t> a{0};
        std::atomic<std::uint64_t> b{0};
    };

    std::atomic<std::uint64_t> head_{0};
    /** Sequence numbers below this are cleared (never exposed). */
    std::atomic<std::uint64_t> floor_{0};
    mutable std::vector<Slot> slots_{kCapacity};
};

namespace detail
{
inline bool
traceEnabledFromEnv()
{
    const char *s = std::getenv("UPR_OBS_TRACE");
    return s != nullptr && *s != '\0' && std::strcmp(s, "0") != 0;
}

/** The runtime gate read on every emission's fast path. */
inline bool g_traceEnabled = traceEnabledFromEnv();
} // namespace detail

/** The process-wide ring. */
inline TraceRing &
traceRing()
{
    static TraceRing ring;
    return ring;
}

/** Is event emission currently on? */
inline bool
traceEnabled()
{
    return detail::g_traceEnabled;
}

/** Turn emission on/off programmatically (overrides UPR_OBS_TRACE). */
inline void
setTraceEnabled(bool on)
{
    detail::g_traceEnabled = on;
}

/**
 * Emit one event. When tracing is disabled this is a single
 * predictable branch — the no-op mode the bench overhead gate holds
 * to <2% wall and zero model-counter drift.
 */
inline void
traceEvent(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0)
{
    if (traceEnabled()) [[unlikely]]
        traceRing().append(kind, a, b);
}

} // namespace upr::obs

#endif // UPR_OBS_TRACE_RING_HH
