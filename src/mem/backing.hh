/**
 * @file
 * Byte storage backing a mapped region of the simulated address space.
 *
 * Backings are the "physical" storage of the simulation. A Backing can
 * outlive its mapping: persistent pools keep their Backing alive while
 * detached, and map it again (possibly at a different virtual address)
 * on reopen — that is what makes pool relocation real in this codebase.
 *
 * ## Persistence domain
 *
 * By default every write is instantly durable — fine for volatile
 * heaps and for functional tests, but it hides the failure modes real
 * NVM has: a cache line that never left the CPU caches is *gone* after
 * a crash, and write-back order is not program order. Enabling the
 * persistence domain (enablePersistenceDomain()) splits the backing in
 * two:
 *
 *   - the *live* bytes: what reads and writes see (CPU caches);
 *   - the *durable* image: what survives a crash (the NVM media).
 *
 * Writes land in the live bytes only and mark their 64-byte lines
 * dirty. flush(off, len) stages the covered lines for write-back
 * (CLWB); fence() completes all staged write-backs into the durable
 * image (SFENCE). crashImage() materializes what a crash at this
 * instant would leave on media:
 *
 *   - CrashMode::DiscardUnfenced — only fenced lines survive (the
 *     strictest schedule: nothing in flight makes it out);
 *   - CrashMode::RetainRandom — each unfenced line *independently*
 *     survives with probability 1/2, modeling write-back reordering
 *     and torn multi-line stores;
 *   - CrashMode::RetainEpoch — epoch persistency (Wang/Tuck PDRM):
 *     lines written before the most recent fence survive even when
 *     never flushed;
 *   - CrashMode::RetainBoundedStale — the media lags program order by
 *     at most kStaleBound epochs: older pending lines are guaranteed
 *     durable, younger ones flip a per-line coin.
 *
 * Lines are the atomicity unit of the model (real NVM guarantees
 * 8-byte atomic writes; we use the coarser line so torn stores are
 * *more* hostile, not less).
 */

#ifndef UPR_MEM_BACKING_HH
#define UPR_MEM_BACKING_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define UPR_BYTESTORE_MMAP 1
#endif

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace upr
{

/**
 * Zero-on-demand byte buffer backing the simulated "physical" storage.
 *
 * Pools are created at their full size (hundreds of MB) but benchmarks
 * touch only a sliver of them; an eagerly zeroed std::vector pays a
 * full memset plus page faults per pool. ByteStore instead maps
 * anonymous pages, so untouched bytes are shared zero pages that cost
 * nothing until first write — identical observable content (reads of
 * never-written bytes return 0, exactly like the zeroed vector), much
 * cheaper construction. Falls back to a heap allocation when mmap is
 * unavailable.
 */
class ByteStore
{
  public:
    ByteStore() = default;

    explicit ByteStore(Bytes size) { allocate(size); }

    ByteStore(const ByteStore &other)
    {
        allocate(other.size_);
        if (size_ > 0)
            std::memcpy(data_, other.data_, size_);
    }

    ByteStore &
    operator=(const ByteStore &other)
    {
        if (this != &other) {
            ByteStore copy(other);
            swap(copy);
        }
        return *this;
    }

    ByteStore(ByteStore &&other) noexcept { swap(other); }

    ByteStore &
    operator=(ByteStore &&other) noexcept
    {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }

    ~ByteStore() { release(); }

    std::uint8_t *data() { return data_; }
    const std::uint8_t *data() const { return data_; }
    Bytes size() const { return size_; }

    std::uint8_t &operator[](Bytes i) { return data_[i]; }
    const std::uint8_t &operator[](Bytes i) const { return data_[i]; }

    /** Grow to @p new_size, preserving content, zero-filling the tail. */
    void
    resize(Bytes new_size)
    {
        if (new_size <= size_) {
            size_ = new_size;
            return;
        }
        ByteStore grown(new_size);
        if (size_ > 0)
            std::memcpy(grown.data_, data_, size_);
        swap(grown);
    }

    /** Copy out as a plain vector (serialization, crash images). */
    std::vector<std::uint8_t>
    toVector() const
    {
        return std::vector<std::uint8_t>(data_, data_ + size_);
    }

    void
    swap(ByteStore &other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(size_, other.size_);
        std::swap(mapBytes_, other.mapBytes_);
    }

  private:
    void
    allocate(Bytes size)
    {
        size_ = size;
        if (size == 0) {
            data_ = nullptr;
            mapBytes_ = 0;
            return;
        }
#ifdef UPR_BYTESTORE_MMAP
        mapBytes_ = size;
        void *p = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p == MAP_FAILED) {
            throw Fault(FaultKind::BadUsage,
                        "cannot map backing storage");
        }
        data_ = static_cast<std::uint8_t *>(p);
#else
        mapBytes_ = 0;
        data_ = static_cast<std::uint8_t *>(std::calloc(size, 1));
        if (!data_) {
            throw Fault(FaultKind::BadUsage,
                        "cannot allocate backing storage");
        }
#endif
    }

    void
    release() noexcept
    {
        if (!data_)
            return;
#ifdef UPR_BYTESTORE_MMAP
        ::munmap(data_, mapBytes_);
#else
        std::free(data_);
#endif
        data_ = nullptr;
        size_ = 0;
        mapBytes_ = 0;
    }

    std::uint8_t *data_ = nullptr;
    Bytes size_ = 0;
    /** Bytes actually mapped (may exceed size_ after a shrink). */
    Bytes mapBytes_ = 0;
};

/**
 * What a crash leaves of the unfenced lines — the persistent data
 * retention model of the media (Wang/Tuck PDRM). Epochs are delimited
 * by fence(): every fence closes the current epoch and opens the next.
 */
enum class CrashMode
{
    /** Unfenced lines are lost; only fenced data survives. */
    DiscardUnfenced,
    /**
     * Each unfenced line independently survives with p = 1/2:
     * write-back reordering and torn multi-line stores.
     */
    RetainRandom,
    /**
     * Epoch persistency: lines written before the most recent fence
     * survive even when never flushed (completed epochs drain to
     * media on their own); only current-epoch writes are lost.
     */
    RetainEpoch,
    /**
     * Bounded staleness: the media lags program order by at most
     * Backing::kStaleBound epochs. Pending lines older than the bound
     * are guaranteed durable; younger ones survive with p = 1/2.
     */
    RetainBoundedStale,
};

/** Stable printable name of a crash/retention mode. */
inline const char *
crashModeName(CrashMode mode)
{
    switch (mode) {
      case CrashMode::DiscardUnfenced:    return "discard-unfenced";
      case CrashMode::RetainRandom:       return "retain-random";
      case CrashMode::RetainEpoch:        return "retain-epoch";
      case CrashMode::RetainBoundedStale: return "retain-bounded-stale";
    }
    return "unknown";
}

/** One persistence event, as seen by a CrashInjector. */
enum class PersistEvent
{
    Write, //!< a store into the backing
    Flush, //!< flush(): lines staged for write-back
    Fence, //!< fence(): staged lines reached the durable image
};

/**
 * A DRAM staging buffer for redo-style transactions: while installed
 * on a Backing (setWriteStage), every write is captured here instead
 * of reaching the backing bytes, and reads overlay the staged bytes
 * on top of the backing content. Staged bytes are *volatile by
 * construction* — they are not part of the persistence domain, emit
 * no persistence events, and vanish at a crash — which is exactly the
 * durability contract of an uncommitted redo transaction.
 *
 * Stages nest one level via @c under (a transaction stage layered
 * over a group-commit batch stage): reads see the top stage over the
 * under stage over the media.
 */
struct WriteStage
{
    /** Absolute byte offset -> staged value (sparse, ordered). */
    std::map<Bytes, std::uint8_t> bytes;
    /** Older stage this one shadows (read-through), or nullptr. */
    const WriteStage *under = nullptr;
};

/** A contiguous, resizable byte store. */
class Backing
{
  public:
    /** Cache-line granularity of the persistence domain. */
    static constexpr Bytes kLineBytes = 64;

    /**
     * Staleness bound of CrashMode::RetainBoundedStale, in epochs: a
     * pending line at least this many fences old is guaranteed on
     * media at a crash.
     */
    static constexpr std::uint64_t kStaleBound = 2;

    /** Create a backing of @p size zeroed bytes. */
    explicit Backing(Bytes size = 0) : bytes_(size) {}

    /**
     * Copy: duplicates the bytes and the persistence-domain state
     * (durable image, pending lines, epoch, read-only flag) but NOT
     * the observers or an installed write stage — a copy is a fresh
     * view of the same media (crash images, scratch check/repair
     * trials), never a second endpoint of the original's
     * instrumentation.
     */
    Backing(const Backing &other)
        : bytes_(other.bytes_), domainEnabled_(other.domainEnabled_),
          readOnly_(other.readOnly_), fenceEpoch_(other.fenceEpoch_),
          durable_(other.durable_), pending_(other.pending_)
    {
    }

    Backing &
    operator=(const Backing &other)
    {
        if (this != &other) {
            Backing copy(other);
            *this = std::move(copy);
        }
        return *this;
    }

    /** Moves transfer the whole identity, observers and stage included. */
    Backing(Backing &&) = default;
    Backing &operator=(Backing &&) = default;

    /** Size in bytes. */
    Bytes size() const { return bytes_.size(); }

    /**
     * True while a read is a plain memcpy of the live bytes: no
     * write stage is installed to overlay. Fast-path gate for
     * callers (the Native execution tier) that bypass read() —
     * reads have no observers, so nothing else can differ.
     */
    bool plainRead() const { return stage_ == nullptr; }

    /**
     * True while a write is a plain memcpy into the live bytes:
     * no stage to capture it, no observers to notify, not
     * quarantined, and no persistence domain tracking dirty lines.
     */
    bool
    plainWrite() const
    {
        return stage_ == nullptr && !writeObserver_ &&
               !persistObserver_ && !readOnly_ && !domainEnabled_;
    }

    /**
     * Raw live bytes, for fast-path callers that checked
     * plainRead()/plainWrite() first. The pointer is invalidated by
     * grow() and assign().
     */
    std::uint8_t *rawData() { return bytes_.data(); }

    /** Grow to @p new_size bytes (never shrinks). */
    void
    grow(Bytes new_size)
    {
        if (new_size > bytes_.size()) {
            bytes_.resize(new_size);
            if (domainEnabled_)
                durable_.resize(new_size, 0);
        }
    }

    /** Copy @p n bytes at byte offset @p off into @p dst. */
    void
    read(Bytes off, void *dst, Bytes n) const
    {
        checkRange(off, n, "read");
        std::memcpy(dst, bytes_.data() + off, n);
        if (stage_)
            overlayStage(*stage_, off,
                         static_cast<std::uint8_t *>(dst), n);
    }

    /** Copy @p n bytes from @p src to byte offset @p off. */
    void
    write(Bytes off, const void *src, Bytes n)
    {
        checkRange(off, n, "write");
        if (readOnly_) {
            throw Fault(FaultKind::PoolQuarantined,
                        "write to quarantined (read-only) backing");
        }
        if (stage_) {
            // Staged (redo) path: the bytes land in DRAM only. No
            // persistence event fires — nothing touched the media, so
            // there is nothing a crash schedule could tear.
            if (writeObserver_)
                writeObserver_(off, n);
            const auto *p = static_cast<const std::uint8_t *>(src);
            for (Bytes i = 0; i < n; ++i)
                stage_->bytes[off + i] = p[i];
            return;
        }
        if (persistObserver_)
            persistObserver_(PersistEvent::Write, off, n);
        if (writeObserver_)
            writeObserver_(off, n);
        std::memcpy(bytes_.data() + off, src, n);
        if (domainEnabled_)
            markLines(off, n, LineState::Dirty);
    }

    /**
     * Install (or, with nullptr, remove) a write stage. At most one
     * stage can be installed — the engine layers transaction-over-
     * batch stages itself via WriteStage::under and installs only the
     * top one here.
     */
    void
    setWriteStage(WriteStage *stage)
    {
        if (stage && stage_) {
            throw Fault(FaultKind::BadUsage,
                        "write stage already installed on backing");
        }
        stage_ = stage;
    }

    /** The installed write stage, or nullptr. */
    const WriteStage *writeStage() const { return stage_; }

    /**
     * Write that bypasses an installed stage and lands directly on
     * the (simulated) media — the redo engine's journal-append and
     * in-place-apply path, which must remain governed by the
     * persistence domain even while user writes are being staged.
     */
    void
    writeThrough(Bytes off, const void *src, Bytes n)
    {
        WriteStage *saved = stage_;
        stage_ = nullptr;
        try {
            write(off, src, n);
        } catch (...) {
            stage_ = saved;
            throw;
        }
        stage_ = saved;
    }

    /**
     * Install a pre-write observer invoked with (offset, length)
     * before every write — the undo-log hook: it sees *all* writes,
     * including allocator-metadata updates, so transactions roll the
     * whole pool state back consistently. Pass nullptr to remove.
     */
    void
    setWriteObserver(std::function<void(Bytes, Bytes)> observer)
    {
        writeObserver_ = std::move(observer);
    }

    /**
     * Install a persistence-event observer, invoked *before* each
     * event takes effect (a crash "at" event N means event N never
     * happened). The crash-injection hook; pass nullptr to remove.
     * For Fence events the (offset, length) arguments are (0, 0).
     */
    void
    setPersistObserver(
        std::function<void(PersistEvent, Bytes, Bytes)> observer)
    {
        persistObserver_ = std::move(observer);
    }

    // ------------------------------------------------------------------
    // Persistence domain
    // ------------------------------------------------------------------

    /**
     * Start distinguishing live from durable bytes. The current
     * content becomes the durable image (everything written so far is
     * considered on media). Idempotent.
     */
    void
    enablePersistenceDomain()
    {
        if (domainEnabled_)
            return;
        domainEnabled_ = true;
        durable_ = bytes_.toVector();
        pending_.clear();
    }

    /** True once enablePersistenceDomain() has run. */
    bool persistenceDomainEnabled() const { return domainEnabled_; }

    /**
     * Stage the lines covering [off, off+len) for write-back (CLWB).
     * Durable only after the next fence(). No-op when the domain is
     * disabled; flushing clean lines is allowed and has no effect.
     */
    void
    flush(Bytes off, Bytes len)
    {
        if (!domainEnabled_ || len == 0)
            return;
        checkRange(off, len, "flush");
        if (persistObserver_)
            persistObserver_(PersistEvent::Flush, off, len);
        const Bytes first = off / kLineBytes;
        const Bytes last = (off + len - 1) / kLineBytes;
        for (Bytes line = first; line <= last; ++line) {
            auto it = pending_.find(line);
            if (it != pending_.end())
                it->second.state = LineState::Flushed;
        }
    }

    /**
     * Complete all staged write-backs (SFENCE): every Flushed line is
     * copied into the durable image. Dirty-but-unflushed lines stay
     * volatile. No-op when the domain is disabled.
     */
    void
    fence()
    {
        if (!domainEnabled_)
            return;
        if (persistObserver_)
            persistObserver_(PersistEvent::Fence, 0, 0);
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.state == LineState::Flushed) {
                persistLine(it->first, durable_);
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
        ++fenceEpoch_; // close the epoch the surviving writes live in
    }

    /**
     * The bytes a crash right now would leave on media. With the
     * domain disabled this is simply the current content.
     *
     * @param mode  fate of unfenced lines (the media retention model)
     * @param seed  RNG seed for the probabilistic modes (deterministic
     *              per crash point)
     */
    std::vector<std::uint8_t>
    crashImage(CrashMode mode, std::uint64_t seed = 0) const
    {
        if (!domainEnabled_)
            return bytes_.toVector();
        std::vector<std::uint8_t> image = durable_;
        for (const auto &[line, info] : pending_) {
            switch (mode) {
              case CrashMode::DiscardUnfenced:
                break; // unfenced lines never survive
              case CrashMode::RetainRandom:
                if (lineCoin(line, seed))
                    persistLine(line, image);
                break;
              case CrashMode::RetainEpoch:
                // Completed epochs drained to media by themselves.
                if (info.writeEpoch < fenceEpoch_)
                    persistLine(line, image);
                break;
              case CrashMode::RetainBoundedStale:
                // Media lags by <= kStaleBound epochs: old pending
                // lines are guaranteed durable, younger ones race.
                if (fenceEpoch_ - info.writeEpoch >= kStaleBound) {
                    persistLine(line, image);
                } else if (lineCoin(line, seed)) {
                    persistLine(line, image);
                }
                break;
            }
        }
        return image;
    }

    /** Number of lines that are dirty or flushed-but-unfenced. */
    std::size_t pendingLines() const { return pending_.size(); }

    /** Fences completed so far (the current epoch number). */
    std::uint64_t fenceEpoch() const { return fenceEpoch_; }

    // ------------------------------------------------------------------
    // Quarantine (read-only attach)
    // ------------------------------------------------------------------

    /**
     * Toggle read-only mode: writes throw Fault{PoolQuarantined};
     * reads, flush, and fence remain allowed (they cannot damage the
     * media further). Used to keep a damaged pool inspectable while
     * the rest of the fleet keeps serving.
     */
    void setReadOnly(bool ro) { readOnly_ = ro; }

    /** True while writes are rejected. */
    bool readOnly() const { return readOnly_; }

    /** Raw byte access for serialization (pool images). */
    const ByteStore &raw() const { return bytes_; }

    /** Replace the whole content (pool image load); resets the domain. */
    void
    assign(std::vector<std::uint8_t> content)
    {
        ByteStore fresh(content.size());
        if (!content.empty())
            std::memcpy(fresh.data(), content.data(), content.size());
        bytes_ = std::move(fresh);
        domainEnabled_ = false;
        durable_.clear();
        pending_.clear();
        fenceEpoch_ = 0;
    }

    /** Replace the whole content from another raw store. */
    void
    assign(const ByteStore &content)
    {
        bytes_ = content;
        domainEnabled_ = false;
        durable_.clear();
        pending_.clear();
        fenceEpoch_ = 0;
    }

  private:
    enum class LineState : std::uint8_t
    {
        Dirty,   //!< written, not flushed
        Flushed, //!< flush issued, not yet fenced
    };

    /** Volatile state of one unfenced line. */
    struct LineInfo
    {
        LineState state;
        /** fenceEpoch_ at the line's most recent write. */
        std::uint64_t writeEpoch;
    };

    /**
     * splitmix64 over (seed, line): the deterministic per-line
     * survival coin of the probabilistic retention modes. Independent
     * across lines, reproducible per crash point.
     */
    static bool
    lineCoin(Bytes line, std::uint64_t seed)
    {
        std::uint64_t x = seed + 0x9E37'79B9'7F4A'7C15ULL * (line + 1);
        x ^= x >> 30; x *= 0xBF58'476D'1CE4'E5B9ULL;
        x ^= x >> 27; x *= 0x94D0'49BB'1331'11EBULL;
        x ^= x >> 31;
        return (x & 1) != 0;
    }

    /**
     * Overflow-safe bounds check: rejects hostile offsets where
     * off + n wraps. Faults (catchable) instead of asserting, so
     * corrupt images degrade into typed errors in release builds too.
     */
    void
    checkRange(Bytes off, Bytes n, const char *op) const
    {
        if (n > bytes_.size() || off > bytes_.size() - n) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "backing %s [%llu,+%llu) outside size %llu",
                          op, (unsigned long long)off,
                          (unsigned long long)n,
                          (unsigned long long)bytes_.size());
            throw Fault(FaultKind::OffsetOutOfPool, buf);
        }
    }

    /** Mark the lines covering [off, off+len) with @p state. */
    void
    markLines(Bytes off, Bytes len, LineState state)
    {
        if (len == 0)
            return;
        const Bytes first = off / kLineBytes;
        const Bytes last = (off + len - 1) / kLineBytes;
        for (Bytes line = first; line <= last; ++line)
            pending_[line] = {state, fenceEpoch_};
    }

    /** Overlay staged bytes (under first, then top) onto @p dst. */
    static void
    overlayStage(const WriteStage &s, Bytes off, std::uint8_t *dst,
                 Bytes n)
    {
        if (s.under)
            overlayStage(*s.under, off, dst, n);
        if (n == 0)
            return;
        for (auto it = s.bytes.lower_bound(off);
             it != s.bytes.end() && it->first - off < n; ++it)
            dst[it->first - off] = it->second;
    }

    /** Copy line @p line of the live bytes into @p dst. */
    void
    persistLine(Bytes line, std::vector<std::uint8_t> &dst) const
    {
        const Bytes off = line * kLineBytes;
        const Bytes n =
            std::min<Bytes>(kLineBytes, bytes_.size() - off);
        std::memcpy(dst.data() + off, bytes_.data() + off, n);
    }

    ByteStore bytes_;
    std::function<void(Bytes, Bytes)> writeObserver_;
    std::function<void(PersistEvent, Bytes, Bytes)> persistObserver_;
    /** Installed redo staging buffer (not owned), or nullptr. */
    WriteStage *stage_ = nullptr;

    bool domainEnabled_ = false;
    bool readOnly_ = false;
    /** Fences completed since the domain (or backing) came up. */
    std::uint64_t fenceEpoch_ = 0;
    /** The crash-surviving image (valid while domainEnabled_). */
    std::vector<std::uint8_t> durable_;
    /** Line index -> volatile state, for every unfenced line. */
    std::unordered_map<Bytes, LineInfo> pending_;
};

} // namespace upr

#endif // UPR_MEM_BACKING_HH
