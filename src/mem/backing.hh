/**
 * @file
 * Byte storage backing a mapped region of the simulated address space.
 *
 * Backings are the "physical" storage of the simulation. A Backing can
 * outlive its mapping: persistent pools keep their Backing alive while
 * detached, and map it again (possibly at a different virtual address)
 * on reopen — that is what makes pool relocation real in this codebase.
 */

#ifndef UPR_MEM_BACKING_HH
#define UPR_MEM_BACKING_HH

#include <cstring>
#include <functional>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace upr
{

/** A contiguous, resizable byte store. */
class Backing
{
  public:
    /** Create a backing of @p size zeroed bytes. */
    explicit Backing(Bytes size = 0) : bytes_(size, 0) {}

    /** Size in bytes. */
    Bytes size() const { return bytes_.size(); }

    /** Grow to @p new_size bytes (never shrinks). */
    void
    grow(Bytes new_size)
    {
        if (new_size > bytes_.size())
            bytes_.resize(new_size, 0);
    }

    /** Copy @p n bytes at byte offset @p off into @p dst. */
    void
    read(Bytes off, void *dst, Bytes n) const
    {
        upr_assert_msg(off + n <= bytes_.size(),
                       "backing read [%llu,+%llu) past size %llu",
                       (unsigned long long)off, (unsigned long long)n,
                       (unsigned long long)bytes_.size());
        std::memcpy(dst, bytes_.data() + off, n);
    }

    /** Copy @p n bytes from @p src to byte offset @p off. */
    void
    write(Bytes off, const void *src, Bytes n)
    {
        upr_assert_msg(off + n <= bytes_.size(),
                       "backing write [%llu,+%llu) past size %llu",
                       (unsigned long long)off, (unsigned long long)n,
                       (unsigned long long)bytes_.size());
        if (writeObserver_)
            writeObserver_(off, n);
        std::memcpy(bytes_.data() + off, src, n);
    }

    /**
     * Install a pre-write observer invoked with (offset, length)
     * before every write — the undo-log hook: it sees *all* writes,
     * including allocator-metadata updates, so transactions roll the
     * whole pool state back consistently. Pass nullptr to remove.
     */
    void
    setWriteObserver(std::function<void(Bytes, Bytes)> observer)
    {
        writeObserver_ = std::move(observer);
    }

    /** Raw byte access for serialization (pool images). */
    const std::vector<std::uint8_t> &raw() const { return bytes_; }

    /** Replace the whole content (pool image load). */
    void
    assign(std::vector<std::uint8_t> content)
    {
        bytes_ = std::move(content);
    }

  private:
    std::vector<std::uint8_t> bytes_;
    std::function<void(Bytes, Bytes)> writeObserver_;
};

} // namespace upr

#endif // UPR_MEM_BACKING_HH
