/**
 * @file
 * The simulated 48-bit process virtual address space (paper Fig 2).
 *
 * Layout: the 256 TB space is split into two equal halves.
 *   [0x0000'0000'0000, 0x8000'0000'0000)  DRAM (volatile) half, bit47=0
 *   [0x8000'0000'0000, 0x1'0000'0000'0000) NVM (persistent) half, bit47=1
 *
 * Whether an address points to NVM is decided by checking bit 47, never
 * by translating to a physical address — exactly the paper's design.
 *
 * The space maps virtual ranges onto Backing storage. Mappings come and
 * go (pools attach/detach, possibly at new addresses); Backings persist.
 */

#ifndef UPR_MEM_ADDRESS_SPACE_HH
#define UPR_MEM_ADDRESS_SPACE_HH

#include <algorithm>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bits.hh"
#include "common/fault.hh"
#include "common/types.hh"
#include "mem/backing.hh"

namespace upr
{

/** Virtual-address layout constants. */
struct Layout
{
    /** Bits of virtual address implemented. */
    static constexpr unsigned kVaBits = 48;
    /** Bit that selects the NVM half (paper: bit 47). */
    static constexpr unsigned kNvmBit = 47;
    /** First address of the NVM half. */
    static constexpr SimAddr kNvmBase = 1ULL << kNvmBit;
    /** One past the last valid virtual address. */
    static constexpr SimAddr kVaEnd = 1ULL << kVaBits;
    /** Simulated page size. */
    static constexpr Bytes kPageSize = 4096;

    /** True if @p va lies in the NVM half (bit 47 set). */
    static bool isNvm(SimAddr va) { return bit(va, kNvmBit); }
};

/**
 * Sparse simulated address space: an ordered set of non-overlapping
 * mapped regions, each backed by (a slice of) a Backing.
 *
 * Lookup sits under every simulated load and store, so regions live in
 * a base-sorted flat vector (binary search) fronted by an MRU
 * last-region cache: almost all accesses hit the same region as their
 * predecessor (the heap, or the one attached pool), making the common
 * case a single bounds compare. Mappings change rarely (pool
 * attach/detach, heap growth), so O(n) insert/erase is irrelevant.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;
    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Map [base, base+size) onto @p backing starting at
     * @p backing_off. The backing must already be large enough.
     *
     * @param name diagnostic region name (e.g. "pool:7", "heap")
     */
    void
    map(SimAddr base, Bytes size, Backing &backing, Bytes backing_off,
        std::string name)
    {
        upr_assert_msg(size > 0, "empty mapping '%s'", name.c_str());
        upr_assert_msg(base + size <= Layout::kVaEnd,
                       "mapping '%s' past end of address space",
                       name.c_str());
        upr_assert_msg(backing_off + size <= backing.size(),
                       "mapping '%s' larger than its backing",
                       name.c_str());
        if (overlapsMapped(base, size)) {
            throw Fault(FaultKind::BadUsage,
                        "mapping '" + name + "' overlaps existing region");
        }
        regions_.insert(lowerBound(base),
                        Region{base, size, &backing, backing_off,
                               std::move(name)});
        mru_ = kNoMru; // insertion shifts indices
    }

    /** Remove the mapping that starts exactly at @p base. */
    void
    unmap(SimAddr base)
    {
        auto it = lowerBound(base);
        if (it == regions_.end() || it->base != base) {
            throw Fault(FaultKind::BadUsage,
                        "unmap of address with no region");
        }
        regions_.erase(it);
        mru_ = kNoMru; // erasure shifts indices
    }

    /** True if [addr, addr+size) is fully inside one mapped region. */
    bool
    isMapped(SimAddr addr, Bytes size = 1) const
    {
        const Region *r = find(addr);
        return r && addr + size <= r->base + r->size;
    }

    /** Read @p n bytes at @p addr into @p dst. */
    void
    readBytes(SimAddr addr, void *dst, Bytes n) const
    {
        const Region &r = require(addr, n);
        r.backing->read(r.backingOff + (addr - r.base), dst, n);
    }

    /** Write @p n bytes from @p src to @p addr. */
    void
    writeBytes(SimAddr addr, const void *src, Bytes n)
    {
        const Region &r = require(addr, n);
        r.backing->write(r.backingOff + (addr - r.base), src, n);
    }

    /**
     * Raw host pointer covering [addr, addr+n) for a direct read,
     * or nullptr when the range is unmapped, split, or the backing
     * needs the full read() path (an installed write stage). The
     * pointer is only valid until the next map/unmap or backing
     * grow/assign — callers must re-request it per access, which the
     * MRU cache keeps to a couple of compares.
     */
    const std::uint8_t *
    rawReadSpan(SimAddr addr, Bytes n) const
    {
        const Region *r = find(addr);
        if (!r || addr + n > r->base + r->size ||
            !r->backing->plainRead())
            return nullptr;
        return r->backing->rawData() + r->backingOff +
               (addr - r->base);
    }

    /** Write analogue of rawReadSpan(): also requires plainWrite(). */
    std::uint8_t *
    rawWriteSpan(SimAddr addr, Bytes n)
    {
        const Region *r = find(addr);
        if (!r || addr + n > r->base + r->size ||
            !r->backing->plainWrite())
            return nullptr;
        return r->backing->rawData() + r->backingOff +
               (addr - r->base);
    }

    /** A whole region exposed as raw host memory. */
    struct RawRegion
    {
        SimAddr base = 0;
        Bytes size = 0;
        std::uint8_t *data = nullptr;
    };

    /**
     * The full extent of the plain-memory region containing @p addr,
     * or an empty RawRegion. Callers holding the result across
     * accesses must drop it before anything that can remap regions,
     * grow a backing, or change a backing's plain-memory state
     * (stages, observers, persistence domain, quarantine).
     */
    RawRegion
    rawRegion(SimAddr addr)
    {
        const Region *r = find(addr);
        if (!r || !r->backing->plainWrite())
            return RawRegion{};
        return RawRegion{r->base, r->size,
                         r->backing->rawData() + r->backingOff};
    }

    /** Typed read of a trivially copyable value. */
    template <typename T>
    T
    read(SimAddr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(addr, &value, sizeof(T));
        return value;
    }

    /** Typed write of a trivially copyable value. */
    template <typename T>
    void
    write(SimAddr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(addr, &value, sizeof(T));
    }

    /** Number of currently mapped regions. */
    std::size_t regionCount() const { return regions_.size(); }

    /** Name of the region containing @p addr, or "" if unmapped. */
    std::string
    regionName(SimAddr addr) const
    {
        const Region *r = find(addr);
        return r ? r->name : std::string();
    }

  private:
    struct Region
    {
        SimAddr base;
        Bytes size;
        Backing *backing;
        Bytes backingOff;
        std::string name;
    };

    static constexpr std::size_t kNoMru = ~std::size_t{0};

    /** First region with base >= @p addr. */
    std::vector<Region>::iterator
    lowerBound(SimAddr addr)
    {
        return std::lower_bound(
            regions_.begin(), regions_.end(), addr,
            [](const Region &r, SimAddr a) { return r.base < a; });
    }

    /** Region containing @p addr, or nullptr. */
    const Region *
    find(SimAddr addr) const
    {
        // MRU fast path: consecutive accesses overwhelmingly land in
        // the same region.
        if (mru_ < regions_.size()) {
            const Region &m = regions_[mru_];
            if (addr - m.base < m.size)
                return &m;
        }
        // Binary search for the last region with base <= addr.
        std::size_t lo = 0, hi = regions_.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (regions_[mid].base <= addr)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo == 0)
            return nullptr;
        const Region &r = regions_[lo - 1];
        if (addr - r.base >= r.size)
            return nullptr;
        mru_ = lo - 1;
        return &r;
    }

    /** Region fully containing [addr, addr+n), or throw. */
    const Region &
    require(SimAddr addr, Bytes n) const
    {
        const Region *r = find(addr);
        if (!r || addr + n > r->base + r->size) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "va 0x%llx size %llu",
                          (unsigned long long)addr,
                          (unsigned long long)n);
            throw Fault(FaultKind::UnmappedAccess, buf);
        }
        return *r;
    }

    bool
    overlapsMapped(SimAddr base, Bytes size) const
    {
        auto it = const_cast<AddressSpace *>(this)->lowerBound(base);
        if (it != regions_.end() && it->base < base + size)
            return true;
        if (it != regions_.begin()) {
            const Region &r = *std::prev(it);
            if (base < r.base + r.size)
                return true;
        }
        return false;
    }

    /** Base-sorted, non-overlapping mapped regions. */
    std::vector<Region> regions_;
    /** Index of the last region a lookup resolved to (kNoMru = none). */
    mutable std::size_t mru_ = kNoMru;
};

} // namespace upr

#endif // UPR_MEM_ADDRESS_SPACE_HH
