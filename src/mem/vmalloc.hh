/**
 * @file
 * First-fit volatile heap allocator over the DRAM half of the
 * simulated address space.
 *
 * Allocation metadata is kept host-side (the heap is volatile by
 * definition, nothing about it must survive a restart); the persistent
 * allocator in src/nvm keeps its metadata inside the pool instead.
 * A 16-byte per-block header is still modeled in the address layout
 * (as real malloc has), so volatile and persistent allocations have
 * the same footprint and the version comparison is not skewed by
 * allocator overheads.
 */

#ifndef UPR_MEM_VMALLOC_HH
#define UPR_MEM_VMALLOC_HH

#include <map>

#include "common/bits.hh"
#include "common/fault.hh"
#include "common/stats.hh"
#include "mem/address_space.hh"

namespace upr
{

/** Growable first-fit allocator with coalescing free ranges. */
class VolatileHeap
{
  public:
    /** Default base of the heap mapping inside the DRAM half. */
    static constexpr SimAddr kDefaultBase = 0x0000'1000'0000ULL;
    /** Initial mapped size; doubles on demand up to kMaxSize. */
    static constexpr Bytes kInitialSize = 1ULL << 20;
    /** Upper bound on heap growth. */
    static constexpr Bytes kMaxSize = 1ULL << 33;

    /**
     * Create the heap and map its initial region.
     *
     * @param space address space to live in
     * @param base heap base virtual address (must be in the DRAM half)
     */
    explicit VolatileHeap(AddressSpace &space, SimAddr base = kDefaultBase)
        : space_(space), base_(base), mapped_(kInitialSize),
          backing_(kInitialSize), stats_("vheap")
    {
        upr_assert_msg(!Layout::isNvm(base),
                       "volatile heap must live in the DRAM half");
        space_.map(base_, mapped_, backing_, 0, "vheap");
        free_.emplace(base_, mapped_);
        stats_.registerCounter("allocs", allocs_, "allocation calls");
        stats_.registerCounter("frees", frees_, "deallocation calls");
        stats_.registerCounter("bytesInUse", bytesInUse_,
                               "currently allocated bytes");
    }

    ~VolatileHeap()
    {
        space_.unmap(base_);
    }

    VolatileHeap(const VolatileHeap &) = delete;
    VolatileHeap &operator=(const VolatileHeap &) = delete;

    /**
     * Allocate @p n bytes aligned to @p align (power of two).
     * @return simulated address of the block
     * @throws Fault{HeapFull} when growth is exhausted
     */
    /** Modeled per-block header bytes (matches the pool allocator). */
    static constexpr Bytes kHeaderBytes = 16;

    SimAddr
    allocate(Bytes n, Bytes align = 16)
    {
        upr_assert(isPow2(align));
        if (n == 0)
            n = 1;
        n = roundUp(n, 16);
        ++allocs_;
        for (;;) {
            for (auto it = free_.begin(); it != free_.end(); ++it) {
                // The returned address is aligned; the modeled header
                // sits just below it inside the block.
                const SimAddr start =
                    roundUp(it->first + kHeaderBytes, align);
                const SimAddr end = it->first + it->second;
                if (start + n <= end) {
                    carve(it, start - kHeaderBytes,
                          n + kHeaderBytes);
                    live_.emplace(start, n);
                    bytesInUse_ += n;
                    return start;
                }
            }
            growHeap();
        }
    }

    /**
     * Free a block previously returned by allocate().
     * Freeing kNullAddr is a no-op, matching free(NULL).
     */
    void
    deallocate(SimAddr p)
    {
        if (p == kNullAddr)
            return;
        auto it = live_.find(p);
        upr_assert_msg(it != live_.end(),
                       "free of non-allocated va 0x%llx",
                       (unsigned long long)p);
        ++frees_;
        upr_assert(bytesInUse_.value() >= it->second);
        bytesInUse_.sub(it->second);
        release(p - kHeaderBytes, it->second + kHeaderBytes);
        live_.erase(it);
    }

    /** Size of the live block at @p p; panics if not allocated. */
    Bytes
    blockSize(SimAddr p) const
    {
        auto it = live_.find(p);
        upr_assert(it != live_.end());
        return it->second;
    }

    /** True if @p p is the base of a live allocation. */
    bool isLive(SimAddr p) const { return live_.count(p) != 0; }

    /** Number of live allocations. */
    std::size_t liveCount() const { return live_.size(); }

    /** Statistics group for this heap. */
    const StatGroup &stats() const { return stats_; }

    /** Base virtual address of the heap. */
    SimAddr base() const { return base_; }

  private:
    /** Remove [start, start+n) from the free range at @p it. */
    void
    carve(std::map<SimAddr, Bytes>::iterator it, SimAddr start, Bytes n)
    {
        const SimAddr rbase = it->first;
        const Bytes rsize = it->second;
        free_.erase(it);
        if (start > rbase)
            free_.emplace(rbase, start - rbase);
        const SimAddr tail = start + n;
        if (tail < rbase + rsize)
            free_.emplace(tail, rbase + rsize - tail);
    }

    /** Return [p, p+n) to the free set, coalescing neighbours. */
    void
    release(SimAddr p, Bytes n)
    {
        auto next = free_.lower_bound(p);
        // Coalesce with predecessor.
        if (next != free_.begin()) {
            auto prev = std::prev(next);
            if (prev->first + prev->second == p) {
                p = prev->first;
                n += prev->second;
                free_.erase(prev);
            }
        }
        // Coalesce with successor.
        if (next != free_.end() && p + n == next->first) {
            n += next->second;
            free_.erase(next);
        }
        free_.emplace(p, n);
    }

    /** Double the heap mapping, preserving contents. */
    void
    growHeap()
    {
        const Bytes new_size = mapped_ * 2;
        if (new_size > kMaxSize)
            throw Fault(FaultKind::HeapFull, "volatile heap exhausted");
        backing_.grow(new_size);
        space_.unmap(base_);
        space_.map(base_, new_size, backing_, 0, "vheap");
        release(base_ + mapped_, new_size - mapped_);
        mapped_ = new_size;
    }

    AddressSpace &space_;
    SimAddr base_;
    Bytes mapped_;
    Backing backing_;

    /** Free ranges: base -> size, address ordered. */
    std::map<SimAddr, Bytes> free_;
    /** Live allocations: base -> size. */
    std::map<SimAddr, Bytes> live_;

    StatGroup stats_;
    Counter allocs_;
    Counter frees_;
    Counter bytesInUse_;
};

} // namespace upr

#endif // UPR_MEM_VMALLOC_HH
