#include "compiler/exec_fast.hh"

#include <cstring>

#if defined(__GNUC__) || defined(__clang__)
#define UPR_EXEC_GOTO 1
#else
#define UPR_EXEC_GOTO 0
#endif

namespace upr
{

using namespace ir;

FastExecutor::FastExecutor(Runtime &rt, const LoweredModule &lm,
                           Config config)
    : rt_(rt), mod_(&lm), config_(config), fuelLeft_(config.fuel)
{
    upr_assert_msg(lm.version == rt.version(),
                   "module lowered for %s run against a %s runtime",
                   versionName(lm.version),
                   versionName(rt.version()));
}

FastExecutor::FastExecutor(Runtime &rt, const LoweredModule &lm)
    : FastExecutor(rt, lm, [&rt] {
          Config c;
          c.tier = rt.config().execTier;
          return c;
      }())
{
}

template <typename T>
T
FastExecutor::nativeRead(Frame &f, SimAddr va)
{
    // Single compare: winLim is size - 8 of a valid window, and an
    // invalid window's base (kNoWindow) puts every off past it.
    static_assert(sizeof(T) == 8, "the IR only moves 8-byte values");
    const Bytes off = va - f.winBase;
    if (off <= f.winLim) {
        T value;
        std::memcpy(&value, f.winData + off, sizeof(T));
        return value;
    }
    return nativeReadSlow<T>(f, va);
}

template <typename T>
T
FastExecutor::nativeReadSlow(Frame &f, SimAddr va)
{
    const auto r = rt_.space().rawRegion(va);
    if (r.data && va - r.base + sizeof(T) <= r.size) {
        f.winBase = r.base;
        f.winLim = r.size - sizeof(T);
        f.winData = r.data;
        T value;
        std::memcpy(&value, r.data + (va - r.base), sizeof(T));
        return value;
    }
    // Not plain memory (stage overlay, observers, quarantine, domain
    // tracking) or unmapped: the full path keeps exact semantics.
    return rt_.space().read<T>(va);
}

template <typename T>
void
FastExecutor::nativeWrite(Frame &f, SimAddr va, T value)
{
    static_assert(sizeof(T) == 8, "the IR only moves 8-byte values");
    const Bytes off = va - f.winBase;
    if (off <= f.winLim) {
        std::memcpy(f.winData + off, &value, sizeof(T));
        return;
    }
    nativeWriteSlow<T>(f, va, value);
}

template <typename T>
void
FastExecutor::nativeWriteSlow(Frame &f, SimAddr va, T value)
{
    const auto r = rt_.space().rawRegion(va);
    if (r.data && va - r.base + sizeof(T) <= r.size) {
        f.winBase = r.base;
        f.winLim = r.size - sizeof(T);
        f.winData = r.data;
        std::memcpy(r.data + (va - r.base), &value, sizeof(T));
        return;
    }
    rt_.space().write<T>(va, value);
}

void
FastExecutor::burnBlock(Frame &f, std::uint64_t n)
{
    if (f.fuel < n) {
        // Clamp so instructionCount() reports the full budget, like
        // the Interpreter's count at its per-instruction exhaustion.
        f.fuel = 0;
        throw Fault(FaultKind::BadUsage,
                    "interpreter fuel exhausted (infinite loop?)");
    }
    f.fuel -= n;
}

SimAddr
FastExecutor::fastRa2va(Frame &f, PtrBits p)
{
    // No attach-epoch check: only pool attach/detach moves a pool,
    // no executed op can do either, and the cache dies with the
    // frame, so a valid entry is current for the whole run.
    const PoolId id = PtrRepr::poolOf(p);
    const PoolOffset off = PtrRepr::offsetOf(p);
    if (id == f.cachePool && off < f.cacheSize)
        return f.cacheBase + off;
    // Slow path: the manager raises the typed faults (unknown pool /
    // detached / out of range) and its success refills the cache.
    const SimAddr va = rt_.pools().ra2va(id, off);
    f.cachePool = id;
    f.cacheBase = va - off;
    f.cacheSize = rt_.pools().pool(id).size();
    return va;
}

PoolId
FastExecutor::poolForSlot(std::int64_t slot)
{
    if (slot == 0)
        return config_.pool;
    auto it = txPools_.find(slot);
    if (it != txPools_.end())
        return it->second;
    PoolId id = 0;
    if (rt_.version() == Version::Volatile) {
        // No NVM anywhere: beginTxn is a no-op on any handle.
        id = config_.pool;
    } else {
        const std::string name = "txslot" + std::to_string(slot);
        id = rt_.pools().idByName(name);
        if (id == 0) {
            id = rt_.createPool(
                name, Bytes{16} << 20,
                rt_.pools().pool(config_.pool).engineKind());
        }
    }
    txPools_.emplace(slot, id);
    return id;
}

PtrBits
FastExecutor::fastVa2ra(Frame &f, SimAddr va)
{
    if (f.cacheSize != 0 && va >= f.cacheBase &&
        va - f.cacheBase < f.cacheSize) {
        return PtrRepr::makeRelative(
            f.cachePool, static_cast<PoolOffset>(va - f.cacheBase));
    }
    auto [id, off] = rt_.pools().va2ra(va);
    f.cachePool = id;
    f.cacheBase = va - off;
    f.cacheSize = rt_.pools().pool(id).size();
    return PtrRepr::makeRelative(id, off);
}

template <ExecTier Tier>
SimAddr
FastExecutor::resolveAddr(Frame &f, std::uint64_t bits, AddrMode mode,
                          std::uint64_t site)
{
    switch (mode) {
      case AddrMode::Dynamic:
        // Counted before the null test, like the Interpreter's
        // dynamic path (the check runs; the fault follows it).
        ++f.dynChecks;
        if constexpr (Tier == ExecTier::Model) {
            return rt_.resolveForAccess(bits, site);
        } else {
            if (PtrRepr::isNull(bits)) {
                throw Fault(FaultKind::BadUsage,
                            "dereference of null pointer");
            }
            if (PtrRepr::isRelative(bits))
                return fastRa2va(f, bits);
            return PtrRepr::toVa(bits);
        }
      case AddrMode::Refined:
        if (bits == 0) {
            throw Fault(FaultKind::BadUsage,
                        "null dereference in IR");
        }
        if (PtrRepr::isRelative(bits)) {
            if constexpr (Tier == ExecTier::Model)
                return rt_.ra2va(bits, site);
            else
                return fastRa2va(f, bits);
        }
        return PtrRepr::toVa(bits);
      case AddrMode::StaticConvert:
        if constexpr (Tier == ExecTier::Model)
            return rt_.ra2va(bits, site);
        else
            return fastRa2va(f, bits);
      case AddrMode::Plain:
        break;
    }
    if (bits == 0)
        throw Fault(FaultKind::BadUsage, "null dereference in IR");
    return PtrRepr::toVa(bits);
}

template <ExecTier Tier>
std::uint64_t
FastExecutor::cmpNorm(Frame &f, std::uint64_t bits, CmpMode mode,
                      std::uint64_t site)
{
    if (bits == 0)
        return 0;
    switch (mode) {
      case CmpMode::Dynamic:
        ++f.dynChecks;
        if constexpr (Tier == ExecTier::Model) {
            return rt_.resolveForAccess(bits, site);
        } else {
            if (PtrRepr::isRelative(bits))
                return fastRa2va(f, bits);
            return PtrRepr::toVa(bits);
        }
      case CmpMode::Static:
        if (PtrRepr::isRelative(bits)) {
            if constexpr (Tier == ExecTier::Model)
                return rt_.ra2va(bits, site);
            else
                return fastRa2va(f, bits);
        }
        return bits;
      case CmpMode::Raw:
      case CmpMode::Int:
        break;
    }
    return bits;
}

void
FastExecutor::nativeStorePtr(Frame &f, SimAddr loc_va, PtrBits value)
{
    if (rt_.version() == Version::Explicit) {
        // Object IDs store directly: no conversion, no fault.
        nativeWrite<PtrBits>(f, loc_va, value);
        return;
    }
    // Sw and Hw canonicalize to the destination medium's form and
    // agree on the stored bits; only their (skipped) timing differs.
    const bool dest_nvm = Layout::isNvm(loc_va);
    const PtrForm form = PtrRepr::determineY(value);
    PtrBits out = value;
    if (!PtrRepr::isNull(value)) {
        if (dest_nvm && form == PtrForm::VirtualNvm) {
            out = fastVa2ra(f, PtrRepr::toVa(value));
        } else if (dest_nvm && form == PtrForm::VirtualDram &&
                   rt_.config().strictStoreP) {
            throw Fault(FaultKind::StorePFault,
                        "DRAM pointer stored into NVM");
        } else if (!dest_nvm && form == PtrForm::Relative) {
            out = PtrRepr::fromVa(fastRa2va(f, value));
        }
    }
    nativeWrite<PtrBits>(f, loc_va, out);
}

template <ExecTier Tier>
void
FastExecutor::execStoreP(Frame &f, std::uint64_t value,
                         SimAddr dest_va, const LoweredInst &in)
{
    const std::uint64_t site = in.site + 1;
    switch (in.storep) {
      case StorePMode::Raw:
        if constexpr (Tier == ExecTier::Model)
            rt_.storeData<PtrBits>(dest_va, value);
        else
            nativeWrite<PtrBits>(f, dest_va, value);
        return;
      case StorePMode::Dynamic:
        f.dynChecks += (in.destDynamic ? 1 : 0) +
                       (in.valueDynamic ? 1 : 0);
        if constexpr (Tier == ExecTier::Model)
            rt_.storePtr(dest_va, value, site);
        else
            nativeStorePtr(f, dest_va, value);
        return;
      case StorePMode::Static:
        break;
    }
    // Fully static: the compiler planted the exact conversion.
    PtrBits out = value;
    const bool dest_nvm = Layout::isNvm(dest_va);
    if (value != 0) {
        const PtrForm form = PtrRepr::determineY(value);
        if (dest_nvm && form == PtrForm::VirtualNvm) {
            if constexpr (Tier == ExecTier::Model)
                out = rt_.va2ra(PtrRepr::toVa(value), site);
            else
                out = fastVa2ra(f, PtrRepr::toVa(value));
        } else if (!dest_nvm && form == PtrForm::Relative) {
            if constexpr (Tier == ExecTier::Model)
                out = PtrRepr::fromVa(rt_.ra2va(value, site));
            else
                out = PtrRepr::fromVa(fastRa2va(f, value));
        } else if (dest_nvm && form == PtrForm::VirtualDram &&
                   in.destElided && rt_.config().strictStoreP) {
            // The destination check was elided, not proved away:
            // keep the dynamic path's strict storeP fault.
            throw Fault(FaultKind::StorePFault,
                        "DRAM pointer stored into NVM");
        }
    }
    if constexpr (Tier == ExecTier::Model)
        rt_.storeData<PtrBits>(dest_va, out);
    else
        nativeWrite<PtrBits>(f, dest_va, out);
}

namespace
{

/** ptrAddBytes minus the timing model (same wrap fault). */
PtrBits
nativeAddBytes(PtrBits p, std::int64_t delta)
{
    if (PtrRepr::isRelative(p)) {
        const std::int64_t off =
            static_cast<std::int64_t>(PtrRepr::offsetOf(p)) + delta;
        if (off < 0 || off > 0xffffffffLL) {
            throw Fault(FaultKind::OffsetOutOfPool,
                        "pointer arithmetic wraps the 32-bit offset");
        }
    }
    return PtrRepr::addBytes(p, delta);
}

} // namespace

template <ExecTier Tier>
std::uint64_t
FastExecutor::exec(const LoweredFunction &lf,
                   std::vector<std::uint64_t> &regs,
                   std::uint32_t depth)
{
    if (depth >= config_.maxDepth)
        throw Fault(FaultKind::BadUsage, "IR call depth exceeded");

    const LoweredInst *const code = lf.code.data();
    const PhiMove *const moves = lf.movePool.data();
    // Hoisted data pointer: regs never reallocates inside a frame,
    // but the compiler cannot prove that across opaque runtime calls.
    std::uint64_t *const R = regs.data();
    std::vector<SimAddr> allocas;
    std::uint64_t ret_value = 0;
    std::uint32_t pc = 0;
    std::uint32_t blockEnd = 0;
    const LoweredInst *in = nullptr;

    // The frame's hot state (exec_fast.hh Frame): the executor's
    // members hold the truth only between frames; within one, fuel
    // and the check count live here and flush at every exit below.
    Frame f;
    f.fuel = fuelLeft_;

    // Fuel is batched: one subtraction per block entered covers the
    // edge's phi moves (one each, like the Interpreter's per-phi
    // burn) and every non-phi instruction of the block — blocks only
    // exit at the end, via their terminator, or by throwing, and the
    // catch below refunds the unexecuted tail of a throwing block.
    auto take_edge = [&](std::uint32_t mb, std::uint32_t me,
                         std::uint32_t target, std::uint32_t len) {
        pc = target;
        blockEnd = target; // nothing of the new block executed yet
        burnBlock(f, (me - mb) + len);
        blockEnd = target + len;
        const std::uint32_t n = me - mb;
        if (n == 1) {
            // Single move: trivially parallel, no scratch needed.
            R[moves[mb].dst] = R[moves[mb].src];
        } else if (n != 0) {
            // Parallel-copy semantics: read all, then write all.
            if (phiScratch_.size() < n)
                phiScratch_.resize(n);
            for (std::uint32_t m = 0; m < n; ++m)
                phiScratch_[m] = R[moves[mb + m].src];
            for (std::uint32_t m = 0; m < n; ++m)
                R[moves[mb + m].dst] = phiScratch_[m];
        }
    };

    // Per-op bodies shared by the solo handlers and the fused
    // superinstructions (exec_lower.hh ExecOp): a fused handler runs
    // two bodies back to back — identical work, identical order,
    // identical Model-tier runtime calls — with one dispatch.
    auto do_load = [&](const LoweredInst &ld) {
        const SimAddr va =
            resolveAddr<Tier>(f, R[ld.a], ld.addr, ld.site);
        if constexpr (Tier == ExecTier::Model) {
            R[ld.result] = ld.type == Type::Ptr
                ? rt_.loadPtr(va)
                : rt_.loadData<std::uint64_t>(va);
        } else {
            R[ld.result] = nativeRead<std::uint64_t>(f, va);
        }
    };
    auto do_store = [&](const LoweredInst &st) {
        const SimAddr va =
            resolveAddr<Tier>(f, R[st.b], st.addr, st.site);
        ScopedTxnLogHint hint(rt_, st.logHint);
        if constexpr (Tier == ExecTier::Model)
            rt_.storeData<std::uint64_t>(va, R[st.a]);
        else
            nativeWrite<std::uint64_t>(f, va, R[st.a]);
    };
    auto do_storep = [&](const LoweredInst &sp) {
        const SimAddr va =
            resolveAddr<Tier>(f, R[sp.b], sp.addr, sp.site);
        ScopedTxnLogHint hint(rt_, sp.logHint);
        execStoreP<Tier>(f, R[sp.a], va, sp);
    };
    auto do_gep = [&](const LoweredInst &g) {
        if constexpr (Tier == ExecTier::Model) {
            R[g.result] =
                rt_.ptrAddBytes(R[g.a], g.imm, g.site);
        } else {
            R[g.result] = nativeAddBytes(R[g.a], g.imm);
        }
    };
    auto do_add = [&](const LoweredInst &ad) {
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().tick(1);
        R[ad.result] = R[ad.a] + R[ad.b];
    };

    try {
        burnBlock(f, lf.entryFuel);
        blockEnd = lf.entryFuel;

#if UPR_EXEC_GOTO
    // Direct threading: one indirect jump per instruction, no
    // bounds-checked switch. Label order must match ExecOp.
    static const void *const kOpLabels[] = {
        &&op_Const,         &&op_Alloca,        &&op_Malloc,
        &&op_Pmalloc,       &&op_Free,          &&op_Pfree,
        &&op_Load,          &&op_Store,         &&op_StoreP,
        &&op_Gep,           &&op_PtrToInt,      &&op_IntToPtr,
        &&op_Eq,            &&op_Lt,            &&op_Add,
        &&op_Sub,           &&op_Mul,           &&op_Br,
        &&op_Jmp,           &&op_Phi,           &&op_Call,
        &&op_Ret,           &&op_TxBegin,       &&op_TxCommit,
        &&op_TxAbort,       &&op_FuseGepLoad,   &&op_FuseLoadLoad,
        &&op_FuseLoadStore, &&op_FuseStoreStore,
        &&op_FuseStoreGep,  &&op_FuseLoadStoreP,
        &&op_FuseAddAdd,
    };
#define UPR_OP(name) op_##name
#define UPR_NEXT()                                                    \
    do {                                                              \
        in = &code[pc++];                                             \
        goto *kOpLabels[static_cast<std::size_t>(in->op)];            \
    } while (0)
    UPR_NEXT();
#else
#define UPR_OP(name) case ExecOp::name
#define UPR_NEXT() continue
    for (;;) {
        in = &code[pc++];
        switch (in->op) {
#endif

    UPR_OP(Const) : {
        R[in->result] = static_cast<std::uint64_t>(in->imm);
        UPR_NEXT();
    }
    UPR_OP(Alloca) : {
        f.dropWindow(); // heap growth can remap or move the backing
        const SimAddr p =
            rt_.mallocBytes(static_cast<Bytes>(in->imm));
        allocas.push_back(p);
        R[in->result] = p;
        UPR_NEXT();
    }
    UPR_OP(Malloc) : {
        f.dropWindow();
        R[in->result] =
            rt_.mallocBytes(static_cast<Bytes>(in->imm));
        UPR_NEXT();
    }
    UPR_OP(Pmalloc) : {
        f.dropWindow();
        R[in->result] = rt_.pmallocBits(
            config_.pool, static_cast<Bytes>(in->imm));
        UPR_NEXT();
    }
    UPR_OP(Free) : {
        f.dropWindow();
        const SimAddr va =
            resolveAddr<Tier>(f, R[in->a], in->addr, in->site);
        rt_.freeBytes(va);
        UPR_NEXT();
    }
    UPR_OP(Pfree) : {
        f.dropWindow();
        rt_.pfreeBits(R[in->a]);
        UPR_NEXT();
    }
    UPR_OP(Load) : {
        do_load(*in);
        UPR_NEXT();
    }
    UPR_OP(Store) : {
        do_store(*in);
        UPR_NEXT();
    }
    UPR_OP(StoreP) : {
        do_storep(*in);
        UPR_NEXT();
    }
    UPR_OP(Gep) : {
        do_gep(*in);
        UPR_NEXT();
    }
    UPR_OP(PtrToInt) : {
        R[in->result] =
            cmpNorm<Tier>(f, R[in->a], in->cmp0, in->site);
        UPR_NEXT();
    }
    UPR_OP(IntToPtr) : {
        R[in->result] = R[in->a];
        UPR_NEXT();
    }
    UPR_OP(Eq) : {
        std::uint64_t a = R[in->a];
        std::uint64_t b = R[in->b];
        if (in->cmp0 != CmpMode::Int)
            a = cmpNorm<Tier>(f, a, in->cmp0, in->site);
        if (in->cmp1 != CmpMode::Int)
            b = cmpNorm<Tier>(f, b, in->cmp1, in->site + 2);
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().tick(1);
        R[in->result] = a == b;
        UPR_NEXT();
    }
    UPR_OP(Lt) : {
        std::uint64_t a = R[in->a];
        std::uint64_t b = R[in->b];
        if (in->cmp0 != CmpMode::Int)
            a = cmpNorm<Tier>(f, a, in->cmp0, in->site);
        if (in->cmp1 != CmpMode::Int)
            b = cmpNorm<Tier>(f, b, in->cmp1, in->site + 2);
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().tick(1);
        R[in->result] = a < b;
        UPR_NEXT();
    }
    UPR_OP(Add) : {
        do_add(*in);
        UPR_NEXT();
    }
    UPR_OP(Sub) : {
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().tick(1);
        R[in->result] = R[in->a] - R[in->b];
        UPR_NEXT();
    }
    UPR_OP(Mul) : {
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().tick(1);
        R[in->result] = R[in->a] * R[in->b];
        UPR_NEXT();
    }
    UPR_OP(Br) : {
        const bool taken = R[in->a] != 0;
        if constexpr (Tier == ExecTier::Model)
            rt_.machine().branch(in->site, taken);
        if (taken)
            take_edge(in->m0Begin, in->m0End, in->target0, in->len0);
        else
            take_edge(in->m1Begin, in->m1End, in->target1, in->len1);
        UPR_NEXT();
    }
    UPR_OP(Jmp) : {
        take_edge(in->m0Begin, in->m0End, in->target0, in->len0);
        UPR_NEXT();
    }
    UPR_OP(Phi) : {
        upr_panic("phi in lowered code");
    }
    UPR_OP(Call) : {
        std::uint64_t rv;
        // Inner scope: a computed goto does not run destructors, so
        // every nontrivial local must die before UPR_NEXT().
        {
            const LoweredFunction &callee =
                mod_->functions[in->calleeIdx];
            std::vector<std::uint64_t> inner(callee.numRegs, 0);
            const Function &cfn = *callee.fn;
            for (std::uint32_t i = in->argBegin; i < in->argEnd;
                 ++i) {
                inner[cfn.paramValues[i - in->argBegin]] =
                    R[lf.argPool[i]];
            }
            // The callee runs off the members; hand the frame's
            // counts over and take the survivors back. If it
            // throws, reload fuel so this frame's catch refunds
            // only its own tail.
            fuelLeft_ = f.fuel;
            dynChecks_ += f.dynChecks;
            f.dynChecks = 0;
            try {
                rv = exec<Tier>(callee, inner, depth + 1);
            } catch (...) {
                f.fuel = fuelLeft_;
                throw;
            }
            f.fuel = fuelLeft_;
        }
        // The callee may have remapped heap backings (alloca/malloc
        // or its frame teardown); its pools stayed put.
        f.dropWindow();
        if (in->result != kNoValue)
            R[in->result] = rv;
        UPR_NEXT();
    }
    UPR_OP(Ret) : {
        if (in->a != kNoValue)
            ret_value = R[in->a];
        goto fn_done;
    }
    UPR_OP(TxBegin) : {
        // Logging stages/observes writes through the backing, so the
        // raw window must not bypass the space while a txn is open.
        f.dropWindow();
        rt_.beginTxn(poolForSlot(in->imm));
        UPR_NEXT();
    }
    UPR_OP(TxCommit) : {
        // The runtime asserts (process abort) on a commit with no
        // transaction; IR programs get a catchable fault instead.
        if (rt_.version() != Version::Volatile && !rt_.inTxn()) {
            throw Fault(FaultKind::BadUsage,
                        "txcommit with no open transaction");
        }
        f.dropWindow();
        rt_.commitTxn();
        UPR_NEXT();
    }
    UPR_OP(TxAbort) : {
        if (rt_.version() != Version::Volatile && !rt_.inTxn()) {
            throw Fault(FaultKind::BadUsage,
                        "txabort with no open transaction");
        }
        f.dropWindow();
        rt_.abortTxn();
        UPR_NEXT();
    }
    UPR_OP(FuseGepLoad) : {
        do_gep(*in);
        do_load(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseLoadLoad) : {
        do_load(*in);
        do_load(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseLoadStore) : {
        do_load(*in);
        do_store(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseStoreStore) : {
        do_store(*in);
        do_store(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseStoreGep) : {
        do_store(*in);
        do_gep(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseLoadStoreP) : {
        do_load(*in);
        do_storep(code[pc++]);
        UPR_NEXT();
    }
    UPR_OP(FuseAddAdd) : {
        do_add(*in);
        do_add(code[pc++]);
        UPR_NEXT();
    }

#if !UPR_EXEC_GOTO
        }
        upr_panic("unhandled op in lowered code");
    }
#endif
#undef UPR_OP
#undef UPR_NEXT

    } catch (Fault &) {
        // Refund the throwing block's unexecuted tail (pc has moved
        // past every retired instruction, a fused pair's first half
        // included) so instructionCount() counts exactly the
        // instructions that ran, like the Interpreter's.
        fuelLeft_ = f.fuel + (blockEnd - pc);
        dynChecks_ += f.dynChecks;
        throw;
    }

  fn_done:
    fuelLeft_ = f.fuel;
    dynChecks_ += f.dynChecks;
    // Frame teardown: allocas die with the stack frame. The caller's
    // Call handler drops its window, so the remapping is covered.
    for (auto it = allocas.rbegin(); it != allocas.rend(); ++it)
        rt_.freeBytes(*it);
    return ret_value;
}

std::uint64_t
FastExecutor::call(const std::string &name,
                   const std::vector<std::uint64_t> &args)
{
    const auto it = mod_->indexByName.find(name);
    upr_assert_msg(it != mod_->indexByName.end(), "no function @%s",
                   name.c_str());
    const LoweredFunction &lf = mod_->functions[it->second];
    upr_assert_msg(args.size() == lf.fn->paramTypes.size(),
                   "call @%s: bad argument count", name.c_str());

    std::vector<std::uint64_t> regs(lf.numRegs, 0);
    for (std::size_t i = 0; i < args.size(); ++i)
        regs[lf.fn->paramValues[i]] = args[i];

    // Tally dispatches (faulting runs included) into the exec group.
    const std::uint64_t start = instructionCount();
    struct Tally
    {
        const FastExecutor &e;
        std::uint64_t start;
        ~Tally()
        {
            Counter &c = e.config_.tier == ExecTier::Model
                ? execCounters().modelDispatches
                : execCounters().nativeDispatches;
            c.add(e.instructionCount() - start);
        }
    } tally{*this, start};

    return config_.tier == ExecTier::Model
        ? exec<ExecTier::Model>(lf, regs, 0)
        : exec<ExecTier::Native>(lf, regs, 0);
}

namespace
{

struct TierOutcome
{
    std::uint64_t result;
    std::uint64_t checks;
    std::uint64_t insts;
};

TierOutcome
runPlanTier(const Module &mod, const CheckPlan &plan,
            const std::string &entry,
            const std::vector<std::uint64_t> &args, ExecTier tier)
{
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    cfg.execTier = tier;
    Runtime rt(cfg);
    FastExecutor::Config xcfg;
    xcfg.pool = rt.createPool("elide", 32 << 20);
    xcfg.tier = tier;
    const LoweredModule lm = lowerModule(mod, plan, rt.version());
    FastExecutor ex(rt, lm, xcfg);
    const std::uint64_t r = ex.call(entry, args);
    return TierOutcome{r, ex.dynamicCheckCount(),
                       ex.instructionCount()};
}

} // namespace

ElisionValidation
validateElisionTier(const Module &mod, const CheckPlan &before,
                    const CheckPlan &after, const std::string &entry,
                    const std::vector<std::uint64_t> &args,
                    ExecTier tier)
{
    const TierOutcome b = runPlanTier(mod, before, entry, args, tier);
    const TierOutcome a = runPlanTier(mod, after, entry, args, tier);
    ElisionValidation v;
    v.resultBefore = b.result;
    v.resultAfter = a.result;
    v.checksBefore = b.checks;
    v.checksAfter = a.checks;
    v.bitIdentical = b.result == a.result && b.insts == a.insts;
    return v;
}

} // namespace upr
