#include "compiler/ir.hh"

#include <sstream>

namespace upr::ir
{

const char *
typeName(Type t)
{
    switch (t) {
      case Type::I64:  return "i64";
      case Type::Ptr:  return "ptr";
      case Type::Void: return "void";
    }
    return "?";
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const:    return "const";
      case Op::Alloca:   return "alloca";
      case Op::Malloc:   return "malloc";
      case Op::Pmalloc:  return "pmalloc";
      case Op::Free:     return "free";
      case Op::Pfree:    return "pfree";
      case Op::Load:     return "load";
      case Op::Store:    return "store";
      case Op::StoreP:   return "storep";
      case Op::Gep:      return "gep";
      case Op::PtrToInt: return "ptrtoint";
      case Op::IntToPtr: return "inttoptr";
      case Op::Eq:       return "eq";
      case Op::Lt:       return "lt";
      case Op::Add:      return "add";
      case Op::Sub:      return "sub";
      case Op::Mul:      return "mul";
      case Op::Br:       return "br";
      case Op::Jmp:      return "jmp";
      case Op::Phi:      return "phi";
      case Op::Call:     return "call";
      case Op::Ret:      return "ret";
      case Op::TxBegin:  return "txbegin";
      case Op::TxCommit: return "txcommit";
      case Op::TxAbort:  return "txabort";
    }
    return "?";
}

namespace
{

bool
isTerminator(Op op)
{
    return op == Op::Br || op == Op::Jmp || op == Op::Ret;
}

} // namespace

void
validate(const Function &fn)
{
    upr_assert_msg(!fn.blocks.empty(), "@%s has no blocks",
                   fn.name.c_str());
    for (const Block &b : fn.blocks) {
        upr_assert_msg(!b.insts.empty(),
                       "@%s block '%s' is empty", fn.name.c_str(),
                       b.name.c_str());
        for (std::size_t i = 0; i < b.insts.size(); ++i) {
            const Inst &in = b.insts[i];
            const bool last = (i + 1 == b.insts.size());
            upr_assert_msg(isTerminator(in.op) == last,
                           "@%s '%s': terminator placement wrong",
                           fn.name.c_str(), b.name.c_str());
            for (ValueId v : in.operands) {
                upr_assert_msg(v < fn.numValues(),
                               "@%s: operand out of range",
                               fn.name.c_str());
            }
            if (in.result != kNoValue) {
                upr_assert_msg(in.result < fn.numValues(),
                               "@%s: result out of range",
                               fn.name.c_str());
            }
            if (in.op == Op::Br) {
                upr_assert(in.target0 < fn.blocks.size());
                upr_assert(in.target1 < fn.blocks.size());
                upr_assert(in.operands.size() == 1);
            }
            if (in.op == Op::Jmp)
                upr_assert(in.target0 < fn.blocks.size());
            if (in.op == Op::TxBegin) {
                upr_assert_msg(in.imm >= 0,
                               "@%s: txbegin pool slot negative",
                               fn.name.c_str());
            }
            if (in.op == Op::Phi) {
                upr_assert_msg(in.phiBlocks.size() ==
                               in.operands.size(),
                               "@%s: phi arity mismatch",
                               fn.name.c_str());
                for (BlockId pb : in.phiBlocks)
                    upr_assert(pb < fn.blocks.size());
            }
        }
    }
}

void
validate(const Module &mod)
{
    for (const auto &f : mod.functions) {
        validate(*f);
        // Calls must resolve and agree in arity.
        for (const Block &b : f->blocks) {
            for (const Inst &in : b.insts) {
                if (in.op != Op::Call)
                    continue;
                const Function *callee = mod.find(in.callee);
                upr_assert_msg(callee != nullptr,
                               "call to undefined @%s",
                               in.callee.c_str());
                upr_assert_msg(callee->paramTypes.size() ==
                               in.operands.size(),
                               "call to @%s arity mismatch",
                               in.callee.c_str());
            }
        }
    }
}

namespace
{

std::string
valueRef(const Function &fn, ValueId v)
{
    return "%" + fn.valueNames.at(v);
}

void
printInst(std::ostringstream &os, const Function &fn, const Inst &in)
{
    os << "  ";
    if (in.result != kNoValue)
        os << valueRef(fn, in.result) << " = ";
    switch (in.op) {
      case Op::Const:
        os << "const " << in.imm;
        break;
      case Op::Alloca:
      case Op::Malloc:
      case Op::Pmalloc:
        os << opName(in.op) << ' ' << in.imm;
        break;
      case Op::Free:
      case Op::Pfree:
      case Op::PtrToInt:
      case Op::IntToPtr:
        os << opName(in.op) << ' ' << valueRef(fn, in.operands[0]);
        break;
      case Op::Load:
        os << "load." << typeName(in.type) << ' '
           << valueRef(fn, in.operands[0]);
        break;
      case Op::Store:
      case Op::StoreP:
        os << opName(in.op) << ' ' << valueRef(fn, in.operands[0])
           << ", " << valueRef(fn, in.operands[1]);
        break;
      case Op::Gep:
        os << "gep " << valueRef(fn, in.operands[0]) << ", " << in.imm;
        break;
      case Op::Eq:
      case Op::Lt:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        os << opName(in.op) << ' ' << valueRef(fn, in.operands[0])
           << ", " << valueRef(fn, in.operands[1]);
        break;
      case Op::Br:
        os << "br " << valueRef(fn, in.operands[0]) << ", "
           << fn.blocks[in.target0].name << ", "
           << fn.blocks[in.target1].name;
        break;
      case Op::Jmp:
        os << "jmp " << fn.blocks[in.target0].name;
        break;
      case Op::Phi:
        os << "phi." << typeName(in.type);
        for (std::size_t i = 0; i < in.operands.size(); ++i) {
            os << (i ? ", [" : " [") << fn.blocks[in.phiBlocks[i]].name
               << ", " << valueRef(fn, in.operands[i]) << ']';
        }
        break;
      case Op::Call:
        os << "call @" << in.callee << '(';
        for (std::size_t i = 0; i < in.operands.size(); ++i)
            os << (i ? ", " : "") << valueRef(fn, in.operands[i]);
        os << ')';
        break;
      case Op::Ret:
        os << "ret";
        if (!in.operands.empty())
            os << ' ' << valueRef(fn, in.operands[0]);
        break;
      case Op::TxBegin:
        os << "txbegin " << in.imm;
        break;
      case Op::TxCommit:
      case Op::TxAbort:
        os << opName(in.op);
        break;
    }
    os << '\n';
}

} // namespace

std::string
print(const Function &fn)
{
    std::ostringstream os;
    os << "func @" << fn.name << '(';
    for (std::size_t i = 0; i < fn.paramTypes.size(); ++i) {
        os << (i ? ", " : "") << valueRef(fn, fn.paramValues[i]) << ": "
           << typeName(fn.paramTypes[i]);
    }
    os << ')';
    if (fn.returnType != Type::Void)
        os << " -> " << typeName(fn.returnType);
    os << " {\n";
    for (const Block &b : fn.blocks) {
        os << b.name << ":\n";
        for (const Inst &in : b.insts)
            printInst(os, fn, in);
    }
    os << "}\n";
    return os.str();
}

std::string
print(const Module &mod)
{
    std::string out;
    for (const auto &f : mod.functions) {
        out += print(*f);
        out += '\n';
    }
    return out;
}

} // namespace upr::ir
