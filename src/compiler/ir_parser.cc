#include "compiler/ir_parser.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/fault.hh"

namespace upr::ir
{

namespace
{

[[noreturn]] void
parseError(int line, const std::string &message)
{
    throw Fault(FaultKind::BadUsage,
                "IR parse error at line " + std::to_string(line) +
                ": " + message);
}

/** Whitespace/comma tokenizer keeping punctuation tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            out.push_back(cur);
            cur.clear();
        }
    };
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            flush();
        } else if (c == '(' || c == ')' || c == '[' || c == ']' ||
                   c == '{' || c == '}' || c == ':') {
            flush();
            out.push_back(std::string(1, c));
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return out;
}

Type
parseType(const std::string &t, int line)
{
    if (t == "i64")
        return Type::I64;
    if (t == "ptr")
        return Type::Ptr;
    if (t == "void")
        return Type::Void;
    parseError(line, "unknown type '" + t + "'");
}

/** Parser state for one function. */
struct FnParser
{
    Function fn;
    std::map<std::string, ValueId> valueByName;
    std::map<std::string, BlockId> blockByName;
    int line = 0;

    ValueId
    defineValue(const std::string &name, Type ty)
    {
        if (valueByName.count(name))
            parseError(line, "%" + name + " redefined");
        fn.valueTypes.push_back(ty);
        fn.valueNames.push_back(name);
        const ValueId v = fn.numValues() - 1;
        valueByName.emplace(name, v);
        return v;
    }

    ValueId
    useValue(const std::string &token)
    {
        if (token.empty() || token[0] != '%')
            parseError(line, "expected a %value, got '" + token + "'");
        auto it = valueByName.find(token.substr(1));
        if (it == valueByName.end())
            parseError(line, token + " used before definition");
        return it->second;
    }

    BlockId
    useBlock(const std::string &name)
    {
        auto it = blockByName.find(name);
        if (it == blockByName.end())
            parseError(line, "unknown block '" + name + "'");
        return it->second;
    }
};

std::int64_t
parseImm(const std::string &tok, int line)
{
    try {
        std::size_t pos = 0;
        const long long v = std::stoll(tok, &pos, 0);
        if (pos != tok.size())
            parseError(line, "bad integer '" + tok + "'");
        return v;
    } catch (const std::logic_error &) {
        parseError(line, "bad integer '" + tok + "'");
    }
}

} // namespace

Module
parseModule(const std::string &text)
{
    Module mod;
    std::istringstream is(text);
    std::string raw;
    int line_no = 0;

    FnParser *cur = nullptr;
    std::unique_ptr<FnParser> fp;
    BlockId cur_block = kNoBlock;

    // Pre-pass per function is folded into one pass plus a patch
    // list: phi operands and branch targets may reference names that
    // appear later, so they are resolved when the function closes.
    struct PendingPhiArg
    {
        BlockId block;
        std::size_t inst;
        std::string fromBlock;
        std::string value;
    };
    struct PendingTarget
    {
        BlockId block;
        std::size_t inst;
        std::string name0, name1;
    };
    std::vector<PendingPhiArg> pending_phis;
    std::vector<PendingTarget> pending_targets;

    auto closeFunction = [&] {
        upr_assert(cur != nullptr);
        for (const auto &pt : pending_targets) {
            Inst &in = cur->fn.blocks[pt.block].insts[pt.inst];
            in.target0 = cur->useBlock(pt.name0);
            if (!pt.name1.empty())
                in.target1 = cur->useBlock(pt.name1);
        }
        for (const auto &pp : pending_phis) {
            Inst &in = cur->fn.blocks[pp.block].insts[pp.inst];
            in.phiBlocks.push_back(cur->useBlock(pp.fromBlock));
            in.operands.push_back(cur->useValue(pp.value));
        }
        pending_targets.clear();
        pending_phis.clear();
        validate(cur->fn);
        mod.functions.push_back(
            std::make_unique<Function>(std::move(cur->fn)));
        fp.reset();
        cur = nullptr;
        cur_block = kNoBlock;
    };

    while (std::getline(is, raw)) {
        ++line_no;
        // Strip comments.
        const std::size_t semi = raw.find(';');
        if (semi != std::string::npos)
            raw.resize(semi);
        std::vector<std::string> toks = tokenize(raw);
        if (toks.empty())
            continue;

        if (toks[0] == "func") {
            if (cur)
                parseError(line_no, "nested func");
            fp = std::make_unique<FnParser>();
            cur = fp.get();
            cur->line = line_no;
            // func @name ( %a : ty ... ) [-> ty] {
            std::size_t i = 1;
            if (i >= toks.size() || toks[i][0] != '@')
                parseError(line_no, "expected @name");
            cur->fn.name = toks[i].substr(1);
            ++i;
            if (i >= toks.size() || toks[i] != "(")
                parseError(line_no, "expected (");
            ++i;
            while (i < toks.size() && toks[i] != ")") {
                if (toks[i][0] != '%')
                    parseError(line_no, "expected %param");
                const std::string pname = toks[i].substr(1);
                if (i + 2 >= toks.size() || toks[i + 1] != ":")
                    parseError(line_no, "expected ': type'");
                const Type ty = parseType(toks[i + 2], line_no);
                cur->line = line_no;
                const ValueId v = cur->defineValue(pname, ty);
                cur->fn.paramTypes.push_back(ty);
                cur->fn.paramValues.push_back(v);
                i += 3;
            }
            if (i >= toks.size())
                parseError(line_no, "expected )");
            ++i;
            if (i < toks.size() && toks[i] == "->") {
                cur->fn.returnType = parseType(toks[i + 1], line_no);
                i += 2;
            }
            if (i >= toks.size() || toks[i] != "{")
                parseError(line_no, "expected {");

            // Pre-scan the body for block labels so forward branch
            // targets resolve; labels are lines ending in ':'.
            const auto pos = is.tellg();
            std::string body_line;
            int scan_line = line_no;
            while (std::getline(is, body_line)) {
                ++scan_line;
                const std::size_t sc = body_line.find(';');
                if (sc != std::string::npos)
                    body_line.resize(sc);
                std::vector<std::string> btoks = tokenize(body_line);
                if (btoks.empty())
                    continue;
                if (btoks[0] == "}")
                    break;
                if (btoks.size() == 2 && btoks[1] == ":" &&
                    btoks[0][0] != '%') {
                    cur->fn.blocks.push_back(Block{btoks[0], {}});
                    cur->blockByName.emplace(
                        btoks[0],
                        static_cast<BlockId>(cur->fn.blocks.size() -
                                             1));
                }
            }
            is.clear();
            is.seekg(pos);
            continue;
        }

        if (!cur)
            parseError(line_no, "instruction outside func");
        cur->line = line_no;

        if (toks[0] == "}") {
            closeFunction();
            continue;
        }

        // Block label?
        if (toks.size() == 2 && toks[1] == ":" && toks[0][0] != '%') {
            cur_block = cur->useBlock(toks[0]);
            continue;
        }
        if (cur_block == kNoBlock)
            parseError(line_no, "instruction before first label");

        Block &blk = cur->fn.blocks[cur_block];

        // Result form: "%name = op ..." or bare "op ...".
        std::string result_name;
        std::size_t i = 0;
        if (toks[0][0] == '%') {
            if (toks.size() < 3 || toks[1] != "=")
                parseError(line_no, "expected '='");
            result_name = toks[0].substr(1);
            i = 2;
        }
        const std::string op = toks[i++];
        Inst in{};

        auto finishWithResult = [&](Type ty) {
            in.type = ty;
            if (result_name.empty())
                parseError(line_no, op + " needs a result");
            in.result = cur->defineValue(result_name, ty);
            blk.insts.push_back(in);
        };
        auto finishVoid = [&] {
            if (!result_name.empty())
                parseError(line_no, op + " has no result");
            blk.insts.push_back(in);
        };

        if (op == "const") {
            in.op = Op::Const;
            in.imm = parseImm(toks[i], line_no);
            finishWithResult(Type::I64);
        } else if (op == "alloca" || op == "malloc" ||
                   op == "pmalloc") {
            in.op = op == "alloca" ? Op::Alloca
                    : op == "malloc" ? Op::Malloc
                                     : Op::Pmalloc;
            in.imm = parseImm(toks[i], line_no);
            finishWithResult(Type::Ptr);
        } else if (op == "free" || op == "pfree") {
            in.op = op == "free" ? Op::Free : Op::Pfree;
            in.operands = {cur->useValue(toks[i])};
            finishVoid();
        } else if (op == "load.i64" || op == "load.ptr") {
            in.op = Op::Load;
            in.operands = {cur->useValue(toks[i])};
            finishWithResult(op == "load.ptr" ? Type::Ptr : Type::I64);
        } else if (op == "store" || op == "storep") {
            in.op = op == "store" ? Op::Store : Op::StoreP;
            in.operands = {cur->useValue(toks[i]),
                           cur->useValue(toks[i + 1])};
            finishVoid();
        } else if (op == "gep") {
            in.op = Op::Gep;
            in.operands = {cur->useValue(toks[i])};
            in.imm = parseImm(toks[i + 1], line_no);
            finishWithResult(Type::Ptr);
        } else if (op == "ptrtoint") {
            in.op = Op::PtrToInt;
            in.operands = {cur->useValue(toks[i])};
            finishWithResult(Type::I64);
        } else if (op == "inttoptr") {
            in.op = Op::IntToPtr;
            in.operands = {cur->useValue(toks[i])};
            finishWithResult(Type::Ptr);
        } else if (op == "eq" || op == "lt" || op == "add" ||
                   op == "sub" || op == "mul") {
            in.op = op == "eq"    ? Op::Eq
                    : op == "lt"  ? Op::Lt
                    : op == "add" ? Op::Add
                    : op == "sub" ? Op::Sub
                                  : Op::Mul;
            in.operands = {cur->useValue(toks[i]),
                           cur->useValue(toks[i + 1])};
            finishWithResult(Type::I64);
        } else if (op == "br") {
            in.op = Op::Br;
            in.operands = {cur->useValue(toks[i])};
            pending_targets.push_back(
                {cur_block, blk.insts.size(), toks[i + 1],
                 toks[i + 2]});
            finishVoid();
        } else if (op == "jmp") {
            in.op = Op::Jmp;
            pending_targets.push_back(
                {cur_block, blk.insts.size(), toks[i], ""});
            finishVoid();
        } else if (op == "phi.i64" || op == "phi.ptr") {
            in.op = Op::Phi;
            const Type ty =
                op == "phi.ptr" ? Type::Ptr : Type::I64;
            // [ block , %v ] ...
            const std::size_t inst_idx = blk.insts.size();
            while (i < toks.size()) {
                if (toks[i] != "[")
                    parseError(line_no, "expected [");
                pending_phis.push_back({cur_block, inst_idx,
                                        toks[i + 1], toks[i + 2]});
                if (toks[i + 3] != "]")
                    parseError(line_no, "expected ]");
                i += 4;
            }
            finishWithResult(ty);
        } else if (op == "call" || op == "call.i64" ||
                   op == "call.ptr") {
            in.op = Op::Call;
            if (toks[i][0] != '@')
                parseError(line_no, "expected @callee");
            in.callee = toks[i].substr(1);
            ++i;
            if (i >= toks.size() || toks[i] != "(")
                parseError(line_no, "expected (");
            ++i;
            while (i < toks.size() && toks[i] != ")") {
                in.operands.push_back(cur->useValue(toks[i]));
                ++i;
            }
            if (result_name.empty()) {
                in.type = Type::Void;
                finishVoid();
            } else {
                // Result type: explicit call.i64/call.ptr suffix, or
                // the callee's signature when it parsed earlier.
                Type ty = Type::I64;
                if (op == "call.ptr")
                    ty = Type::Ptr;
                else if (const Function *callee = mod.find(in.callee))
                    ty = callee->returnType;
                finishWithResult(ty);
            }
        } else if (op == "ret") {
            in.op = Op::Ret;
            if (i < toks.size())
                in.operands = {cur->useValue(toks[i])};
            finishVoid();
        } else {
            parseError(line_no, "unknown opcode '" + op + "'");
        }
    }

    if (cur)
        parseError(line_no, "missing closing }");
    validate(mod);
    return mod;
}

} // namespace upr::ir
