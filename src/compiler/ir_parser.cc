#include "compiler/ir_parser.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/fault.hh"
#include "compiler/analysis/verifier.hh"

namespace upr::ir
{

namespace
{

[[noreturn]] void
parseError(int line, int col, const std::string &message)
{
    throw Fault(FaultKind::BadUsage,
                "IR parse error at line " + std::to_string(line) +
                ", col " + std::to_string(col) + ": " + message);
}

/** One token plus the 1-based column it starts at. */
struct Tok
{
    std::string text;
    int col = 0;

    char first() const { return text.empty() ? '\0' : text[0]; }
    bool operator==(const std::string &s) const { return text == s; }
    bool operator!=(const std::string &s) const { return text != s; }
};

/** Whitespace/comma tokenizer keeping punctuation tokens. */
std::vector<Tok>
tokenize(const std::string &line)
{
    std::vector<Tok> out;
    std::string cur;
    int cur_col = 0;
    auto flush = [&] {
        if (!cur.empty()) {
            out.push_back(Tok{cur, cur_col});
            cur.clear();
        }
    };
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        const int col = static_cast<int>(i) + 1;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            flush();
        } else if (c == '(' || c == ')' || c == '[' || c == ']' ||
                   c == '{' || c == '}' || c == ':') {
            flush();
            out.push_back(Tok{std::string(1, c), col});
        } else {
            if (cur.empty())
                cur_col = col;
            cur.push_back(c);
        }
    }
    flush();
    return out;
}

Type
parseType(const Tok &t, int line)
{
    if (t == "i64")
        return Type::I64;
    if (t == "ptr")
        return Type::Ptr;
    if (t == "void")
        return Type::Void;
    parseError(line, t.col, "unknown type '" + t.text + "'");
}

/** Parser state for one function. */
struct FnParser
{
    Function fn;
    std::map<std::string, ValueId> valueByName;
    std::map<std::string, BlockId> blockByName;
    int line = 0;

    ValueId
    defineValue(const Tok &name_tok, Type ty)
    {
        const std::string &name = name_tok.text;
        if (valueByName.count(name))
            parseError(line, name_tok.col, "%" + name + " redefined");
        fn.valueTypes.push_back(ty);
        fn.valueNames.push_back(name);
        const ValueId v = fn.numValues() - 1;
        valueByName.emplace(name, v);
        return v;
    }

    ValueId
    useValue(const Tok &token)
    {
        if (token.first() != '%') {
            parseError(line, token.col,
                       "expected a %value, got '" + token.text + "'");
        }
        auto it = valueByName.find(token.text.substr(1));
        if (it == valueByName.end()) {
            parseError(line, token.col,
                       token.text + " used before definition");
        }
        return it->second;
    }

    BlockId
    useBlock(const Tok &token)
    {
        auto it = blockByName.find(token.text);
        if (it == blockByName.end()) {
            parseError(line, token.col,
                       "unknown block '" + token.text + "'");
        }
        return it->second;
    }
};

std::int64_t
parseImm(const Tok &tok, int line)
{
    try {
        std::size_t pos = 0;
        const long long v = std::stoll(tok.text, &pos, 0);
        if (pos != tok.text.size())
            parseError(line, tok.col, "bad integer '" + tok.text + "'");
        return v;
    } catch (const std::logic_error &) {
        parseError(line, tok.col, "bad integer '" + tok.text + "'");
    }
}

/** Bounds-checked token access. */
const Tok &
at(const std::vector<Tok> &toks, std::size_t i, int line)
{
    if (i >= toks.size()) {
        const int col =
            toks.empty() ? 1 : toks.back().col +
                               static_cast<int>(toks.back().text.size());
        parseError(line, col, "unexpected end of line");
    }
    return toks[i];
}

} // namespace

std::string
nearestOpcode(const std::string &word)
{
    // Every opcode spelling the dispatch chain below accepts.
    static const char *const kOpcodes[] = {
        "const",    "alloca",   "malloc",  "pmalloc",  "free",
        "pfree",    "load.i64", "load.ptr", "store",   "storep",
        "gep",      "ptrtoint", "inttoptr", "eq",      "lt",
        "add",      "sub",      "mul",      "br",      "jmp",
        "phi.i64",  "phi.ptr",  "call",     "call.i64", "call.ptr",
        "ret",      "txbegin",  "txcommit", "txabort",
    };

    // Plain Levenshtein distance, early-bounded by the best so far.
    auto distance = [](const std::string &a, const std::string &b) {
        const std::size_t n = a.size(), m = b.size();
        std::vector<std::size_t> row(m + 1);
        for (std::size_t j = 0; j <= m; ++j)
            row[j] = j;
        for (std::size_t i = 1; i <= n; ++i) {
            std::size_t diag = row[0];
            row[0] = i;
            for (std::size_t j = 1; j <= m; ++j) {
                const std::size_t up = row[j];
                const std::size_t sub =
                    diag + (a[i - 1] == b[j - 1] ? 0 : 1);
                row[j] = std::min(sub,
                                  std::min(up, row[j - 1]) + 1);
                diag = up;
            }
        }
        return row[m];
    };

    // Suggest only a genuinely close miss: distance <= 2, unique
    // winner preferred by first-declared order on ties.
    std::string best;
    std::size_t best_d = 3;
    for (const char *cand : kOpcodes) {
        const std::size_t d = distance(word, cand);
        if (d < best_d) {
            best_d = d;
            best = cand;
        }
    }
    return best_d <= 2 ? best : std::string();
}

Module
parseModule(const std::string &text)
{
    Module mod;
    std::istringstream is(text);
    std::string raw;
    int line_no = 0;

    FnParser *cur = nullptr;
    std::unique_ptr<FnParser> fp;
    BlockId cur_block = kNoBlock;

    // Pre-pass per function is folded into one pass plus a patch
    // list: phi operands and branch targets may reference names that
    // appear later, so they are resolved when the function closes.
    struct PendingPhiArg
    {
        BlockId block;
        std::size_t inst;
        Tok fromBlock;
        Tok value;
        int line;
    };
    struct PendingTarget
    {
        BlockId block;
        std::size_t inst;
        Tok name0, name1;
        int line;
    };
    std::vector<PendingPhiArg> pending_phis;
    std::vector<PendingTarget> pending_targets;

    auto closeFunction = [&] {
        upr_assert(cur != nullptr);
        for (const auto &pt : pending_targets) {
            Inst &in = cur->fn.blocks[pt.block].insts[pt.inst];
            cur->line = pt.line;
            in.target0 = cur->useBlock(pt.name0);
            if (!pt.name1.text.empty())
                in.target1 = cur->useBlock(pt.name1);
        }
        for (const auto &pp : pending_phis) {
            Inst &in = cur->fn.blocks[pp.block].insts[pp.inst];
            cur->line = pp.line;
            in.phiBlocks.push_back(cur->useBlock(pp.fromBlock));
            in.operands.push_back(cur->useValue(pp.value));
        }
        pending_targets.clear();
        pending_phis.clear();
        verifyFunctionOrThrow(cur->fn);
        mod.functions.push_back(
            std::make_unique<Function>(std::move(cur->fn)));
        fp.reset();
        cur = nullptr;
        cur_block = kNoBlock;
    };

    while (std::getline(is, raw)) {
        ++line_no;
        // Strip comments.
        const std::size_t semi = raw.find(';');
        if (semi != std::string::npos)
            raw.resize(semi);
        std::vector<Tok> toks = tokenize(raw);
        if (toks.empty())
            continue;

        if (toks[0] == "func") {
            if (cur)
                parseError(line_no, toks[0].col, "nested func");
            fp = std::make_unique<FnParser>();
            cur = fp.get();
            cur->line = line_no;
            cur->fn.loc = SrcLoc{line_no, toks[0].col};
            // func @name ( %a : ty ... ) [-> ty] {
            std::size_t i = 1;
            if (at(toks, i, line_no).first() != '@')
                parseError(line_no, toks[i].col, "expected @name");
            cur->fn.name = toks[i].text.substr(1);
            ++i;
            if (at(toks, i, line_no) != "(")
                parseError(line_no, toks[i].col, "expected (");
            ++i;
            while (i < toks.size() && toks[i] != ")") {
                if (toks[i].first() != '%')
                    parseError(line_no, toks[i].col, "expected %param");
                const Tok pname{toks[i].text.substr(1), toks[i].col};
                if (i + 2 >= toks.size() || toks[i + 1] != ":") {
                    parseError(line_no,
                               at(toks, i + 1, line_no).col,
                               "expected ': type'");
                }
                const Type ty = parseType(toks[i + 2], line_no);
                cur->line = line_no;
                const ValueId v = cur->defineValue(pname, ty);
                cur->fn.paramTypes.push_back(ty);
                cur->fn.paramValues.push_back(v);
                i += 3;
            }
            if (i >= toks.size()) {
                parseError(line_no,
                           toks.back().col +
                               static_cast<int>(toks.back().text.size()),
                           "expected )");
            }
            ++i;
            if (i < toks.size() && toks[i] == "->") {
                cur->fn.returnType =
                    parseType(at(toks, i + 1, line_no), line_no);
                i += 2;
            }
            if (i >= toks.size() || toks[i] != "{") {
                parseError(line_no,
                           i < toks.size() ? toks[i].col : 1,
                           "expected {");
            }

            // Pre-scan the body for block labels so forward branch
            // targets resolve; labels are lines ending in ':'.
            const auto pos = is.tellg();
            std::string body_line;
            int scan_line = line_no;
            while (std::getline(is, body_line)) {
                ++scan_line;
                const std::size_t sc = body_line.find(';');
                if (sc != std::string::npos)
                    body_line.resize(sc);
                std::vector<Tok> btoks = tokenize(body_line);
                if (btoks.empty())
                    continue;
                if (btoks[0] == "}")
                    break;
                if (btoks.size() == 2 && btoks[1] == ":" &&
                    btoks[0].first() != '%') {
                    Block blk;
                    blk.name = btoks[0].text;
                    blk.loc = SrcLoc{scan_line, btoks[0].col};
                    cur->fn.blocks.push_back(std::move(blk));
                    cur->blockByName.emplace(
                        btoks[0].text,
                        static_cast<BlockId>(cur->fn.blocks.size() -
                                             1));
                }
            }
            is.clear();
            is.seekg(pos);
            continue;
        }

        if (!cur)
            parseError(line_no, toks[0].col, "instruction outside func");
        cur->line = line_no;

        if (toks[0] == "}") {
            closeFunction();
            continue;
        }

        // Block label?
        if (toks.size() == 2 && toks[1] == ":" &&
            toks[0].first() != '%') {
            cur_block = cur->useBlock(toks[0]);
            continue;
        }
        if (cur_block == kNoBlock) {
            parseError(line_no, toks[0].col,
                       "instruction before first label");
        }

        Block &blk = cur->fn.blocks[cur_block];

        // Result form: "%name = op ..." or bare "op ...".
        Tok result_name;
        std::size_t i = 0;
        if (toks[0].first() == '%') {
            if (toks.size() < 3 || toks[1] != "=")
                parseError(line_no, toks[0].col, "expected '='");
            result_name = Tok{toks[0].text.substr(1), toks[0].col};
            i = 2;
        }
        const Tok &op_tok = at(toks, i, line_no);
        const std::string &op = op_tok.text;
        ++i;
        Inst in{};
        in.loc = SrcLoc{line_no, toks[0].col};

        auto finishWithResult = [&](Type ty) {
            in.type = ty;
            if (result_name.text.empty())
                parseError(line_no, op_tok.col, op + " needs a result");
            in.result = cur->defineValue(result_name, ty);
            blk.insts.push_back(in);
        };
        auto finishVoid = [&] {
            if (!result_name.text.empty())
                parseError(line_no, op_tok.col, op + " has no result");
            blk.insts.push_back(in);
        };

        if (op == "const") {
            in.op = Op::Const;
            in.imm = parseImm(at(toks, i, line_no), line_no);
            finishWithResult(Type::I64);
        } else if (op == "alloca" || op == "malloc" ||
                   op == "pmalloc") {
            in.op = op == "alloca" ? Op::Alloca
                    : op == "malloc" ? Op::Malloc
                                     : Op::Pmalloc;
            in.imm = parseImm(at(toks, i, line_no), line_no);
            finishWithResult(Type::Ptr);
        } else if (op == "free" || op == "pfree") {
            in.op = op == "free" ? Op::Free : Op::Pfree;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            finishVoid();
        } else if (op == "load.i64" || op == "load.ptr") {
            in.op = Op::Load;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            finishWithResult(op == "load.ptr" ? Type::Ptr : Type::I64);
        } else if (op == "store" || op == "storep") {
            in.op = op == "store" ? Op::Store : Op::StoreP;
            in.operands = {cur->useValue(at(toks, i, line_no)),
                           cur->useValue(at(toks, i + 1, line_no))};
            finishVoid();
        } else if (op == "gep") {
            in.op = Op::Gep;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            in.imm = parseImm(at(toks, i + 1, line_no), line_no);
            finishWithResult(Type::Ptr);
        } else if (op == "ptrtoint") {
            in.op = Op::PtrToInt;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            finishWithResult(Type::I64);
        } else if (op == "inttoptr") {
            in.op = Op::IntToPtr;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            finishWithResult(Type::Ptr);
        } else if (op == "eq" || op == "lt" || op == "add" ||
                   op == "sub" || op == "mul") {
            in.op = op == "eq"    ? Op::Eq
                    : op == "lt"  ? Op::Lt
                    : op == "add" ? Op::Add
                    : op == "sub" ? Op::Sub
                                  : Op::Mul;
            in.operands = {cur->useValue(at(toks, i, line_no)),
                           cur->useValue(at(toks, i + 1, line_no))};
            finishWithResult(Type::I64);
        } else if (op == "br") {
            in.op = Op::Br;
            in.operands = {cur->useValue(at(toks, i, line_no))};
            pending_targets.push_back(
                {cur_block, blk.insts.size(), at(toks, i + 1, line_no),
                 at(toks, i + 2, line_no), line_no});
            finishVoid();
        } else if (op == "jmp") {
            in.op = Op::Jmp;
            pending_targets.push_back(
                {cur_block, blk.insts.size(), at(toks, i, line_no),
                 Tok{}, line_no});
            finishVoid();
        } else if (op == "phi.i64" || op == "phi.ptr") {
            in.op = Op::Phi;
            const Type ty =
                op == "phi.ptr" ? Type::Ptr : Type::I64;
            // [ block , %v ] ...
            const std::size_t inst_idx = blk.insts.size();
            while (i < toks.size()) {
                if (toks[i] != "[")
                    parseError(line_no, toks[i].col, "expected [");
                pending_phis.push_back({cur_block, inst_idx,
                                        at(toks, i + 1, line_no),
                                        at(toks, i + 2, line_no),
                                        line_no});
                if (at(toks, i + 3, line_no) != "]")
                    parseError(line_no, toks[i + 3].col, "expected ]");
                i += 4;
            }
            finishWithResult(ty);
        } else if (op == "call" || op == "call.i64" ||
                   op == "call.ptr") {
            in.op = Op::Call;
            if (at(toks, i, line_no).first() != '@')
                parseError(line_no, toks[i].col, "expected @callee");
            in.callee = toks[i].text.substr(1);
            ++i;
            if (at(toks, i, line_no) != "(")
                parseError(line_no, toks[i].col, "expected (");
            ++i;
            while (at(toks, i, line_no) != ")") {
                in.operands.push_back(cur->useValue(toks[i]));
                ++i;
            }
            if (result_name.text.empty()) {
                in.type = Type::Void;
                finishVoid();
            } else {
                // Result type: explicit call.i64/call.ptr suffix, or
                // the callee's signature when it parsed earlier.
                Type ty = Type::I64;
                if (op == "call.ptr")
                    ty = Type::Ptr;
                else if (const Function *callee = mod.find(in.callee))
                    ty = callee->returnType;
                finishWithResult(ty);
            }
        } else if (op == "ret") {
            in.op = Op::Ret;
            if (i < toks.size())
                in.operands = {cur->useValue(toks[i])};
            finishVoid();
        } else if (op == "txbegin") {
            in.op = Op::TxBegin;
            in.imm = parseImm(at(toks, i, line_no), line_no);
            if (in.imm < 0) {
                parseError(line_no, toks[i].col,
                           "txbegin pool slot must be >= 0");
            }
            finishVoid();
        } else if (op == "txcommit") {
            in.op = Op::TxCommit;
            finishVoid();
        } else if (op == "txabort") {
            in.op = Op::TxAbort;
            finishVoid();
        } else {
            std::string msg = "unknown opcode '" + op + "'";
            const std::string near = nearestOpcode(op);
            if (!near.empty())
                msg += "; did you mean `" + near + "`?";
            parseError(line_no, op_tok.col, msg);
        }
    }

    if (cur)
        parseError(line_no, 1, "missing closing }");
    verifyModuleOrThrow(mod);
    return mod;
}

} // namespace upr::ir
