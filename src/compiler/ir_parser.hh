/**
 * @file
 * Parser for the textual mini-IR form emitted by ir::print(), so test
 * programs and examples can be written as readable IR text:
 *
 *   func @append(%p: ptr, %n: ptr) {
 *   entry:
 *     %slot = gep %p, 8
 *     storep %n, %slot
 *     ret
 *   }
 *
 * Errors throw Fault{BadUsage} with a line-numbered message.
 */

#ifndef UPR_COMPILER_IR_PARSER_HH
#define UPR_COMPILER_IR_PARSER_HH

#include <string>

#include "compiler/ir.hh"

namespace upr::ir
{

/** Parse a whole module from IR text. */
Module parseModule(const std::string &text);

/**
 * The known opcode spelling closest to @p word (edit distance <= 2),
 * or "" when nothing is close enough to suggest. Drives the parser's
 * "unknown opcode 'txcomit'; did you mean `txcommit`?" diagnostic.
 */
std::string nearestOpcode(const std::string &word);

} // namespace upr::ir

#endif // UPR_COMPILER_IR_PARSER_HH
