#include "compiler/interpreter.hh"

#include <functional>

namespace upr
{

using namespace ir;

namespace
{

/** Runtime hint for a store's proven LogMode. */
TxnLogHint
hintOf(LogMode m)
{
    switch (m) {
      case LogMode::MustLog:             return TxnLogHint::Log;
      case LogMode::ElideFreshAlloc:     return TxnLogHint::ElideFresh;
      case LogMode::ElideDominatedWrite:
        return TxnLogHint::ElideDominated;
    }
    return TxnLogHint::Log;
}

} // namespace

Interpreter::Interpreter(Runtime &rt, const Module &mod,
                         const CheckPlan &plan, Config config)
    : rt_(rt), mod_(mod), plan_(plan), config_(config),
      fuelLeft_(config.fuel)
{
}

void
Interpreter::burnFuel()
{
    if (fuelLeft_ == 0) {
        throw Fault(FaultKind::BadUsage,
                    "interpreter fuel exhausted (infinite loop?)");
    }
    --fuelLeft_;
    ++instCount_;
}

SimAddr
Interpreter::resolveAddr(std::uint64_t bits, bool dynamic,
                         bool static_convert, bool refined,
                         std::uint64_t site)
{
    if (rt_.version() == Version::Volatile) {
        // Native compilation: no UPR pass ran; every pointer is a
        // plain virtual address.
        if (bits == 0)
            throw Fault(FaultKind::BadUsage, "null dereference in IR");
        return PtrRepr::toVa(bits);
    }
    if (dynamic) {
        ++dynChecks_;
        return rt_.resolveForAccess(bits, site);
    }
    if (refined) {
        // Checked earlier in this block (tail-duplication model):
        // the form is known on this path, only the conversion runs.
        if (bits == 0)
            throw Fault(FaultKind::BadUsage, "null dereference in IR");
        if (PtrRepr::isRelative(bits))
            return rt_.ra2va(bits, site);
        return PtrRepr::toVa(bits);
    }
    if (static_convert) {
        // The compiler proved the value is relative: it plants the
        // conversion with no check.
        return rt_.ra2va(bits, site);
    }
    // Statically known virtual address.
    if (bits == 0)
        throw Fault(FaultKind::BadUsage, "null dereference in IR");
    return PtrRepr::toVa(bits);
}

std::uint64_t
Interpreter::cmpOperand(std::uint64_t bits, bool dynamic,
                        std::uint64_t site)
{
    if (bits == 0)
        return 0;
    if (rt_.version() == Version::Volatile)
        return bits;
    if (dynamic) {
        ++dynChecks_;
        return rt_.resolveForAccess(bits, site);
    }
    if (PtrRepr::isRelative(bits))
        return rt_.ra2va(bits, site);
    return bits;
}

void
Interpreter::execStoreP(std::uint64_t value_bits, SimAddr dest_va,
                        const InstPlan &plan, std::uint64_t site)
{
    if (rt_.version() == Version::Volatile) {
        rt_.storeData<PtrBits>(dest_va, value_bits);
        return;
    }
    if (plan.destDynamic || plan.valueDynamic) {
        // Dynamic pointerAssignment through the runtime (counts its
        // own checks there).
        dynChecks_ += (plan.destDynamic ? 1 : 0) +
                      (plan.valueDynamic ? 1 : 0);
        rt_.storePtr(dest_va, value_bits, site);
        return;
    }

    // Fully static: the compiler planted the exact conversion.
    PtrBits out = value_bits;
    const bool dest_nvm = Layout::isNvm(dest_va);
    if (value_bits != 0 && rt_.version() != Version::Volatile) {
        const PtrForm form = PtrRepr::determineY(value_bits);
        if (dest_nvm && form == PtrForm::VirtualNvm) {
            out = rt_.va2ra(PtrRepr::toVa(value_bits), site);
        } else if (!dest_nvm && form == PtrForm::Relative) {
            out = PtrRepr::fromVa(rt_.ra2va(value_bits, site));
        } else if (dest_nvm && form == PtrForm::VirtualDram &&
                   plan.destElided && rt_.config().strictStoreP) {
            // The destination check was elided, not proved away:
            // keep the dynamic path's strict storeP fault.
            throw Fault(FaultKind::StorePFault,
                        "DRAM pointer stored into NVM");
        }
    }
    rt_.storeData<PtrBits>(dest_va, out);
}

PoolId
Interpreter::poolForSlot(std::int64_t slot)
{
    if (slot == 0)
        return config_.pool;
    auto it = txPools_.find(slot);
    if (it != txPools_.end())
        return it->second;
    PoolId id = 0;
    if (rt_.version() == Version::Volatile) {
        // No NVM anywhere: beginTxn is a no-op on any handle.
        id = config_.pool;
    } else {
        const std::string name = "txslot" + std::to_string(slot);
        id = rt_.pools().idByName(name);
        if (id == 0) {
            id = rt_.createPool(
                name, Bytes{16} << 20,
                rt_.pools().pool(config_.pool).engineKind());
        }
    }
    txPools_.emplace(slot, id);
    return id;
}

std::uint64_t
Interpreter::call(const std::string &name,
                  const std::vector<std::uint64_t> &args)
{
    const Function &fn = mod_.get(name);
    upr_assert_msg(args.size() == fn.paramTypes.size(),
                   "call @%s: bad argument count", name.c_str());
    Frame frame;
    frame.fn = &fn;
    frame.regs.assign(fn.numValues(), 0);
    for (std::size_t i = 0; i < args.size(); ++i)
        frame.regs[fn.paramValues[i]] = args[i];
    return exec(frame, 0);
}

std::uint64_t
Interpreter::exec(Frame &frame, std::uint32_t depth)
{
    if (depth >= config_.maxDepth) {
        throw Fault(FaultKind::BadUsage, "IR call depth exceeded");
    }
    const Function &fn = *frame.fn;
    const FunctionPlan &fplan = plan_.perFunction.at(fn.name);

    BlockId cur = 0;
    BlockId prev = kNoBlock;
    std::uint64_t ret_value = 0;

    for (;;) {
        const Block &block = fn.blocks[cur];

        // Phis evaluate first, atomically, from the predecessor.
        std::size_t idx = 0;
        std::vector<std::pair<ValueId, std::uint64_t>> phi_writes;
        while (idx < block.insts.size() &&
               block.insts[idx].op == Op::Phi) {
            const Inst &in = block.insts[idx];
            burnFuel();
            bool matched = false;
            for (std::size_t i = 0; i < in.phiBlocks.size(); ++i) {
                if (in.phiBlocks[i] == prev) {
                    phi_writes.emplace_back(
                        in.result, frame.regs[in.operands[i]]);
                    matched = true;
                    break;
                }
            }
            upr_assert_msg(matched, "@%s: phi has no edge from "
                           "predecessor", fn.name.c_str());
            ++idx;
        }
        for (auto [r, v] : phi_writes)
            frame.regs[r] = v;

        for (; idx < block.insts.size(); ++idx) {
            const Inst &in = block.insts[idx];
            const InstPlan &ip = fplan.at(cur, idx);
            burnFuel();
            const std::uint64_t site =
                (static_cast<std::uint64_t>(cur) << 20) ^ (idx << 4) ^
                std::hash<std::string>{}(fn.name);

            switch (in.op) {
              case Op::Const:
                frame.regs[in.result] =
                    static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Alloca: {
                const SimAddr p = rt_.mallocBytes(
                    static_cast<Bytes>(in.imm));
                frame.allocas.push_back(p);
                frame.regs[in.result] = p;
                break;
              }
              case Op::Malloc:
                frame.regs[in.result] = rt_.mallocBytes(
                    static_cast<Bytes>(in.imm));
                break;
              case Op::Pmalloc:
                frame.regs[in.result] = rt_.pmallocBits(
                    config_.pool, static_cast<Bytes>(in.imm));
                break;
              case Op::Free: {
                const SimAddr va = resolveAddr(
                    frame.regs[in.operands[0]], ip.addrDynamic,
                    ip.addrStaticConvert, ip.addrRefined, site);
                rt_.freeBytes(va);
                break;
              }
              case Op::Pfree:
                rt_.pfreeBits(frame.regs[in.operands[0]]);
                break;
              case Op::Load: {
                const SimAddr va = resolveAddr(
                    frame.regs[in.operands[0]], ip.addrDynamic,
                    ip.addrStaticConvert, ip.addrRefined, site);
                if (in.type == Type::Ptr) {
                    frame.regs[in.result] = rt_.loadPtr(va);
                } else {
                    frame.regs[in.result] =
                        rt_.loadData<std::uint64_t>(va);
                }
                break;
              }
              case Op::Store: {
                const SimAddr va = resolveAddr(
                    frame.regs[in.operands[1]], ip.addrDynamic,
                    ip.addrStaticConvert, ip.addrRefined, site);
                ScopedTxnLogHint hint(rt_, hintOf(ip.logMode));
                rt_.storeData<std::uint64_t>(
                    va, frame.regs[in.operands[0]]);
                break;
              }
              case Op::StoreP: {
                const SimAddr va = resolveAddr(
                    frame.regs[in.operands[1]], ip.addrDynamic,
                    ip.addrStaticConvert, ip.addrRefined, site);
                ScopedTxnLogHint hint(rt_, hintOf(ip.logMode));
                execStoreP(frame.regs[in.operands[0]], va, ip,
                           site + 1);
                break;
              }
              case Op::Gep:
                frame.regs[in.result] = rt_.ptrAddBytes(
                    frame.regs[in.operands[0]], in.imm, site);
                break;
              case Op::PtrToInt:
                frame.regs[in.result] = cmpOperand(
                    frame.regs[in.operands[0]], ip.cmp0Dynamic,
                    site);
                break;
              case Op::IntToPtr:
                frame.regs[in.result] = frame.regs[in.operands[0]];
                break;
              case Op::Eq:
              case Op::Lt: {
                std::uint64_t a = frame.regs[in.operands[0]];
                std::uint64_t b = frame.regs[in.operands[1]];
                // Pointer sides normalize to virtual addresses; the
                // plan says which sides still need dynamic checks.
                if (fn.valueTypes[in.operands[0]] == Type::Ptr)
                    a = cmpOperand(a, ip.cmp0Dynamic, site);
                if (fn.valueTypes[in.operands[1]] == Type::Ptr)
                    b = cmpOperand(b, ip.cmp1Dynamic, site + 2);
                rt_.machine().tick(1);
                frame.regs[in.result] =
                    in.op == Op::Eq ? (a == b) : (a < b);
                break;
              }
              case Op::Add:
                rt_.machine().tick(1);
                frame.regs[in.result] = frame.regs[in.operands[0]] +
                                        frame.regs[in.operands[1]];
                break;
              case Op::Sub:
                rt_.machine().tick(1);
                frame.regs[in.result] = frame.regs[in.operands[0]] -
                                        frame.regs[in.operands[1]];
                break;
              case Op::Mul:
                rt_.machine().tick(1);
                frame.regs[in.result] = frame.regs[in.operands[0]] *
                                        frame.regs[in.operands[1]];
                break;
              case Op::Br: {
                const bool taken = frame.regs[in.operands[0]] != 0;
                rt_.machine().branch(site, taken);
                prev = cur;
                cur = taken ? in.target0 : in.target1;
                goto next_block;
              }
              case Op::Jmp:
                prev = cur;
                cur = in.target0;
                goto next_block;
              case Op::Phi:
                upr_panic("phi after non-phi instruction");
              case Op::Call: {
                const Function &callee = mod_.get(in.callee);
                Frame inner;
                inner.fn = &callee;
                inner.regs.assign(callee.numValues(), 0);
                for (std::size_t i = 0; i < in.operands.size(); ++i) {
                    inner.regs[callee.paramValues[i]] =
                        frame.regs[in.operands[i]];
                }
                const std::uint64_t rv = exec(inner, depth + 1);
                if (in.result != kNoValue)
                    frame.regs[in.result] = rv;
                break;
              }
              case Op::TxBegin:
                rt_.beginTxn(poolForSlot(in.imm));
                break;
              case Op::TxCommit:
                // The runtime asserts (process abort) on a commit
                // with no transaction; IR programs get a catchable
                // fault instead.
                if (rt_.version() != Version::Volatile &&
                    !rt_.inTxn()) {
                    throw Fault(FaultKind::BadUsage,
                                "txcommit with no open transaction");
                }
                rt_.commitTxn();
                break;
              case Op::TxAbort:
                if (rt_.version() != Version::Volatile &&
                    !rt_.inTxn()) {
                    throw Fault(FaultKind::BadUsage,
                                "txabort with no open transaction");
                }
                rt_.abortTxn();
                break;
              case Op::Ret:
                if (!in.operands.empty())
                    ret_value = frame.regs[in.operands[0]];
                goto done;
            }
        }
        upr_panic("@%s: block '%s' fell through", fn.name.c_str(),
                  block.name.c_str());
      next_block:;
    }

  done:
    // Frame teardown: allocas die with the stack frame.
    for (auto it = frame.allocas.rbegin(); it != frame.allocas.rend();
         ++it) {
        rt_.freeBytes(*it);
    }
    return ret_value;
}

} // namespace upr
