/**
 * @file
 * The pointer-kind lattice of the compiler-based method (Sec V-B).
 *
 *              Unknown  (top: needs a dynamic check)
 *             /   |   \
 *        VaDram VaNvm  Ra
 *             \   |   /
 *              NoInfo  (bottom: not yet computed)
 *
 * Seeds: alloca/malloc produce VaDram; pmalloc produces Ra (pmalloc
 * returns a relative address per its definition); inttoptr and
 * loaded-from-memory pointers are Unknown. Dataflow joins move up
 * the lattice only, so the fixpoint terminates.
 */

#ifndef UPR_COMPILER_POINTER_KIND_HH
#define UPR_COMPILER_POINTER_KIND_HH

namespace upr
{

/** Static knowledge about a pointer value's representation. */
enum class PtrKind : unsigned char
{
    NoInfo = 0,  //!< bottom: not yet computed / dead
    VaDram,      //!< definitely a DRAM virtual address
    VaNvm,       //!< definitely an NVM virtual address
    Ra,          //!< definitely a relative address
    Unknown,     //!< top: could be anything; dynamic check required
};

/** Lattice join (least upper bound). */
constexpr PtrKind
joinKind(PtrKind a, PtrKind b)
{
    if (a == PtrKind::NoInfo)
        return b;
    if (b == PtrKind::NoInfo)
        return a;
    if (a == b)
        return a;
    return PtrKind::Unknown;
}

/** Printable name. */
constexpr const char *
kindName(PtrKind k)
{
    switch (k) {
      case PtrKind::NoInfo:  return "noinfo";
      case PtrKind::VaDram:  return "va-dram";
      case PtrKind::VaNvm:   return "va-nvm";
      case PtrKind::Ra:      return "ra";
      case PtrKind::Unknown: return "unknown";
    }
    return "?";
}

/** True if the kind is statically determined (no check needed). */
constexpr bool
isStaticKind(PtrKind k)
{
    return k == PtrKind::VaDram || k == PtrKind::VaNvm ||
           k == PtrKind::Ra;
}

} // namespace upr

#endif // UPR_COMPILER_POINTER_KIND_HH
