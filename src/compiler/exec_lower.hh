/**
 * @file
 * Pre-lowering for the direct-threaded execution tier (paper Sec
 * VII-B throughput; see docs/PERFORMANCE.md §execution-tiers).
 *
 * lowerModule() compiles each Function once into a flat array of
 * pre-decoded LoweredInsts: operand slots, the interpreter's exact
 * per-instruction site id, flat branch targets, per-edge phi moves,
 * and — the point of the exercise — the CheckPlan verdict for every
 * site baked into an executable mode:
 *
 *   - sites uprlint proved safe (flow-proved-kind, available-check,
 *     dest-implied-by-addr) lower to unchecked conversions or plain
 *     loads/stores;
 *   - only needs-dynamic-check sites keep the guard.
 *
 * The Version is baked at lower time too (Volatile collapses every
 * mode to the unchecked form, exactly as the Interpreter's version
 * test would at each instruction), so the executor's dispatch loop
 * never re-derives a plan decision. FastExecutor (exec_fast.hh) runs
 * the result in either tier.
 */

#ifndef UPR_COMPILER_EXEC_LOWER_HH
#define UPR_COMPILER_EXEC_LOWER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "compiler/check_insertion.hh"
#include "compiler/ir.hh"
#include "core/runtime.hh"
#include "obs/metrics.hh"

namespace upr
{

/** How a lowered address operand resolves (plan × version, baked). */
enum class AddrMode : std::uint8_t
{
    /** Statically virtual: null check + toVa, no guard. */
    Plain,
    /** Retained guard: the full dynamic resolveForAccess path. */
    Dynamic,
    /** Checked earlier on every path: convert per form, no guard. */
    Refined,
    /** Proved relative: the planted ra2va conversion alone. */
    StaticConvert,
};

/** How a comparison/cast pointer operand normalizes. */
enum class CmpMode : std::uint8_t
{
    /** Not a pointer operand: bits pass through untouched. */
    Int,
    /** Volatile version: raw bits, no normalization or guard. */
    Raw,
    /** Proved kind: convert if relative, no guard. */
    Static,
    /** Retained guard: dynamic determineY + conversion. */
    Dynamic,
};

/** How a lowered storep executes. */
enum class StorePMode : std::uint8_t
{
    /** Volatile version: store the raw bits. */
    Raw,
    /** At least one retained guard: the runtime storePtr path. */
    Dynamic,
    /** Fully static: the planted canonicalization sequence. */
    Static,
};

/**
 * Executable opcode: the ir::Op set (same order, so lowering is a
 * cast) plus fused superinstructions. Fusion rewrites the first
 * instruction of an adjacent pair to a fused opcode whose handler
 * executes both bodies — the exact same work in the exact same order,
 * one dispatch instead of two. The second instruction stays in the
 * code array (the handler reads its operands) but is never dispatched;
 * that is always legal because branch targets are block starts, so
 * nothing can jump between the two.
 */
enum class ExecOp : std::uint8_t
{
    Const,
    Alloca,
    Malloc,
    Pmalloc,
    Free,
    Pfree,
    Load,
    Store,
    StoreP,
    Gep,
    PtrToInt,
    IntToPtr,
    Eq,
    Lt,
    Add,
    Sub,
    Mul,
    Br,
    Jmp,
    Phi,
    Call,
    Ret,
    TxBegin,
    TxCommit,
    TxAbort,
    /** gep then load (pointer walks: chase, list traversal). */
    FuseGepLoad,
    /** back-to-back loads (readback scans). */
    FuseLoadLoad,
    /** load then plain store (copy/shift kernels). */
    FuseLoadStore,
    /** back-to-back plain stores (fill kernels). */
    FuseStoreStore,
    /** store then gep (streaming with a moving pointer). */
    FuseStoreGep,
    /** load then storep (pointer republishing). */
    FuseLoadStoreP,
    /** back-to-back adds (reduction tails). */
    FuseAddAdd,
};

static_assert(static_cast<int>(ExecOp::Load) ==
                      static_cast<int>(ir::Op::Load) &&
                  static_cast<int>(ExecOp::Br) ==
                      static_cast<int>(ir::Op::Br) &&
                  static_cast<int>(ExecOp::Ret) ==
                      static_cast<int>(ir::Op::Ret) &&
                  static_cast<int>(ExecOp::TxBegin) ==
                      static_cast<int>(ir::Op::TxBegin) &&
                  static_cast<int>(ExecOp::TxAbort) ==
                      static_cast<int>(ir::Op::TxAbort),
              "ExecOp must mirror ir::Op up to TxAbort");

/** One phi-edge register move (parallel-copy semantics). */
struct PhiMove
{
    std::uint32_t dst;
    std::uint32_t src;
};

/**
 * One pre-decoded instruction. Operand slots, the site id, branch
 * targets (as indices into the owning function's flat code array),
 * phi-edge move ranges and all plan verdicts are resolved at lower
 * time; the executor only reads this struct.
 */
struct LoweredInst
{
    ExecOp op;
    ir::Type type = ir::Type::Void;
    std::uint32_t result = ir::kNoValue;
    /** First value operand (value for store/storep; addr for load). */
    std::uint32_t a = ir::kNoValue;
    /** Second value operand (addr for store/storep; rhs for cmp). */
    std::uint32_t b = ir::kNoValue;
    std::int64_t imm = 0;
    /**
     * The Interpreter's site id for this instruction, precomputed
     * with the original in-block index (phi prefix included) so
     * Model-tier branch-predictor and check-site streams are
     * bit-exact with interpreted execution.
     */
    std::uint64_t site = 0;
    /** Br taken / Jmp target as a flat code index. */
    std::uint32_t target0 = 0;
    /** Br fall-through as a flat code index. */
    std::uint32_t target1 = 0;
    /**
     * Non-phi instruction count of the target blocks, so the executor
     * burns a whole block's fuel in one subtraction at edge-taking
     * time instead of one decrement per dispatch.
     */
    std::uint32_t len0 = 0;
    std::uint32_t len1 = 0;
    /** Callee index into LoweredModule::functions (Call only). */
    std::uint32_t calleeIdx = ~0U;
    /** Call argument slots: [argBegin, argEnd) into argPool. */
    std::uint32_t argBegin = 0;
    std::uint32_t argEnd = 0;
    /** Phi moves of the taken/Jmp edge: [m0Begin, m0End). */
    std::uint32_t m0Begin = 0;
    std::uint32_t m0End = 0;
    /** Phi moves of the fall-through edge: [m1Begin, m1End). */
    std::uint32_t m1Begin = 0;
    std::uint32_t m1End = 0;

    AddrMode addr = AddrMode::Plain;
    CmpMode cmp0 = CmpMode::Int;
    CmpMode cmp1 = CmpMode::Int;
    StorePMode storep = StorePMode::Raw;
    /** Retained storep guards (counted like the Interpreter's). */
    bool destDynamic = false;
    bool valueDynamic = false;
    /** Elided determineX: keep the strict storeP fault semantics. */
    bool destElided = false;
    /**
     * Persistency-analysis proof for this store, pre-mapped to the
     * runtime hint both transaction engines consume (LogMode baked
     * at lower time, like every other plan verdict).
     */
    TxnLogHint logHint = TxnLogHint::Log;
};

/** One function compiled to the flat direct-threaded form. */
struct LoweredFunction
{
    /** The source function (module must outlive the lowering). */
    const ir::Function *fn = nullptr;
    /** Non-phi instructions of every block, concatenated. */
    std::vector<LoweredInst> code;
    /** Phi-edge moves referenced by LoweredInst ranges. */
    std::vector<PhiMove> movePool;
    /** Call argument slots referenced by LoweredInst ranges. */
    std::vector<std::uint32_t> argPool;
    /** Register-file size of a frame. */
    std::uint32_t numRegs = 0;
    /** Non-phi instruction count of the entry block (fuel batch). */
    std::uint32_t entryFuel = 0;
};

/** What lowering did (feeds the "exec" metrics group and benches). */
struct LowerStats
{
    std::uint64_t functions = 0;
    std::uint64_t instructions = 0;
    /** Check sites the lowered code evaluates at runtime. */
    std::uint64_t sites = 0;
    /** Sites that kept their dynamic guard. */
    std::uint64_t retainedGuards = 0;
    /** Sites lowered unchecked (proved safe or statically known). */
    std::uint64_t elidedGuards = 0;
    /** Adjacent pairs fused into superinstructions. */
    std::uint64_t fusedPairs = 0;
};

/** A module compiled for FastExecutor. */
struct LoweredModule
{
    /** The version the modes were baked for (must match the rt). */
    Version version = Version::Sw;
    std::vector<LoweredFunction> functions;
    std::map<std::string, std::uint32_t> indexByName;
    LowerStats stats;
};

/**
 * Compile @p mod once for @p version under @p plan. @p mod and
 * @p plan must outlive the result. Panics (verifier contract) on a
 * phi lacking an edge for a CFG predecessor.
 */
LoweredModule lowerModule(const ir::Module &mod, const CheckPlan &plan,
                          Version version);

/**
 * The lazily-created "exec" metrics group: registered with the
 * observability registry on first use only, so runs that never touch
 * the execution tiers (the default bench sections, their goldens,
 * metrics dumps) stay bit-identical.
 */
struct ExecCounters
{
    StatGroup group{"exec"};
    Counter loweredFunctions;
    Counter loweredInsts;
    Counter loweredSites;
    Counter retainedGuards;
    Counter elidedGuards;
    Counter fusedPairs;
    Counter modelDispatches;
    Counter nativeDispatches;
    obs::ScopedMetricsGroup scoped{group};

    ExecCounters();
};

/** Process-wide instance, created on first call. */
ExecCounters &execCounters();

} // namespace upr

#endif // UPR_COMPILER_EXEC_LOWER_HH
