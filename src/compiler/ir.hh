/**
 * @file
 * Mini-IR: the compiler substrate standing in for LLVM (see
 * DESIGN.md substitutions). A small, typed, SSA-style three-address
 * IR with exactly the operations the paper's Fig 4 semantics table
 * covers: loads/stores, pointer stores, pointer arithmetic (gep),
 * casts, comparisons, calls, branches, and phi nodes.
 *
 * The pointer-kind inference pass (type_inference.hh) analyzes this
 * IR; the check-insertion pass decides where dynamic checks remain;
 * the interpreter executes it against a UPR Runtime.
 */

#ifndef UPR_COMPILER_IR_HH
#define UPR_COMPILER_IR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/logging.hh"

namespace upr::ir
{

/** Value types: 64-bit integers and pointers. */
enum class Type : std::uint8_t
{
    I64,
    Ptr,
    Void,
};

const char *typeName(Type t);

/** IR opcodes. */
enum class Op : std::uint8_t
{
    Const,    //!< %r = const <imm>
    Alloca,   //!< %r = alloca <imm bytes>        (stack, DRAM)
    Malloc,   //!< %r = malloc %size | <imm>      (heap, DRAM)
    Pmalloc,  //!< %r = pmalloc %size | <imm>     (pool, relative)
    Free,     //!< free %p
    Pfree,    //!< pfree %p
    Load,     //!< %r = load.<ty> %p
    Store,    //!< store %v, %p                   (storeD)
    StoreP,   //!< storep %q, %p                  (pointer store)
    Gep,      //!< %r = gep %p, <imm> | %off      (byte offset)
    PtrToInt, //!< %r = ptrtoint %p
    IntToPtr, //!< %r = inttoptr %v
    Eq,       //!< %r = eq %a, %b                 (int or ptr)
    Lt,       //!< %r = lt %a, %b
    Add,      //!< %r = add %a, %b
    Sub,      //!< %r = sub %a, %b
    Mul,      //!< %r = mul %a, %b
    Br,       //!< br %c, <then>, <else>
    Jmp,      //!< jmp <target>
    Phi,      //!< %r = phi.<ty> [<block>, %v]...
    Call,     //!< %r = call @f(%a, ...) | call @f(...)
    Ret,      //!< ret %v | ret
    TxBegin,  //!< txbegin <imm pool slot>
    TxCommit, //!< txcommit
    TxAbort,  //!< txabort
};

const char *opName(Op op);

/** A virtual register id within a function (dense, 0-based). */
using ValueId = std::uint32_t;
constexpr ValueId kNoValue = ~0U;

/** A basic-block id within a function (dense, 0-based). */
using BlockId = std::uint32_t;
constexpr BlockId kNoBlock = ~0U;

/** One instruction. */
struct Inst
{
    Op op;
    Type type = Type::Void;           //!< result type
    ValueId result = kNoValue;
    std::vector<ValueId> operands;    //!< value operands
    std::int64_t imm = 0;             //!< Const / Alloca / Gep immediate
    BlockId target0 = kNoBlock;       //!< Br then / Jmp target
    BlockId target1 = kNoBlock;       //!< Br else
    std::vector<BlockId> phiBlocks;   //!< Phi incoming blocks
    std::string callee;               //!< Call target name
    SrcLoc loc;                       //!< source position (parser-set)
};

/** A basic block: straight-line instructions ending in a terminator. */
struct Block
{
    std::string name;
    std::vector<Inst> insts;
    SrcLoc loc;                       //!< label position (parser-set)
};

/** A function: parameters, registers, and blocks. */
struct Function
{
    std::string name;
    SrcLoc loc;                       //!< 'func' line (parser-set)
    std::vector<Type> paramTypes;
    std::vector<ValueId> paramValues; //!< register ids of parameters
    Type returnType = Type::Void;

    std::vector<Block> blocks;
    /** Type of every register (index = ValueId). */
    std::vector<Type> valueTypes;
    /** Debug name of every register. */
    std::vector<std::string> valueNames;

    /** Number of registers. */
    std::uint32_t numValues() const
    {
        return static_cast<std::uint32_t>(valueTypes.size());
    }

    /** Look up a block by name; panics if absent. */
    BlockId
    blockByName(const std::string &bname) const
    {
        for (BlockId b = 0; b < blocks.size(); ++b) {
            if (blocks[b].name == bname)
                return b;
        }
        upr_panic("no block '%s' in @%s", bname.c_str(), name.c_str());
    }
};

/** A module: a set of functions. */
struct Module
{
    std::vector<std::unique_ptr<Function>> functions;

    Function *
    find(const std::string &fname) const
    {
        for (const auto &f : functions) {
            if (f->name == fname)
                return f.get();
        }
        return nullptr;
    }

    Function &
    get(const std::string &fname) const
    {
        Function *f = find(fname);
        upr_assert_msg(f != nullptr, "no function @%s", fname.c_str());
        return *f;
    }
};

/**
 * Structural validation: operand ids in range, terminators present
 * and only at block ends, phi shapes consistent, types sensible.
 * Panics with a diagnostic on the first violation.
 */
void validate(const Function &fn);
void validate(const Module &mod);

/** Pretty-print (round-trips through the parser). */
std::string print(const Function &fn);
std::string print(const Module &mod);

} // namespace upr::ir

#endif // UPR_COMPILER_IR_HH
