#include "compiler/check_insertion.hh"

#include <set>
#include <sstream>

namespace upr
{

const char *
logModeName(LogMode m)
{
    switch (m) {
      case LogMode::MustLog:             return "must-log";
      case LogMode::ElideFreshAlloc:     return "elide-fresh-alloc";
      case LogMode::ElideDominatedWrite: return "elide-dominated-write";
    }
    return "?";
}

using namespace ir;

namespace
{

/** Kind of a register under the plan (Unknown when no inference). */
PtrKind
kindOf(const InferenceResult *inf, const Function &fn, ValueId v)
{
    if (!inf)
        return PtrKind::Unknown;
    const PtrKind k = inf->kindOf(fn, v);
    // NoInfo means the value never received a kind (dead code or an
    // uninitialized path); treat conservatively as Unknown.
    return k == PtrKind::NoInfo ? PtrKind::Unknown : k;
}

/** Per-block set of values whose form is already checked. */
using CheckedSet = std::set<ir::ValueId>;

/** Annotate one "pointer used as an address" site. */
void
planAddress(CheckPlan &cp, InstPlan &plan, PtrKind k,
            CheckedSet *checked, ir::ValueId v)
{
    ++cp.totalSites;
    if (isStaticKind(k)) {
        plan.addrStaticConvert = (k == PtrKind::Ra);
        return;
    }
    if (checked && checked->count(v)) {
        plan.addrRefined = true;
        ++cp.refinedSites;
        return;
    }
    plan.addrDynamic = true;
    ++cp.remainingSites;
    if (checked)
        checked->insert(v);
}

/** Annotate one "pointer value in a comparison/cast" site. */
void
planOperand(CheckPlan &cp, bool &dynamic_flag, PtrKind k)
{
    ++cp.totalSites;
    if (!isStaticKind(k)) {
        dynamic_flag = true;
        ++cp.remainingSites;
    }
}

} // namespace

CheckPlan
insertChecks(const Module &mod, const InferenceResult *inference,
             bool flow_refine)
{
    CheckPlan cp;

    for (const auto &fptr : mod.functions) {
        const Function &fn = *fptr;
        FunctionPlan fp;
        fp.perBlock.resize(fn.blocks.size());

        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            CheckedSet checked;
            CheckedSet *cset = flow_refine ? &checked : nullptr;
            for (const Inst &in : fn.blocks[b].insts) {
                InstPlan plan;
                switch (in.op) {
                  case Op::Load:
                    planAddress(cp, plan,
                                kindOf(inference, fn, in.operands[0]),
                                cset, in.operands[0]);
                    break;
                  case Op::Store:
                    planAddress(cp, plan,
                                kindOf(inference, fn, in.operands[1]),
                                cset, in.operands[1]);
                    break;
                  case Op::StoreP: {
                    // Address check.
                    planAddress(cp, plan,
                                kindOf(inference, fn, in.operands[1]),
                                cset, in.operands[1]);
                    // determineX on the destination medium.
                    const PtrKind dk =
                        kindOf(inference, fn, in.operands[1]);
                    ++cp.totalSites;
                    if (!isStaticKind(dk)) {
                        plan.destDynamic = true;
                        ++cp.remainingSites;
                    }
                    // determineY on the stored pointer value.
                    const PtrKind vk =
                        kindOf(inference, fn, in.operands[0]);
                    ++cp.totalSites;
                    if (!isStaticKind(vk)) {
                        plan.valueDynamic = true;
                        ++cp.remainingSites;
                    }
                    break;
                  }
                  case Op::Eq:
                  case Op::Lt:
                    // Pointer comparisons check both sides (Fig 9).
                    if (fn.valueTypes[in.operands[0]] == Type::Ptr) {
                        planOperand(cp, plan.cmp0Dynamic,
                                    kindOf(inference, fn,
                                           in.operands[0]));
                    }
                    if (fn.valueTypes[in.operands[1]] == Type::Ptr) {
                        planOperand(cp, plan.cmp1Dynamic,
                                    kindOf(inference, fn,
                                           in.operands[1]));
                    }
                    break;
                  case Op::PtrToInt:
                    planOperand(cp, plan.cmp0Dynamic,
                                kindOf(inference, fn, in.operands[0]));
                    break;
                  case Op::Free:
                  case Op::Pfree:
                    planAddress(cp, plan,
                                kindOf(inference, fn, in.operands[0]),
                                cset, in.operands[0]);
                    break;
                  default:
                    break;
                }
                fp.perBlock[b].push_back(plan);
            }
        }
        cp.perFunction.emplace(fn.name, std::move(fp));
    }
    return cp;
}

std::string
printAnnotated(const Module &mod, const CheckPlan &plan)
{
    std::ostringstream os;
    for (const auto &fptr : mod.functions) {
        const Function &fn = *fptr;
        const FunctionPlan &fp = plan.perFunction.at(fn.name);
        // Reuse the plain printer line by line, appending markers.
        std::istringstream lines(print(fn));
        std::string line;
        BlockId b = kNoBlock;
        std::size_t i = 0;
        while (std::getline(lines, line)) {
            os << line;
            const bool is_label = !line.empty() &&
                                  line.back() == ':' &&
                                  line.rfind("  ", 0) != 0;
            if (is_label) {
                b = fn.blockByName(line.substr(0, line.size() - 1));
                i = 0;
            } else if (line.rfind("  ", 0) == 0 && b != kNoBlock &&
                       i < fp.perBlock[b].size()) {
                const InstPlan &ip = fp.at(b, i);
                std::string mark;
                if (ip.addrDynamic)
                    mark += " [checkY addr]";
                if (ip.addrRefined)
                    mark += " [refined addr]";
                if (ip.addrStaticConvert)
                    mark += " [ra2va addr]";
                if (ip.destDynamic)
                    mark += " [checkX dest]";
                if (ip.destElided)
                    mark += " [elided dest]";
                if (ip.valueDynamic)
                    mark += " [checkY val]";
                if (ip.cmp0Dynamic)
                    mark += " [checkY op0]";
                if (ip.cmp1Dynamic)
                    mark += " [checkY op1]";
                if (!mark.empty())
                    os << "   ;" << mark;
                ++i;
            }
            os << '\n';
        }
        os << '\n';
    }
    return os.str();
}

} // namespace upr
