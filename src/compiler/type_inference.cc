#include "compiler/type_inference.hh"

namespace upr
{

using namespace ir;

const FunctionKinds &
InferenceResult::of(const Function &fn) const
{
    auto it = perFunction.find(fn.name);
    upr_assert_msg(it != perFunction.end(),
                   "@%s was not analyzed", fn.name.c_str());
    return it->second;
}

namespace
{

/** Mutable per-module analysis state. */
struct State
{
    const Module &mod;
    bool unknownParams;
    std::map<std::string, FunctionKinds> kinds;
    /** Join of return-value kinds per function. */
    std::map<std::string, PtrKind> returnKinds;
    bool changed = false;

    PtrKind &
    kindRef(const Function &fn, ValueId v)
    {
        return kinds[fn.name].valueKinds[v];
    }

    /** Raise @p slot to join(slot, k); tracks changes. */
    void
    raise(PtrKind &slot, PtrKind k)
    {
        const PtrKind j = joinKind(slot, k);
        if (j != slot) {
            slot = j;
            changed = true;
        }
    }
};

/** One transfer pass over a function body. */
void
transferFunction(State &st, const Function &fn)
{
    FunctionKinds &fk = st.kinds[fn.name];

    for (const Block &b : fn.blocks) {
        for (const Inst &in : b.insts) {
            switch (in.op) {
              case Op::Alloca:
              case Op::Malloc:
                st.raise(fk.valueKinds[in.result], PtrKind::VaDram);
                break;
              case Op::Pmalloc:
                // pmalloc returns a relative address by definition.
                st.raise(fk.valueKinds[in.result], PtrKind::Ra);
                break;
              case Op::Load:
                if (in.type == Type::Ptr) {
                    // Memory is untyped: a loaded pointer may carry
                    // either representation.
                    st.raise(fk.valueKinds[in.result],
                             PtrKind::Unknown);
                }
                break;
              case Op::IntToPtr:
                st.raise(fk.valueKinds[in.result], PtrKind::Unknown);
                break;
              case Op::Gep:
                // Pointer arithmetic preserves the representation
                // (Fig 4 additive rows).
                st.raise(fk.valueKinds[in.result],
                         fk.valueKinds[in.operands[0]]);
                break;
              case Op::Phi:
                if (in.type == Type::Ptr) {
                    for (ValueId v : in.operands) {
                        st.raise(fk.valueKinds[in.result],
                                 fk.valueKinds[v]);
                    }
                }
                break;
              case Op::Call: {
                const Function &callee = st.mod.get(in.callee);
                // Arguments flow into parameter slots.
                FunctionKinds &ck = st.kinds[callee.name];
                for (std::size_t i = 0; i < in.operands.size(); ++i) {
                    if (callee.paramTypes[i] == Type::Ptr) {
                        st.raise(
                            ck.valueKinds[callee.paramValues[i]],
                            fk.valueKinds[in.operands[i]]);
                    }
                }
                // Return kind flows back.
                if (in.type == Type::Ptr) {
                    st.raise(fk.valueKinds[in.result],
                             st.returnKinds[callee.name]);
                }
                break;
              }
              case Op::Ret:
                if (!in.operands.empty() &&
                    fn.valueTypes[in.operands[0]] == Type::Ptr) {
                    PtrKind &rk = st.returnKinds[fn.name];
                    const PtrKind j = joinKind(
                        rk, fk.valueKinds[in.operands[0]]);
                    if (j != rk) {
                        rk = j;
                        st.changed = true;
                    }
                }
                break;
              default:
                break;
            }
        }
    }
}

} // namespace

InferenceResult
inferPointerKinds(const Module &mod, bool assume_unknown_params)
{
    State st{mod, assume_unknown_params, {}, {}, false};

    // Initialize all registers to bottom; seed parameters.
    for (const auto &f : mod.functions) {
        FunctionKinds fk;
        fk.valueKinds.assign(f->numValues(), PtrKind::NoInfo);
        if (assume_unknown_params) {
            for (std::size_t i = 0; i < f->paramTypes.size(); ++i) {
                if (f->paramTypes[i] == Type::Ptr) {
                    fk.valueKinds[f->paramValues[i]] =
                        PtrKind::Unknown;
                }
            }
        }
        st.kinds.emplace(f->name, std::move(fk));
        st.returnKinds.emplace(f->name, PtrKind::NoInfo);
    }

    // Fixpoint iteration (the lattice height bounds the rounds).
    do {
        st.changed = false;
        for (const auto &f : mod.functions)
            transferFunction(st, *f);
    } while (st.changed);

    InferenceResult result;
    result.perFunction = std::move(st.kinds);
    return result;
}

} // namespace upr
