/**
 * @file
 * Interprocedural pointer-kind inference (the LLVM pass of Sec V-B,
 * Fig 8). Seeds kinds from the known allocation functions and
 * propagates them through the dataflow until fixpoint; call-graph
 * summaries carry kinds across function boundaries (parameter kinds
 * are the join over all call sites; return kinds the join over all
 * returns).
 *
 * Pointers loaded from memory are Unknown — the memory is untyped
 * under user transparency — which is precisely why the paper finds a
 * substantial share of dynamic checks (~42%) survives inference.
 */

#ifndef UPR_COMPILER_TYPE_INFERENCE_HH
#define UPR_COMPILER_TYPE_INFERENCE_HH

#include <map>
#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/pointer_kind.hh"

namespace upr
{

/** Inference output for one function. */
struct FunctionKinds
{
    /** Kind of every register (index = ValueId). */
    std::vector<PtrKind> valueKinds;
};

/** Whole-module inference result. */
class InferenceResult
{
  public:
    /** Kinds for @p fn (must have been analyzed). */
    const FunctionKinds &of(const ir::Function &fn) const;

    /** Kind of one register. */
    PtrKind
    kindOf(const ir::Function &fn, ir::ValueId v) const
    {
        return of(fn).valueKinds.at(v);
    }

    std::map<std::string, FunctionKinds> perFunction;
};

/**
 * Run the inference to fixpoint over @p mod.
 *
 * @param assume_unknown_params treat exported-function parameters as
 *        Unknown (true, default: a library can be called with either
 *        kind — the paper's central uncertainty); when false, only
 *        call sites inside the module determine parameter kinds
 *        (whole-program assumption).
 */
InferenceResult inferPointerKinds(const ir::Module &mod,
                                  bool assume_unknown_params = true);

} // namespace upr

#endif // UPR_COMPILER_TYPE_INFERENCE_HH
