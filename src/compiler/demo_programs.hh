/**
 * @file
 * Shared mini-IR demo programs: the paper's Fig 9 linked-list
 * example, used by the compiler-pass demo, the static-analysis
 * bench section, and the lint/elision tests. One definition so the
 * numbers printed by each agree.
 */

#ifndef UPR_COMPILER_DEMO_PROGRAMS_HH
#define UPR_COMPILER_DEMO_PROGRAMS_HH

namespace upr::ir
{

/**
 * The Fig 9 example: @append is a library function (parameters of
 * unknown kind), @main a driver building a persistent chain of
 * %count nodes through it, then walking the chain summing values.
 * Node layout: { ptr next; i64 value }.
 */
inline const char *kFig9Source = R"(
; The paper's Fig 9 example: linked-list append.
; Node layout: { ptr next; i64 value }
func @append(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 0
  storep %n, %slot
  jmp out
out:
  ret
}

; Build a persistent chain of %n nodes using @append, then sum it.
func @main(%count: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  %vslot0 = gep %head, 8
  store %zero, %vslot0
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %tail = phi.ptr [entry, %head], [body, %node]
  %cont = lt %i, %count
  br %cont, body, walk
body:
  %node = pmalloc 16
  %one = const 1
  %inext = add %i, %one
  %vslot = gep %node, 8
  store %inext, %vslot
  %nslot = gep %node, 0
  storep %node, %nslot     ; self-link first (append overwrites)
  call @append(%tail, %node)
  jmp loop
walk:
  jmp whead
whead:
  %cur = phi.ptr [walk, %head], [wbody, %nxt]
  %acc = phi.i64 [walk, %zero], [wbody, %accn]
  %curv = gep %cur, 8
  %v = load.i64 %curv
  %accn = add %acc, %v
  %nslot2 = gep %cur, 0
  %nxt = load.ptr %nslot2
  %ni = ptrtoint %nxt
  %ci = ptrtoint %cur
  %self = eq %ni, %ci
  br %self, done, wbody
wbody:
  jmp whead
done:
  ret %accn
}
)";

} // namespace upr::ir

#endif // UPR_COMPILER_DEMO_PROGRAMS_HH
