/**
 * @file
 * Shared mini-IR demo programs: the paper's Fig 9 linked-list
 * example, used by the compiler-pass demo, the static-analysis
 * bench section, and the lint/elision tests. One definition so the
 * numbers printed by each agree.
 */

#ifndef UPR_COMPILER_DEMO_PROGRAMS_HH
#define UPR_COMPILER_DEMO_PROGRAMS_HH

namespace upr::ir
{

/**
 * The Fig 9 example: @append is a library function (parameters of
 * unknown kind), @main a driver building a persistent chain of
 * %count nodes through it, then walking the chain summing values.
 * Node layout: { ptr next; i64 value }.
 */
inline const char *kFig9Source = R"(
; The paper's Fig 9 example: linked-list append.
; Node layout: { ptr next; i64 value }
func @append(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 0
  storep %n, %slot
  jmp out
out:
  ret
}

; Build a persistent chain of %n nodes using @append, then sum it.
func @main(%count: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  %vslot0 = gep %head, 8
  store %zero, %vslot0
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %tail = phi.ptr [entry, %head], [body, %node]
  %cont = lt %i, %count
  br %cont, body, walk
body:
  %node = pmalloc 16
  %one = const 1
  %inext = add %i, %one
  %vslot = gep %node, 8
  store %inext, %vslot
  %nslot = gep %node, 0
  storep %node, %nslot     ; self-link first (append overwrites)
  call @append(%tail, %node)
  jmp loop
walk:
  jmp whead
whead:
  %cur = phi.ptr [walk, %head], [wbody, %nxt]
  %acc = phi.i64 [walk, %zero], [wbody, %accn]
  %curv = gep %cur, 8
  %v = load.i64 %curv
  %accn = add %acc, %v
  %nslot2 = gep %cur, 0
  %nxt = load.ptr %nslot2
  %ni = ptrtoint %nxt
  %ci = ptrtoint %cur
  %self = eq %ni, %ci
  br %self, done, wbody
wbody:
  jmp whead
done:
  ret %accn
}
)";

/**
 * Pointer-chase kernel for the execution-tier bench: build a closed
 * ring of %nodes persistent nodes, then chase next-pointers for
 * %nodes * %laps hops summing values. Every hop dereferences a
 * pointer loaded from memory — Unknown kind, so the chase loads keep
 * their dynamic guards in both tiers (the guarded fast path).
 * Node layout: { ptr next; i64 value }.
 */
inline const char *kPtrChaseSource = R"(
; Closed persistent ring, chased %nodes * %laps hops.
func @main(%nodes: i64, %laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %head = pmalloc 16
  %hv = gep %head, 8
  store %zero, %hv
  jmp build
build:
  %i = phi.i64 [entry, %one], [bbody, %inext]
  %prev = phi.ptr [entry, %head], [bbody, %node]
  %more = lt %i, %nodes
  br %more, bbody, close
bbody:
  %node = pmalloc 16
  %nv = gep %node, 8
  store %i, %nv
  %pslot = gep %prev, 0
  storep %node, %pslot
  %inext = add %i, %one
  jmp build
close:
  %cslot = gep %prev, 0
  storep %head, %cslot
  %total = mul %nodes, %laps
  jmp chase
chase:
  %k = phi.i64 [close, %zero], [cbody, %knext]
  %cur = phi.ptr [close, %head], [cbody, %nxt]
  %acc = phi.i64 [close, %zero], [cbody, %accn]
  %go = lt %k, %total
  br %go, cbody, done
cbody:
  %vslot = gep %cur, 8
  %v = load.i64 %vslot
  %accn = add %acc, %v
  %nslot = gep %cur, 0
  %nxt = load.ptr %nslot
  %knext = add %k, %one
  jmp chase
done:
  ret %acc
}
)";

/**
 * Fill/readback sweep for the execution-tier bench: %laps laps of
 * eight stores then eight loads over a persistent 64-byte record
 * whose slot pointers never leave registers. Inference pins every
 * address to the pool, so every site is static — the workload the
 * Native tier lowers to entirely unchecked accesses.
 */
inline const char *kSweepSource = R"(
; Eight static slots, stored and read back every lap.
func @main(%laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %rec = pmalloc 64
  %s0 = gep %rec, 0
  %s1 = gep %rec, 8
  %s2 = gep %rec, 16
  %s3 = gep %rec, 24
  %s4 = gep %rec, 32
  %s5 = gep %rec, 40
  %s6 = gep %rec, 48
  %s7 = gep %rec, 56
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %acc = phi.i64 [entry, %zero], [body, %accn]
  %go = lt %i, %laps
  br %go, body, done
body:
  %i1 = add %i, %one
  %i2 = add %i1, %one
  %i3 = add %i2, %one
  %i4 = add %i3, %one
  %i5 = add %i4, %one
  %i6 = add %i5, %one
  %i7 = add %i6, %one
  store %i, %s0
  store %i1, %s1
  store %i2, %s2
  store %i3, %s3
  store %i4, %s4
  store %i5, %s5
  store %i6, %s6
  store %i7, %s7
  %v0 = load.i64 %s0
  %v1 = load.i64 %s1
  %v2 = load.i64 %s2
  %v3 = load.i64 %s3
  %v4 = load.i64 %s4
  %v5 = load.i64 %s5
  %v6 = load.i64 %s6
  %v7 = load.i64 %s7
  %a0 = add %acc, %v0
  %a1 = add %a0, %v1
  %a2 = add %a1, %v2
  %a3 = add %a2, %v3
  %a4 = add %a3, %v4
  %a5 = add %a4, %v5
  %a6 = add %a5, %v6
  %accn = add %a6, %v7
  %inext = add %i, %one
  jmp loop
done:
  ret %acc
}
)";

/**
 * Pointer-publish stream for the execution-tier bench: eight pool
 * slots each holding a relative pointer, reloaded and re-published
 * around the ring every lap. The slot addresses are register-resident
 * pmalloc+gep chains (proved static), but every published *value*
 * comes from memory, so each storep keeps its value guard: the Model
 * tier pays the full storeP pipeline simulation per publish while the
 * Native tier writes the already-canonical bits through the raw
 * window — the widest honest gap between the tiers.
 */
inline const char *kPublishSource = R"(
; Eight pointer slots re-published around a ring every lap.
func @main(%laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %rec = pmalloc 64
  %s0 = gep %rec, 0
  %s1 = gep %rec, 8
  %s2 = gep %rec, 16
  %s3 = gep %rec, 24
  %s4 = gep %rec, 32
  %s5 = gep %rec, 40
  %s6 = gep %rec, 48
  %s7 = gep %rec, 56
  storep %rec, %s0
  storep %rec, %s1
  storep %rec, %s2
  storep %rec, %s3
  storep %rec, %s4
  storep %rec, %s5
  storep %rec, %s6
  storep %rec, %s7
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %i1]
  %go = lt %i, %laps
  br %go, body, done
body:
  %i1 = add %i, %one
  %v0 = load.ptr %s0
  storep %v0, %s1
  %v1 = load.ptr %s1
  storep %v1, %s2
  %v2 = load.ptr %s2
  storep %v2, %s3
  %v3 = load.ptr %s3
  storep %v3, %s4
  %v4 = load.ptr %s4
  storep %v4, %s5
  %v5 = load.ptr %s5
  storep %v5, %s6
  %v6 = load.ptr %s6
  storep %v6, %s7
  %v7 = load.ptr %s7
  storep %v7, %s0
  jmp loop
done:
  %f = load.ptr %s0
  %r = ptrtoint %f
  %sum = add %r, %i
  ret %sum
}
)";


/**
 * Stride-64 streaming kernel for the execution-tier bench: %laps
 * passes over a 4 MiB persistent array, touching one 8-byte word per
 * 64-byte line — every access misses the simulated cache hierarchy,
 * so the Model tier pays the full miss pipeline per access while the
 * Native tier streams through the raw window. The moving pointer is
 * a register-resident phi of pmalloc+gep chains, so every site is
 * static. Each slot is loaded, written back, and the pointer bumped:
 * the (load, store, gep) triple the fusion peephole packs tightest.
 */
inline const char *kStreamSource = R"(
; Stride-64 write-back stream over a 4 MiB persistent array.
func @main(%laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %n = const 8192
  %arr = pmalloc 4194304
  jmp outer
outer:
  %lap = phi.i64 [entry, %zero], [loop, %lap1]
  %tot = phi.i64 [entry, %zero], [loop, %acc]
  %go = lt %lap, %laps
  br %go, ocont, done
ocont:
  %lap1 = add %lap, %one
  jmp loop
loop:
  %p = phi.ptr [ocont, %arr], [body, %p8]
  %i = phi.i64 [ocont, %zero], [body, %i8]
  %acc = phi.i64 [ocont, %tot], [body, %a]
  %more = lt %i, %n
  br %more, body, outer
body:
  %i8 = add %i, %one
  %v0 = load.i64 %p
  store %v0, %p
  %p1 = gep %p, 64
  %v1 = load.i64 %p1
  store %v1, %p1
  %p2 = gep %p1, 64
  %v2 = load.i64 %p2
  store %v2, %p2
  %p3 = gep %p2, 64
  %v3 = load.i64 %p3
  store %v3, %p3
  %p4 = gep %p3, 64
  %v4 = load.i64 %p4
  store %v4, %p4
  %p5 = gep %p4, 64
  %v5 = load.i64 %p5
  store %v5, %p5
  %p6 = gep %p5, 64
  %v6 = load.i64 %p6
  store %v6, %p6
  %p7 = gep %p6, 64
  %v7 = load.i64 %p7
  store %v7, %p7
  %p8 = gep %p7, 64
  %a = add %acc, %v7
  jmp loop
done:
  ret %tot
}
)";

/**
 * Readback scan for the execution-tier bench: 56 loads per lap over
 * eight line-resident slots, summing every eighth value. The densest
 * all-static read kernel — the shape where dispatch, not memory,
 * bounds the Native tier, which the load-load fusion halves.
 */
inline const char *kScanSource = R"(
; Readback scan: 56 loads per lap over 8 hot slots.
func @main(%laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %rec = pmalloc 64
  %s0 = gep %rec, 0
  %s1 = gep %rec, 8
  %s2 = gep %rec, 16
  %s3 = gep %rec, 24
  %s4 = gep %rec, 32
  %s5 = gep %rec, 40
  %s6 = gep %rec, 48
  %s7 = gep %rec, 56
  store %one, %s0
  store %one, %s1
  store %one, %s2
  store %one, %s3
  store %one, %s4
  store %one, %s5
  store %one, %s6
  store %one, %s7
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %i1]
  %acc = phi.i64 [entry, %zero], [body, %a3]
  %go = lt %i, %laps
  br %go, body, done
body:
  %i1 = add %i, %one
  %v0 = load.i64 %s0
  %v1 = load.i64 %s1
  %v2 = load.i64 %s2
  %v3 = load.i64 %s3
  %v4 = load.i64 %s4
  %v5 = load.i64 %s5
  %v6 = load.i64 %s6
  %v7 = load.i64 %s7
  %v8 = load.i64 %s0
  %v9 = load.i64 %s1
  %v10 = load.i64 %s2
  %v11 = load.i64 %s3
  %v12 = load.i64 %s4
  %v13 = load.i64 %s5
  %v14 = load.i64 %s6
  %v15 = load.i64 %s7
  %v16 = load.i64 %s0
  %v17 = load.i64 %s1
  %v18 = load.i64 %s2
  %v19 = load.i64 %s3
  %v20 = load.i64 %s4
  %v21 = load.i64 %s5
  %v22 = load.i64 %s6
  %v23 = load.i64 %s7
  %v24 = load.i64 %s0
  %v25 = load.i64 %s1
  %v26 = load.i64 %s2
  %v27 = load.i64 %s3
  %v28 = load.i64 %s4
  %v29 = load.i64 %s5
  %v30 = load.i64 %s6
  %v31 = load.i64 %s7
  %v32 = load.i64 %s0
  %v33 = load.i64 %s1
  %v34 = load.i64 %s2
  %v35 = load.i64 %s3
  %v36 = load.i64 %s4
  %v37 = load.i64 %s5
  %v38 = load.i64 %s6
  %v39 = load.i64 %s7
  %v40 = load.i64 %s0
  %v41 = load.i64 %s1
  %v42 = load.i64 %s2
  %v43 = load.i64 %s3
  %v44 = load.i64 %s4
  %v45 = load.i64 %s5
  %v46 = load.i64 %s6
  %v47 = load.i64 %s7
  %v48 = load.i64 %s0
  %v49 = load.i64 %s1
  %v50 = load.i64 %s2
  %v51 = load.i64 %s3
  %v52 = load.i64 %s4
  %v53 = load.i64 %s5
  %v54 = load.i64 %s6
  %v55 = load.i64 %s7
  %a0 = add %acc, %v13
  %a1 = add %a0, %v27
  %a2 = add %a1, %v41
  %a3 = add %a2, %v55
  jmp loop
done:
  ret %acc
}
)";

/**
 * Conflict-stride readback for the execution-tier bench: sixteen
 * pointers 256 KiB apart all map to the same set of every simulated
 * cache level (64, 512 and 4096 sets, all 8-way), and each lap cycles
 * them four times — sixteen lines through an 8-way LRU set, so every
 * one of the lap's 80 accesses takes the full three-level miss walk —
 * while the host working set is one kilobyte. The pointers are
 * republished through NVM and reloaded every lap, so their kind is
 * unknown to the prover: the first dereference of each keeps its
 * dynamic guard, and the refined rounds after it still pay the
 * simulated walk. The Model tier's worst case against the Native
 * tier's best (pool-cache hit plus a host L1 hit).
 */
inline const char *kConflictSource = R"(
func @main(%laps: i64) -> i64 {
entry:
  %zero = const 0
  %one = const 1
  %tab = pmalloc 128
  %data = pmalloc 4194304
  %t0 = gep %tab, 0
  %t1 = gep %tab, 8
  %t2 = gep %tab, 16
  %t3 = gep %tab, 24
  %t4 = gep %tab, 32
  %t5 = gep %tab, 40
  %t6 = gep %tab, 48
  %t7 = gep %tab, 56
  %t8 = gep %tab, 64
  %t9 = gep %tab, 72
  %t10 = gep %tab, 80
  %t11 = gep %tab, 88
  %t12 = gep %tab, 96
  %t13 = gep %tab, 104
  %t14 = gep %tab, 112
  %t15 = gep %tab, 120
  %p0 = gep %data, 0
  %p1 = gep %data, 262144
  %p2 = gep %data, 524288
  %p3 = gep %data, 786432
  %p4 = gep %data, 1048576
  %p5 = gep %data, 1310720
  %p6 = gep %data, 1572864
  %p7 = gep %data, 1835008
  %p8 = gep %data, 2097152
  %p9 = gep %data, 2359296
  %p10 = gep %data, 2621440
  %p11 = gep %data, 2883584
  %p12 = gep %data, 3145728
  %p13 = gep %data, 3407872
  %p14 = gep %data, 3670016
  %p15 = gep %data, 3932160
  store %one, %p0
  store %one, %p1
  store %one, %p2
  store %one, %p3
  store %one, %p4
  store %one, %p5
  store %one, %p6
  store %one, %p7
  store %one, %p8
  store %one, %p9
  store %one, %p10
  store %one, %p11
  store %one, %p12
  store %one, %p13
  store %one, %p14
  store %one, %p15
  storep %p0, %t0
  storep %p1, %t1
  storep %p2, %t2
  storep %p3, %t3
  storep %p4, %t4
  storep %p5, %t5
  storep %p6, %t6
  storep %p7, %t7
  storep %p8, %t8
  storep %p9, %t9
  storep %p10, %t10
  storep %p11, %t11
  storep %p12, %t12
  storep %p13, %t13
  storep %p14, %t14
  storep %p15, %t15
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %i1]
  %acc = phi.i64 [entry, %zero], [body, %a3]
  %go = lt %i, %laps
  br %go, body, done
body:
  %i1 = add %i, %one
  %q0 = load.ptr %t0
  %v0 = load.i64 %q0
  %q1 = load.ptr %t1
  %v1 = load.i64 %q1
  %q2 = load.ptr %t2
  %v2 = load.i64 %q2
  %q3 = load.ptr %t3
  %v3 = load.i64 %q3
  %q4 = load.ptr %t4
  %v4 = load.i64 %q4
  %q5 = load.ptr %t5
  %v5 = load.i64 %q5
  %q6 = load.ptr %t6
  %v6 = load.i64 %q6
  %q7 = load.ptr %t7
  %v7 = load.i64 %q7
  %q8 = load.ptr %t8
  %v8 = load.i64 %q8
  %q9 = load.ptr %t9
  %v9 = load.i64 %q9
  %q10 = load.ptr %t10
  %v10 = load.i64 %q10
  %q11 = load.ptr %t11
  %v11 = load.i64 %q11
  %q12 = load.ptr %t12
  %v12 = load.i64 %q12
  %q13 = load.ptr %t13
  %v13 = load.i64 %q13
  %q14 = load.ptr %t14
  %v14 = load.i64 %q14
  %q15 = load.ptr %t15
  %v15 = load.i64 %q15
  %w0 = load.i64 %q0
  %w1 = load.i64 %q1
  %w2 = load.i64 %q2
  %w3 = load.i64 %q3
  %w4 = load.i64 %q4
  %w5 = load.i64 %q5
  %w6 = load.i64 %q6
  %w7 = load.i64 %q7
  %w8 = load.i64 %q8
  %w9 = load.i64 %q9
  %w10 = load.i64 %q10
  %w11 = load.i64 %q11
  %w12 = load.i64 %q12
  %w13 = load.i64 %q13
  %w14 = load.i64 %q14
  %w15 = load.i64 %q15
  %x0 = load.i64 %q0
  %x1 = load.i64 %q1
  %x2 = load.i64 %q2
  %x3 = load.i64 %q3
  %x4 = load.i64 %q4
  %x5 = load.i64 %q5
  %x6 = load.i64 %q6
  %x7 = load.i64 %q7
  %x8 = load.i64 %q8
  %x9 = load.i64 %q9
  %x10 = load.i64 %q10
  %x11 = load.i64 %q11
  %x12 = load.i64 %q12
  %x13 = load.i64 %q13
  %x14 = load.i64 %q14
  %x15 = load.i64 %q15
  %y0 = load.i64 %q0
  %y1 = load.i64 %q1
  %y2 = load.i64 %q2
  %y3 = load.i64 %q3
  %y4 = load.i64 %q4
  %y5 = load.i64 %q5
  %y6 = load.i64 %q6
  %y7 = load.i64 %q7
  %y8 = load.i64 %q8
  %y9 = load.i64 %q9
  %y10 = load.i64 %q10
  %y11 = load.i64 %q11
  %y12 = load.i64 %q12
  %y13 = load.i64 %q13
  %y14 = load.i64 %q14
  %y15 = load.i64 %q15
  %a0 = add %acc, %v0
  %a1 = add %a0, %w5
  %a2 = add %a1, %x10
  %a3 = add %a2, %y15
  jmp loop
done:
  ret %acc
}
)";


} // namespace upr::ir

#endif // UPR_COMPILER_DEMO_PROGRAMS_HH
