/**
 * @file
 * FastExecutor: the direct-threaded execution tier over a
 * LoweredModule (exec_lower.hh), with computed-goto dispatch where
 * the compiler supports it. Two tiers (core/runtime.hh ExecTier):
 *
 *  - Model: every pointer operation goes through the Runtime exactly
 *    as the Interpreter would — same call order, same cycles, same
 *    counters and histograms, bit-exact to all existing goldens.
 *    Dispatch is cheaper; the simulation is identical.
 *
 *  - Native: skips the timing model entirely. Memory still moves
 *    through the simulated AddressSpace (so unmapped-access faults,
 *    staged transaction writes and persistence bookkeeping are
 *    preserved) and retained guards still run — raising the same
 *    typed Faults and counting the same executor-level
 *    dynamicCheckCount() — but conversions use a one-entry pool-base
 *    cache instead of the simulated POLB/VALB, plain-memory accesses
 *    go through a raw host-memory window, and fuel is burned a block
 *    at a time.
 *
 * The cross-tier contract, enforced by tests and the BENCH_exec
 * golden: identical results, instruction counts, fault kinds and
 * dynamicCheckCount() on every workload × version cell.
 */

#ifndef UPR_COMPILER_EXEC_FAST_HH
#define UPR_COMPILER_EXEC_FAST_HH

#include "compiler/analysis/elision.hh"
#include "compiler/exec_lower.hh"
#include "core/runtime.hh"

namespace upr
{

/** Executes lowered modules in either tier. */
class FastExecutor
{
  public:
    struct Config
    {
        /** Pool pmalloc allocates from. */
        PoolId pool = 0;
        /** Instruction budget (runaway-loop guard). */
        std::uint64_t fuel = 50'000'000;
        /** Call-depth limit. */
        std::uint32_t maxDepth = 256;
        /** Which tier to run. */
        ExecTier tier = ExecTier::Model;
    };

    /**
     * @param rt runtime supplying memory (and, in Model tier, timing)
     * @param lm lowered module; must have been lowered for
     *        rt.version() and must outlive the executor
     */
    FastExecutor(Runtime &rt, const LoweredModule &lm, Config config);

    /** Tier and the rest of the config from rt.config().execTier. */
    FastExecutor(Runtime &rt, const LoweredModule &lm);

    /** Call @p name with integer/pointer arguments. */
    std::uint64_t call(const std::string &name,
                       const std::vector<std::uint64_t> &args = {});

    /** Instructions executed so far (Interpreter-identical). */
    std::uint64_t instructionCount() const
    {
        // Derived, not stored: fuel is the only counter maintained.
        return config_.fuel - fuelLeft_;
    }

    /** Dynamic checks executed by plan-directed sites. */
    std::uint64_t dynamicCheckCount() const { return dynChecks_; }

    ExecTier tier() const { return config_.tier; }

  private:
    /**
     * The Native tier's hot state, threaded through each exec frame
     * as locals so the dispatch loop keeps it in registers instead
     * of reloading members across every opaque runtime call:
     *
     *  - the raw-memory window: the last plain-memory region
     *    touched, exposed as host memory so a load or store is one
     *    bounds compare plus a memcpy. Dropped by every op that can
     *    remap regions, grow a backing, or change plain-memory state
     *    (alloc/free ops, returning from a call) — between those the
     *    executor is the runtime's only client, so it stays valid.
     *    All IR accesses are 8 bytes, so the limit is size - 8 and
     *    the check is a single unsigned compare; an invalid window
     *    sets base to kNoWindow, which no 48-bit simulated address
     *    can fall within.
     *
     *  - the one-entry pool-base cache, validated against pool id
     *    and size (out-of-range offsets still take the manager's
     *    slow path and raise its typed faults). No attach-epoch
     *    check: only pool attach/detach moves a pool, no executed op
     *    can do either, and the cache dies with the frame.
     *
     * Fuel and the dynamic-check count are mirrored here too and
     * flushed back to the executor at frame exit, around calls, and
     * on unwind (see exec()'s catch block).
     */
    struct Frame
    {
        static constexpr SimAddr kNoWindow = SimAddr(1) << 62;

        SimAddr winBase = kNoWindow;
        Bytes winLim = 0;
        std::uint8_t *winData = nullptr;

        PoolId cachePool = 0;
        SimAddr cacheBase = 0;
        Bytes cacheSize = 0;

        std::uint64_t fuel = 0;
        std::uint64_t dynChecks = 0;

        void dropWindow()
        {
            winBase = kNoWindow;
            winLim = 0;
        }
    };

    template <ExecTier Tier>
    std::uint64_t exec(const LoweredFunction &lf,
                       std::vector<std::uint64_t> &regs,
                       std::uint32_t depth);

    template <ExecTier Tier>
    SimAddr resolveAddr(Frame &f, std::uint64_t bits, AddrMode mode,
                        std::uint64_t site);

    template <ExecTier Tier>
    std::uint64_t cmpNorm(Frame &f, std::uint64_t bits, CmpMode mode,
                          std::uint64_t site);

    template <ExecTier Tier>
    void execStoreP(Frame &f, std::uint64_t value, SimAddr dest_va,
                    const LoweredInst &in);

    /** Native storePtr: the runtime's stored-bits semantics only. */
    void nativeStorePtr(Frame &f, SimAddr loc_va, PtrBits value);

    /**
     * Native memory access: a raw host load/store when the mapped
     * backing is plain memory, else the full AddressSpace path (same
     * unmapped faults, staged-transaction overlay, persistence
     * bookkeeping).
     */
    template <typename T> T nativeRead(Frame &f, SimAddr va);
    template <typename T> void nativeWrite(Frame &f, SimAddr va,
                                           T value);

    /** Window miss: refill from the space or take the full path. */
    template <typename T> T nativeReadSlow(Frame &f, SimAddr va);
    template <typename T> void nativeWriteSlow(Frame &f, SimAddr va,
                                               T value);

    /** Native ra2va through the frame's pool-base cache. */
    SimAddr fastRa2va(Frame &f, PtrBits p);

    /** Native va2ra through the same cache. */
    PtrBits fastVa2ra(Frame &f, SimAddr va);

    /**
     * Pool behind a txbegin pool slot — the Interpreter's mapping
     * exactly (slot 0 = config pool; others lazily create or reuse
     * "txslot<N>" with the config pool's engine), so cross-tier runs
     * see the same pool table.
     */
    PoolId poolForSlot(std::int64_t slot);

    /**
     * Burn a whole block's fuel (plus its entering edge's phi moves)
     * in one subtraction. Exhaustion faults with the Interpreter's
     * message and instructionCount() == the budget; the only
     * divergence from per-instruction accounting is that the final
     * partial block's side effects are not replayed — fuel is a
     * runaway-loop backstop, not a semantic event.
     */
    void burnBlock(Frame &f, std::uint64_t n);

    Runtime &rt_;
    const LoweredModule *mod_;
    Config config_;

    std::uint64_t dynChecks_ = 0;
    std::uint64_t fuelLeft_;

    /** Parallel-copy scratch for phi-edge moves. */
    std::vector<std::uint64_t> phiScratch_;

    /** Lazily created pools behind nonzero txbegin slots. */
    std::map<std::int64_t, PoolId> txPools_;
};

/**
 * Tier-aware analogue of validateElision(): run @p entry through
 * FastExecutor at @p tier under both plans (fresh SW runtimes) and
 * compare. Backs `uprlint --exec-tier`.
 */
ElisionValidation
validateElisionTier(const ir::Module &mod, const CheckPlan &before,
                    const CheckPlan &after, const std::string &entry,
                    const std::vector<std::uint64_t> &args,
                    ExecTier tier);

} // namespace upr

#endif // UPR_COMPILER_EXEC_FAST_HH
