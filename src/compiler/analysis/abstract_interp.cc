#include "compiler/analysis/abstract_interp.hh"

#include <deque>

namespace upr
{

using namespace ir;

FlowAnalysis::FlowAnalysis(const Module &mod,
                           const InferenceResult &inf)
    : mod_(mod), inf_(inf)
{
    for (const auto &f : mod.functions)
        analyzeFunction(*f);
}

const std::vector<PtrKind> &
FlowAnalysis::blockIn(const Function &fn, BlockId b) const
{
    auto it = perFunction_.find(fn.name);
    upr_assert_msg(it != perFunction_.end(), "@%s was not analyzed",
                   fn.name.c_str());
    return it->second.in.at(b);
}

PtrKind
FlowAnalysis::kindBefore(const Function &fn, BlockId b,
                         std::size_t instIdx, ValueId v) const
{
    std::vector<PtrKind> state = blockIn(fn, b);
    const Block &blk = fn.blocks[b];
    for (std::size_t i = 0; i < instIdx && i < blk.insts.size(); ++i)
        applyInst(fn, blk.insts[i], state);
    return state.at(v);
}

PtrKind
FlowAnalysis::meetOnEq(PtrKind mine, PtrKind other)
{
    if (mine == other)
        return mine;
    if (mine == PtrKind::NoInfo || other == PtrKind::NoInfo)
        return PtrKind::NoInfo;
    // Equality with a DRAM pointer: the named object is in DRAM and
    // DRAM objects have a unique pointer form.
    if (other == PtrKind::VaDram) {
        return mine == PtrKind::Unknown ? PtrKind::VaDram
                                        : PtrKind::NoInfo;
    }
    // Equality with an NVM-side pointer (Ra or VaNvm): a VaDram
    // partner is infeasible; Unknown stays Unknown (the partner may
    // hold either NVM form); Ra==VaNvm is feasible with forms intact.
    if (other == PtrKind::Ra || other == PtrKind::VaNvm) {
        if (mine == PtrKind::VaDram)
            return PtrKind::NoInfo;
        return mine;
    }
    // other == Unknown: no information about the partner.
    return mine;
}

void
FlowAnalysis::applyInst(const Function &fn, const Inst &in,
                        std::vector<PtrKind> &state) const
{
    switch (in.op) {
      case Op::Alloca:
      case Op::Malloc:
        state[in.result] = PtrKind::VaDram;
        break;
      case Op::Pmalloc:
        state[in.result] = PtrKind::Ra;
        break;
      case Op::Load:
        if (in.type == Type::Ptr)
            state[in.result] = PtrKind::Unknown;
        break;
      case Op::IntToPtr:
        state[in.result] = PtrKind::Unknown;
        break;
      case Op::Gep:
        // Pointer arithmetic preserves representation (Fig 4).
        state[in.result] = state[in.operands[0]];
        break;
      case Op::Call:
        // Interprocedural facts stay flow-insensitive: take the
        // base inference's (call-graph fixpoint) result kind.
        if (in.type == Type::Ptr) {
            const PtrKind k = inf_.kindOf(fn, in.result);
            state[in.result] =
                k == PtrKind::NoInfo ? PtrKind::Unknown : k;
        }
        break;
      case Op::Phi:
        // Phi results are written by edgeState; replaying a block
        // prefix must not disturb them.
        break;
      default:
        break;
    }
}

std::vector<PtrKind>
FlowAnalysis::edgeState(const Function &fn, BlockId from,
                        const std::vector<PtrKind> &out, BlockId to,
                        bool is_true_edge) const
{
    std::vector<PtrKind> s = out;

    // Guard narrowing: br %c where %c = eq %a, %b (possibly through
    // ptrtoint images of pointers).
    const Inst &term = fn.blocks[from].insts.back();
    if (term.op == Op::Br && is_true_edge) {
        // Find the SSA definition of the condition.
        const Inst *cond = nullptr;
        for (const Block &b : fn.blocks) {
            for (const Inst &in : b.insts) {
                if (in.result == term.operands[0]) {
                    cond = &in;
                    break;
                }
            }
            if (cond)
                break;
        }
        if (cond && cond->op == Op::Eq) {
            auto underlyingPtr = [&](ValueId v) -> ValueId {
                if (fn.valueTypes[v] == Type::Ptr)
                    return v;
                // i64 side: look through a ptrtoint image.
                for (const Block &b : fn.blocks) {
                    for (const Inst &in : b.insts) {
                        if (in.result == v) {
                            if (in.op == Op::PtrToInt)
                                return in.operands[0];
                            return kNoValue;
                        }
                    }
                }
                return kNoValue;
            };
            const ValueId pa = underlyingPtr(cond->operands[0]);
            const ValueId pb = underlyingPtr(cond->operands[1]);
            if (pa != kNoValue && pb != kNoValue) {
                const PtrKind ka = s[pa];
                const PtrKind kb = s[pb];
                s[pa] = meetOnEq(ka, kb);
                s[pb] = meetOnEq(kb, ka);
            }
        }
    }

    // Phi results take the kind flowing along this edge.
    std::vector<std::pair<ValueId, PtrKind>> writes;
    for (const Inst &in : fn.blocks[to].insts) {
        if (in.op != Op::Phi)
            break;
        for (std::size_t i = 0; i < in.phiBlocks.size(); ++i) {
            if (in.phiBlocks[i] == from) {
                writes.emplace_back(
                    in.result, in.type == Type::Ptr
                                   ? s[in.operands[i]]
                                   : PtrKind::NoInfo);
                break;
            }
        }
    }
    for (auto [r, k] : writes)
        s[r] = k;
    return s;
}

void
FlowAnalysis::analyzeFunction(const Function &fn)
{
    FnFlow &ff = perFunction_[fn.name];
    ff.in.assign(fn.blocks.size(),
                 std::vector<PtrKind>(fn.numValues(),
                                      PtrKind::NoInfo));
    if (fn.blocks.empty())
        return;

    // Entry: parameter kinds come from the interprocedural fixpoint.
    for (std::size_t i = 0; i < fn.paramValues.size(); ++i) {
        if (fn.paramTypes[i] == Type::Ptr) {
            const PtrKind k = inf_.kindOf(fn, fn.paramValues[i]);
            ff.in[0][fn.paramValues[i]] =
                k == PtrKind::NoInfo ? PtrKind::Unknown : k;
        }
    }

    std::deque<BlockId> worklist{0};
    std::vector<bool> queued(fn.blocks.size(), false);
    queued[0] = true;

    while (!worklist.empty()) {
        const BlockId b = worklist.front();
        worklist.pop_front();
        queued[b] = false;

        std::vector<PtrKind> out = ff.in[b];
        for (const Inst &in : fn.blocks[b].insts)
            applyInst(fn, in, out);

        const Inst &term = fn.blocks[b].insts.back();
        struct Edge
        {
            BlockId to;
            bool isTrue;
        };
        Edge edges[2];
        int n_edges = 0;
        if (term.op == Op::Br) {
            edges[n_edges++] = {term.target0, true};
            edges[n_edges++] = {term.target1, false};
        } else if (term.op == Op::Jmp) {
            edges[n_edges++] = {term.target0, false};
        }

        for (int e = 0; e < n_edges; ++e) {
            const std::vector<PtrKind> es =
                edgeState(fn, b, out, edges[e].to, edges[e].isTrue);
            std::vector<PtrKind> &dst = ff.in[edges[e].to];
            bool changed = false;
            for (std::size_t v = 0; v < dst.size(); ++v) {
                const PtrKind j = joinKind(dst[v], es[v]);
                if (j != dst[v]) {
                    dst[v] = j;
                    changed = true;
                }
            }
            if (changed && !queued[edges[e].to]) {
                queued[edges[e].to] = true;
                worklist.push_back(edges[e].to);
            }
        }
    }
}

} // namespace upr
