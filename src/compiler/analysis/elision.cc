#include "compiler/analysis/elision.hh"

#include <set>

#include "compiler/interpreter.hh"
#include "core/runtime.hh"
#include "obs/trace_ring.hh"

namespace upr
{

using namespace ir;

namespace
{

/** The register a plan's addr site refers to, or kNoValue. */
ValueId
addrOperand(const Inst &in)
{
    switch (in.op) {
      case Op::Load:
      case Op::Free:
      case Op::Pfree:
        return in.operands[0];
      case Op::Store:
      case Op::StoreP:
        return in.operands[1];
      default:
        return kNoValue;
    }
}

void
prove(ElisionResult &res, CheckPlan &plan, const Function &fn,
      BlockId b, std::size_t i, const Inst &in, const char *role,
      const char *kind, std::string reason)
{
    ++res.elidedSites;
    ++plan.elidedSites;
    // Trace each proved site: 'a' is the source line, 'b' the
    // running total of elided checks.
    obs::traceEvent(obs::EventKind::ElisionDecision,
                    static_cast<std::uint64_t>(in.loc.line),
                    res.elidedSites);
    res.proofs.push_back(ElisionProof{fn.name, in.loc, b, i, role,
                                      kind, std::move(reason)});
}

/**
 * Rule 1: flow facts prove a kind the flow-insensitive inference
 * could not; the dynamic check becomes the planted conversion.
 */
void
applyFlowProofs(const Function &fn, const FlowAnalysis &flow,
                CheckPlan &plan, FunctionPlan &fp, ElisionResult &res)
{
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            const Inst &in = fn.blocks[b].insts[i];
            InstPlan &ip = fp.perBlock[b][i];
            if (ip.addrDynamic) {
                const ValueId a = addrOperand(in);
                const PtrKind k =
                    flow.kindBeforeChecked(fn, b, i, a);
                if (isStaticKind(k)) {
                    ip.addrDynamic = false;
                    ip.addrStaticConvert = (k == PtrKind::Ra);
                    --plan.remainingSites;
                    prove(res, plan, fn, b, i, in, "addr",
                          "flow-proved-kind",
                          std::string("flow-proved-kind: address is ") +
                          kindName(k));
                }
            }
            if (ip.valueDynamic) {
                const PtrKind k =
                    flow.kindBeforeChecked(fn, b, i, in.operands[0]);
                if (isStaticKind(k)) {
                    ip.valueDynamic = false;
                    --plan.remainingSites;
                    prove(res, plan, fn, b, i, in, "value",
                          "flow-proved-kind",
                          std::string("flow-proved-kind: stored "
                                      "value is ") + kindName(k));
                }
            }
            if (ip.cmp0Dynamic) {
                const PtrKind k =
                    flow.kindBeforeChecked(fn, b, i, in.operands[0]);
                if (isStaticKind(k)) {
                    ip.cmp0Dynamic = false;
                    --plan.remainingSites;
                    prove(res, plan, fn, b, i, in, "op0",
                          "flow-proved-kind",
                          std::string("flow-proved-kind: operand "
                                      "is ") + kindName(k));
                }
            }
            if (ip.cmp1Dynamic) {
                const PtrKind k =
                    flow.kindBeforeChecked(fn, b, i, in.operands[1]);
                if (isStaticKind(k)) {
                    ip.cmp1Dynamic = false;
                    --plan.remainingSites;
                    prove(res, plan, fn, b, i, in, "op1",
                          "flow-proved-kind",
                          std::string("flow-proved-kind: operand "
                                      "is ") + kindName(k));
                }
            }
        }
    }
}

/**
 * Rule 3: must-availability of already-checked registers. A
 * register's form is immutable (SSA), so a dynamic check dominated
 * by another dynamic check of the same register on every path can
 * reuse its outcome: the site keeps only the conversion
 * (addrRefined, the cross-block generalization of flow_refine).
 */
void
applyAvailableChecks(const Function &fn, CheckPlan &plan,
                     FunctionPlan &fp, ElisionResult &res)
{
    const std::size_t nb = fn.blocks.size();
    if (nb == 0)
        return;

    // Predecessors.
    std::vector<std::vector<BlockId>> preds(nb);
    for (BlockId b = 0; b < nb; ++b) {
        const Inst &term = fn.blocks[b].insts.back();
        if (term.op == Op::Br) {
            preds[term.target0].push_back(b);
            preds[term.target1].push_back(b);
        } else if (term.op == Op::Jmp) {
            preds[term.target0].push_back(b);
        }
    }

    // A block's local effect: registers checked by the time it ends,
    // given a set available on entry.
    auto walk = [&](BlockId b, std::set<ValueId> avail) {
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            const Inst &in = fn.blocks[b].insts[i];
            const InstPlan &ip = fp.perBlock[b][i];
            if (ip.addrDynamic || ip.addrRefined)
                avail.insert(addrOperand(in));
            if (ip.valueDynamic)
                avail.insert(in.operands[0]);
            if (ip.cmp0Dynamic)
                avail.insert(in.operands[0]);
            if (ip.cmp1Dynamic)
                avail.insert(in.operands[1]);
        }
        return avail;
    };

    // Must-dataflow to fixpoint: in[b] = ∩ out[p]. Universe init
    // for non-entry blocks keeps loop back-edges optimistic.
    const bool universe = true;
    std::vector<std::set<ValueId>> in(nb);
    std::vector<bool> isUniverse(nb, universe);
    isUniverse[0] = false;

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 1; b < nb; ++b) {
            if (preds[b].empty())
                continue;
            bool meet_universe = true;
            std::set<ValueId> meet;
            for (BlockId p : preds[b]) {
                if (isUniverse[p])
                    continue;
                const std::set<ValueId> po = walk(p, in[p]);
                if (meet_universe) {
                    meet = po;
                    meet_universe = false;
                } else {
                    std::set<ValueId> inter;
                    for (ValueId v : meet) {
                        if (po.count(v))
                            inter.insert(v);
                    }
                    meet.swap(inter);
                }
            }
            if (meet_universe)
                continue; // all preds still optimistic
            if (isUniverse[b] || meet != in[b]) {
                in[b] = std::move(meet);
                isUniverse[b] = false;
                changed = true;
            }
        }
    }

    // Transform: re-checks of available registers keep only the
    // conversion.
    for (BlockId b = 0; b < nb; ++b) {
        if (isUniverse[b] && b != 0)
            continue; // unreachable
        std::set<ValueId> avail = in[b];
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            const Inst &in_i = fn.blocks[b].insts[i];
            InstPlan &ip = fp.perBlock[b][i];
            const ValueId a =
                ip.addrDynamic ? addrOperand(in_i) : kNoValue;
            if (a != kNoValue && avail.count(a)) {
                ip.addrDynamic = false;
                ip.addrRefined = true;
                --plan.remainingSites;
                ++plan.refinedSites;
                prove(res, plan, fn, b, i, in_i, "addr",
                      "available-check",
                      "available-check: form of this register is "
                      "checked on every path to this site");
            }
            if (ip.addrDynamic || ip.addrRefined)
                avail.insert(addrOperand(in_i));
            if (ip.valueDynamic)
                avail.insert(in_i.operands[0]);
            if (ip.cmp0Dynamic)
                avail.insert(in_i.operands[0]);
            if (ip.cmp1Dynamic)
                avail.insert(in_i.operands[1]);
        }
    }
}

/**
 * Rule 2: the storep destination's determineX is implied by the
 * address resolution at the same instruction.
 */
void
applyDestImplied(const Function &fn, CheckPlan &plan,
                 FunctionPlan &fp, ElisionResult &res)
{
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            InstPlan &ip = fp.perBlock[b][i];
            if (!ip.destDynamic)
                continue;
            ip.destDynamic = false;
            ip.destElided = true;
            --plan.remainingSites;
            prove(res, plan, fn, b, i, fn.blocks[b].insts[i], "dest",
                  "dest-implied-by-addr",
                  "dest-implied-by-addr: the resolved destination "
                  "VA's NVM bit is the medium; no separate "
                  "determineX needed");
        }
    }
}

} // namespace

ElisionResult
elideChecks(const Module &mod, const FlowAnalysis &flow,
            CheckPlan &plan)
{
    ElisionResult res;
    for (const auto &f : mod.functions) {
        FunctionPlan &fp = plan.perFunction.at(f->name);
        applyFlowProofs(*f, flow, plan, fp, res);
        applyAvailableChecks(*f, plan, fp, res);
        applyDestImplied(*f, plan, fp, res);
    }
    return res;
}

namespace
{

struct RunOutcome
{
    std::uint64_t result;
    std::uint64_t checks;
    std::uint64_t insts;
};

RunOutcome
runPlan(const Module &mod, const CheckPlan &plan,
        const std::string &entry,
        const std::vector<std::uint64_t> &args)
{
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("elide", 32 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const std::uint64_t r = interp.call(entry, args);
    return RunOutcome{r, interp.dynamicCheckCount(),
                      interp.instructionCount()};
}

} // namespace

ElisionValidation
validateElision(const Module &mod, const CheckPlan &before,
                const CheckPlan &after, const std::string &entry,
                const std::vector<std::uint64_t> &args)
{
    const RunOutcome b = runPlan(mod, before, entry, args);
    const RunOutcome a = runPlan(mod, after, entry, args);
    ElisionValidation v;
    v.resultBefore = b.result;
    v.resultAfter = a.result;
    v.checksBefore = b.checks;
    v.checksAfter = a.checks;
    v.bitIdentical = b.result == a.result && b.insts == a.insts;
    return v;
}

} // namespace upr
