#include "compiler/analysis/fig4_conformance.hh"

#include <map>

namespace upr
{

using namespace ir;

const char *
siteVerdictName(SiteVerdict v)
{
    switch (v) {
      case SiteVerdict::ProvedSafe:   return "proved-safe";
      case SiteVerdict::NeedsDynamic: return "needs-dynamic-check";
      case SiteVerdict::DiagnosedUB:  return "diagnosed-UB";
    }
    return "?";
}

namespace
{

/** SSA allocation provenance of one register. */
struct Provenance
{
    bool known = false;
    std::int64_t size = 0; //!< allocation size in bytes
    std::int64_t off = 0;  //!< accumulated byte offset from base
    ValueId base = kNoValue; //!< allocating instruction's result
};

/**
 * Per-register provenance: follows gep chains back to the single
 * SSA allocation they derive from. Registers defined by phi, load,
 * call, or casts have no provenance. Blocks are scanned in layout
 * order; the verifier's def-before-use guarantee makes defs appear
 * before uses for non-phi chains.
 */
std::map<ValueId, Provenance>
computeProvenance(const Function &fn)
{
    std::map<ValueId, Provenance> prov;
    for (const Block &b : fn.blocks) {
        for (const Inst &in : b.insts) {
            if (in.result == kNoValue)
                continue;
            switch (in.op) {
              case Op::Alloca:
              case Op::Malloc:
              case Op::Pmalloc:
                prov[in.result] =
                    Provenance{true, in.imm, 0, in.result};
                break;
              case Op::Gep: {
                auto it = prov.find(in.operands[0]);
                if (it != prov.end() && it->second.known) {
                    Provenance p = it->second;
                    p.off += in.imm;
                    prov[in.result] = p;
                }
                break;
              }
              default:
                break;
            }
        }
    }
    return prov;
}

/** Classifier for one function. */
class Checker
{
  public:
    Checker(const Function &fn, const FlowAnalysis &flow,
            DiagnosticEngine &diags, ConformanceReport &report)
        : fn_(fn), flow_(flow), diags_(diags), report_(report),
          prov_(computeProvenance(fn))
    {
    }

    void
    run()
    {
        for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
            for (std::size_t i = 0; i < fn_.blocks[b].insts.size();
                 ++i) {
                checkInst(b, i, fn_.blocks[b].insts[i]);
            }
        }
    }

  private:
    PtrKind
    kindAt(BlockId b, std::size_t i, ValueId v) const
    {
        return flow_.kindBeforeChecked(fn_, b, i, v);
    }

    SiteReport &
    addSite(BlockId b, std::size_t i, const char *role, PtrKind k,
            SrcLoc loc)
    {
        SiteReport s;
        s.function = fn_.name;
        s.block = b;
        s.instIdx = i;
        s.role = role;
        s.fact = k;
        s.loc = loc;
        if (isStaticKind(k)) {
            s.verdict = SiteVerdict::ProvedSafe;
            ++report_.provedSafe;
        } else {
            s.verdict = SiteVerdict::NeedsDynamic;
            ++report_.needsDynamic;
        }
        report_.sites.push_back(std::move(s));
        return report_.sites.back();
    }

    void
    markUB(SiteReport &s)
    {
        if (s.verdict == SiteVerdict::ProvedSafe)
            --report_.provedSafe;
        else
            --report_.needsDynamic;
        s.verdict = SiteVerdict::DiagnosedUB;
        ++report_.diagnosedUB;
    }

    std::string
    ref(ValueId v) const
    {
        return "%" + fn_.valueNames[v];
    }

    void
    checkInst(BlockId b, std::size_t i, const Inst &in)
    {
        switch (in.op) {
          case Op::Load:
          case Op::Free:
          case Op::Pfree:
            addSite(b, i, "addr",
                    kindAt(b, i, in.operands[0]), in.loc);
            break;
          case Op::Store:
            addSite(b, i, "addr",
                    kindAt(b, i, in.operands[1]), in.loc);
            break;
          case Op::StoreP:
            checkStoreP(b, i, in);
            break;
          case Op::Gep:
            checkGep(in);
            break;
          case Op::PtrToInt:
            addSite(b, i, "op0",
                    kindAt(b, i, in.operands[0]), in.loc);
            break;
          case Op::Eq:
          case Op::Lt:
            checkCompare(b, i, in);
            break;
          default:
            break;
        }
    }

    void
    checkStoreP(BlockId b, std::size_t i, const Inst &in)
    {
        const PtrKind addr_k = kindAt(b, i, in.operands[1]);
        const PtrKind val_k = kindAt(b, i, in.operands[0]);
        addSite(b, i, "addr", addr_k, in.loc);
        addSite(b, i, "dest", addr_k, in.loc);
        const std::size_t dest_idx = report_.sites.size() - 1;
        addSite(b, i, "value", val_k, in.loc);
        const std::size_t val_idx = report_.sites.size() - 1;

        // A provably-DRAM pointer persisted through a provably-NVM
        // destination dangles after restart (Fig 4 has no defined
        // row for it; the runtime's strictStoreP faults here).
        const bool dest_nvm =
            addr_k == PtrKind::Ra || addr_k == PtrKind::VaNvm;
        if (dest_nvm && val_k == PtrKind::VaDram) {
            markUB(report_.sites[dest_idx]);
            markUB(report_.sites[val_idx]);
            diags_.error("fig4-mixed-storep", in.loc,
                         "DRAM pointer " + ref(in.operands[0]) +
                         " stored into NVM destination " +
                         ref(in.operands[1]) +
                         " (dangles after restart)",
                         fn_.name);
        }
    }

    void
    checkGep(const Inst &in)
    {
        // Not a check site (arithmetic preserves representation);
        // provenance still bounds the offset.
        auto it = prov_.find(in.result);
        if (it == prov_.end() || !it->second.known)
            return;
        const Provenance &p = it->second;
        if (p.off < 0 || p.off > p.size) {
            diags_.error(
                "fig4-arith-escape", in.loc,
                "pointer arithmetic on " + ref(in.operands[0]) +
                " reaches byte " + std::to_string(p.off) +
                " of a " + std::to_string(p.size) +
                "-byte allocation (escapes the object)",
                fn_.name);
        }
    }

    void
    checkCompare(BlockId b, std::size_t i, const Inst &in)
    {
        const bool p0 = fn_.valueTypes[in.operands[0]] == Type::Ptr;
        const bool p1 = fn_.valueTypes[in.operands[1]] == Type::Ptr;
        const PtrKind k0 =
            p0 ? kindAt(b, i, in.operands[0]) : PtrKind::NoInfo;
        const PtrKind k1 =
            p1 ? kindAt(b, i, in.operands[1]) : PtrKind::NoInfo;
        SiteReport *s0 =
            p0 ? &addSite(b, i, "op0", k0, in.loc) : nullptr;
        // NOTE: addSite may reallocate report_.sites; take s0 again
        // after the second insertion.
        const std::size_t idx0 = report_.sites.size() - 1;
        SiteReport *s1 =
            p1 ? &addSite(b, i, "op1", k1, in.loc) : nullptr;
        if (p0)
            s0 = &report_.sites[idx0];

        if (!p0 || !p1)
            return;
        const bool distinct_static =
            isStaticKind(k0) && isStaticKind(k1) && k0 != k1 &&
            // Ra vs VaNvm may name the same NVM object; only
            // DRAM-vs-NVM kinds are provably different objects.
            (k0 == PtrKind::VaDram || k1 == PtrKind::VaDram);

        if (in.op == Op::Lt) {
            if (distinct_static) {
                markUB(*s0);
                markUB(*s1);
                diags_.error(
                    "fig4-cross-pool-compare", in.loc,
                    "relational compare between " +
                    std::string(kindName(k0)) + " " +
                    ref(in.operands[0]) + " and " +
                    std::string(kindName(k1)) + " " +
                    ref(in.operands[1]) +
                    " (pointers into different media order "
                    "arbitrarily)",
                    fn_.name);
            } else if (k0 == PtrKind::Ra && k1 == PtrKind::Ra &&
                       !sameAllocation(in.operands[0],
                                       in.operands[1])) {
                diags_.warning(
                    "fig4-pool-identity", in.loc,
                    "relational compare between relative addresses " +
                    ref(in.operands[0]) + " and " +
                    ref(in.operands[1]) +
                    " not proved to share an allocation",
                    fn_.name);
            }
        } else if (in.op == Op::Eq && distinct_static) {
            diags_.warning(
                "fig4-constant-compare", in.loc,
                "equality between " + std::string(kindName(k0)) +
                " " + ref(in.operands[0]) + " and " +
                std::string(kindName(k1)) + " " +
                ref(in.operands[1]) + " is always false",
                fn_.name);
        }
    }

    bool
    sameAllocation(ValueId a, ValueId b) const
    {
        auto ia = prov_.find(a);
        auto ib = prov_.find(b);
        return ia != prov_.end() && ib != prov_.end() &&
               ia->second.known && ib->second.known &&
               ia->second.base == ib->second.base;
    }

    const Function &fn_;
    const FlowAnalysis &flow_;
    DiagnosticEngine &diags_;
    ConformanceReport &report_;
    std::map<ValueId, Provenance> prov_;
};

} // namespace

ConformanceReport
checkFig4Conformance(const Module &mod, const FlowAnalysis &flow,
                     DiagnosticEngine &diags)
{
    ConformanceReport report;
    for (const auto &f : mod.functions)
        Checker(*f, flow, diags, report).run();
    return report;
}

} // namespace upr
