#include "compiler/analysis/persistency.hh"

#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace upr
{

using namespace ir;

bool
moduleUsesTx(const Module &mod)
{
    for (const auto &fptr : mod.functions) {
        for (const Block &b : fptr->blocks) {
            for (const Inst &in : b.insts) {
                if (in.op == Op::TxBegin || in.op == Op::TxCommit ||
                    in.op == Op::TxAbort) {
                    return true;
                }
            }
        }
    }
    return false;
}

namespace
{

/** Transactional state of a program point (see header comment). */
enum class St : std::uint8_t
{
    Bottom,   //!< unreached
    None,     //!< no transaction open
    In,       //!< transaction open on pool slot `slot`
    Conflict, //!< open on some paths only (or on different slots)
    Unknown,  //!< poisoned by a call into transaction-using code
};

/** An exact store target: (root register, constant byte offset). */
using Location = std::pair<ValueId, std::int64_t>;

/** The abstract fact at one program point. */
struct Fact
{
    St st = St::Bottom;
    std::int64_t slot = 0;
    /** Must-set: pmalloc results allocated since txbegin. */
    std::set<ValueId> fresh;
    /** Must-set: locations already stored in this transaction. */
    std::set<Location> logged;

    bool
    operator==(const Fact &o) const
    {
        return st == o.st && slot == o.slot && fresh == o.fresh &&
               logged == o.logged;
    }
};

/** Intersect @p into with @p from; true if @p into shrank. */
template <typename SetT>
bool
intersectInto(SetT &into, const SetT &from)
{
    bool changed = false;
    for (auto it = into.begin(); it != into.end();) {
        if (from.count(*it) == 0) {
            it = into.erase(it);
            changed = true;
        } else {
            ++it;
        }
    }
    return changed;
}

/** Lattice join; true if @p into changed. */
bool
joinInto(Fact &into, const Fact &from)
{
    if (from.st == St::Bottom)
        return false;
    if (into.st == St::Bottom) {
        into = from;
        return true;
    }
    // Unknown absorbs everything.
    if (into.st == St::Unknown)
        return false;
    if (from.st == St::Unknown) {
        into = Fact{St::Unknown, 0, {}, {}};
        return true;
    }
    if (into.st == from.st &&
        (into.st != St::In || into.slot == from.slot)) {
        if (into.st != St::In)
            return false;
        bool changed = intersectInto(into.fresh, from.fresh);
        changed |= intersectInto(into.logged, from.logged);
        return changed;
    }
    // Mixed None/In/Conflict (or differing slots): Conflict.
    if (into.st == St::Conflict && into.fresh.empty() &&
        into.logged.empty()) {
        return false;
    }
    into = Fact{St::Conflict, 0, {}, {}};
    return true;
}

/** Root register and constant offset of a store target. */
struct Root
{
    ValueId root = kNoValue;
    std::int64_t off = 0;
    /** False once a variable-offset gep is crossed. */
    bool exactOff = true;
};

/** Per-function precomputed context. */
struct FnCtx
{
    const Function &fn;
    /** Defining instruction of each register (null for params). */
    std::vector<const Inst *> defInst;
    /** Block holding each register's definition (kNoBlock: param). */
    std::vector<BlockId> defBlock;
    /** Per block: a txcommit is reachable from its *end*. */
    std::vector<char> commitFromEnd;
    /** Diagnostics on: the function directly contains tx opcodes. */
    bool diagGate = false;

    explicit FnCtx(const Function &f) : fn(f)
    {
        defInst.assign(fn.numValues(), nullptr);
        defBlock.assign(fn.numValues(), kNoBlock);
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            for (const Inst &in : fn.blocks[b].insts) {
                if (in.result != kNoValue) {
                    defInst[in.result] = &in;
                    defBlock[in.result] = b;
                }
                if (in.op == Op::TxBegin || in.op == Op::TxCommit ||
                    in.op == Op::TxAbort) {
                    diagGate = true;
                }
            }
        }
        computeCommitReach();
    }

    std::vector<BlockId>
    successors(BlockId b) const
    {
        const Inst &last = fn.blocks[b].insts.back();
        switch (last.op) {
          case Op::Br:  return {last.target0, last.target1};
          case Op::Jmp: return {last.target0};
          default:      return {};
        }
    }

    /** Walk constant-gep chains back to the underlying object. */
    Root
    resolveRoot(ValueId v) const
    {
        Root r;
        r.root = v;
        for (;;) {
            const Inst *def = defInst[r.root];
            if (!def || def->op != Op::Gep)
                return r;
            if (def->operands.size() > 1) {
                // Variable offset: still the same object (an
                // out-of-object store is UB regardless), but the
                // exact cell is unknown.
                r.exactOff = false;
            } else {
                r.off += def->imm;
            }
            r.root = def->operands[0];
        }
    }

    /** True if the store at (b, i) can still reach a txcommit. */
    bool
    commitReachable(BlockId b, std::size_t i) const
    {
        const Block &blk = fn.blocks[b];
        for (std::size_t j = i + 1; j < blk.insts.size(); ++j) {
            if (blk.insts[j].op == Op::TxCommit)
                return true;
        }
        return commitFromEnd[b] != 0;
    }

  private:
    void
    computeCommitReach()
    {
        commitFromEnd.assign(fn.blocks.size(), 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (BlockId b = 0; b < fn.blocks.size(); ++b) {
                if (commitFromEnd[b])
                    continue;
                for (BlockId s : successors(b)) {
                    bool has = commitFromEnd[s] != 0;
                    for (const Inst &in : fn.blocks[s].insts) {
                        if (in.op == Op::TxCommit) {
                            has = true;
                            break;
                        }
                    }
                    if (has) {
                        commitFromEnd[b] = 1;
                        changed = true;
                        break;
                    }
                }
            }
        }
    }
};

/** One proven LogMode, pending error-free confirmation. */
struct Proposal
{
    BlockId block;
    std::size_t inst;
    LogMode mode;
};

/** Whole-analysis driver. */
class Analyzer
{
  public:
    Analyzer(const Module &mod, const FlowAnalysis &flow,
             CheckPlan *plan, PersistencyResult &out)
        : mod_(mod), flow_(flow), plan_(plan), out_(out)
    {
        computeTxUsers();
    }

    void
    run()
    {
        for (const auto &fptr : mod_.functions)
            analyzeFunction(*fptr);
        out_.diags.sortByLocation();
    }

  private:
    /** Transitive closure: which functions reach a tx opcode. */
    void
    computeTxUsers()
    {
        for (const auto &fptr : mod_.functions) {
            FnCtx ctx(*fptr);
            if (ctx.diagGate)
                txUsers_.insert(fptr->name);
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &fptr : mod_.functions) {
                if (txUsers_.count(fptr->name))
                    continue;
                for (const Block &b : fptr->blocks) {
                    for (const Inst &in : b.insts) {
                        if (in.op == Op::Call &&
                            txUsers_.count(in.callee)) {
                            txUsers_.insert(fptr->name);
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
    }

    void
    analyzeFunction(const Function &fn)
    {
        FnCtx ctx(fn);

        // Fixpoint over per-block entry facts.
        std::vector<Fact> in(fn.blocks.size());
        in[0].st = St::None;
        std::deque<BlockId> work{0};
        std::vector<char> queued(fn.blocks.size(), 0);
        queued[0] = 1;
        while (!work.empty()) {
            const BlockId b = work.front();
            work.pop_front();
            queued[b] = 0;
            Fact f = in[b];
            transferBlock(ctx, b, f, /*emit=*/false, nullptr);
            for (BlockId s : ctx.successors(b)) {
                if (joinInto(in[s], f) && !queued[s]) {
                    queued[s] = 1;
                    work.push_back(s);
                }
            }
        }

        // Reporting pass: replay each reachable block once from its
        // fixed entry fact, emitting diagnostics and proofs.
        const std::size_t errs_before = out_.diags.errorCount();
        std::vector<Proposal> proposals;
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            if (in[b].st == St::Bottom)
                continue;
            Fact f = in[b];
            transferBlock(ctx, b, f, /*emit=*/true, &proposals);
        }

        // Proofs hold only in functions free of persistency errors.
        if (out_.diags.errorCount() != errs_before || !plan_)
            return;
        auto it = plan_->perFunction.find(fn.name);
        if (it == plan_->perFunction.end())
            return;
        for (const Proposal &p : proposals) {
            it->second.perBlock[p.block][p.inst].logMode = p.mode;
            ++out_.logElided;
            if (p.mode == LogMode::ElideFreshAlloc)
                ++out_.elidedFresh;
            else
                ++out_.elidedDominated;
        }
    }

    /**
     * Transfer @p f through block @p b. With @p emit, diagnostics go
     * to the engine and proofs to @p proposals (counters too).
     */
    void
    transferBlock(const FnCtx &ctx, BlockId b, Fact &f, bool emit,
                  std::vector<Proposal> *proposals)
    {
        // Kill-on-entry: facts rooted at registers defined in this
        // block describe the previous loop iteration's incarnation.
        for (auto it = f.fresh.begin(); it != f.fresh.end();) {
            if (ctx.defBlock[*it] == b)
                it = f.fresh.erase(it);
            else
                ++it;
        }
        for (auto it = f.logged.begin(); it != f.logged.end();) {
            if (ctx.defBlock[it->first] == b)
                it = f.logged.erase(it);
            else
                ++it;
        }

        const Block &blk = ctx.fn.blocks[b];
        for (std::size_t i = 0; i < blk.insts.size(); ++i)
            transferInst(ctx, b, i, blk.insts[i], f, emit, proposals);
    }

    void
    transferInst(const FnCtx &ctx, BlockId b, std::size_t i,
                 const Inst &in, Fact &f, bool emit,
                 std::vector<Proposal> *proposals)
    {
        const Function &fn = ctx.fn;
        switch (in.op) {
          case Op::TxBegin:
            if (f.st == St::Unknown)
                break;
            if (emit && ctx.diagGate &&
                (f.st == St::In || f.st == St::Conflict)) {
                out_.diags.error(
                    "persist-double-txbegin", in.loc,
                    f.st == St::In
                        ? "txbegin while a transaction is already open"
                        : "txbegin while a transaction is already "
                          "open on some path",
                    fn.name);
            }
            f = Fact{St::In, in.imm, {}, {}};
            break;

          case Op::TxCommit:
          case Op::TxAbort:
            if (f.st == St::Unknown)
                break;
            if (emit && ctx.diagGate && f.st != St::In) {
                out_.diags.error(
                    "persist-unbalanced-txn", in.loc,
                    std::string(opName(in.op)) +
                        (f.st == St::Conflict
                             ? " with a transaction open on only "
                               "some paths"
                             : " with no open transaction"),
                    fn.name);
            }
            f = Fact{St::None, 0, {}, {}};
            break;

          case Op::Ret:
            if (emit && ctx.diagGate &&
                (f.st == St::In || f.st == St::Conflict)) {
                out_.diags.error(
                    "persist-unbalanced-txn", in.loc,
                    f.st == St::In
                        ? "return with a transaction still open"
                        : "return with a transaction still open on "
                          "some path",
                    fn.name);
            }
            break;

          case Op::Pmalloc:
            if (f.st == St::In)
                f.fresh.insert(in.result);
            break;

          case Op::Free:
          case Op::Pfree: {
            const Root r = ctx.resolveRoot(in.operands[0]);
            f.fresh.erase(r.root);
            for (auto it = f.logged.begin(); it != f.logged.end();) {
                if (it->first == r.root)
                    it = f.logged.erase(it);
                else
                    ++it;
            }
            break;
          }

          case Op::Store:
          case Op::StoreP:
            transferStore(ctx, b, i, in, f, emit, proposals);
            break;

          case Op::Call:
            // A callee that reaches tx opcodes may leave any
            // transactional state behind: poison. Any other call may
            // still write memory, invalidating the must-sets.
            if (txUsers_.count(in.callee))
                f = Fact{St::Unknown, 0, {}, {}};
            else {
                f.fresh.clear();
                f.logged.clear();
            }
            break;

          default:
            break;
        }
    }

    void
    transferStore(const FnCtx &ctx, BlockId b, std::size_t i,
                  const Inst &in, Fact &f, bool emit,
                  std::vector<Proposal> *proposals)
    {
        const Function &fn = ctx.fn;
        // Both store and storep address through operand 1.
        const ValueId addr = in.operands[1];
        const PtrKind k = flow_.kindBeforeChecked(fn, b, i, addr);
        if (k != PtrKind::Ra && k != PtrKind::VaNvm)
            return; // DRAM or unclassifiable: not a persistency site
        if (f.st == St::Unknown)
            return;

        if (f.st != St::In) {
            if (emit && ctx.diagGate) {
                out_.diags.error(
                    "persist-store-outside-txn", in.loc,
                    f.st == St::Conflict
                        ? "NVM store not covered by a transaction on "
                          "every path"
                        : "NVM store outside any transaction",
                    fn.name);
            }
            return;
        }

        const Root r = ctx.resolveRoot(addr);
        if (emit) {
            ++out_.txStores;
            // Every pmalloc allocates from the executor's config
            // pool (slot 0): a pmalloc-rooted write inside a
            // transaction on another pool is never covered by it.
            const Inst *rootDef = ctx.defInst[r.root];
            if (ctx.diagGate && f.slot != 0 && rootDef &&
                rootDef->op == Op::Pmalloc) {
                out_.diags.error(
                    "persist-cross-pool-write", in.loc,
                    "store to pool-0 object inside a transaction on "
                    "pool slot " + std::to_string(f.slot),
                    fn.name);
            }
            if (ctx.diagGate && !ctx.commitReachable(b, i)) {
                out_.diags.warning(
                    "persist-commit-unreachable", in.loc,
                    "store inside a transaction from which no "
                    "txcommit is reachable; its effects always "
                    "roll back",
                    fn.name);
            }
        }

        LogMode mode = LogMode::MustLog;
        if (f.fresh.count(r.root)) {
            mode = LogMode::ElideFreshAlloc;
        } else if (r.exactOff &&
                   f.logged.count(Location{r.root, r.off})) {
            mode = LogMode::ElideDominatedWrite;
        }
        if (emit && proposals && mode != LogMode::MustLog)
            proposals->push_back(Proposal{b, i, mode});
        if (r.exactOff)
            f.logged.insert(Location{r.root, r.off});
    }

    const Module &mod_;
    const FlowAnalysis &flow_;
    CheckPlan *plan_;
    PersistencyResult &out_;
    std::set<std::string> txUsers_;
};

} // namespace

PersistencyResult
analyzePersistency(const Module &mod, const FlowAnalysis &flow,
                   CheckPlan *plan)
{
    PersistencyResult out;
    Analyzer(mod, flow, plan, out).run();
    return out;
}

} // namespace upr
