/**
 * @file
 * Persistency-ordering static analysis: a branch-sensitive abstract
 * interpreter over the transactional state of each program point and
 * a per-location durability lattice, run on modules that use the
 * txbegin/txcommit/txabort opcodes.
 *
 * Two products:
 *
 *  1. Diagnostics (uprlint `--persistency`): NVM stores not covered
 *     by any transaction, txbegin while a transaction is already
 *     open on some path, txcommit/txabort (or function return) with
 *     no transaction open on some path, writes to a different pool
 *     than the enclosing single-pool transaction, and stores inside
 *     a transaction from which no commit is reachable.
 *
 *  2. Logging-elision proofs: a LogMode per store (check_insertion.hh)
 *     that both transaction engines honor at run time. A store whose
 *     target was pmalloc'd inside the same transaction needs no undo
 *     pre-image (rollback frees the object; its bytes are garbage
 *     either way) and can be applied write-through by the redo engine
 *     before the commit fence. A store to an exact location already
 *     stored earlier in the same transaction on *every* path needs no
 *     second undo pre-image (the first entry's rollback restores the
 *     transaction-start bytes).
 *
 * Abstract domain, per program point:
 *
 *   TxnState:  Bottom < { None, In(pool-slot) } < Conflict < Unknown
 *
 *   Conflict joins None with In (or two different slots): the point
 *   is reached both inside and outside a transaction. Unknown is the
 *   poison state after calling a function that (transitively) uses
 *   transaction opcodes: no diagnostics and no proofs downstream.
 *
 *   Under In, two *must* sets (intersection at joins):
 *     fresh   — pmalloc result registers allocated since txbegin
 *     logged  — (root register, constant byte offset) locations
 *               already stored (hence pre-image-logged) in this txn
 *
 * Soundness around loops: must facts are keyed by SSA registers, and
 * a register defined inside a loop names a different dynamic value on
 * every iteration. Two rules make the facts safe anyway: (a) the
 * intersection join with the loop-entry edge kills facts born inside
 * the loop at the header, and (b) before transferring a block, every
 * fact whose root register is defined *in that block* is dropped —
 * the incoming fact would otherwise refer to the previous iteration's
 * incarnation. Calls clear both sets (the callee may write anything);
 * free/pfree drop facts rooted at the freed register.
 *
 * Diagnostics are emitted only for functions that directly contain
 * transaction opcodes, so linting a non-transactional module (or the
 * legacy-library half of a transactional one — the paper's subject:
 * the *application* owns the transaction, the library just stores)
 * stays quiet. Elision proofs are suppressed in any function with a
 * persistency error.
 */

#ifndef UPR_COMPILER_ANALYSIS_PERSISTENCY_HH
#define UPR_COMPILER_ANALYSIS_PERSISTENCY_HH

#include <cstdint>

#include "common/diag.hh"
#include "compiler/analysis/abstract_interp.hh"
#include "compiler/check_insertion.hh"
#include "compiler/ir.hh"

namespace upr
{

/** True if any function in @p mod contains a transaction opcode. */
bool moduleUsesTx(const ir::Module &mod);

/** Output of the persistency analysis. */
struct PersistencyResult
{
    /** Located findings (persist-* codes); caller merges/renders. */
    DiagnosticEngine diags;

    /** NVM stores seen inside a transaction. */
    std::uint64_t txStores = 0;
    /** Stores proven elidable (either LogMode elision). */
    std::uint64_t logElided = 0;
    /** ...of which fresh-allocation proofs. */
    std::uint64_t elidedFresh = 0;
    /** ...of which dominated-write proofs. */
    std::uint64_t elidedDominated = 0;

    /** Errors + warnings, the BENCH_static.json gate value. */
    std::uint64_t
    findingCount() const
    {
        return diags.errorCount() + diags.warningCount();
    }
};

/**
 * Run the analysis over @p mod.
 *
 * @param flow the flow-sensitive pointer-kind facts (classifies each
 *        store's target medium: only Ra / VaNvm targets persist)
 * @param plan if non-null, proven LogModes are written into the
 *        matching InstPlans (functions with persistency errors keep
 *        every store at MustLog)
 */
PersistencyResult analyzePersistency(const ir::Module &mod,
                                     const FlowAnalysis &flow,
                                     CheckPlan *plan);

} // namespace upr

#endif // UPR_COMPILER_ANALYSIS_PERSISTENCY_HH
