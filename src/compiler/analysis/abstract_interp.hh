/**
 * @file
 * Branch-sensitive abstract interpretation over the pointer-kind
 * lattice (NoInfo < {VaDram, VaNvm, Ra} < Unknown).
 *
 * The flow-insensitive inference (type_inference.hh) computes one
 * kind per SSA register. This pass refines it with flow facts:
 *
 *  - per-block entry states, joined only over *feasible* CFG edges
 *    (an eq between two distinct statically-known kinds can never be
 *    true, so its true edge contributes nothing);
 *  - phi results take the kind of the operand on each incoming edge
 *    rather than the join over all of them;
 *  - conditional narrowing on `br` whose condition is an `eq` guard
 *    (directly on pointers, or on their ptrtoint images).
 *
 * Narrowing soundness: `eq` compares pointers by the object they
 * name (the runtime normalizes both sides to virtual addresses), so
 * a true guard proves object identity, NOT representation equality.
 * A DRAM object has exactly one pointer form (VirtualDram; relative
 * addresses encode pool objects and VaNvm encodes NVM), so equality
 * with a known-VaDram pointer narrows the partner to VaDram. An NVM
 * object circulates both as Ra and as VaNvm (Fig 4), so equality
 * with those proves nothing about the partner's form and the meet
 * leaves it unchanged. Equality between VaDram and a known NVM kind
 * is infeasible (different media): the edge state drops to NoInfo.
 *
 * All transfer functions are monotone in the join ordering, states
 * start at bottom, and the lattice is finite, so the worklist
 * reaches the least fixpoint.
 */

#ifndef UPR_COMPILER_ANALYSIS_ABSTRACT_INTERP_HH
#define UPR_COMPILER_ANALYSIS_ABSTRACT_INTERP_HH

#include <map>
#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/type_inference.hh"

namespace upr
{

/** Flow-sensitive pointer-kind facts for a whole module. */
class FlowAnalysis
{
  public:
    /** Run to fixpoint. Both references must outlive the analysis. */
    FlowAnalysis(const ir::Module &mod, const InferenceResult &inf);

    /** Kind vector (indexed by ValueId) on entry to a block. */
    const std::vector<PtrKind> &
    blockIn(const ir::Function &fn, ir::BlockId b) const;

    /**
     * Kind of @p v immediately before instruction @p instIdx of
     * block @p b (recomputed by replaying the block prefix).
     */
    PtrKind kindBefore(const ir::Function &fn, ir::BlockId b,
                       std::size_t instIdx, ir::ValueId v) const;

    /**
     * kindBefore with NoInfo mapped to Unknown: a query about code
     * the fixpoint never reached answers conservatively.
     */
    PtrKind
    kindBeforeChecked(const ir::Function &fn, ir::BlockId b,
                      std::size_t instIdx, ir::ValueId v) const
    {
        const PtrKind k = kindBefore(fn, b, instIdx, v);
        return k == PtrKind::NoInfo ? PtrKind::Unknown : k;
    }

    /**
     * Object-equality meet (see file comment): what an eq-true guard
     * lets each side conclude about the other's representation.
     * Returns the narrowed kind for the side currently at @p mine
     * given the partner is @p other; NoInfo marks an infeasible
     * combination.
     */
    static PtrKind meetOnEq(PtrKind mine, PtrKind other);

  private:
    struct FnFlow
    {
        /** in[b][v] = kind of v on entry to block b. */
        std::vector<std::vector<PtrKind>> in;
    };

    void analyzeFunction(const ir::Function &fn);
    /** Transfer one non-phi instruction over @p state. */
    void applyInst(const ir::Function &fn, const ir::Inst &in,
                   std::vector<PtrKind> &state) const;
    /** State along the (from -> to) edge, narrowing included. */
    std::vector<PtrKind>
    edgeState(const ir::Function &fn, ir::BlockId from,
              const std::vector<PtrKind> &out, ir::BlockId to,
              bool is_true_edge) const;

    const ir::Module &mod_;
    const InferenceResult &inf_;
    std::map<std::string, FnFlow> perFunction_;
};

} // namespace upr

#endif // UPR_COMPILER_ANALYSIS_ABSTRACT_INTERP_HH
