/**
 * @file
 * IR verifier: structural and type well-formedness over the mini-IR,
 * reported through the DiagnosticEngine instead of panicking.
 *
 * Checked per function:
 *  - at least one block; every block non-empty;
 *  - exactly one terminator per block, and only in last position;
 *  - every ValueId (results and operands) is in range;
 *  - result and operand types match the opcode's signature
 *    (load addr is ptr, storep stores ptr into ptr, gep/ptrtoint
 *    take ptr, inttoptr takes i64, br conditions are i64, ...);
 *  - phi nodes form a contiguous prefix of their block, have matched
 *    block/value arity, operand types equal to the phi type, and
 *    their incoming blocks are actual CFG predecessors;
 *  - ret matches the function's return type;
 *  - every use is dominated by a definition on all paths
 *    (must-reach-definitions forward dataflow; phi operands are
 *    checked against the out-set of their incoming block).
 *
 * Checked per module, additionally:
 *  - calls resolve, arity matches, argument and result types match.
 *
 * Warnings (not errors): unreachable blocks, eq/lt comparing a ptr
 * with an i64.
 *
 * The parser runs verifyFunctionOrThrow / verifyModuleOrThrow after
 * parsing; passes that rewrite IR should re-run them on the result.
 */

#ifndef UPR_COMPILER_ANALYSIS_VERIFIER_HH
#define UPR_COMPILER_ANALYSIS_VERIFIER_HH

#include "common/diag.hh"
#include "compiler/ir.hh"

namespace upr::ir
{

/**
 * Verify one function (everything except cross-function checks).
 * Appends findings to @p diags; returns true iff no *errors* were
 * added (warnings alone keep it true).
 */
bool verifyFunction(const Function &fn, DiagnosticEngine &diags);

/** Verify every function plus call-site resolution/arity/types. */
bool verifyModule(const Module &mod, DiagnosticEngine &diags);

/**
 * Throwing wrappers used by the parser: on the first error, throw
 * Fault(BadUsage) whose message carries the rendered diagnostic
 * ("IR verify error at line L, col C: ...").
 */
void verifyFunctionOrThrow(const Function &fn);
void verifyModuleOrThrow(const Module &mod);

} // namespace upr::ir

#endif // UPR_COMPILER_ANALYSIS_VERIFIER_HH
