/**
 * @file
 * Proof-driven check elision: consumes the flow analysis'
 * proved-safe facts and deletes redundant dynamic checks from a
 * CheckPlan. Three rules, each recorded as an ElisionProof:
 *
 *  1. flow-proved-kind: a site the flow-insensitive plan left
 *     dynamic whose flow-sensitive kind is static (branch narrowing
 *     or infeasible-edge pruning) becomes the planted conversion
 *     check insertion would have chosen.
 *
 *  2. dest-implied-by-addr: the storep destination's determineX is
 *     always redundant — resolving the destination *address* at the
 *     very same instruction (dynamically or statically) yields the
 *     virtual address, whose NVM bit (Layout::kNvmBit) IS the
 *     medium. No separate classification check is needed. The
 *     interpreter keeps the strict storeP fault on this path.
 *
 *  3. available-check: a must-availability dataflow (intersection
 *     over predecessors) of "registers whose form was dynamically
 *     checked on every path" turns dominated re-checks into
 *     conversion-only refined sites — the cross-block
 *     generalization of the block-local flow_refine option. Sound
 *     because an SSA value's representation never changes; only
 *     translations are stateful and those still run per use.
 *
 * The contract (validated by tests and `uprlint --report-elision`):
 * interpreting the module under the elided plan is bit-identical to
 * the original plan — same results, same instruction count — with a
 * strictly lower Interpreter::dynamicCheckCount() whenever any
 * executed site was elided.
 */

#ifndef UPR_COMPILER_ANALYSIS_ELISION_HH
#define UPR_COMPILER_ANALYSIS_ELISION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "compiler/analysis/abstract_interp.hh"
#include "compiler/check_insertion.hh"
#include "compiler/ir.hh"

namespace upr
{

/** Why one dynamic check was deleted. */
struct ElisionProof
{
    std::string function;
    SrcLoc loc;
    /** Block of the proved site within @p function. */
    ir::BlockId block = ir::kNoBlock;
    /** Instruction index within the block (phi prefix included). */
    std::size_t instIdx = 0;
    /** Site role: addr/dest/value/op0/op1. */
    std::string role;
    /**
     * Stable machine-readable rule name: "flow-proved-kind",
     * "available-check" or "dest-implied-by-addr". Part of the
     * `uprlint --json` per-site contract the fast-path lowering and
     * its goldens consume.
     */
    const char *kind = "";
    /** Rule name + proving fact, human-readable. */
    std::string reason;
};

/** Result of the elision pass. */
struct ElisionResult
{
    /** Dynamic checks deleted (== proofs.size()). */
    std::uint64_t elidedSites = 0;
    std::vector<ElisionProof> proofs;
};

/**
 * Delete provably-redundant dynamic checks from @p plan in place;
 * plan counters (remainingSites, refinedSites, elidedSites) are
 * kept consistent. @p plan must have been produced by insertChecks
 * over @p mod.
 */
ElisionResult elideChecks(const ir::Module &mod,
                          const FlowAnalysis &flow, CheckPlan &plan);

/** Outcome of running a module under two plans (see validate). */
struct ElisionValidation
{
    /** Same return value and instruction count under both plans. */
    bool bitIdentical = false;
    std::uint64_t resultBefore = 0;
    std::uint64_t resultAfter = 0;
    std::uint64_t checksBefore = 0;
    std::uint64_t checksAfter = 0;
};

/**
 * Execute @p entry under the SW version twice — once with each
 * plan, on identically-configured fresh runtimes — and compare.
 * Used by tests and `uprlint --report-elision` to enforce the
 * elision contract.
 */
ElisionValidation
validateElision(const ir::Module &mod, const CheckPlan &before,
                const CheckPlan &after, const std::string &entry,
                const std::vector<std::uint64_t> &args);

} // namespace upr

#endif // UPR_COMPILER_ANALYSIS_ELISION_HH
