#include "compiler/analysis/verifier.hh"

#include <cstddef>
#include <vector>

#include "common/fault.hh"

namespace upr::ir
{

namespace
{

bool
isTerminator(Op op)
{
    return op == Op::Br || op == Op::Jmp || op == Op::Ret;
}

/** Per-function verifier state. */
class FunctionVerifier
{
  public:
    FunctionVerifier(const Function &fn, DiagnosticEngine &diags)
        : fn_(fn), diags_(diags)
    {
    }

    bool
    run()
    {
        const std::size_t errors_before = diags_.errorCount();
        if (fn_.blocks.empty()) {
            error("verify-empty-function", fn_.loc,
                  "function has no blocks");
            return false;
        }
        for (BlockId b = 0; b < fn_.blocks.size(); ++b)
            checkBlockShape(b);
        // Operand/type rules only make sense on shape-valid IR.
        if (diags_.errorCount() != errors_before)
            return false;
        computePredecessors();
        for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
            for (const Inst &in : fn_.blocks[b].insts)
                checkInst(b, in);
        }
        checkReachability();
        if (diags_.errorCount() == errors_before)
            checkDefBeforeUse();
        return diags_.errorCount() == errors_before;
    }

  private:
    void
    error(std::string code, SrcLoc loc, std::string msg)
    {
        diags_.error(std::move(code), loc, std::move(msg), fn_.name);
    }

    void
    warning(std::string code, SrcLoc loc, std::string msg)
    {
        diags_.warning(std::move(code), loc, std::move(msg), fn_.name);
    }

    std::string
    ref(ValueId v) const
    {
        if (v < fn_.valueNames.size())
            return "%" + fn_.valueNames[v];
        return "%<v" + std::to_string(v) + ">";
    }

    Type
    typeOf(ValueId v) const
    {
        return fn_.valueTypes[v];
    }

    /** Non-empty, one terminator, at the end. */
    void
    checkBlockShape(BlockId b)
    {
        const Block &blk = fn_.blocks[b];
        if (blk.insts.empty()) {
            error("verify-empty-block", blk.loc,
                  "block '" + blk.name + "' is empty");
            return;
        }
        bool phi_prefix_over = false;
        for (std::size_t i = 0; i < blk.insts.size(); ++i) {
            const Inst &in = blk.insts[i];
            const bool last = (i + 1 == blk.insts.size());
            if (isTerminator(in.op) && !last) {
                error("verify-terminator-mid-block", in.loc,
                      "terminator '" + std::string(opName(in.op)) +
                      "' before end of block '" + blk.name + "'");
            }
            if (last && !isTerminator(in.op)) {
                error("verify-missing-terminator", in.loc,
                      "block '" + blk.name +
                      "' does not end in a terminator");
            }
            if (in.op == Op::Phi) {
                if (phi_prefix_over) {
                    error("verify-phi-not-at-top", in.loc,
                          "phi after non-phi instruction in block '" +
                          blk.name + "'");
                }
            } else {
                phi_prefix_over = true;
            }
            // Value ids in range (everything else indexes by them).
            for (ValueId v : in.operands) {
                if (v >= fn_.numValues()) {
                    error("verify-bad-value-id", in.loc,
                          "operand id " + std::to_string(v) +
                          " out of range");
                }
            }
            if (in.result != kNoValue && in.result >= fn_.numValues()) {
                error("verify-bad-value-id", in.loc,
                      "result id " + std::to_string(in.result) +
                      " out of range");
            }
            if ((in.op == Op::Br || in.op == Op::Jmp) &&
                (in.target0 >= fn_.blocks.size() ||
                 (in.op == Op::Br &&
                  in.target1 >= fn_.blocks.size()))) {
                error("verify-bad-block-id", in.loc,
                      "branch target out of range");
            }
            if (in.op == Op::Phi) {
                for (BlockId pb : in.phiBlocks) {
                    if (pb >= fn_.blocks.size()) {
                        error("verify-bad-block-id", in.loc,
                              "phi incoming block out of range");
                    }
                }
            }
        }
    }

    void
    computePredecessors()
    {
        preds_.assign(fn_.blocks.size(), {});
        for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
            const Inst &term = fn_.blocks[b].insts.back();
            if (term.op == Op::Br) {
                addPred(term.target0, b);
                addPred(term.target1, b);
            } else if (term.op == Op::Jmp) {
                addPred(term.target0, b);
            }
        }
    }

    void
    addPred(BlockId to, BlockId from)
    {
        for (BlockId p : preds_[to]) {
            if (p == from)
                return;
        }
        preds_[to].push_back(from);
    }

    bool
    isPred(BlockId of, BlockId maybe) const
    {
        for (BlockId p : preds_[of]) {
            if (p == maybe)
                return true;
        }
        return false;
    }

    /** Expect an exact operand count. */
    bool
    arity(const Inst &in, std::size_t n)
    {
        if (in.operands.size() == n)
            return true;
        error("verify-operand-count", in.loc,
              std::string(opName(in.op)) + " expects " +
              std::to_string(n) + " operand(s), has " +
              std::to_string(in.operands.size()));
        return false;
    }

    void
    expectType(const Inst &in, ValueId v, Type want,
               const char *what)
    {
        if (typeOf(v) == want)
            return;
        error("verify-operand-type", in.loc,
              std::string(opName(in.op)) + " " + what + " " + ref(v) +
              " must be " + typeName(want) + ", is " +
              typeName(typeOf(v)));
    }

    void
    expectResult(const Inst &in, Type want)
    {
        if (in.result == kNoValue) {
            error("verify-result-type", in.loc,
                  std::string(opName(in.op)) + " must have a result");
            return;
        }
        if (in.type != want || typeOf(in.result) != want) {
            error("verify-result-type", in.loc,
                  std::string(opName(in.op)) + " result " +
                  ref(in.result) + " must be " + typeName(want));
        }
    }

    void
    checkInst(BlockId b, const Inst &in)
    {
        switch (in.op) {
          case Op::Const:
            arity(in, 0);
            expectResult(in, Type::I64);
            break;
          case Op::Alloca:
          case Op::Malloc:
          case Op::Pmalloc:
            arity(in, 0);
            expectResult(in, Type::Ptr);
            if (in.imm <= 0) {
                warning("verify-alloc-size", in.loc,
                        std::string(opName(in.op)) +
                        " with non-positive size " +
                        std::to_string(in.imm));
            }
            break;
          case Op::Free:
          case Op::Pfree:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::Ptr, "operand");
            break;
          case Op::Load:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::Ptr, "address");
            if (in.type != Type::I64 && in.type != Type::Ptr) {
                error("verify-result-type", in.loc,
                      "load must produce i64 or ptr");
            } else {
                expectResult(in, in.type);
            }
            break;
          case Op::Store:
            if (arity(in, 2)) {
                expectType(in, in.operands[0], Type::I64, "value");
                expectType(in, in.operands[1], Type::Ptr, "address");
            }
            break;
          case Op::StoreP:
            if (arity(in, 2)) {
                expectType(in, in.operands[0], Type::Ptr, "value");
                expectType(in, in.operands[1], Type::Ptr, "address");
            }
            break;
          case Op::Gep:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::Ptr, "base");
            expectResult(in, Type::Ptr);
            break;
          case Op::PtrToInt:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::Ptr, "operand");
            expectResult(in, Type::I64);
            break;
          case Op::IntToPtr:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::I64, "operand");
            expectResult(in, Type::Ptr);
            break;
          case Op::Eq:
          case Op::Lt:
            if (arity(in, 2) &&
                typeOf(in.operands[0]) != typeOf(in.operands[1])) {
                warning("verify-mixed-compare", in.loc,
                        std::string(opName(in.op)) + " compares " +
                        typeName(typeOf(in.operands[0])) + " " +
                        ref(in.operands[0]) + " with " +
                        typeName(typeOf(in.operands[1])) + " " +
                        ref(in.operands[1]));
            }
            expectResult(in, Type::I64);
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            if (arity(in, 2)) {
                expectType(in, in.operands[0], Type::I64, "operand");
                expectType(in, in.operands[1], Type::I64, "operand");
            }
            expectResult(in, Type::I64);
            break;
          case Op::Br:
            if (arity(in, 1))
                expectType(in, in.operands[0], Type::I64, "condition");
            break;
          case Op::Jmp:
            arity(in, 0);
            break;
          case Op::Phi:
            checkPhi(b, in);
            break;
          case Op::Call:
            // Resolution/arity/types are module-level; here only the
            // declared result type can be sanity-checked.
            if (in.result != kNoValue && in.type == Type::Void) {
                error("verify-result-type", in.loc,
                      "call with a result must not be void-typed");
            }
            break;
          case Op::Ret:
            if (fn_.returnType == Type::Void) {
                if (!in.operands.empty()) {
                    error("verify-return-type", in.loc,
                          "ret with a value in void function");
                }
            } else if (in.operands.empty()) {
                error("verify-return-type", in.loc,
                      "ret without a value in non-void function");
            } else if (arity(in, 1)) {
                expectType(in, in.operands[0], fn_.returnType,
                           "value");
            }
            break;
          case Op::TxBegin:
            arity(in, 0);
            if (in.result != kNoValue) {
                error("verify-result-type", in.loc,
                      "txbegin has no result");
            }
            if (in.imm < 0) {
                error("verify-txn-pool-slot", in.loc,
                      "txbegin pool slot must be >= 0, is " +
                      std::to_string(in.imm));
            }
            break;
          case Op::TxCommit:
          case Op::TxAbort:
            arity(in, 0);
            if (in.result != kNoValue) {
                error("verify-result-type", in.loc,
                      std::string(opName(in.op)) + " has no result");
            }
            break;
        }
    }

    void
    checkPhi(BlockId b, const Inst &in)
    {
        if (in.phiBlocks.size() != in.operands.size()) {
            error("verify-phi-shape", in.loc,
                  "phi has " + std::to_string(in.phiBlocks.size()) +
                  " incoming blocks but " +
                  std::to_string(in.operands.size()) + " values");
            return;
        }
        if (in.type != Type::I64 && in.type != Type::Ptr) {
            error("verify-result-type", in.loc,
                  "phi must produce i64 or ptr");
            return;
        }
        expectResult(in, in.type);
        for (std::size_t i = 0; i < in.operands.size(); ++i) {
            if (typeOf(in.operands[i]) != in.type) {
                error("verify-operand-type", in.loc,
                      "phi operand " + ref(in.operands[i]) +
                      " must be " + typeName(in.type) + ", is " +
                      typeName(typeOf(in.operands[i])));
            }
            // Missing edges panic the interpreter, extra entries are
            // merely dead: error vs warning.
            if (!isPred(b, in.phiBlocks[i])) {
                warning("verify-phi-pred", in.loc,
                        "phi lists non-predecessor block '" +
                        fn_.blocks[in.phiBlocks[i]].name + "'");
            }
        }
        for (BlockId p : preds_[b]) {
            bool covered = false;
            for (BlockId pb : in.phiBlocks) {
                if (pb == p) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                error("verify-phi-pred", in.loc,
                      "phi misses predecessor block '" +
                      fn_.blocks[p].name + "'");
            }
        }
    }

    void
    checkReachability()
    {
        std::vector<bool> seen(fn_.blocks.size(), false);
        std::vector<BlockId> stack{0};
        seen[0] = true;
        while (!stack.empty()) {
            const BlockId b = stack.back();
            stack.pop_back();
            const Inst &term = fn_.blocks[b].insts.back();
            BlockId succs[2] = {kNoBlock, kNoBlock};
            if (term.op == Op::Br) {
                succs[0] = term.target0;
                succs[1] = term.target1;
            } else if (term.op == Op::Jmp) {
                succs[0] = term.target0;
            }
            for (BlockId s : succs) {
                if (s != kNoBlock && !seen[s]) {
                    seen[s] = true;
                    stack.push_back(s);
                }
            }
        }
        reachable_ = seen;
        for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
            if (!seen[b]) {
                warning("verify-unreachable-block", fn_.blocks[b].loc,
                        "block '" + fn_.blocks[b].name +
                        "' is unreachable");
            }
        }
    }

    /**
     * Must-reach-definitions: a use is well-defined iff its value is
     * assigned on *every* path from entry. Forward dataflow with
     * intersection at joins; optimistic (all-defined) initial state
     * so loops converge to the greatest fixpoint.
     */
    void
    checkDefBeforeUse()
    {
        const std::size_t nv = fn_.numValues();
        const std::size_t nb = fn_.blocks.size();
        // in_[b][v] = v defined on entry to b on all paths.
        std::vector<std::vector<bool>> in(
            nb, std::vector<bool>(nv, true));
        in[0].assign(nv, false);
        for (ValueId p : fn_.paramValues)
            in[0][p] = true;

        auto outOf = [&](BlockId b) {
            std::vector<bool> s = in[b];
            for (const Inst &inst : fn_.blocks[b].insts) {
                if (inst.result != kNoValue)
                    s[inst.result] = true;
            }
            return s;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (BlockId b = 1; b < nb; ++b) {
                if (preds_[b].empty())
                    continue;
                std::vector<bool> meet(nv, true);
                for (BlockId p : preds_[b]) {
                    const std::vector<bool> po = outOf(p);
                    for (std::size_t v = 0; v < nv; ++v)
                        meet[v] = meet[v] && po[v];
                }
                if (meet != in[b]) {
                    in[b] = std::move(meet);
                    changed = true;
                }
            }
        }

        for (BlockId b = 0; b < nb; ++b) {
            if (!reachable_[b])
                continue;
            std::vector<bool> defined = in[b];
            for (const Inst &inst : fn_.blocks[b].insts) {
                if (inst.op == Op::Phi) {
                    // Phi reads along the incoming edge.
                    for (std::size_t i = 0; i < inst.operands.size();
                         ++i) {
                        const BlockId pb = inst.phiBlocks[i];
                        if (!isPred(b, pb) || !reachable_[pb])
                            continue;
                        if (!outOf(pb)[inst.operands[i]]) {
                            error("verify-def-before-use", inst.loc,
                                  "phi reads " +
                                  ref(inst.operands[i]) +
                                  " which is not defined on exit of '" +
                                  fn_.blocks[pb].name + "'");
                        }
                    }
                } else {
                    for (ValueId v : inst.operands) {
                        if (!defined[v]) {
                            error("verify-def-before-use", inst.loc,
                                  ref(v) +
                                  " may be used before definition");
                        }
                    }
                }
                if (inst.result != kNoValue)
                    defined[inst.result] = true;
            }
        }
    }

    const Function &fn_;
    DiagnosticEngine &diags_;
    std::vector<std::vector<BlockId>> preds_;
    std::vector<bool> reachable_;
};

} // namespace

bool
verifyFunction(const Function &fn, DiagnosticEngine &diags)
{
    return FunctionVerifier(fn, diags).run();
}

bool
verifyModule(const Module &mod, DiagnosticEngine &diags)
{
    const std::size_t errors_before = diags.errorCount();
    for (const auto &f : mod.functions) {
        verifyFunction(*f, diags);
        for (const Block &b : f->blocks) {
            for (const Inst &in : b.insts) {
                if (in.op != Op::Call)
                    continue;
                const Function *callee = mod.find(in.callee);
                if (!callee) {
                    diags.error("verify-undefined-callee", in.loc,
                                "call to undefined @" + in.callee,
                                f->name);
                    continue;
                }
                if (callee->paramTypes.size() != in.operands.size()) {
                    diags.error(
                        "verify-call-arity", in.loc,
                        "call to @" + in.callee +
                        " arity mismatch: takes " +
                        std::to_string(callee->paramTypes.size()) +
                        " argument(s), got " +
                        std::to_string(in.operands.size()),
                        f->name);
                    continue;
                }
                for (std::size_t i = 0; i < in.operands.size(); ++i) {
                    const Type got = f->valueTypes[in.operands[i]];
                    if (got != callee->paramTypes[i]) {
                        diags.error(
                            "verify-call-type", in.loc,
                            "argument " + std::to_string(i) +
                            " of call to @" + in.callee + " must be " +
                            typeName(callee->paramTypes[i]) +
                            ", is " + typeName(got),
                            f->name);
                    }
                }
                if (in.result != kNoValue &&
                    callee->returnType != in.type) {
                    diags.error("verify-call-type", in.loc,
                                "result of call to @" + in.callee +
                                " must be " +
                                typeName(callee->returnType),
                                f->name);
                }
            }
        }
    }
    return diags.errorCount() == errors_before;
}

namespace
{

[[noreturn]] void
throwFirstError(const DiagnosticEngine &diags)
{
    for (const Diagnostic &d : diags.all()) {
        if (d.severity != DiagSeverity::Error)
            continue;
        std::string msg = "IR verify error";
        if (d.loc.known()) {
            msg += " at line " + std::to_string(d.loc.line) +
                   ", col " + std::to_string(d.loc.col);
        }
        msg += ": [" + d.code + "] " + d.message;
        if (!d.function.empty())
            msg += " [@" + d.function + "]";
        throw Fault(FaultKind::BadUsage, msg);
    }
    upr_panic("throwFirstError called without errors");
}

} // namespace

void
verifyFunctionOrThrow(const Function &fn)
{
    DiagnosticEngine diags;
    if (!verifyFunction(fn, diags))
        throwFirstError(diags);
}

void
verifyModuleOrThrow(const Module &mod)
{
    DiagnosticEngine diags;
    if (!verifyModule(mod, diags))
        throwFirstError(diags);
}

} // namespace upr::ir
