/**
 * @file
 * Fig-4 conformance checker: classifies every pointer-operation
 * site of a module against the paper's pointer-semantics table
 * (Fig 4) using the flow-sensitive kind facts.
 *
 * Each site (the same enumeration check insertion uses: load/store
 * addresses, storep destination + stored value, comparison/cast
 * operands, free/pfree operands) gets one of three verdicts:
 *
 *  - ProvedSafe: the lattice fact pins the representation; the
 *    compiler can plant the exact conversion (or none) with no
 *    dynamic check. The proving fact is recorded.
 *  - NeedsDynamic: the fact is Unknown (typically a pointer loaded
 *    from untyped memory); a determineX/determineY check survives.
 *  - DiagnosedUB: the operation is outside Fig 4's defined rows.
 *
 * UB diagnoses (located errors through the DiagnosticEngine):
 *  - fig4-cross-pool-compare: relational (lt) compare between
 *    pointers of provably different kinds — their bit patterns
 *    order arbitrarily, the paper defines pxr relational compares
 *    only within one pool;
 *  - fig4-arith-escape: gep whose accumulated offset provably
 *    leaves [0, size] of the allocation it derives from —
 *    arithmetic escaping a pool breaks relative-address encoding;
 *  - fig4-mixed-storep: a provably-DRAM virtual address stored
 *    through a provably-NVM destination — the persisted pointer
 *    would dangle across restarts (the strictStoreP fault, found
 *    statically).
 *
 * Warnings:
 *  - fig4-constant-compare: eq between provably-distinct kinds
 *    (constant-false object equality, usually a logic bug);
 *  - fig4-pool-identity: lt between two relative addresses whose
 *    provenance does not prove a common allocation (the pool ids
 *    are not statically tracked, so ordering is unproven).
 */

#ifndef UPR_COMPILER_ANALYSIS_FIG4_CONFORMANCE_HH
#define UPR_COMPILER_ANALYSIS_FIG4_CONFORMANCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "compiler/analysis/abstract_interp.hh"
#include "compiler/ir.hh"

namespace upr
{

/** Verdict for one pointer-operation site. */
enum class SiteVerdict
{
    ProvedSafe,
    NeedsDynamic,
    DiagnosedUB,
};

const char *siteVerdictName(SiteVerdict v);

/** One classified site. */
struct SiteReport
{
    std::string function;
    ir::BlockId block = ir::kNoBlock;
    std::size_t instIdx = 0;
    /** Which operand of the instruction: addr/dest/value/op0/op1. */
    std::string role;
    SiteVerdict verdict = SiteVerdict::NeedsDynamic;
    /** Proving lattice fact (ProvedSafe) or best-known kind. */
    PtrKind fact = PtrKind::Unknown;
    SrcLoc loc;
};

/** Whole-module conformance result. */
struct ConformanceReport
{
    std::vector<SiteReport> sites;
    std::uint64_t provedSafe = 0;
    std::uint64_t needsDynamic = 0;
    std::uint64_t diagnosedUB = 0;
};

/**
 * Classify every site of @p mod; UB/warning findings are appended
 * to @p diags with the locations the parser recorded.
 */
ConformanceReport
checkFig4Conformance(const ir::Module &mod, const FlowAnalysis &flow,
                     DiagnosticEngine &diags);

} // namespace upr

#endif // UPR_COMPILER_ANALYSIS_FIG4_CONFORMANCE_HH
