/**
 * @file
 * Check insertion (the back half of the Sec V-B compiler method):
 * given the inference result, decide per instruction which operands
 * still need a dynamic determineX/determineY check and which get a
 * statically planted conversion (or nothing).
 *
 * The summary statistics reproduce the paper's headline number: what
 * fraction of would-be dynamic checks inference eliminates (paper:
 * ~42% of checks remain in their benchmarks).
 */

#ifndef UPR_COMPILER_CHECK_INSERTION_HH
#define UPR_COMPILER_CHECK_INSERTION_HH

#include "compiler/ir.hh"
#include "compiler/type_inference.hh"

namespace upr
{

/**
 * How a store inside a transaction must be logged, as proven by the
 * persistency analysis (analysis/persistency.hh). Baked into the
 * lowered code and honored by both transaction engines.
 */
enum class LogMode : std::uint8_t
{
    /** No proof: full undo pre-image / redo journal entry. */
    MustLog,
    /**
     * The target was pmalloc'd inside the enclosing transaction, so
     * its pre-image is unreachable garbage: undo skips the log entry
     * entirely; redo applies it write-through before the commit
     * fence instead of journaling it.
     */
    ElideFreshAlloc,
    /**
     * An earlier store in the same transaction already logged this
     * exact location on every path here: undo skips the duplicate
     * pre-image (the first entry's rollback restores it).
     */
    ElideDominatedWrite,
};

const char *logModeName(LogMode m);

/** Per-instruction annotation produced by check insertion. */
struct InstPlan
{
    /** The address operand needs a dynamic determineY. */
    bool addrDynamic = false;
    /** The address operand statically needs ra2va (kind == Ra). */
    bool addrStaticConvert = false;
    /**
     * The address operand was already checked earlier in this basic
     * block (flow-sensitive refinement): convert per its known form,
     * no new check branch. Sound — a value's *format* never changes,
     * only translations are stateful, and those are still performed
     * per use (contrast the unsound value numbering of Fig 10).
     */
    bool addrRefined = false;
    /** The stored pointer value needs a dynamic determineY. */
    bool valueDynamic = false;
    /** The destination medium needs a dynamic determineX. */
    bool destDynamic = false;
    /**
     * A determineX the elision pass proved redundant: the address
     * resolution at this same storep already reveals the medium
     * (bit 47 of the resolved VA), so no classification check runs.
     * The interpreter still preserves the dynamic path's strict
     * storeP fault behavior.
     */
    bool destElided = false;
    /** First comparison/cast pointer operand needs a dynamic check. */
    bool cmp0Dynamic = false;
    /** Second comparison pointer operand needs a dynamic check. */
    bool cmp1Dynamic = false;
    /**
     * Logging obligation of this store/storep when it hits NVM inside
     * a transaction (persistency analysis proof; MustLog when the
     * analysis did not run or could not prove anything).
     */
    LogMode logMode = LogMode::MustLog;

    /** Total dynamic checks this instruction performs per execution. */
    unsigned
    dynamicChecks() const
    {
        return (addrDynamic ? 1 : 0) + (valueDynamic ? 1 : 0) +
               (destDynamic ? 1 : 0) + (cmp0Dynamic ? 1 : 0) +
               (cmp1Dynamic ? 1 : 0);
    }
};

/** Plan for one function: parallel to blocks/instructions. */
struct FunctionPlan
{
    std::vector<std::vector<InstPlan>> perBlock;

    const InstPlan &
    at(ir::BlockId b, std::size_t i) const
    {
        return perBlock.at(b).at(i);
    }
};

/** Whole-module plan + static statistics. */
struct CheckPlan
{
    std::map<std::string, FunctionPlan> perFunction;

    /** Check sites if every pointer-kind question were dynamic. */
    std::uint64_t totalSites = 0;
    /** Sites still requiring a dynamic check after inference. */
    std::uint64_t remainingSites = 0;
    /** Sites downgraded to check-free by block-local refinement. */
    std::uint64_t refinedSites = 0;
    /** Sites deleted by the proof-driven elision pass (elision.hh). */
    std::uint64_t elidedSites = 0;

    /** Fraction of checks the inference removed. */
    double
    eliminatedFraction() const
    {
        if (totalSites == 0)
            return 0.0;
        return 1.0 - static_cast<double>(remainingSites) /
                         static_cast<double>(totalSites);
    }
};

/**
 * Render a Fig 9-style annotated listing: the module's instructions
 * with the checks/conversions the plan inserted at each site
 * ([checkY], [ra2va], [refined], [checkX] markers).
 */
std::string printAnnotated(const ir::Module &mod, const CheckPlan &plan);

/**
 * Compute the plan.
 * @param inference result of inferPointerKinds (pass nullptr to plan
 *        as if inference were disabled: every site dynamic — the
 *        bench_ablation_inference baseline)
 * @param flow_refine enable block-local refinement: the second and
 *        later check sites of one value within a basic block reuse
 *        the first check's outcome (tail-duplication model) and pay
 *        only the conversion
 */
CheckPlan insertChecks(const ir::Module &mod,
                       const InferenceResult *inference,
                       bool flow_refine = false);

} // namespace upr

#endif // UPR_COMPILER_CHECK_INSERTION_HH
