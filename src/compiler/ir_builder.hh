/**
 * @file
 * Programmatic construction of mini-IR functions, in the style of
 * llvm::IRBuilder: create blocks, position at one, append typed
 * instructions, get ValueIds back.
 */

#ifndef UPR_COMPILER_IR_BUILDER_HH
#define UPR_COMPILER_IR_BUILDER_HH

#include "compiler/ir.hh"

namespace upr::ir
{

/** Builder for one function inside a module. */
class FunctionBuilder
{
  public:
    /**
     * Start a function.
     * @param mod module to add the finished function to
     * @param name function name (no '@')
     * @param params parameter types
     * @param ret return type
     */
    FunctionBuilder(Module &mod, const std::string &name,
                    std::vector<Type> params, Type ret)
        : mod_(mod), fn_(std::make_unique<Function>())
    {
        fn_->name = name;
        fn_->paramTypes = params;
        fn_->returnType = ret;
        for (std::size_t i = 0; i < params.size(); ++i) {
            const ValueId v = newValue(params[i],
                                       "arg" + std::to_string(i));
            fn_->paramValues.push_back(v);
        }
    }

    /** Parameter register @p i. */
    ValueId param(std::size_t i) const { return fn_->paramValues.at(i); }

    /** Create a block; the first created block is the entry. */
    BlockId
    block(const std::string &name)
    {
        fn_->blocks.push_back(Block{name, {}, {}});
        return static_cast<BlockId>(fn_->blocks.size() - 1);
    }

    /** Position subsequent instructions at the end of @p b. */
    void setInsert(BlockId b) { cur_ = b; }

    // --- instructions ------------------------------------------------
    ValueId
    constI64(std::int64_t v, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Const;
        in.type = Type::I64;
        in.imm = v;
        return append(in, name);
    }

    ValueId
    alloca64(std::int64_t bytes, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Alloca;
        in.type = Type::Ptr;
        in.imm = bytes;
        return append(in, name);
    }

    ValueId
    malloc64(std::int64_t bytes, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Malloc;
        in.type = Type::Ptr;
        in.imm = bytes;
        return append(in, name);
    }

    ValueId
    pmalloc64(std::int64_t bytes, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Pmalloc;
        in.type = Type::Ptr;
        in.imm = bytes;
        return append(in, name);
    }

    void
    free_(ValueId p)
    {
        Inst in{};
        in.op = Op::Free;
        in.operands = {p};
        append(in, "");
    }

    void
    pfree_(ValueId p)
    {
        Inst in{};
        in.op = Op::Pfree;
        in.operands = {p};
        append(in, "");
    }

    ValueId
    load(Type ty, ValueId p, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Load;
        in.type = ty;
        in.operands = {p};
        return append(in, name);
    }

    void
    store(ValueId v, ValueId p)
    {
        Inst in{};
        in.op = Op::Store;
        in.operands = {v, p};
        append(in, "");
    }

    void
    storeP(ValueId q, ValueId p)
    {
        Inst in{};
        in.op = Op::StoreP;
        in.operands = {q, p};
        append(in, "");
    }

    ValueId
    gep(ValueId p, std::int64_t off, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Gep;
        in.type = Type::Ptr;
        in.operands = {p};
        in.imm = off;
        return append(in, name);
    }

    ValueId
    ptrToInt(ValueId p, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::PtrToInt;
        in.type = Type::I64;
        in.operands = {p};
        return append(in, name);
    }

    ValueId
    intToPtr(ValueId v, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::IntToPtr;
        in.type = Type::Ptr;
        in.operands = {v};
        return append(in, name);
    }

    ValueId
    binary(Op op, ValueId a, ValueId b, const std::string &name = "")
    {
        Inst in{};
        in.op = op;
        in.type = Type::I64;
        in.operands = {a, b};
        return append(in, name);
    }

    ValueId eq(ValueId a, ValueId b, const std::string &name = "")
    {
        return binary(Op::Eq, a, b, name);
    }

    ValueId lt(ValueId a, ValueId b, const std::string &name = "")
    {
        return binary(Op::Lt, a, b, name);
    }

    ValueId add(ValueId a, ValueId b, const std::string &name = "")
    {
        return binary(Op::Add, a, b, name);
    }

    ValueId sub(ValueId a, ValueId b, const std::string &name = "")
    {
        return binary(Op::Sub, a, b, name);
    }

    void
    br(ValueId cond, BlockId then_b, BlockId else_b)
    {
        Inst in{};
        in.op = Op::Br;
        in.operands = {cond};
        in.target0 = then_b;
        in.target1 = else_b;
        append(in, "");
    }

    void
    jmp(BlockId target)
    {
        Inst in{};
        in.op = Op::Jmp;
        in.target0 = target;
        append(in, "");
    }

    ValueId
    phi(Type ty, const std::vector<std::pair<BlockId, ValueId>> &in_args,
        const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Phi;
        in.type = ty;
        for (auto [b, v] : in_args) {
            in.phiBlocks.push_back(b);
            in.operands.push_back(v);
        }
        return append(in, name);
    }

    ValueId
    call(const std::string &callee, Type ret,
         const std::vector<ValueId> &args, const std::string &name = "")
    {
        Inst in{};
        in.op = Op::Call;
        in.type = ret;
        in.operands = args;
        in.callee = callee;
        return append(in, name);
    }

    void
    txBegin(std::int64_t pool_slot = 0)
    {
        Inst in{};
        in.op = Op::TxBegin;
        in.imm = pool_slot;
        append(in, "");
    }

    void
    txCommit()
    {
        Inst in{};
        in.op = Op::TxCommit;
        append(in, "");
    }

    void
    txAbort()
    {
        Inst in{};
        in.op = Op::TxAbort;
        append(in, "");
    }

    void
    ret(ValueId v = kNoValue)
    {
        Inst in{};
        in.op = Op::Ret;
        if (v != kNoValue)
            in.operands = {v};
        append(in, "");
    }

    /** Validate and move the function into the module. */
    Function &
    finish()
    {
        validate(*fn_);
        mod_.functions.push_back(std::move(fn_));
        return *mod_.functions.back();
    }

  private:
    ValueId
    newValue(Type ty, const std::string &name)
    {
        fn_->valueTypes.push_back(ty);
        fn_->valueNames.push_back(
            name.empty() ? "v" + std::to_string(fn_->numValues() - 1)
                         : name);
        return fn_->numValues() - 1;
    }

    ValueId
    append(Inst in, const std::string &name)
    {
        upr_assert_msg(cur_ != kNoBlock,
                       "no insertion block set in @%s",
                       fn_->name.c_str());
        ValueId result = kNoValue;
        if (in.type != Type::Void) {
            result = newValue(in.type, name);
            in.result = result;
        }
        fn_->blocks[cur_].insts.push_back(std::move(in));
        return result;
    }

    Module &mod_;
    std::unique_ptr<Function> fn_;
    BlockId cur_ = kNoBlock;
};

} // namespace upr::ir

#endif // UPR_COMPILER_IR_BUILDER_HH
