/**
 * @file
 * Mini-IR interpreter: runs compiled-with-checks programs against a
 * UPR Runtime. This is our stand-in for executing the LLVM test-suite
 * under the SW version (paper Sec VII-B): the interpreter performs
 * dynamic checks exactly where the CheckPlan left them and statically
 * planted conversions elsewhere, so outputs can be compared against a
 * no-NVM (Volatile) execution of the same program.
 */

#ifndef UPR_COMPILER_INTERPRETER_HH
#define UPR_COMPILER_INTERPRETER_HH

#include "compiler/check_insertion.hh"
#include "compiler/ir.hh"
#include "core/runtime.hh"

namespace upr
{

/** Executes mini-IR modules. */
class Interpreter
{
  public:
    struct Config
    {
        /** Pool pmalloc allocates from. */
        PoolId pool = 0;
        /** Instruction budget (runaway-loop guard). */
        std::uint64_t fuel = 50'000'000;
        /** Call-depth limit. */
        std::uint32_t maxDepth = 256;
    };

    /**
     * @param rt runtime supplying memory, timing, and semantics
     * @param mod the module to execute (must outlive the interpreter)
     * @param plan check plan from insertChecks (must outlive this)
     */
    Interpreter(Runtime &rt, const ir::Module &mod,
                const CheckPlan &plan, Config config);

    /**
     * Call @p name with integer/pointer arguments.
     * @return the function's return value (0 for void)
     */
    std::uint64_t call(const std::string &name,
                       const std::vector<std::uint64_t> &args = {});

    /** Instructions executed so far. */
    std::uint64_t instructionCount() const { return instCount_; }

    /** Dynamic checks executed by plan-directed sites. */
    std::uint64_t dynamicCheckCount() const { return dynChecks_; }

  private:
    struct Frame
    {
        const ir::Function *fn;
        std::vector<std::uint64_t> regs;
        std::vector<SimAddr> allocas;
    };

    std::uint64_t exec(Frame &frame, std::uint32_t depth);

    /**
     * Resolve a pointer value to a VA per the plan annotation:
     * dynamic check, static conversion, or passthrough.
     */
    SimAddr resolveAddr(std::uint64_t bits, bool dynamic,
                        bool static_convert, bool refined,
                        std::uint64_t site);

    /** storeP with plan-directed checks. */
    void execStoreP(std::uint64_t value_bits, SimAddr dest_va,
                    const InstPlan &plan, std::uint64_t site);

    /** Normalize one comparison operand. */
    std::uint64_t cmpOperand(std::uint64_t bits, bool dynamic,
                             std::uint64_t site);

    /**
     * Pool behind a txbegin pool slot: slot 0 is the executor's
     * config pool; other slots lazily create (or reuse) a pool named
     * "txslot<N>" with the config pool's engine — identical in every
     * execution tier, so cross-tier runs see the same pool table.
     */
    PoolId poolForSlot(std::int64_t slot);

    void burnFuel();

    Runtime &rt_;
    const ir::Module &mod_;
    const CheckPlan &plan_;
    Config config_;

    std::uint64_t instCount_ = 0;
    std::uint64_t dynChecks_ = 0;
    std::uint64_t fuelLeft_;
    /** Lazily created pools behind nonzero txbegin slots. */
    std::map<std::int64_t, PoolId> txPools_;
};

} // namespace upr

#endif // UPR_COMPILER_INTERPRETER_HH
