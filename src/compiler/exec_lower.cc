#include "compiler/exec_lower.hh"

#include <functional>

namespace upr
{

using namespace ir;

ExecCounters::ExecCounters()
{
    group.registerCounter("loweredFunctions", loweredFunctions,
                          "functions compiled to the flat tier");
    group.registerCounter("loweredInsts", loweredInsts,
                          "instructions pre-decoded by lowering");
    group.registerCounter("loweredSites", loweredSites,
                          "check sites the lowered code evaluates");
    group.registerCounter("retainedGuards", retainedGuards,
                          "sites lowered with their dynamic guard");
    group.registerCounter("elidedGuards", elidedGuards,
                          "sites lowered unchecked (proved safe)");
    group.registerCounter("fusedPairs", fusedPairs,
                          "adjacent pairs fused into superinstructions");
    group.registerCounter("modelDispatches", modelDispatches,
                          "instructions retired in Model tier");
    group.registerCounter("nativeDispatches", nativeDispatches,
                          "instructions retired in Native tier");
}

ExecCounters &
execCounters()
{
    static ExecCounters inst;
    return inst;
}

namespace
{

AddrMode
bakeAddrMode(const InstPlan &ip, Version version)
{
    // The Interpreter tests the version before any plan flag; baking
    // Volatile down to Plain reproduces that order statically.
    if (version == Version::Volatile)
        return AddrMode::Plain;
    if (ip.addrDynamic)
        return AddrMode::Dynamic;
    if (ip.addrRefined)
        return AddrMode::Refined;
    if (ip.addrStaticConvert)
        return AddrMode::StaticConvert;
    return AddrMode::Plain;
}

CmpMode
bakeCmpMode(bool dynamic, Version version)
{
    if (version == Version::Volatile)
        return CmpMode::Raw;
    return dynamic ? CmpMode::Dynamic : CmpMode::Static;
}

/** Pre-map the persistency proof to the runtime's hint. */
TxnLogHint
bakeLogHint(LogMode m)
{
    switch (m) {
      case LogMode::MustLog:             return TxnLogHint::Log;
      case LogMode::ElideFreshAlloc:     return TxnLogHint::ElideFresh;
      case LogMode::ElideDominatedWrite:
        return TxnLogHint::ElideDominated;
    }
    return TxnLogHint::Log;
}

/** Count one lowered site; a retained guard if @p dynamic. */
void
countSite(LowerStats &stats, bool dynamic)
{
    ++stats.sites;
    if (dynamic)
        ++stats.retainedGuards;
    else
        ++stats.elidedGuards;
}

void
lowerFunction(const Function &fn, const FunctionPlan &fp,
              Version version,
              const std::map<std::string, std::uint32_t> &fnIndex,
              LoweredFunction &lf, LowerStats &stats)
{
    lf.fn = &fn;
    lf.numRegs = fn.numValues();
    const std::uint64_t fn_hash = std::hash<std::string>{}(fn.name);

    // Pass 1: flat code index of every block's first non-phi inst,
    // and its non-phi length (the executor's per-block fuel batch).
    std::vector<std::uint32_t> block_start(fn.blocks.size(), 0);
    std::vector<std::uint32_t> block_len(fn.blocks.size(), 0);
    std::uint32_t flat = 0;
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        block_start[b] = flat;
        for (const Inst &in : fn.blocks[b].insts) {
            if (in.op != Op::Phi)
                ++flat;
        }
        block_len[b] = flat - block_start[b];
    }
    lf.code.reserve(flat);
    lf.entryFuel = fn.blocks.empty() ? 0 : block_len[0];

    // Resolve one CFG edge's phi prefix into parallel moves. Every
    // phi burns fuel per traversal in the Interpreter; the executor
    // burns one per move, so the move list must cover the whole
    // prefix — the verifier guarantees each phi has the edge.
    auto emit_edge = [&](BlockId from,
                         BlockId to) -> std::pair<std::uint32_t,
                                                  std::uint32_t> {
        const auto begin = static_cast<std::uint32_t>(
            lf.movePool.size());
        for (const Inst &phi : fn.blocks[to].insts) {
            if (phi.op != Op::Phi)
                break;
            bool matched = false;
            for (std::size_t i = 0; i < phi.phiBlocks.size(); ++i) {
                if (phi.phiBlocks[i] == from) {
                    lf.movePool.push_back(
                        PhiMove{phi.result, phi.operands[i]});
                    matched = true;
                    break;
                }
            }
            upr_assert_msg(matched,
                           "@%s: phi in '%s' has no edge from '%s'",
                           fn.name.c_str(),
                           fn.blocks[to].name.c_str(),
                           fn.blocks[from].name.c_str());
        }
        return {begin,
                static_cast<std::uint32_t>(lf.movePool.size())};
    };

    // Pass 2: decode.
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        const Block &block = fn.blocks[b];
        for (std::size_t idx = 0; idx < block.insts.size(); ++idx) {
            const Inst &in = block.insts[idx];
            if (in.op == Op::Phi)
                continue;
            const InstPlan &ip = fp.at(b, idx);

            LoweredInst li;
            li.op = static_cast<ExecOp>(in.op);
            li.type = in.type;
            li.result = in.result;
            li.imm = in.imm;
            // The Interpreter's exact site formula, with the
            // original in-block index including the phi prefix.
            li.site = (static_cast<std::uint64_t>(b) << 20) ^
                      (idx << 4) ^ fn_hash;
            if (!in.operands.empty())
                li.a = in.operands[0];
            if (in.operands.size() > 1)
                li.b = in.operands[1];

            switch (in.op) {
              case Op::Load:
              case Op::Store:
              case Op::Free:
                li.addr = bakeAddrMode(ip, version);
                if (in.op == Op::Store)
                    li.logHint = bakeLogHint(ip.logMode);
                countSite(stats, ip.addrDynamic);
                break;
              case Op::Pfree:
                // The plan annotates a site, but execution frees by
                // raw bits with no address resolution (the allocator
                // accepts either form); no guard is ever evaluated,
                // so it does not count as a lowered site.
                break;
              case Op::StoreP:
                li.addr = bakeAddrMode(ip, version);
                li.storep = version == Version::Volatile
                    ? StorePMode::Raw
                    : (ip.destDynamic || ip.valueDynamic)
                        ? StorePMode::Dynamic
                        : StorePMode::Static;
                li.destDynamic = ip.destDynamic;
                li.valueDynamic = ip.valueDynamic;
                li.destElided = ip.destElided;
                li.logHint = bakeLogHint(ip.logMode);
                countSite(stats, ip.addrDynamic);
                countSite(stats, ip.destDynamic);
                countSite(stats, ip.valueDynamic);
                break;
              case Op::PtrToInt:
                li.cmp0 = bakeCmpMode(ip.cmp0Dynamic, version);
                countSite(stats, ip.cmp0Dynamic);
                break;
              case Op::Eq:
              case Op::Lt:
                if (fn.valueTypes[in.operands[0]] == Type::Ptr) {
                    li.cmp0 = bakeCmpMode(ip.cmp0Dynamic, version);
                    countSite(stats, ip.cmp0Dynamic);
                }
                if (fn.valueTypes[in.operands[1]] == Type::Ptr) {
                    li.cmp1 = bakeCmpMode(ip.cmp1Dynamic, version);
                    countSite(stats, ip.cmp1Dynamic);
                }
                break;
              case Op::Br: {
                li.target0 = block_start[in.target0];
                li.target1 = block_start[in.target1];
                li.len0 = block_len[in.target0];
                li.len1 = block_len[in.target1];
                auto [m0b, m0e] = emit_edge(b, in.target0);
                li.m0Begin = m0b;
                li.m0End = m0e;
                auto [m1b, m1e] = emit_edge(b, in.target1);
                li.m1Begin = m1b;
                li.m1End = m1e;
                break;
              }
              case Op::Jmp: {
                li.target0 = block_start[in.target0];
                li.len0 = block_len[in.target0];
                auto [m0b, m0e] = emit_edge(b, in.target0);
                li.m0Begin = m0b;
                li.m0End = m0e;
                break;
              }
              case Op::Call: {
                const auto it = fnIndex.find(in.callee);
                upr_assert_msg(it != fnIndex.end(),
                               "@%s: call to unknown @%s",
                               fn.name.c_str(), in.callee.c_str());
                li.calleeIdx = it->second;
                li.argBegin = static_cast<std::uint32_t>(
                    lf.argPool.size());
                for (ValueId v : in.operands)
                    lf.argPool.push_back(v);
                li.argEnd = static_cast<std::uint32_t>(
                    lf.argPool.size());
                break;
              }
              default:
                break;
            }
            lf.code.push_back(li);
        }
    }

    // Pass 3: superinstruction fusion. Greedy left-to-right within
    // each block: rewrite the first of an adjacent pair to its fused
    // opcode; the handler executes both bodies (identical work and
    // order, so both tiers stay bit-exact) with one dispatch. Never
    // across block boundaries — branch targets are block starts, and
    // the second instruction must not be separately reachable.
    const auto fuse_of = [](ExecOp a, ExecOp b) -> ExecOp {
        switch (a) {
          case ExecOp::Gep:
            return b == ExecOp::Load ? ExecOp::FuseGepLoad : a;
          case ExecOp::Load:
            if (b == ExecOp::Load)
                return ExecOp::FuseLoadLoad;
            if (b == ExecOp::Store)
                return ExecOp::FuseLoadStore;
            if (b == ExecOp::StoreP)
                return ExecOp::FuseLoadStoreP;
            return a;
          case ExecOp::Store:
            if (b == ExecOp::Store)
                return ExecOp::FuseStoreStore;
            if (b == ExecOp::Gep)
                return ExecOp::FuseStoreGep;
            return a;
          case ExecOp::Add:
            return b == ExecOp::Add ? ExecOp::FuseAddAdd : a;
          default:
            return a;
        }
    };
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        const std::uint32_t end = block_start[b] + block_len[b];
        for (std::uint32_t i = block_start[b]; i + 1 < end; ++i) {
            const ExecOp fused =
                fuse_of(lf.code[i].op, lf.code[i + 1].op);
            if (fused != lf.code[i].op) {
                lf.code[i].op = fused;
                ++stats.fusedPairs;
                ++i; // the pair's second half is not re-fusable
            }
        }
    }

    ++stats.functions;
    stats.instructions += lf.code.size();
}

} // namespace

LoweredModule
lowerModule(const Module &mod, const CheckPlan &plan, Version version)
{
    LoweredModule lm;
    lm.version = version;
    for (std::size_t i = 0; i < mod.functions.size(); ++i) {
        lm.indexByName[mod.functions[i]->name] =
            static_cast<std::uint32_t>(i);
    }
    lm.functions.resize(mod.functions.size());
    for (std::size_t i = 0; i < mod.functions.size(); ++i) {
        const Function &fn = *mod.functions[i];
        lowerFunction(fn, plan.perFunction.at(fn.name), version,
                      lm.indexByName, lm.functions[i], lm.stats);
    }

    ExecCounters &ec = execCounters();
    ec.loweredFunctions.add(lm.stats.functions);
    ec.loweredInsts.add(lm.stats.instructions);
    ec.loweredSites.add(lm.stats.sites);
    ec.retainedGuards.add(lm.stats.retainedGuards);
    ec.elidedGuards.add(lm.stats.elidedGuards);
    ec.fusedPairs.add(lm.stats.fusedPairs);
    return lm;
}

} // namespace upr
