/**
 * @file
 * AVL — height-balanced binary search tree (paper Table III).
 *
 * Node meta word: height of the subtree rooted there (leaf = 1).
 * Rebalancing walks parent links from the modification point upward,
 * rotating wherever the balance factor leaves [-1, +1].
 */

#ifndef UPR_CONTAINERS_AVL_TREE_HH
#define UPR_CONTAINERS_AVL_TREE_HH

#include <cstdlib>

#include "containers/bst_common.hh"

namespace upr
{

/** AVL tree map. */
template <typename K, typename V>
class AvlTree : public BstBase<K, V>
{
  public:
    using Base = BstBase<K, V>;
    using Node = typename Base::Node;
    using Header = typename Base::Header;

    explicit AvlTree(MemEnv env) : Base(env) {}
    AvlTree(MemEnv env, Ptr<Header> header) : Base(env, header) {}

    /**
     * Insert or update.
     * @return true if newly inserted
     */
    bool
    insert(const K &key, const V &value)
    {
        Ptr<Node> parent = Ptr<Node>::null();
        Ptr<Node> cur = this->root();
        bool went_left = false;
        while (!cur.isNull()) {
            const K k = cur.template field<K>(&Node::key);
            parent = cur;
            if (this->keyBranch(key < k, 3)) {
                cur = cur.ptrField(&Node::left);
                went_left = true;
            } else if (this->keyBranch(k < key, 4)) {
                cur = cur.ptrField(&Node::right);
                went_left = false;
            } else {
                cur.setField(&Node::value, value);
                return false;
            }
        }

        Ptr<Node> node = this->allocNode(key, value);
        node.setField(&Node::meta, std::uint64_t{1});
        node.setPtrField(&Node::parent, parent);
        if (parent.isNull()) {
            this->header_.setPtrField(&Header::root, node);
        } else if (went_left) {
            parent.setPtrField(&Node::left, node);
        } else {
            parent.setPtrField(&Node::right, node);
        }
        rebalanceUpFrom(parent);
        this->bumpSize(1);
        return true;
    }

    /**
     * Remove @p key.
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        Ptr<Node> z = this->findNode(key);
        if (z.isNull())
            return false;

        Ptr<Node> start; // lowest node whose height may have changed
        if (z.ptrField(&Node::left).isNull()) {
            start = z.ptrField(&Node::parent);
            this->transplant(z, z.ptrField(&Node::right));
        } else if (z.ptrField(&Node::right).isNull()) {
            start = z.ptrField(&Node::parent);
            this->transplant(z, z.ptrField(&Node::left));
        } else {
            Ptr<Node> y = this->minimum(z.ptrField(&Node::right));
            if (y.ptrField(&Node::parent) == z) {
                start = y;
            } else {
                start = y.ptrField(&Node::parent);
                this->transplant(y, y.ptrField(&Node::right));
                Ptr<Node> zr = z.ptrField(&Node::right);
                y.setPtrField(&Node::right, zr);
                zr.setPtrField(&Node::parent, y);
            }
            this->transplant(z, y);
            Ptr<Node> zl = z.ptrField(&Node::left);
            y.setPtrField(&Node::left, zl);
            zl.setPtrField(&Node::parent, y);
            y.setField(&Node::meta,
                       z.template field<std::uint64_t>(&Node::meta));
        }

        this->freeNode(z);
        this->bumpSize(-1);
        rebalanceUpFrom(start);
        return true;
    }

    /** AVL invariants: every balance factor in [-1, 1], heights exact. */
    void
    validate() const
    {
        this->validateBase();
        checkHeights(this->root());
    }

  private:
    static std::uint64_t
    heightOf(Ptr<Node> n)
    {
        return n.isNull() ? 0
                          : n.template field<std::uint64_t>(&Node::meta);
    }

    static std::int64_t
    balanceOf(Ptr<Node> n)
    {
        return static_cast<std::int64_t>(
                   heightOf(n.ptrField(&Node::left))) -
               static_cast<std::int64_t>(
                   heightOf(n.ptrField(&Node::right)));
    }

    /** Recompute @p n's height; @return true if it changed. */
    static bool
    updateHeight(Ptr<Node> n)
    {
        const std::uint64_t h =
            1 + std::max(heightOf(n.ptrField(&Node::left)),
                         heightOf(n.ptrField(&Node::right)));
        if (h == heightOf(n))
            return false;
        n.setField(&Node::meta, h);
        return true;
    }

    /** Walk up from @p n, fixing heights and rotating. */
    void
    rebalanceUpFrom(Ptr<Node> n)
    {
        while (!n.isNull()) {
            Ptr<Node> parent = n.ptrField(&Node::parent);
            const std::int64_t bal = balanceOf(n);
            if (bal > 1) {
                // Heights refresh bottom-up: the demoted child first,
                // then n, then the new subtree root.
                Ptr<Node> old_l = n.ptrField(&Node::left);
                if (balanceOf(old_l) < 0) {
                    this->rotateLeft(old_l);
                    updateHeight(old_l);
                }
                Ptr<Node> l = n.ptrField(&Node::left);
                this->rotateRight(n);
                updateHeight(n);
                updateHeight(l);
            } else if (bal < -1) {
                Ptr<Node> old_r = n.ptrField(&Node::right);
                if (balanceOf(old_r) > 0) {
                    this->rotateRight(old_r);
                    updateHeight(old_r);
                }
                Ptr<Node> r = n.ptrField(&Node::right);
                this->rotateLeft(n);
                updateHeight(n);
                updateHeight(r);
            } else {
                if (!updateHeight(n) )
                    break; // heights above are unaffected
            }
            n = parent;
        }
    }

    /** @return exact height while asserting stored heights/balance. */
    std::uint64_t
    checkHeights(Ptr<Node> n) const
    {
        if (n.isNull())
            return 0;
        const std::uint64_t lh = checkHeights(n.ptrField(&Node::left));
        const std::uint64_t rh = checkHeights(n.ptrField(&Node::right));
        upr_assert_msg(heightOf(n) == 1 + std::max(lh, rh),
                       "stored AVL height wrong");
        const std::int64_t bal = static_cast<std::int64_t>(lh) -
                                 static_cast<std::int64_t>(rh);
        upr_assert_msg(bal >= -1 && bal <= 1, "AVL balance violated");
        return 1 + std::max(lh, rh);
    }
};

} // namespace upr

#endif // UPR_CONTAINERS_AVL_TREE_HH
