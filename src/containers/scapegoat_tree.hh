/**
 * @file
 * SG — scapegoat tree (paper Table III): an unbalanced BST that
 * rebuilds a whole "scapegoat" subtree flat whenever an insertion
 * lands too deep for the alpha-weight-balance bound.
 *
 * alpha = 0.7 (a common default). Header aux word tracks maxSize for
 * the deletion-triggered whole-tree rebuild.
 */

#ifndef UPR_CONTAINERS_SCAPEGOAT_TREE_HH
#define UPR_CONTAINERS_SCAPEGOAT_TREE_HH

#include <cmath>
#include <vector>

#include "containers/bst_common.hh"

namespace upr
{

/** Scapegoat tree map. */
template <typename K, typename V>
class ScapegoatTree : public BstBase<K, V>
{
  public:
    using Base = BstBase<K, V>;
    using Node = typename Base::Node;
    using Header = typename Base::Header;

    /** Weight-balance parameter. */
    static constexpr double kAlpha = 0.7;

    explicit ScapegoatTree(MemEnv env) : Base(env) {}
    ScapegoatTree(MemEnv env, Ptr<Header> header) : Base(env, header) {}

    /**
     * Insert or update.
     * @return true if newly inserted
     */
    bool
    insert(const K &key, const V &value)
    {
        Ptr<Node> parent = Ptr<Node>::null();
        Ptr<Node> cur = this->root();
        bool went_left = false;
        std::uint64_t depth = 0;
        while (!cur.isNull()) {
            const K k = cur.template field<K>(&Node::key);
            parent = cur;
            ++depth;
            if (this->keyBranch(key < k, 3)) {
                cur = cur.ptrField(&Node::left);
                went_left = true;
            } else if (this->keyBranch(k < key, 4)) {
                cur = cur.ptrField(&Node::right);
                went_left = false;
            } else {
                cur.setField(&Node::value, value);
                return false;
            }
        }

        Ptr<Node> node = this->allocNode(key, value);
        node.setPtrField(&Node::parent, parent);
        if (parent.isNull()) {
            this->header_.setPtrField(&Header::root, node);
        } else if (went_left) {
            parent.setPtrField(&Node::left, node);
        } else {
            parent.setPtrField(&Node::right, node);
        }
        this->bumpSize(1);
        const std::uint64_t n = this->size();
        setMaxSize(std::max(maxSize(), n));

        if (depth > depthLimit(n))
            rebuildScapegoat(node);
        return true;
    }

    /**
     * Remove @p key; rebuilds the whole tree when it has shrunk to
     * alpha * maxSize (the classic deletion rule).
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        Ptr<Node> z = this->findNode(key);
        if (z.isNull())
            return false;

        if (z.ptrField(&Node::left).isNull()) {
            this->transplant(z, z.ptrField(&Node::right));
        } else if (z.ptrField(&Node::right).isNull()) {
            this->transplant(z, z.ptrField(&Node::left));
        } else {
            Ptr<Node> y = this->minimum(z.ptrField(&Node::right));
            if (!(y.ptrField(&Node::parent) == z)) {
                this->transplant(y, y.ptrField(&Node::right));
                Ptr<Node> zr = z.ptrField(&Node::right);
                y.setPtrField(&Node::right, zr);
                zr.setPtrField(&Node::parent, y);
            }
            this->transplant(z, y);
            Ptr<Node> zl = z.ptrField(&Node::left);
            y.setPtrField(&Node::left, zl);
            zl.setPtrField(&Node::parent, y);
        }
        this->freeNode(z);
        this->bumpSize(-1);

        const std::uint64_t n = this->size();
        if (n > 0 &&
            static_cast<double>(n) < kAlpha * maxSize()) {
            rebuildSubtree(this->root());
            setMaxSize(n);
        } else if (n == 0) {
            setMaxSize(0);
        }
        return true;
    }

    /**
     * Scapegoat invariant: tree height within the alpha bound of the
     * current size (after rebuilds), plus base BST invariants.
     */
    void
    validate() const
    {
        this->validateBase();
        const std::uint64_t n = this->size();
        if (n == 0)
            return;
        const std::uint64_t h = heightOf(this->root());
        // Height can exceed the strict alpha bound by at most 1
        // between rebuilds (the textbook "loosely alpha-height" bound).
        upr_assert_msg(h <= depthLimit(maxSize()) + 1,
                       "scapegoat height bound violated: h=%llu n=%llu",
                       (unsigned long long)h, (unsigned long long)n);
    }

  private:
    std::uint64_t maxSize() const
    {
        return this->header_.field(&Header::aux);
    }

    void setMaxSize(std::uint64_t v)
    {
        this->header_.setField(&Header::aux, v);
    }

    /** floor(log_{1/alpha}(n)): the depth bound for size n. */
    static std::uint64_t
    depthLimit(std::uint64_t n)
    {
        if (n <= 1)
            return 0;
        return static_cast<std::uint64_t>(
            std::floor(std::log(static_cast<double>(n)) /
                       std::log(1.0 / kAlpha)));
    }

    std::uint64_t
    subtreeSize(Ptr<Node> n) const
    {
        if (n.isNull())
            return 0;
        return 1 + subtreeSize(n.ptrField(&Node::left)) +
               subtreeSize(n.ptrField(&Node::right));
    }

    std::uint64_t
    heightOf(Ptr<Node> n) const
    {
        if (n.isNull())
            return 0;
        return 1 + std::max(heightOf(n.ptrField(&Node::left)),
                            heightOf(n.ptrField(&Node::right)));
    }

    /** Walk up from the deep node to find and rebuild the scapegoat. */
    void
    rebuildScapegoat(Ptr<Node> deep)
    {
        Ptr<Node> n = deep;
        std::uint64_t n_size = 1;
        while (true) {
            Ptr<Node> p = n.ptrField(&Node::parent);
            if (p.isNull()) {
                rebuildSubtree(n);
                return;
            }
            const std::uint64_t p_size = subtreeSize(p);
            if (static_cast<double>(n_size) >
                kAlpha * static_cast<double>(p_size)) {
                rebuildSubtree(p);
                return;
            }
            n = p;
            n_size = p_size;
        }
    }

    /** Flatten @p sub in order and relink as a perfectly balanced tree. */
    void
    rebuildSubtree(Ptr<Node> sub)
    {
        if (sub.isNull())
            return;
        Ptr<Node> parent = sub.ptrField(&Node::parent);
        const bool was_left =
            !parent.isNull() && parent.ptrField(&Node::left) == sub;

        std::vector<Ptr<Node>> flat;
        this->walkInOrder(sub, [&](Ptr<Node> n) { flat.push_back(n); });

        Ptr<Node> rebuilt = buildBalanced(flat, 0, flat.size());
        if (parent.isNull()) {
            this->header_.setPtrField(&Header::root, rebuilt);
            rebuilt.setPtrField(&Node::parent, Ptr<Node>::null());
        } else if (was_left) {
            parent.setPtrField(&Node::left, rebuilt);
            rebuilt.setPtrField(&Node::parent, parent);
        } else {
            parent.setPtrField(&Node::right, rebuilt);
            rebuilt.setPtrField(&Node::parent, parent);
        }
    }

    Ptr<Node>
    buildBalanced(const std::vector<Ptr<Node>> &flat, std::size_t lo,
                  std::size_t hi)
    {
        if (lo >= hi)
            return Ptr<Node>::null();
        const std::size_t mid = lo + (hi - lo) / 2;
        Ptr<Node> n = flat[mid];
        Ptr<Node> l = buildBalanced(flat, lo, mid);
        Ptr<Node> r = buildBalanced(flat, mid + 1, hi);
        n.setPtrField(&Node::left, l);
        n.setPtrField(&Node::right, r);
        if (!l.isNull())
            l.setPtrField(&Node::parent, n);
        if (!r.isNull())
            r.setPtrField(&Node::parent, n);
        return n;
    }
};

} // namespace upr

#endif // UPR_CONTAINERS_SCAPEGOAT_TREE_HH
