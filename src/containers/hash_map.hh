/**
 * @file
 * Hash — separate-chaining hash map (paper Table III).
 *
 * Bucket array and chain nodes all live in simulated memory through
 * MemEnv, so the table is persistent when the environment is. The
 * table rehashes at load factor 1.0.
 */

#ifndef UPR_CONTAINERS_HASH_MAP_HH
#define UPR_CONTAINERS_HASH_MAP_HH

#include <optional>

#include "common/bits.hh"
#include "common/logging.hh"
#include "containers/memory_env.hh"

namespace upr
{

/** Default hasher: splitmix64 finalizer over the key bytes. */
struct DefaultHash
{
    std::uint64_t
    operator()(std::uint64_t k) const
    {
        k ^= k >> 30;
        k *= 0xbf58476d1ce4e5b9ULL;
        k ^= k >> 27;
        k *= 0x94d049bb133111ebULL;
        k ^= k >> 31;
        return k;
    }
};

/**
 * Chained hash map.
 * @tparam K key type (trivially copyable, ==)
 * @tparam V mapped type (trivially copyable)
 * @tparam H hasher over K
 */
template <typename K, typename V, typename H = DefaultHash>
class HashMap
{
  public:
    struct Node
    {
        Ptr<Node> next;
        K key{};
        V value{};
    };

    struct Bucket
    {
        Ptr<Node> head;
    };

    struct Header
    {
        Ptr<Bucket> buckets;
        std::uint64_t bucketCount = 0;
        std::uint64_t size = 0;
    };

    static constexpr std::uint64_t kInitialBuckets = 16;

    /** Create an empty map. */
    explicit HashMap(MemEnv env)
        : env_(env), header_(env_.alloc<Header>())
    {
        Ptr<Bucket> buckets =
            env_.template allocArray<Bucket>(kInitialBuckets);
        header_.setPtrField(&Header::buckets, buckets);
        header_.setField(&Header::bucketCount, kInitialBuckets);
    }

    /** Re-attach to an existing map. */
    HashMap(MemEnv env, Ptr<Header> header) : env_(env), header_(header)
    {}

    Ptr<Header> header() const { return header_; }

    std::uint64_t size() const { return header_.field(&Header::size); }
    bool empty() const { return size() == 0; }

    std::uint64_t
    bucketCount() const
    {
        return header_.field(&Header::bucketCount);
    }

    /**
     * Insert or update.
     * @return true if the key was newly inserted
     */
    bool
    insert(const K &key, const V &value)
    {
        Ptr<Node> n = findNode(key);
        if (!n.isNull()) {
            n.setField(&Node::value, value);
            return false;
        }
        if (size() + 1 > bucketCount())
            rehash(bucketCount() * 2);

        Ptr<Bucket> slot = bucketFor(key);
        Ptr<Node> node = env_.template alloc<Node>();
        node.setField(&Node::key, key);
        node.setField(&Node::value, value);
        node.setPtrField(&Node::next, slot.ptrField(&Bucket::head));
        slot.setPtrField(&Bucket::head, node);
        header_.setField(&Header::size, size() + 1);
        return true;
    }

    /**
     * Grow the bucket array so @p n entries insert without triggering
     * a rehash. Rounds up to the doubling sequence insert() follows,
     * so a reserved table and a progressively-grown one end at the
     * same bucket count.
     *
     * Call before bulk loads, outside any transaction: a rehash moves
     * every node, and inside an undo transaction each moved pointer
     * is pre-imaged — a large-enough table overflows the pool's undo
     * log mid-operation. Reserving while the chains are short keeps
     * the per-insert transactions small instead.
     */
    void
    reserve(std::uint64_t n)
    {
        std::uint64_t count = bucketCount();
        while (count < n)
            count *= 2;
        if (count != bucketCount())
            rehash(count);
    }

    /** Look up @p key. */
    std::optional<V>
    find(const K &key) const
    {
        Ptr<Node> n = findNode(key);
        if (n.isNull())
            return std::nullopt;
        return n.template field<V>(&Node::value);
    }

    /** True if @p key is present. */
    bool contains(const K &key) const { return !findNode(key).isNull(); }

    /**
     * Remove @p key.
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        Ptr<Bucket> slot = bucketFor(key);
        Ptr<Node> prev = Ptr<Node>::null();
        Ptr<Node> n = slot.ptrField(&Bucket::head);
        while (!n.isNull()) {
            if (keyBranch(n.template field<K>(&Node::key) == key)) {
                Ptr<Node> next = n.ptrField(&Node::next);
                if (prev.isNull()) {
                    slot.setPtrField(&Bucket::head, next);
                } else {
                    prev.setPtrField(&Node::next, next);
                }
                env_.free(n);
                header_.setField(&Header::size, size() - 1);
                return true;
            }
            prev = n;
            n = n.ptrField(&Node::next);
        }
        return false;
    }

    /** Visit every (key, value) pair. */
    template <typename Cb>
    void
    forEach(Cb &&cb) const
    {
        Ptr<Bucket> buckets = header_.ptrField(&Header::buckets);
        const std::uint64_t count = bucketCount();
        for (std::uint64_t b = 0; b < count; ++b) {
            for (Ptr<Node> n = (buckets + b).ptrField(&Bucket::head);
                 !n.isNull(); n = n.ptrField(&Node::next)) {
                cb(n.template field<K>(&Node::key),
                   n.template field<V>(&Node::value));
            }
        }
    }

    /** Free all nodes and reset to the initial bucket count. */
    void
    clear()
    {
        Ptr<Bucket> buckets = header_.ptrField(&Header::buckets);
        const std::uint64_t count = bucketCount();
        for (std::uint64_t b = 0; b < count; ++b) {
            Ptr<Node> n = (buckets + b).ptrField(&Bucket::head);
            while (!n.isNull()) {
                Ptr<Node> next = n.ptrField(&Node::next);
                env_.free(n);
                n = next;
            }
            (buckets + b).setPtrField(&Bucket::head, Ptr<Node>::null());
        }
        header_.setField(&Header::size, std::uint64_t{0});
    }

    /**
     * Invariants: every node hashes to the chain it is on; chain
     * walk agrees with size; no duplicate keys.
     */
    void
    validate() const
    {
        H hasher;
        Ptr<Bucket> buckets = header_.ptrField(&Header::buckets);
        const std::uint64_t count = bucketCount();
        std::uint64_t seen = 0;
        for (std::uint64_t b = 0; b < count; ++b) {
            for (Ptr<Node> n = (buckets + b).ptrField(&Bucket::head);
                 !n.isNull(); n = n.ptrField(&Node::next)) {
                const K key = n.template field<K>(&Node::key);
                upr_assert_msg(hasher(key) % count == b,
                               "node chained in wrong bucket");
                ++seen;
                upr_assert_msg(seen <= size(), "chain cycle suspected");
            }
        }
        upr_assert_msg(seen == size(), "hash size mismatch");
    }

  private:
    Ptr<Bucket>
    bucketFor(const K &key) const
    {
        H hasher;
        Ptr<Bucket> buckets = header_.ptrField(&Header::buckets);
        return buckets +
               static_cast<std::ptrdiff_t>(hasher(key) % bucketCount());
    }

    /** Program key-equality branch (predictor-modeled). */
    bool
    keyBranch(bool outcome) const
    {
        static const std::uint64_t salt = detail::nextSiteSalt();
        return env_.runtime().dataBranch(outcome, salt);
    }

    Ptr<Node>
    findNode(const K &key) const
    {
        Ptr<Node> n = bucketFor(key).ptrField(&Bucket::head);
        while (!n.isNull()) {
            if (keyBranch(n.template field<K>(&Node::key) == key))
                return n;
            n = n.ptrField(&Node::next);
        }
        return Ptr<Node>::null();
    }

    void
    rehash(std::uint64_t new_count)
    {
        Ptr<Bucket> old_buckets = header_.ptrField(&Header::buckets);
        const std::uint64_t old_count = bucketCount();
        Ptr<Bucket> fresh =
            env_.template allocArray<Bucket>(new_count);

        // Publish the new array first, then move chains.
        header_.setPtrField(&Header::buckets, fresh);
        header_.setField(&Header::bucketCount, new_count);

        H hasher;
        for (std::uint64_t b = 0; b < old_count; ++b) {
            Ptr<Node> n = (old_buckets + b).ptrField(&Bucket::head);
            while (!n.isNull()) {
                Ptr<Node> next = n.ptrField(&Node::next);
                const K key = n.template field<K>(&Node::key);
                Ptr<Bucket> slot =
                    fresh + static_cast<std::ptrdiff_t>(
                                hasher(key) % new_count);
                n.setPtrField(&Node::next,
                              slot.ptrField(&Bucket::head));
                slot.setPtrField(&Bucket::head, n);
                n = next;
            }
        }
        env_.free(old_buckets);
    }

    MemEnv env_;
    Ptr<Header> header_;
};

} // namespace upr

#endif // UPR_CONTAINERS_HASH_MAP_HH
