/**
 * @file
 * Splay — self-adjusting binary search tree (paper Table III).
 *
 * Every access splays the touched node to the root, so the hot keys
 * of the YCSB "latest" distribution cluster near the top — which is
 * exactly why Splay shows the largest persistent-pointer overhead in
 * the paper's Fig 11 (its writes are pointer-dense).
 */

#ifndef UPR_CONTAINERS_SPLAY_TREE_HH
#define UPR_CONTAINERS_SPLAY_TREE_HH

#include "containers/bst_common.hh"

namespace upr
{

/** Splay tree map. */
template <typename K, typename V>
class SplayTree : public BstBase<K, V>
{
  public:
    using Base = BstBase<K, V>;
    using Node = typename Base::Node;
    using Header = typename Base::Header;

    explicit SplayTree(MemEnv env) : Base(env) {}
    SplayTree(MemEnv env, Ptr<Header> header) : Base(env, header) {}

    /**
     * Insert or update (splays the node to the root either way).
     * @return true if newly inserted
     */
    bool
    insert(const K &key, const V &value)
    {
        Ptr<Node> parent = Ptr<Node>::null();
        Ptr<Node> cur = this->root();
        bool went_left = false;
        while (!cur.isNull()) {
            const K k = cur.template field<K>(&Node::key);
            parent = cur;
            if (this->keyBranch(key < k, 3)) {
                cur = cur.ptrField(&Node::left);
                went_left = true;
            } else if (this->keyBranch(k < key, 4)) {
                cur = cur.ptrField(&Node::right);
                went_left = false;
            } else {
                cur.setField(&Node::value, value);
                splay(cur);
                return false;
            }
        }

        Ptr<Node> node = this->allocNode(key, value);
        node.setPtrField(&Node::parent, parent);
        if (parent.isNull()) {
            this->header_.setPtrField(&Header::root, node);
        } else if (went_left) {
            parent.setPtrField(&Node::left, node);
        } else {
            parent.setPtrField(&Node::right, node);
        }
        splay(node);
        this->bumpSize(1);
        return true;
    }

    /** Splaying lookup (mutates the tree shape, as splay trees do). */
    std::optional<V>
    find(const K &key)
    {
        Ptr<Node> n = findAndSplay(key);
        if (n.isNull())
            return std::nullopt;
        return n.template field<V>(&Node::value);
    }

    /** Splaying membership test. */
    bool contains(const K &key) { return !findAndSplay(key).isNull(); }

    /**
     * Remove @p key (top-down via splay + join).
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        Ptr<Node> z = findAndSplay(key);
        if (z.isNull())
            return false;
        // z is now the root; join its subtrees.
        Ptr<Node> l = z.ptrField(&Node::left);
        Ptr<Node> r = z.ptrField(&Node::right);
        if (l.isNull()) {
            this->setRoot(r);
        } else {
            l.setPtrField(&Node::parent, Ptr<Node>::null());
            this->header_.setPtrField(&Header::root, l);
            // Splay the maximum of the left subtree to its root; its
            // right child is then free for the old right subtree.
            Ptr<Node> m = this->maximum(l);
            splay(m);
            m.setPtrField(&Node::right, r);
            if (!r.isNull())
                r.setPtrField(&Node::parent, m);
        }
        this->freeNode(z);
        this->bumpSize(-1);
        return true;
    }

    /** Splay trees have no shape invariant beyond BST order. */
    void validate() const { this->validateBase(); }

  private:
    Ptr<Node>
    findAndSplay(const K &key)
    {
        Ptr<Node> last = Ptr<Node>::null();
        Ptr<Node> n = this->root();
        while (!n.isNull()) {
            last = n;
            const K k = n.template field<K>(&Node::key);
            if (this->keyBranch(key < k, 5)) {
                n = n.ptrField(&Node::left);
            } else if (this->keyBranch(k < key, 6)) {
                n = n.ptrField(&Node::right);
            } else {
                splay(n);
                return n;
            }
        }
        // Miss: splay the last touched node (classic heuristic).
        if (!last.isNull())
            splay(last);
        return Ptr<Node>::null();
    }

    void
    splay(Ptr<Node> x)
    {
        for (;;) {
            Ptr<Node> p = x.ptrField(&Node::parent);
            if (p.isNull())
                return;
            Ptr<Node> g = p.ptrField(&Node::parent);
            const bool x_left = (x == p.ptrField(&Node::left));
            if (g.isNull()) {
                // Zig.
                if (x_left)
                    this->rotateRight(p);
                else
                    this->rotateLeft(p);
                return;
            }
            const bool p_left = (p == g.ptrField(&Node::left));
            if (x_left == p_left) {
                // Zig-zig: rotate grandparent first.
                if (p_left) {
                    this->rotateRight(g);
                    this->rotateRight(p);
                } else {
                    this->rotateLeft(g);
                    this->rotateLeft(p);
                }
            } else {
                // Zig-zag.
                if (x_left) {
                    this->rotateRight(p);
                    this->rotateLeft(g);
                } else {
                    this->rotateLeft(p);
                    this->rotateRight(g);
                }
            }
        }
    }
};

} // namespace upr

#endif // UPR_CONTAINERS_SPLAY_TREE_HH
