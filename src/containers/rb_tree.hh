/**
 * @file
 * RB — red-black tree (paper Table III), CLRS-style with null leaves.
 *
 * Node meta word: 0 = black, 1 = red.
 */

#ifndef UPR_CONTAINERS_RB_TREE_HH
#define UPR_CONTAINERS_RB_TREE_HH

#include "containers/bst_common.hh"

namespace upr
{

/** Red-black tree map. */
template <typename K, typename V>
class RbTree : public BstBase<K, V>
{
  public:
    using Base = BstBase<K, V>;
    using Node = typename Base::Node;
    using Header = typename Base::Header;

    static constexpr std::uint64_t kBlack = 0;
    static constexpr std::uint64_t kRed = 1;

    explicit RbTree(MemEnv env) : Base(env) {}
    RbTree(MemEnv env, Ptr<Header> header) : Base(env, header) {}

    /**
     * Insert or update.
     * @return true if newly inserted
     */
    bool
    insert(const K &key, const V &value)
    {
        Ptr<Node> parent = Ptr<Node>::null();
        Ptr<Node> cur = this->root();
        bool went_left = false;
        while (!cur.isNull()) {
            const K k = cur.template field<K>(&Node::key);
            parent = cur;
            if (this->keyBranch(key < k, 3)) {
                cur = cur.ptrField(&Node::left);
                went_left = true;
            } else if (this->keyBranch(k < key, 4)) {
                cur = cur.ptrField(&Node::right);
                went_left = false;
            } else {
                cur.setField(&Node::value, value);
                return false;
            }
        }

        Ptr<Node> node = this->allocNode(key, value);
        node.setField(&Node::meta, kRed);
        node.setPtrField(&Node::parent, parent);
        if (parent.isNull()) {
            this->header_.setPtrField(&Header::root, node);
        } else if (went_left) {
            parent.setPtrField(&Node::left, node);
        } else {
            parent.setPtrField(&Node::right, node);
        }
        insertFixup(node);
        this->bumpSize(1);
        return true;
    }

    /**
     * Remove @p key.
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        Ptr<Node> z = this->findNode(key);
        if (z.isNull())
            return false;

        Ptr<Node> x = Ptr<Node>::null();
        Ptr<Node> x_parent = Ptr<Node>::null();
        std::uint64_t removed_color = colorOf(z);

        if (z.ptrField(&Node::left).isNull()) {
            x = z.ptrField(&Node::right);
            x_parent = z.ptrField(&Node::parent);
            this->transplant(z, x);
        } else if (z.ptrField(&Node::right).isNull()) {
            x = z.ptrField(&Node::left);
            x_parent = z.ptrField(&Node::parent);
            this->transplant(z, x);
        } else {
            Ptr<Node> y = this->minimum(z.ptrField(&Node::right));
            removed_color = colorOf(y);
            x = y.ptrField(&Node::right);
            if (y.ptrField(&Node::parent) == z) {
                x_parent = y;
            } else {
                x_parent = y.ptrField(&Node::parent);
                this->transplant(y, x);
                Ptr<Node> zr = z.ptrField(&Node::right);
                y.setPtrField(&Node::right, zr);
                zr.setPtrField(&Node::parent, y);
            }
            this->transplant(z, y);
            Ptr<Node> zl = z.ptrField(&Node::left);
            y.setPtrField(&Node::left, zl);
            zl.setPtrField(&Node::parent, y);
            y.setField(&Node::meta, colorOf(z));
        }

        this->freeNode(z);
        this->bumpSize(-1);
        if (removed_color == kBlack)
            eraseFixup(x, x_parent);
        return true;
    }

    /** Full red-black invariant check (plus base BST invariants). */
    void
    validate() const
    {
        this->validateBase();
        Ptr<Node> r = this->root();
        if (r.isNull())
            return;
        upr_assert_msg(colorOf(r) == kBlack, "root must be black");
        checkBlackHeight(r);
    }

  private:
    static std::uint64_t
    colorOf(Ptr<Node> n)
    {
        return n.isNull() ? kBlack
                          : n.template field<std::uint64_t>(&Node::meta);
    }

    void
    insertFixup(Ptr<Node> z)
    {
        while (colorOf(z.ptrField(&Node::parent)) == kRed) {
            Ptr<Node> p = z.ptrField(&Node::parent);
            Ptr<Node> g = p.ptrField(&Node::parent);
            if (p == g.ptrField(&Node::left)) {
                Ptr<Node> uncle = g.ptrField(&Node::right);
                if (colorOf(uncle) == kRed) {
                    p.setField(&Node::meta, kBlack);
                    uncle.setField(&Node::meta, kBlack);
                    g.setField(&Node::meta, kRed);
                    z = g;
                } else {
                    if (z == p.ptrField(&Node::right)) {
                        z = p;
                        this->rotateLeft(z);
                        p = z.ptrField(&Node::parent);
                        g = p.ptrField(&Node::parent);
                    }
                    p.setField(&Node::meta, kBlack);
                    g.setField(&Node::meta, kRed);
                    this->rotateRight(g);
                }
            } else {
                Ptr<Node> uncle = g.ptrField(&Node::left);
                if (colorOf(uncle) == kRed) {
                    p.setField(&Node::meta, kBlack);
                    uncle.setField(&Node::meta, kBlack);
                    g.setField(&Node::meta, kRed);
                    z = g;
                } else {
                    if (z == p.ptrField(&Node::left)) {
                        z = p;
                        this->rotateRight(z);
                        p = z.ptrField(&Node::parent);
                        g = p.ptrField(&Node::parent);
                    }
                    p.setField(&Node::meta, kBlack);
                    g.setField(&Node::meta, kRed);
                    this->rotateLeft(g);
                }
            }
        }
        this->root().setField(&Node::meta, kBlack);
    }

    void
    eraseFixup(Ptr<Node> x, Ptr<Node> x_parent)
    {
        while (!(x == this->root()) && colorOf(x) == kBlack) {
            if (x_parent.isNull())
                break;
            if (x == x_parent.ptrField(&Node::left)) {
                Ptr<Node> w = x_parent.ptrField(&Node::right);
                if (colorOf(w) == kRed) {
                    w.setField(&Node::meta, kBlack);
                    x_parent.setField(&Node::meta, kRed);
                    this->rotateLeft(x_parent);
                    w = x_parent.ptrField(&Node::right);
                }
                if (colorOf(w.ptrField(&Node::left)) == kBlack &&
                    colorOf(w.ptrField(&Node::right)) == kBlack) {
                    w.setField(&Node::meta, kRed);
                    x = x_parent;
                    x_parent = x.ptrField(&Node::parent);
                } else {
                    if (colorOf(w.ptrField(&Node::right)) == kBlack) {
                        Ptr<Node> wl = w.ptrField(&Node::left);
                        if (!wl.isNull())
                            wl.setField(&Node::meta, kBlack);
                        w.setField(&Node::meta, kRed);
                        this->rotateRight(w);
                        w = x_parent.ptrField(&Node::right);
                    }
                    w.setField(&Node::meta, colorOf(x_parent));
                    x_parent.setField(&Node::meta, kBlack);
                    Ptr<Node> wr = w.ptrField(&Node::right);
                    if (!wr.isNull())
                        wr.setField(&Node::meta, kBlack);
                    this->rotateLeft(x_parent);
                    x = this->root();
                    x_parent = Ptr<Node>::null();
                }
            } else {
                Ptr<Node> w = x_parent.ptrField(&Node::left);
                if (colorOf(w) == kRed) {
                    w.setField(&Node::meta, kBlack);
                    x_parent.setField(&Node::meta, kRed);
                    this->rotateRight(x_parent);
                    w = x_parent.ptrField(&Node::left);
                }
                if (colorOf(w.ptrField(&Node::right)) == kBlack &&
                    colorOf(w.ptrField(&Node::left)) == kBlack) {
                    w.setField(&Node::meta, kRed);
                    x = x_parent;
                    x_parent = x.ptrField(&Node::parent);
                } else {
                    if (colorOf(w.ptrField(&Node::left)) == kBlack) {
                        Ptr<Node> wr = w.ptrField(&Node::right);
                        if (!wr.isNull())
                            wr.setField(&Node::meta, kBlack);
                        w.setField(&Node::meta, kRed);
                        this->rotateLeft(w);
                        w = x_parent.ptrField(&Node::left);
                    }
                    w.setField(&Node::meta, colorOf(x_parent));
                    x_parent.setField(&Node::meta, kBlack);
                    Ptr<Node> wl = w.ptrField(&Node::left);
                    if (!wl.isNull())
                        wl.setField(&Node::meta, kBlack);
                    this->rotateRight(x_parent);
                    x = this->root();
                    x_parent = Ptr<Node>::null();
                }
            }
        }
        if (!x.isNull())
            x.setField(&Node::meta, kBlack);
    }

    /** Check no red-red edges; return the subtree's black height. */
    std::uint64_t
    checkBlackHeight(Ptr<Node> n) const
    {
        if (n.isNull())
            return 1;
        Ptr<Node> l = n.ptrField(&Node::left);
        Ptr<Node> r = n.ptrField(&Node::right);
        if (colorOf(n) == kRed) {
            upr_assert_msg(colorOf(l) == kBlack &&
                           colorOf(r) == kBlack,
                           "red node with red child");
        }
        const std::uint64_t lh = checkBlackHeight(l);
        const std::uint64_t rh = checkBlackHeight(r);
        upr_assert_msg(lh == rh, "black height mismatch");
        return lh + (colorOf(n) == kBlack ? 1 : 0);
    }
};

} // namespace upr

#endif // UPR_CONTAINERS_RB_TREE_HH
