/**
 * @file
 * The "before" picture: an explicit persistent-references programming
 * model (PMDK/NV-Heaps style, the paper's [26] baseline) and a linked
 * list ported to it.
 *
 * Persistent objects are referenced through a distinct handle type
 * (PObj<T>, the PMEMoid analogue) and every access goes through
 * special API calls that translate the handle — there is no
 * transparency: this list shares NO code with containers/linked_list
 * even though it implements the same structure, which is precisely
 * the migration burden the paper's user-transparent references
 * eliminate. The file exists so the contrast is measurable (see
 * tests/test_explicit_contrast.cc and EXPERIMENTS.md).
 */

#ifndef UPR_CONTAINERS_EXPLICIT_API_HH
#define UPR_CONTAINERS_EXPLICIT_API_HH

#include "core/ptr.hh"

namespace upr::explicit_model
{

/**
 * Typed persistent object handle — deliberately NOT a pointer: it
 * cannot be dereferenced, compared with normal pointers, or passed
 * to code expecting T*.
 */
template <typename T>
struct PObj
{
    PtrBits oid = 0; //!< {pool, offset} in relative encoding

    static PObj null() { return PObj{}; }
    bool isNull() const { return oid == 0; }

    bool operator==(const PObj &o) const { return oid == o.oid; }
    bool operator!=(const PObj &o) const { return oid != o.oid; }
};

/** The special access API (every call translates the handle). */
class PmemApi
{
  public:
    PmemApi(Runtime &rt, PoolId pool) : rt_(rt), pool_(pool) {}

    /** Allocate a zeroed T; returns its handle. */
    template <typename T>
    PObj<T>
    alloc()
    {
        const PtrBits bits = rt_.pmallocBits(pool_, sizeof(T));
        // Zero-fill (functional).
        const SimAddr va = rt_.pools().ra2va(
            PtrRepr::poolOf(bits), PtrRepr::offsetOf(bits));
        static const std::uint8_t zeros[256] = {};
        for (Bytes i = 0; i < sizeof(T); i += sizeof(zeros)) {
            rt_.space().writeBytes(
                va + i, zeros,
                std::min<Bytes>(sizeof(zeros), sizeof(T) - i));
        }
        return PObj<T>{bits};
    }

    /** Free an object by handle. */
    template <typename T>
    void
    free(PObj<T> obj)
    {
        if (!obj.isNull())
            rt_.pfreeBits(obj.oid);
    }

    /** Read a data field: direct(oid) translation + load. */
    template <typename T, typename F>
    F
    read(PObj<T> obj, F T::*member)
    {
        const SimAddr va = direct(obj.oid) + memberOffset(member);
        return rt_.loadData<F>(va);
    }

    /** Write a data field. */
    template <typename T, typename F>
    void
    write(PObj<T> obj, F T::*member, const F &value)
    {
        const SimAddr va = direct(obj.oid) + memberOffset(member);
        rt_.storeData<F>(va, value);
    }

    /** Read a handle-valued field. */
    template <typename T, typename U>
    PObj<U>
    readObj(PObj<T> obj, PObj<U> T::*member)
    {
        const SimAddr va = direct(obj.oid) + memberOffset(member);
        return PObj<U>{rt_.loadPtr(va)};
    }

    /** Write a handle-valued field (IDs are stored as-is). */
    template <typename T, typename U>
    void
    writeObj(PObj<T> obj, PObj<U> T::*member, PObj<U> value)
    {
        const SimAddr va = direct(obj.oid) + memberOffset(member);
        rt_.storePtr(va, value.oid, 0x0bee);
    }

    Runtime &runtime() { return rt_; }
    PoolId pool() const { return pool_; }

  private:
    /** The pmemobj_direct analogue: translate on EVERY access. */
    SimAddr
    direct(PtrBits oid)
    {
        upr_assert_msg(oid != 0, "direct() on a null object id");
        return rt_.ra2va(oid, 0x0b0e);
    }

    Runtime &rt_;
    PoolId pool_;
};

/**
 * The ported doubly linked list. Compare with
 * containers/linked_list.hh: same structure, completely different
 * code — every object access became an API call, every pointer a
 * handle. This is what porting one container to the explicit model
 * costs; the transparent version required zero changes.
 */
class ExplicitList
{
  public:
    struct Node
    {
        PObj<Node> next;
        PObj<Node> prev;
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    struct Header
    {
        PObj<Node> head;
        PObj<Node> tail;
        std::uint64_t size = 0;
    };

    explicit ExplicitList(PmemApi api)
        : api_(api), header_(api_.alloc<Header>())
    {}

    ExplicitList(PmemApi api, PObj<Header> header)
        : api_(api), header_(header)
    {}

    PObj<Header> header() const { return header_; }

    std::uint64_t size() { return api_.read(header_, &Header::size); }

    PObj<Node>
    pushBack(std::uint64_t lo, std::uint64_t hi)
    {
        PObj<Node> node = api_.alloc<Node>();
        api_.write(node, &Node::lo, lo);
        api_.write(node, &Node::hi, hi);
        PObj<Node> tail = api_.readObj(header_, &Header::tail);
        api_.writeObj(node, &Node::prev, tail);
        api_.writeObj(node, &Node::next, PObj<Node>::null());
        if (tail.isNull()) {
            api_.writeObj(header_, &Header::head, node);
        } else {
            api_.writeObj(tail, &Node::next, node);
        }
        api_.writeObj(header_, &Header::tail, node);
        api_.write(header_, &Header::size, size() + 1);
        return node;
    }

    void
    erase(PObj<Node> node)
    {
        PObj<Node> prev = api_.readObj(node, &Node::prev);
        PObj<Node> next = api_.readObj(node, &Node::next);
        if (prev.isNull()) {
            api_.writeObj(header_, &Header::head, next);
        } else {
            api_.writeObj(prev, &Node::next, next);
        }
        if (next.isNull()) {
            api_.writeObj(header_, &Header::tail, prev);
        } else {
            api_.writeObj(next, &Node::prev, prev);
        }
        api_.free(node);
        api_.write(header_, &Header::size, size() - 1);
    }

    PObj<Node> front() { return api_.readObj(header_, &Header::head); }

    template <typename Cb>
    void
    forEach(Cb &&cb)
    {
        for (PObj<Node> n = front(); !n.isNull();
             n = api_.readObj(n, &Node::next)) {
            cb(api_.read(n, &Node::lo), api_.read(n, &Node::hi));
        }
    }

  private:
    PmemApi api_;
    PObj<Header> header_;
};

} // namespace upr::explicit_model

#endif // UPR_CONTAINERS_EXPLICIT_API_HH
