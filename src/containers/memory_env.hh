/**
 * @file
 * MemEnv: the only knob a container user turns.
 *
 * A container written against MemEnv + Ptr<T> is "legacy code" in the
 * paper's sense: the same source runs with volatile objects (heap
 * environment) and persistent objects (pool environment). Migrating a
 * data structure to NVM is exactly the paper's one-line change —
 * construct its MemEnv with a pool instead of the heap.
 */

#ifndef UPR_CONTAINERS_MEMORY_ENV_HH
#define UPR_CONTAINERS_MEMORY_ENV_HH

#include <algorithm>

#include "core/ptr.hh"

namespace upr
{

/** Allocation environment: volatile heap or a persistent pool. */
class MemEnv
{
  public:
    /** A heap (volatile) environment. */
    static MemEnv
    volatileEnv(Runtime &rt)
    {
        return MemEnv(rt, false, 0);
    }

    /** A persistent environment allocating from @p pool. */
    static MemEnv
    persistentEnv(Runtime &rt, PoolId pool)
    {
        return MemEnv(rt, true, pool);
    }

    /** Allocate one zero-initialized T. */
    template <typename T>
    Ptr<T>
    alloc()
    {
        return allocArray<T>(1);
    }

    /** Allocate @p n zero-initialized contiguous Ts. */
    template <typename T>
    Ptr<T>
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const Bytes bytes = sizeof(T) * n;
        PtrBits bits;
        if (persistent_) {
            bits = rt_->pmallocBits(pool_, bytes);
        } else {
            bits = PtrRepr::fromVa(rt_->mallocBytes(bytes));
        }
        zero(bits, bytes);
        return Ptr<T>::fromBits(bits);
    }

    /**
     * Free an allocation made by this environment. Dispatch is on
     * the pointer's actual form, not the environment flag: under
     * user transparency the same free() receives relative pointers
     * (loaded back from NVM) and virtual ones (fresh allocations,
     * libvmmalloc-mode NVM addresses) interchangeably.
     */
    template <typename T>
    void
    free(Ptr<T> p)
    {
        if (p.isNull())
            return;
        if (PtrRepr::isRelative(p.bits())) {
            rt_->pfreeBits(p.bits());
        } else {
            rt_->freeBytes(PtrRepr::toVa(p.bits()));
        }
    }

    Runtime &runtime() const { return *rt_; }
    bool persistent() const { return persistent_; }
    PoolId pool() const { return pool_; }

  private:
    MemEnv(Runtime &rt, bool persistent, PoolId pool)
        : rt_(&rt), persistent_(persistent), pool_(pool)
    {}

    /** Functional zero-fill (identical cost across versions). */
    void
    zero(PtrBits bits, Bytes n)
    {
        // Resolve without charging translation (allocation returns a
        // fresh object; the zeroing memset is part of the modeled
        // allocator cost already).
        SimAddr va;
        if (PtrRepr::isRelative(bits)) {
            va = rt_->pools().ra2va(PtrRepr::poolOf(bits),
                                    PtrRepr::offsetOf(bits));
        } else {
            va = PtrRepr::toVa(bits);
        }
        static const std::uint8_t zeros[256] = {};
        for (Bytes i = 0; i < n; i += sizeof(zeros)) {
            const Bytes chunk = std::min<Bytes>(sizeof(zeros), n - i);
            rt_->space().writeBytes(va + i, zeros, chunk);
        }
    }

    Runtime *rt_;
    bool persistent_;
    PoolId pool_;
};

} // namespace upr

#endif // UPR_CONTAINERS_MEMORY_ENV_HH
