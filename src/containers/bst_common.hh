/**
 * @file
 * Shared machinery for the four binary search trees of Table III
 * (RB, Splay, AVL, SG): the node layout, header, search, rotations,
 * ordered traversal, and the BST-order invariant validator.
 *
 * Every tree stores a `meta` word per node whose meaning the concrete
 * tree defines (RB: color, AVL: height, SG/Splay: unused), keeping one
 * node layout so the trees are directly comparable in the benches.
 */

#ifndef UPR_CONTAINERS_BST_COMMON_HH
#define UPR_CONTAINERS_BST_COMMON_HH

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "containers/memory_env.hh"

namespace upr
{

/** Common BST node: three links, key, value, one metadata word. */
template <typename K, typename V>
struct TreeNode
{
    Ptr<TreeNode> left;
    Ptr<TreeNode> right;
    Ptr<TreeNode> parent;
    K key{};
    V value{};
    std::uint64_t meta = 0;
};

/**
 * Base class with the operations all four trees share. Concrete trees
 * add their balancing logic on top.
 */
template <typename K, typename V>
class BstBase
{
  public:
    using Node = TreeNode<K, V>;

    struct Header
    {
        Ptr<Node> root;
        std::uint64_t size = 0;
        std::uint64_t aux = 0; //!< tree-specific (SG: maxSize)
    };

    /** Create an empty tree. */
    explicit BstBase(MemEnv env)
        : env_(env), header_(env_.alloc<Header>())
    {}

    /** Re-attach to an existing tree. */
    BstBase(MemEnv env, Ptr<Header> header) : env_(env), header_(header)
    {}

    Ptr<Header> header() const { return header_; }

    std::uint64_t size() const { return header_.field(&Header::size); }
    bool empty() const { return size() == 0; }

    /** Look up @p key. */
    std::optional<V>
    find(const K &key) const
    {
        Ptr<Node> n = findNode(key);
        if (n.isNull())
            return std::nullopt;
        return n.template field<V>(&Node::value);
    }

    /** True if @p key is present. */
    bool contains(const K &key) const { return !findNode(key).isNull(); }

    /** Smallest key in the tree (empty optional when empty). */
    std::optional<K>
    minKey() const
    {
        Ptr<Node> r = root();
        if (r.isNull())
            return std::nullopt;
        return minimum(r).template field<K>(&Node::key);
    }

    /** Largest key in the tree. */
    std::optional<K>
    maxKey() const
    {
        Ptr<Node> r = root();
        if (r.isNull())
            return std::nullopt;
        return maximum(r).template field<K>(&Node::key);
    }

    /**
     * Smallest (key, value) with key >= @p key — the lower-bound
     * query backing range scans.
     */
    std::optional<std::pair<K, V>>
    lowerBound(const K &key) const
    {
        Ptr<Node> n = root();
        Ptr<Node> best = Ptr<Node>::null();
        while (!n.isNull()) {
            const K k = n.template field<K>(&Node::key);
            if (keyBranch(k < key, 7)) {
                n = n.ptrField(&Node::right);
            } else {
                best = n;
                n = n.ptrField(&Node::left);
            }
        }
        if (best.isNull())
            return std::nullopt;
        return std::make_pair(best.template field<K>(&Node::key),
                              best.template field<V>(&Node::value));
    }

    /**
     * Visit every (key, value) with lo <= key < hi, in order.
     */
    template <typename Cb>
    void
    forEachInRange(const K &lo, const K &hi, Cb &&cb) const
    {
        rangeWalk(root(), lo, hi, cb);
    }

    // ------------------------------------------------------------------
    // Ordered cursors (iterator-style traversal without callbacks)
    // ------------------------------------------------------------------

    /** A position in key order; invalid == one-past-the-end. */
    struct Cursor
    {
        Ptr<Node> node;

        bool valid() const { return !node.isNull(); }
        bool operator==(const Cursor &o) const
        {
            return node == o.node;
        }
    };

    /** Cursor at the smallest key (invalid when empty). */
    Cursor
    first() const
    {
        Ptr<Node> r = root();
        return {r.isNull() ? r : minimum(r)};
    }

    /** Cursor at the largest key (invalid when empty). */
    Cursor
    last() const
    {
        Ptr<Node> r = root();
        return {r.isNull() ? r : maximum(r)};
    }

    /** Cursor at the smallest key >= @p key (lower bound). */
    Cursor
    seek(const K &key) const
    {
        Ptr<Node> n = root();
        Ptr<Node> best = Ptr<Node>::null();
        while (!n.isNull()) {
            if (keyBranch(n.template field<K>(&Node::key) < key, 8)) {
                n = n.ptrField(&Node::right);
            } else {
                best = n;
                n = n.ptrField(&Node::left);
            }
        }
        return {best};
    }

    /** In-order successor (invalid after the last key). */
    Cursor
    next(Cursor c) const
    {
        upr_assert_msg(c.valid(), "next() past the end");
        Ptr<Node> n = c.node;
        Ptr<Node> r = n.ptrField(&Node::right);
        if (!r.isNull())
            return {minimum(r)};
        Ptr<Node> p = n.ptrField(&Node::parent);
        while (!p.isNull() && p.ptrField(&Node::right) == n) {
            n = p;
            p = p.ptrField(&Node::parent);
        }
        return {p};
    }

    /** In-order predecessor (invalid before the first key). */
    Cursor
    prev(Cursor c) const
    {
        upr_assert_msg(c.valid(), "prev() before the beginning");
        Ptr<Node> n = c.node;
        Ptr<Node> l = n.ptrField(&Node::left);
        if (!l.isNull())
            return {maximum(l)};
        Ptr<Node> p = n.ptrField(&Node::parent);
        while (!p.isNull() && p.ptrField(&Node::left) == n) {
            n = p;
            p = p.ptrField(&Node::parent);
        }
        return {p};
    }

    /** Key at a valid cursor. */
    K
    keyAt(Cursor c) const
    {
        upr_assert(c.valid());
        return c.node.template field<K>(&Node::key);
    }

    /** Value at a valid cursor. */
    V
    valueAt(Cursor c) const
    {
        upr_assert(c.valid());
        return c.node.template field<V>(&Node::value);
    }

    /** In-order visit: cb(key, value). */
    template <typename Cb>
    void
    forEach(Cb &&cb) const
    {
        forEachFrom(root(), cb);
    }

    /** Free every node (post-order) and reset the header. */
    void
    clear()
    {
        freeSubtree(root());
        header_.setPtrField(&Header::root, Ptr<Node>::null());
        header_.setField(&Header::size, std::uint64_t{0});
        header_.setField(&Header::aux, std::uint64_t{0});
    }

    /**
     * Validate the BST-order invariant, parent links, and the stored
     * size. Concrete trees call this from their own validate() and
     * add their balancing invariants.
     */
    void
    validateBase() const
    {
        std::uint64_t count = 0;
        bool have_prev = false;
        K prev{};
        // In-order walk checking strict ascent.
        walkInOrder(root(), [&](Ptr<Node> n) {
            const K k = n.template field<K>(&Node::key);
            if (have_prev) {
                upr_assert_msg(prev < k, "BST order violated");
            }
            prev = k;
            have_prev = true;
            ++count;
            upr_assert_msg(count <= size(), "tree cycle suspected");
        });
        upr_assert_msg(count == size(), "tree size mismatch");
        validateParents(root(), Ptr<Node>::null());
    }

  protected:
    Ptr<Node> root() const { return header_.ptrField(&Header::root); }

    void
    setRoot(Ptr<Node> n)
    {
        header_.setPtrField(&Header::root, n);
        if (!n.isNull())
            n.setPtrField(&Node::parent, Ptr<Node>::null());
    }

    void
    bumpSize(std::int64_t delta)
    {
        header_.setField(
            &Header::size,
            size() + static_cast<std::uint64_t>(delta));
    }

    /** Allocate a node with both children null. */
    Ptr<Node>
    allocNode(const K &key, const V &value)
    {
        Ptr<Node> n = env_.template alloc<Node>();
        n.setField(&Node::key, key);
        n.setField(&Node::value, value);
        return n;
    }

    void freeNode(Ptr<Node> n) { env_.free(n); }

    /**
     * Key-comparison branch: the program's own data-dependent
     * control flow, run through the predictor in every version.
     */
    bool
    keyBranch(bool outcome, std::uint64_t op) const
    {
        static const std::uint64_t salt = detail::nextSiteSalt();
        return env_.runtime().dataBranch(
            outcome, salt * 0x9e3779b97f4a7c15ULL + op);
    }

    /** Standard BST descent. */
    Ptr<Node>
    findNode(const K &key) const
    {
        Ptr<Node> n = root();
        while (!n.isNull()) {
            const K k = n.template field<K>(&Node::key);
            if (keyBranch(key < k, 1)) {
                n = n.ptrField(&Node::left);
            } else if (keyBranch(k < key, 2)) {
                n = n.ptrField(&Node::right);
            } else {
                return n;
            }
        }
        return Ptr<Node>::null();
    }

    /** Leftmost node of the subtree at @p n. */
    Ptr<Node>
    minimum(Ptr<Node> n) const
    {
        upr_assert(!n.isNull());
        for (;;) {
            Ptr<Node> l = n.ptrField(&Node::left);
            if (l.isNull())
                return n;
            n = l;
        }
    }

    /** Rightmost node of the subtree at @p n. */
    Ptr<Node>
    maximum(Ptr<Node> n) const
    {
        upr_assert(!n.isNull());
        for (;;) {
            Ptr<Node> r = n.ptrField(&Node::right);
            if (r.isNull())
                return n;
            n = r;
        }
    }

    /** Replace subtree @p u by subtree @p v in u's parent. */
    void
    transplant(Ptr<Node> u, Ptr<Node> v)
    {
        Ptr<Node> p = u.ptrField(&Node::parent);
        if (p.isNull()) {
            header_.setPtrField(&Header::root, v);
        } else if (p.ptrField(&Node::left) == u) {
            p.setPtrField(&Node::left, v);
        } else {
            p.setPtrField(&Node::right, v);
        }
        if (!v.isNull())
            v.setPtrField(&Node::parent, p);
    }

    /** Left rotation about @p x (x->right becomes the subtree root). */
    void
    rotateLeft(Ptr<Node> x)
    {
        Ptr<Node> y = x.ptrField(&Node::right);
        upr_assert(!y.isNull());
        Ptr<Node> yl = y.ptrField(&Node::left);
        x.setPtrField(&Node::right, yl);
        if (!yl.isNull())
            yl.setPtrField(&Node::parent, x);
        transplant(x, y);
        y.setPtrField(&Node::left, x);
        x.setPtrField(&Node::parent, y);
    }

    /** Right rotation about @p x. */
    void
    rotateRight(Ptr<Node> x)
    {
        Ptr<Node> y = x.ptrField(&Node::left);
        upr_assert(!y.isNull());
        Ptr<Node> yr = y.ptrField(&Node::right);
        x.setPtrField(&Node::left, yr);
        if (!yr.isNull())
            yr.setPtrField(&Node::parent, x);
        transplant(x, y);
        y.setPtrField(&Node::right, x);
        x.setPtrField(&Node::parent, y);
    }

    /** In-order node visitor (iterative; no recursion depth limits). */
    template <typename Cb>
    void
    walkInOrder(Ptr<Node> from, Cb &&cb) const
    {
        std::vector<Ptr<Node>> stack;
        Ptr<Node> n = from;
        while (!n.isNull() || !stack.empty()) {
            while (!n.isNull()) {
                stack.push_back(n);
                n = n.ptrField(&Node::left);
            }
            n = stack.back();
            stack.pop_back();
            cb(n);
            n = n.ptrField(&Node::right);
        }
    }

    template <typename Cb>
    void
    forEachFrom(Ptr<Node> from, Cb &&cb) const
    {
        walkInOrder(from, [&](Ptr<Node> n) {
            cb(n.template field<K>(&Node::key),
               n.template field<V>(&Node::value));
        });
    }

    void
    freeSubtree(Ptr<Node> n)
    {
        if (n.isNull())
            return;
        // Iterative post-order free.
        std::vector<Ptr<Node>> stack{n};
        std::vector<Ptr<Node>> order;
        while (!stack.empty()) {
            Ptr<Node> cur = stack.back();
            stack.pop_back();
            order.push_back(cur);
            Ptr<Node> l = cur.ptrField(&Node::left);
            Ptr<Node> r = cur.ptrField(&Node::right);
            if (!l.isNull())
                stack.push_back(l);
            if (!r.isNull())
                stack.push_back(r);
        }
        for (auto it = order.rbegin(); it != order.rend(); ++it)
            freeNode(*it);
    }

    template <typename Cb>
    void
    rangeWalk(Ptr<Node> n, const K &lo, const K &hi, Cb &&cb) const
    {
        if (n.isNull())
            return;
        const K k = n.template field<K>(&Node::key);
        if (lo < k || !(k < lo)) // k >= lo
            rangeWalk(n.ptrField(&Node::left), lo, hi, cb);
        if (!(k < lo) && k < hi)
            cb(k, n.template field<V>(&Node::value));
        if (k < hi)
            rangeWalk(n.ptrField(&Node::right), lo, hi, cb);
    }

    void
    validateParents(Ptr<Node> n, Ptr<Node> expected_parent) const
    {
        if (n.isNull())
            return;
        upr_assert_msg(n.ptrField(&Node::parent) == expected_parent,
                       "parent link broken");
        validateParents(n.ptrField(&Node::left), n);
        validateParents(n.ptrField(&Node::right), n);
    }

    MemEnv env_;
    Ptr<Header> header_;
};

} // namespace upr

#endif // UPR_CONTAINERS_BST_COMMON_HH
