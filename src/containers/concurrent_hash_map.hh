/**
 * @file
 * ConcurrentHashMap — a sharded-by-key persistent hash map over a
 * ShardedRuntime fleet.
 *
 * Concurrency model: there are no locks and no atomics in the data
 * path. Each key belongs to exactly one shard (ShardedRuntime::
 * shardOf), each shard's table lives in that shard's pool, and only
 * the thread that has the shard bound may touch it — enforced, not
 * assumed: every operation checks that the thread-current Runtime is
 * the owning shard's and faults Fault{WrongShard} otherwise (or
 * Fault{NoRuntimeBound} with no binding at all).
 *
 * Durability model (FliT-style per-operation persistence): every
 * mutating operation runs in its own transaction on the shard's
 * engine, so each set/erase is individually flushed and fenced at
 * commit. A crash therefore loses at most the in-flight operation
 * per shard — the property the multi-threaded crash sweep
 * (crash/mt_crash_sweep.hh) checks as durable linearizability.
 */

#ifndef UPR_CONTAINERS_CONCURRENT_HASH_MAP_HH
#define UPR_CONTAINERS_CONCURRENT_HASH_MAP_HH

#include <optional>
#include <vector>

#include "containers/hash_map.hh"
#include "core/sharded_runtime.hh"

namespace upr
{

/**
 * Sharded persistent hash map.
 * @tparam K key type (trivially copyable; must hash/shard as u64)
 * @tparam V mapped type (trivially copyable)
 * @tparam H per-shard hasher over K
 */
template <typename K, typename V, typename H = DefaultHash>
class ConcurrentHashMap
{
  public:
    using Shard = HashMap<K, V, H>;

    /**
     * Create one empty table per shard, each in its shard's pool and
     * published as that pool's root object so recovery can re-attach
     * it with nothing but the pool image.
     */
    explicit ConcurrentHashMap(ShardedRuntime &fleet) : fleet_(&fleet)
    {
        tables_.reserve(fleet.shardCount());
        for (unsigned s = 0; s < fleet.shardCount(); ++s) {
            ShardedRuntime::Bind bind(fleet, s);
            Runtime &rt = fleet.runtime(s);
            Shard table(
                MemEnv::persistentEnv(rt, fleet.pool(s)));
            rt.pools().pool(fleet.pool(s))
                .setRootOff(static_cast<PoolOffset>(
                    PtrRepr::offsetOf(table.header().bits())));
            tables_.push_back(table);
        }
    }

    unsigned shardCount() const { return fleet_->shardCount(); }

    /** The owning shard of @p key. */
    unsigned
    shardOf(const K &key) const
    {
        return fleet_->shardOf(static_cast<std::uint64_t>(key));
    }

    /** Direct access to shard @p s's table (bind the shard first). */
    Shard &shard(unsigned s) { return tables_.at(s); }

    /**
     * Insert or update @p key in its owning shard, durably: the
     * mutation commits in its own transaction on the shard's engine.
     * @return true if the key was newly inserted
     */
    bool
    set(const K &key, const V &value)
    {
        const unsigned s = checkOwned(key);
        Runtime &rt = fleet_->runtime(s);
        rt.beginTxn(fleet_->pool(s));
        const bool fresh = tables_[s].insert(key, value);
        rt.commitTxn();
        return fresh;
    }

    /** Look up @p key in its owning shard (reads need no logging). */
    std::optional<V>
    get(const K &key) const
    {
        return tables_[checkOwned(key)].find(key);
    }

    /** True if @p key is present. */
    bool
    contains(const K &key) const
    {
        return tables_[checkOwned(key)].contains(key);
    }

    /**
     * Remove @p key from its owning shard, durably (own transaction).
     * @return true if it was present
     */
    bool
    erase(const K &key)
    {
        const unsigned s = checkOwned(key);
        Runtime &rt = fleet_->runtime(s);
        rt.beginTxn(fleet_->pool(s));
        const bool removed = tables_[s].erase(key);
        rt.commitTxn();
        return removed;
    }

    /** Shard @p s's entry count. Claims the shard for the read, so
     * call from a quiesced fleet (no worker bound to the shard). */
    std::uint64_t
    sizeOnShard(unsigned s) const
    {
        ShardedRuntime::Bind bind(*fleet_, s);
        return tables_.at(s).size();
    }

  private:
    /**
     * @return the shard owning @p key
     * @throws Fault{NoRuntimeBound} no runtime bound on this thread
     * @throws Fault{WrongShard} the bound runtime is not the owner's
     */
    unsigned
    checkOwned(const K &key) const
    {
        const unsigned s = shardOf(key);
        if (&currentRuntime() != &fleet_->runtime(s)) {
            throw Fault(FaultKind::WrongShard,
                        "key belongs to shard " + std::to_string(s) +
                            " but the calling thread has a different "
                            "shard's Runtime bound");
        }
        return s;
    }

    ShardedRuntime *fleet_;
    std::vector<Shard> tables_;
};

} // namespace upr

#endif // UPR_CONTAINERS_CONCURRENT_HASH_MAP_HH
