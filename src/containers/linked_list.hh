/**
 * @file
 * LL — doubly linked list (paper Table III).
 *
 * Written once against MemEnv/Ptr<T>; the same source runs volatile
 * or persistent. The list header itself lives in simulated memory so
 * a persistent list is fully reachable from its pool root offset.
 */

#ifndef UPR_CONTAINERS_LINKED_LIST_HH
#define UPR_CONTAINERS_LINKED_LIST_HH

#include "common/logging.hh"
#include "containers/memory_env.hh"

namespace upr
{

/**
 * Doubly linked list of trivially copyable values.
 * @tparam V element type (no Ptr members)
 */
template <typename V>
class LinkedList
{
  public:
    struct Node
    {
        Ptr<Node> next;
        Ptr<Node> prev;
        V value{};
    };

    struct Header
    {
        Ptr<Node> head;
        Ptr<Node> tail;
        std::uint64_t size = 0;
    };

    /** Create an empty list in @p env. */
    explicit LinkedList(MemEnv env)
        : env_(env), header_(env_.alloc<Header>())
    {}

    /** Re-attach to an existing (e.g. reopened persistent) list. */
    LinkedList(MemEnv env, Ptr<Header> header)
        : env_(env), header_(header)
    {}

    /** The header pointer (store it as a pool root to persist). */
    Ptr<Header> header() const { return header_; }

    /** Number of elements. */
    std::uint64_t size() const
    {
        return header_.field(&Header::size);
    }

    /** True when empty. */
    bool empty() const { return size() == 0; }

    /** Append @p value; returns the new node. */
    Ptr<Node>
    pushBack(const V &value)
    {
        Ptr<Node> node = env_.template alloc<Node>();
        node.setField(&Node::value, value);
        Ptr<Node> tail = header_.ptrField(&Header::tail);
        node.setPtrField(&Node::prev, tail);
        node.setPtrField(&Node::next, Ptr<Node>::null());
        if (tail.isNull()) {
            header_.setPtrField(&Header::head, node);
        } else {
            tail.setPtrField(&Node::next, node);
        }
        header_.setPtrField(&Header::tail, node);
        bumpSize(1);
        return node;
    }

    /** Prepend @p value; returns the new node. */
    Ptr<Node>
    pushFront(const V &value)
    {
        Ptr<Node> node = env_.template alloc<Node>();
        node.setField(&Node::value, value);
        Ptr<Node> head = header_.ptrField(&Header::head);
        node.setPtrField(&Node::next, head);
        node.setPtrField(&Node::prev, Ptr<Node>::null());
        if (head.isNull()) {
            header_.setPtrField(&Header::tail, node);
        } else {
            head.setPtrField(&Node::prev, node);
        }
        header_.setPtrField(&Header::head, node);
        bumpSize(1);
        return node;
    }

    /** Insert @p value right after @p pos (must be a live node). */
    Ptr<Node>
    insertAfter(Ptr<Node> pos, const V &value)
    {
        upr_assert(!pos.isNull());
        Ptr<Node> node = env_.template alloc<Node>();
        node.setField(&Node::value, value);
        Ptr<Node> next = pos.ptrField(&Node::next);
        node.setPtrField(&Node::prev, pos);
        node.setPtrField(&Node::next, next);
        pos.setPtrField(&Node::next, node);
        if (next.isNull()) {
            header_.setPtrField(&Header::tail, node);
        } else {
            next.setPtrField(&Node::prev, node);
        }
        bumpSize(1);
        return node;
    }

    /** Unlink and free @p node. */
    void
    erase(Ptr<Node> node)
    {
        upr_assert(!node.isNull());
        Ptr<Node> prev = node.ptrField(&Node::prev);
        Ptr<Node> next = node.ptrField(&Node::next);
        if (prev.isNull()) {
            header_.setPtrField(&Header::head, next);
        } else {
            prev.setPtrField(&Node::next, next);
        }
        if (next.isNull()) {
            header_.setPtrField(&Header::tail, prev);
        } else {
            next.setPtrField(&Node::prev, prev);
        }
        env_.free(node);
        bumpSize(-1);
    }

    /** First node (null when empty). */
    Ptr<Node> front() const { return header_.ptrField(&Header::head); }

    /** Last node (null when empty). */
    Ptr<Node> back() const { return header_.ptrField(&Header::tail); }

    /** Visit every value front-to-back: cb(const V&). */
    template <typename Cb>
    void
    forEach(Cb &&cb) const
    {
        for (Ptr<Node> n = front(); !n.isNull();
             n = n.ptrField(&Node::next)) {
            cb(n.template field<V>(&Node::value));
        }
    }

    /** Remove and free every node. */
    void
    clear()
    {
        Ptr<Node> n = front();
        while (!n.isNull()) {
            Ptr<Node> next = n.ptrField(&Node::next);
            env_.free(n);
            n = next;
        }
        header_.setPtrField(&Header::head, Ptr<Node>::null());
        header_.setPtrField(&Header::tail, Ptr<Node>::null());
        header_.setField(&Header::size, std::uint64_t{0});
    }

    /**
     * Structural invariant check: forward/backward link symmetry,
     * head/tail consistency, and size agreement. Panics on breakage.
     */
    void
    validate() const
    {
        std::uint64_t count = 0;
        Ptr<Node> prev = Ptr<Node>::null();
        Ptr<Node> n = front();
        while (!n.isNull()) {
            upr_assert_msg(n.ptrField(&Node::prev) == prev,
                           "list back-link broken");
            prev = n;
            n = n.ptrField(&Node::next);
            ++count;
            upr_assert_msg(count <= size() + 1, "list cycle detected");
        }
        upr_assert_msg(back() == prev || (count == 0 && back().isNull()),
                       "list tail inconsistent");
        upr_assert_msg(count == size(), "list size mismatch");
    }

  private:
    void
    bumpSize(std::int64_t delta)
    {
        header_.setField(
            &Header::size,
            header_.field(&Header::size) +
                static_cast<std::uint64_t>(delta));
    }

    MemEnv env_;
    Ptr<Header> header_;
};

} // namespace upr

#endif // UPR_CONTAINERS_LINKED_LIST_HH
