/**
 * @file
 * Engine-dispatching recovery facade: code that handles pool images
 * of *either* engine (image adoption, crash sweeps, check/repair,
 * inspection tools) goes through TxnEngine, which reads the engine
 * kind persisted in the pool header and forwards to the undo (Txn)
 * or redo (RedoLog) implementation. Code that *drives* transactions
 * keeps using the engine-specific APIs directly.
 */

#ifndef UPR_NVM_ENGINE_HH
#define UPR_NVM_ENGINE_HH

#include "nvm/pool.hh"
#include "nvm/redo_log.hh"
#include "nvm/txn.hh"

namespace upr
{

/** Static dispatch over the engine persisted in the pool header. */
struct TxnEngine
{
    /** The engine @p pool's log region speaks. */
    static EngineKind kindOf(const Pool &pool)
    {
        return pool.engineKind();
    }

    /**
     * True if the log region holds pending recovery work (an open
     * undo log / a committed, unapplied redo journal).
     */
    static bool
    isActive(const Pool &pool)
    {
        return kindOf(pool) == EngineKind::Redo ? RedoLog::isActive(pool)
                                                : Txn::isActive(pool);
    }

    /**
     * Run the pool's own recovery: undo rollback or redo forward
     * replay. Idempotent either way.
     * @return true if recovery mutated the pool
     */
    static bool
    recover(Pool &pool)
    {
        return kindOf(pool) == EngineKind::Redo ? RedoLog::recover(pool)
                                                : Txn::recover(pool);
    }

    /** recover(), reporting what happened. */
    static Txn::RecoveryReport
    recoverEx(Pool &pool)
    {
        return kindOf(pool) == EngineKind::Redo
                   ? RedoLog::recoverEx(pool)
                   : Txn::recoverEx(pool);
    }

    /** Dry-run classification of the log region. */
    static Txn::RecoveryReport
    analyze(const Pool &pool)
    {
        return kindOf(pool) == EngineKind::Redo
                   ? RedoLog::analyze(pool)
                   : Txn::analyze(pool);
    }
};

} // namespace upr

#endif // UPR_NVM_ENGINE_HH
