#include "nvm/pool_allocator.hh"

#include <cstdio>
#include <vector>

#include "common/bits.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace upr
{

namespace
{
constexpr std::uint64_t kAllocatedBit = 1;
} // namespace

std::uint64_t
PoolAllocator::rd64(Bytes off) const
{
    std::uint64_t v;
    pool_.backing().read(off, &v, sizeof(v));
    return v;
}

void
PoolAllocator::wr64(Bytes off, std::uint64_t v)
{
    // Every metadata word is flushed as written; the public
    // operations fence once at their end, so one alloc/free is one
    // durability epoch.
    pool_.backing().write(off, &v, sizeof(v));
    pool_.backing().flush(off, sizeof(v));
}

Bytes
PoolAllocator::blockSize(Bytes block) const
{
    return rd64(block) & ~kAllocatedBit;
}

bool
PoolAllocator::blockAllocated(Bytes block) const
{
    return rd64(block) & kAllocatedBit;
}

void
PoolAllocator::setBlock(Bytes block, Bytes size, bool allocated)
{
    const std::uint64_t tag = size | (allocated ? kAllocatedBit : 0);
    wr64(block, tag);
    wr64(block + size - kFooterBytes, tag);
}

void
PoolAllocator::format()
{
    PoolHeader h = pool_.header();
    upr_assert_msg(h.freeHead == 0 && h.usedBytes == 0,
                   "pool %u formatted twice", h.poolId);
    // Blocks sit at 8 (mod 16) so payloads are 16-byte aligned.
    const Bytes start = h.arenaStart + 8;
    const Bytes end = h.size;
    upr_assert(end > start + kMinBlock);
    const Bytes size = roundDown(end - start, kAlign);
    setBlock(start, size, false);
    setNextFree(start, 0);
    setPrevFree(start, 0);
    h.freeHead = start;
    pool_.setHeader(h);
    pool_.backing().fence();
}

void
PoolAllocator::freeListInsert(Bytes block)
{
    PoolHeader h = pool_.header();
    Bytes cur = h.freeHead;
    Bytes prev = 0;
    while (cur != 0 && cur < block) {
        prev = cur;
        cur = nextFree(cur);
    }
    setNextFree(block, cur);
    setPrevFree(block, prev);
    if (cur != 0)
        setPrevFree(cur, block);
    if (prev != 0) {
        setNextFree(prev, block);
    } else {
        h.freeHead = block;
        pool_.setHeader(h);
    }
}

void
PoolAllocator::freeListRemove(Bytes block)
{
    const Bytes next = nextFree(block);
    const Bytes prev = prevFree(block);
    if (next != 0)
        setPrevFree(next, prev);
    if (prev != 0) {
        setNextFree(prev, next);
    } else {
        PoolHeader h = pool_.header();
        upr_assert(h.freeHead == block);
        h.freeHead = next;
        pool_.setHeader(h);
    }
}

PoolOffset
PoolAllocator::alloc(Bytes n)
{
    if (n == 0)
        n = 1;
    const Bytes need =
        roundUp(n + kHeaderBytes + kFooterBytes, kAlign) < kMinBlock
            ? kMinBlock
            : roundUp(n + kHeaderBytes + kFooterBytes, kAlign);

    PoolHeader h = pool_.header();
    Bytes block = h.freeHead;
    while (block != 0) {
        const Bytes size = blockSize(block);
        if (size >= need) {
            freeListRemove(block);
            if (size - need >= kMinBlock) {
                // Split: keep the front as the allocation.
                setBlock(block, need, true);
                const Bytes rest = block + need;
                setBlock(rest, size - need, false);
                freeListInsert(rest);
            } else {
                setBlock(block, size, true);
            }
            PoolHeader h2 = pool_.header();
            h2.usedBytes += blockSize(block);
            pool_.setHeader(h2);
            pool_.backing().fence();
            return static_cast<PoolOffset>(block + kHeaderBytes);
        }
        block = nextFree(block);
    }
    throw Fault(FaultKind::PoolFull,
                "pool '" + pool_.name() + "' cannot fit allocation");
}

void
PoolAllocator::free(PoolOffset payload)
{
    upr_assert_msg(payload >= arenaFirst() + kHeaderBytes,
                   "free of offset outside arena");
    Bytes block = payload - kHeaderBytes;
    upr_assert_msg(blockAllocated(block),
                   "double free at pool offset %u", payload);

    Bytes size = blockSize(block);
    {
        PoolHeader h = pool_.header();
        upr_assert(h.usedBytes >= size);
        h.usedBytes -= size;
        pool_.setHeader(h);
    }

    // Coalesce with successor.
    const Bytes next = block + size;
    if (next + kMinBlock <= arenaEnd() && !blockAllocated(next)) {
        freeListRemove(next);
        size += blockSize(next);
    }
    // Coalesce with predecessor via its footer.
    if (block >= arenaFirst() + kMinBlock) {
        const Bytes prev_tag = rd64(block - kFooterBytes);
        if (!(prev_tag & kAllocatedBit)) {
            const Bytes prev_size = prev_tag & ~kAllocatedBit;
            const Bytes prev = block - prev_size;
            upr_assert(prev >= arenaFirst());
            freeListRemove(prev);
            block = prev;
            size += prev_size;
        }
    }
    setBlock(block, size, false);
    freeListInsert(block);
    pool_.backing().fence();
}

Bytes
PoolAllocator::payloadSize(PoolOffset payload) const
{
    const Bytes block = payload - kHeaderBytes;
    upr_assert(blockAllocated(block));
    return blockSize(block) - kHeaderBytes - kFooterBytes;
}

Bytes
PoolAllocator::freeBytes() const
{
    Bytes total = 0;
    for (Bytes b = pool_.header().freeHead; b != 0; b = nextFree(b))
        total += blockSize(b) - kHeaderBytes - kFooterBytes;
    return total;
}

std::size_t
PoolAllocator::liveBlocks() const
{
    std::size_t live = 0;
    const Bytes end = arenaEnd();
    for (Bytes b = arenaFirst(); b + kMinBlock <= end;
         b += blockSize(b)) {
        upr_assert(blockSize(b) >= kMinBlock);
        if (blockAllocated(b))
            ++live;
    }
    return live;
}

void
PoolAllocator::checkConsistency() const
{
    const Bytes start = arenaFirst();
    const Bytes end = arenaEnd();

    // Pass 1: walk every block; validate tags, canaries, coalescing.
    bool prev_free = false;
    Bytes free_blocks = 0;
    Bytes b = start;
    while (b + kMinBlock <= end) {
        const Bytes size = blockSize(b);
        upr_assert_msg(size >= kMinBlock && size % kAlign == 0,
                       "bad block size %llu at offset %llu",
                       (unsigned long long)size, (unsigned long long)b);
        upr_assert_msg(b + size <= end, "block overruns arena");
        upr_assert_msg(rd64(b) == rd64(b + size - kFooterBytes),
                       "header/footer tag mismatch");
        const bool is_free = !blockAllocated(b);
        upr_assert_msg(!(prev_free && is_free),
                       "adjacent free blocks not coalesced");
        if (is_free)
            ++free_blocks;
        prev_free = is_free;
        b += size;
    }
    upr_assert_msg(b == end || end - b < kMinBlock,
                   "arena walk ended mid-block");

    // Pass 2: free list must be address ordered, consistent, and must
    // contain exactly the free blocks found by the walk.
    Bytes listed = 0;
    Bytes prev = 0;
    for (Bytes f = pool_.header().freeHead; f != 0; f = nextFree(f)) {
        upr_assert_msg(!blockAllocated(f), "allocated block on free list");
        upr_assert_msg(prevFree(f) == prev, "free list back link broken");
        upr_assert_msg(prev == 0 || prev < f,
                       "free list not address ordered");
        prev = f;
        ++listed;
    }
    upr_assert_msg(listed == free_blocks,
                   "free list has %llu entries, arena has %llu free",
                   (unsigned long long)listed,
                   (unsigned long long)free_blocks);
}

ArenaReport
PoolAllocator::inspectArena() const
{
    ArenaReport r;
    const Bytes start = arenaFirst();
    const Bytes end = arenaEnd();
    char buf[128];

    // Pass 1: guarded tag walk. Every read below is bounds-checked
    // against the arena before it happens, so garbage never escapes
    // as an exception — it becomes a report.
    bool uncoalesced = false;
    bool prev_free = false;
    Bytes b = start;
    while (b + kMinBlock <= end) {
        const std::uint64_t tag = rd64(b);
        const Bytes size = tag & ~std::uint64_t{1};
        if (size < kMinBlock || size % kAlign != 0 ||
            size > end - b) {
            std::snprintf(buf, sizeof(buf),
                          "bad block size %llu at offset %llu",
                          (unsigned long long)size,
                          (unsigned long long)b);
            r.what = buf;
            return r;
        }
        if (tag != rd64(b + size - kFooterBytes)) {
            std::snprintf(buf, sizeof(buf),
                          "header/footer mismatch at offset %llu",
                          (unsigned long long)b);
            r.what = buf;
            return r;
        }
        const bool is_free = !(tag & 1);
        if (is_free) {
            ++r.freeBlocks;
            if (prev_free)
                uncoalesced = true; // repairable: rebuild coalesces
        } else {
            r.usedBytes += size;
        }
        prev_free = is_free;
        ++r.blocks;
        b += size;
    }
    r.tagsValid = true;

    // Pass 2: guarded free-list walk (cycle-capped), must agree with
    // the tag walk.
    bool links_ok = !uncoalesced;
    if (uncoalesced)
        r.what = "adjacent free blocks not coalesced";
    std::size_t listed = 0;
    Bytes prev = 0;
    Bytes f = pool_.header().freeHead;
    std::size_t steps = 0;
    while (f != 0 && links_ok) {
        if (++steps > r.blocks + 1) {
            r.what = "free list cycle";
            links_ok = false;
            break;
        }
        if (f < start || f + kMinBlock > end) {
            std::snprintf(buf, sizeof(buf),
                          "free list points outside arena (%llu)",
                          (unsigned long long)f);
            r.what = buf;
            links_ok = false;
            break;
        }
        const std::uint64_t tag = rd64(f);
        if (tag & 1) {
            std::snprintf(buf, sizeof(buf),
                          "allocated block %llu on free list",
                          (unsigned long long)f);
            r.what = buf;
            links_ok = false;
            break;
        }
        if (prevFree(f) != prev || (prev != 0 && prev >= f)) {
            std::snprintf(buf, sizeof(buf),
                          "free list links broken at %llu",
                          (unsigned long long)f);
            r.what = buf;
            links_ok = false;
            break;
        }
        prev = f;
        ++listed;
        f = nextFree(f);
    }
    if (links_ok && listed != r.freeBlocks) {
        std::snprintf(buf, sizeof(buf),
                      "free list has %zu entries, arena has %zu free",
                      listed, r.freeBlocks);
        r.what = buf;
        links_ok = false;
    }
    r.freeListValid = links_ok;
    r.usedBytesMatch = pool_.header().usedBytes == r.usedBytes;
    if (!r.usedBytesMatch && r.what.empty())
        r.what = "header usedBytes disagrees with the tag walk";
    return r;
}

void
PoolAllocator::rebuildFreeList()
{
    const Bytes start = arenaFirst();
    const Bytes end = arenaEnd();

    // Pass 1: walk the (trusted) tags, coalescing adjacent free runs
    // and collecting the surviving free block addresses.
    std::vector<Bytes> frees;
    Bytes used = 0;
    Bytes b = start;
    while (b + kMinBlock <= end) {
        const Bytes size = blockSize(b);
        if (blockAllocated(b)) {
            used += size;
            b += size;
            continue;
        }
        Bytes run = size;
        while (b + run + kMinBlock <= end && !blockAllocated(b + run))
            run += blockSize(b + run);
        if (run != size)
            setBlock(b, run, false);
        frees.push_back(b);
        b += run;
    }

    // Pass 2: relink in address order.
    for (std::size_t i = 0; i < frees.size(); ++i) {
        setPrevFree(frees[i], i == 0 ? 0 : frees[i - 1]);
        setNextFree(frees[i],
                    i + 1 == frees.size() ? 0 : frees[i + 1]);
    }

    PoolHeader h = pool_.header();
    h.freeHead = frees.empty() ? 0 : frees.front();
    h.usedBytes = used;
    pool_.setHeader(h);
    pool_.backing().fence();
}

} // namespace upr
