#include "nvm/pool_check.hh"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/fault.hh"
#include "faultinject/fault_stats.hh"
#include "nvm/engine.hh"
#include "nvm/pool.hh"
#include "nvm/pool_allocator.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/** Minimal JSON string escaping (our diagnostics are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Mirror of the Pool adopt constructor's geometry checks, as a
 * predicate: "" when the identity fields describe a usable layout.
 */
std::string
geometryProblem(const PoolHeader &h, Bytes image_size)
{
    if (h.magic != PoolHeader::kMagic)
        return "bad magic";
    if (h.version != PoolHeader::kVersion)
        return "unsupported version " + std::to_string(h.version);
    if (h.size != image_size)
        return "size field disagrees with image length";
    if (h.size > Pool::kMaxSize || h.poolId == 0)
        return "impossible size or pool id";
    if (h.logStart < sizeof(PoolHeader) || h.logSize < 64 ||
        h.logStart + h.logSize < h.logStart ||
        h.logStart + h.logSize > h.arenaStart ||
        h.arenaStart % 16 != 0 || h.arenaStart >= h.size)
        return "corrupt log/arena geometry";
    if (h.engine > static_cast<std::uint32_t>(EngineKind::Redo))
        return "unknown transaction engine " + std::to_string(h.engine);
    return "";
}

void
addIssue(CheckReport &rep, const char *component, std::string what,
         bool repairable, bool repaired)
{
    rep.issues.push_back(
        CheckIssue{component, std::move(what), repairable, repaired});
}

/**
 * Census of pool IDs embedded in the image's own relative pointers.
 * The header's poolId field has no legal-value constraint a geometry
 * check could enforce, but the pool *contents* carry independent
 * copies: every stored relative pointer (bit 63 set) embeds the
 * 31-bit id of the pool it was stored into (bits 62..32 — the fixed
 * on-media representation the whole design is built on). Collects the
 * distinct ids found in aligned words of allocated payloads, capped
 * at a handful. Defensive walk: the arena may be mid-transaction, so
 * any inconsistent boundary tag ends the scan with whatever was
 * gathered so far.
 */
std::vector<std::uint32_t>
interiorPoolIdCensus(const Backing &img, const PoolHeader &h)
{
    constexpr std::size_t kMaxDistinct = 8;
    std::vector<std::uint32_t> ids;
    Bytes b = h.arenaStart + 8;
    while (b + PoolAllocator::kMinBlock <= h.size) {
        std::uint64_t tag;
        img.read(b, &tag, sizeof(tag));
        const Bytes size = tag & ~std::uint64_t{1};
        if (size < PoolAllocator::kMinBlock || size % 8 != 0 ||
            b + size > h.size)
            break;
        if ((tag & 1) != 0) {
            const Bytes payload = b + PoolAllocator::kHeaderBytes;
            const Bytes end = b + size - PoolAllocator::kFooterBytes;
            for (Bytes w = payload; w + 8 <= end; w += 8) {
                std::uint64_t word;
                img.read(w, &word, sizeof(word));
                if ((word >> 63) == 0)
                    continue;
                const auto id = static_cast<std::uint32_t>(
                    (word >> 32) & 0x7FFF'FFFFu);
                if (id == 0 ||
                    std::find(ids.begin(), ids.end(), id) != ids.end())
                    continue;
                if (ids.size() == kMaxDistinct)
                    return ids;
                ids.push_back(id);
            }
        }
        b += size;
    }
    return ids;
}

/** rootOff must name a byte inside some allocated block's payload. */
bool
rootInsideAllocatedBlock(const Pool &pool)
{
    const PoolHeader h = pool.header();
    if (h.rootOff == 0)
        return true;
    const Bytes first = h.arenaStart + 8;
    Bytes b = first;
    while (b + PoolAllocator::kMinBlock <= h.size) {
        std::uint64_t tag;
        pool.backing().read(b, &tag, sizeof(tag));
        const Bytes size = tag & ~std::uint64_t{1};
        const bool allocated = (tag & 1) != 0;
        const Bytes payload = b + PoolAllocator::kHeaderBytes;
        const Bytes payload_end = b + size - PoolAllocator::kFooterBytes;
        if (allocated && h.rootOff >= payload &&
            h.rootOff < payload_end)
            return true;
        b += size;
    }
    return false;
}

} // namespace

std::string
CheckReport::toJson() const
{
    std::string out = "{\n  \"status\": \"";
    out += checkStatusName(status);
    out += "\",\n  \"issues\": [";
    bool first = true;
    for (const CheckIssue &i : issues) {
        out += first ? "\n" : ",\n";
        out += "    {\"component\": \"" + jsonEscape(i.component) +
               "\", \"what\": \"" + jsonEscape(i.what) +
               "\", \"repairable\": " +
               (i.repairable ? "true" : "false") + ", \"repaired\": " +
               (i.repaired ? "true" : "false") + "}";
        first = false;
    }
    out += first ? "],\n" : "\n  ],\n";
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "  \"engine\": \"%s\",\n"
                  "  \"log\": {\"active\": %s, \"entries\": %zu, "
                  "\"discardedBytes\": %llu, \"lostCommitted\": %s, "
                  "\"controlDamaged\": %s, \"generation\": %lu}\n}",
                  engineKindName(engine),
                  recovery.logActive ? "true" : "false",
                  recovery.entriesReplayed,
                  (unsigned long long)recovery.bytesDiscarded,
                  recovery.lostCommittedEntries ? "true" : "false",
                  recovery.controlDamaged ? "true" : "false",
                  (unsigned long)recovery.generation);
    out += buf;
    out += "\n";
    return out;
}

CheckReport
checkPool(Backing &image, bool repair)
{
    CheckReport rep;

    // Everything below operates on a scratch copy: dry runs stay
    // side-effect free, and repair mode only publishes the scratch
    // when the verdict allows it.
    Backing scratch(image);

    // ---- Phase 1: header identity -------------------------------
    if (scratch.size() < sizeof(PoolHeader)) {
        addIssue(rep, "header", "image smaller than a pool header",
                 false, false);
        rep.status = CheckStatus::Corrupt;
        return rep;
    }
    PoolHeader h;
    scratch.read(0, &h, sizeof(h));

    if (h.identCrc != poolIdentCrc(h)) {
        // The identity CRC localizes the damage: restore a candidate
        // field from its known-good value and accept the repair only
        // if the stored CRC revalidates — redundancy *proves* the
        // fix, we never guess.
        PoolHeader fixed = h;
        std::string what;
        bool proven = false;
        if (h.magic != PoolHeader::kMagic) {
            fixed = h;
            fixed.magic = PoolHeader::kMagic;
            if (poolIdentCrc(fixed) == h.identCrc) {
                what = "magic damaged (restore proven by identity CRC)";
                proven = true;
            }
        }
        if (!proven && h.version != PoolHeader::kVersion) {
            fixed = h;
            fixed.version = PoolHeader::kVersion;
            if (poolIdentCrc(fixed) == h.identCrc) {
                what = "version damaged (restore proven by identity "
                       "CRC)";
                proven = true;
            }
        }
        if (!proven && h.size != scratch.size()) {
            fixed = h;
            fixed.size = scratch.size();
            if (poolIdentCrc(fixed) == h.identCrc) {
                what = "size field damaged (restore proven by identity "
                       "CRC)";
                proven = true;
            }
        }
        if (!proven) {
            // The engine field has only two legal values: try the
            // other one (and, for a bit-flipped field, both).
            for (std::uint32_t cand = 0;
                 cand <= static_cast<std::uint32_t>(EngineKind::Redo);
                 ++cand) {
                if (cand == h.engine)
                    continue;
                fixed = h;
                fixed.engine = cand;
                if (poolIdentCrc(fixed) == h.identCrc) {
                    what = std::string("engine field damaged (restore "
                                       "to ") +
                           engineKindName(
                               static_cast<EngineKind>(cand)) +
                           " proven by identity CRC)";
                    proven = true;
                    break;
                }
            }
        }
        // The remaining suspects are poolId and the CRC field itself,
        // and geometry cannot arbitrate between them: poolId has no
        // legal-value constraint. The pool's own contents break the
        // tie — stored relative pointers embed the id (the census
        // below), and a restore from that witness must still be
        // proven by the stored CRC revalidating.
        const bool walkable = h.size == scratch.size() &&
                              h.arenaStart >= sizeof(PoolHeader) &&
                              h.arenaStart % 16 == 0 &&
                              h.arenaStart < h.size;
        const std::vector<std::uint32_t> census =
            !proven && walkable ? interiorPoolIdCensus(scratch, h)
                                : std::vector<std::uint32_t>{};
        if (!proven) {
            for (std::uint32_t cand : census) {
                if (cand == h.poolId)
                    continue;
                fixed = h;
                fixed.poolId = cand;
                if (poolIdentCrc(fixed) == h.identCrc) {
                    what = "pool id damaged (restore to " +
                           std::to_string(cand) +
                           " proven by identity CRC + interior "
                           "relative pointers)";
                    proven = true;
                    break;
                }
            }
        }
        if (!proven) {
            // Maybe the CRC itself took the hit: reseal only when
            // every identity field independently validates — and the
            // interior census does not contradict poolId, which the
            // geometry checks cannot vouch for. Resealing over a
            // damaged poolId would serve a pool whose own pointers
            // name a different pool.
            fixed = h;
            const bool contradicted =
                std::any_of(census.begin(), census.end(),
                            [&h](std::uint32_t id) {
                                return id != h.poolId;
                            });
            if (geometryProblem(h, scratch.size()).empty() &&
                !contradicted) {
                fixed.identCrc = poolIdentCrc(h);
                what = "identity CRC damaged (reseal: all identity "
                       "fields validate)";
                proven = true;
            }
        }
        if (!proven) {
            addIssue(rep, "header",
                     "identity fields damaged beyond what the CRC can "
                     "prove a repair for",
                     false, false);
            rep.status = CheckStatus::Corrupt;
            return rep;
        }
        scratch.write(0, &fixed, sizeof(fixed));
        h = fixed;
        addIssue(rep, "header", what, true, repair);
    }

    const std::string geo = geometryProblem(h, scratch.size());
    if (!geo.empty()) {
        // CRC-consistent garbage: the whole header block was replaced
        // wholesale. Nothing to anchor a repair to.
        addIssue(rep, "header", geo, false, false);
        rep.status = CheckStatus::Corrupt;
        return rep;
    }

    // Mutable header fields. rootOff is irreplaceable (it *is* the
    // user's data); freeHead/usedBytes are recomputable from the
    // boundary tags, so out-of-range values are pre-clamped to let
    // the Pool constructor pass and the rebuild below fix them.
    if (h.rootOff >= h.size) {
        addIssue(rep, "root", "root offset outside the pool", false,
                 false);
        rep.status = CheckStatus::Corrupt;
        return rep;
    }
    bool arena_meta_damaged = false;
    if (h.freeHead >= h.size || h.usedBytes > h.size) {
        arena_meta_damaged = true;
        h.freeHead = 0;
        h.usedBytes = 0;
        scratch.write(0, &h, sizeof(h));
    }

    // ---- Phase 2: adopt the vetted image ------------------------
    // Every adopt-constructor check is mirrored above, so this should
    // never throw; a surprise is reported, not propagated.
    std::optional<Pool> adopted;
    try {
        adopted.emplace("check", std::move(scratch));
    } catch (const Fault &f) {
        addIssue(rep, "header", f.what(), false, false);
        rep.status = CheckStatus::Corrupt;
        return rep;
    }
    Pool &pool = *adopted;

    // ---- Phase 3: transaction log (engine-dispatched) -----------
    const bool redo = pool.engineKind() == EngineKind::Redo;
    const char *log_comp = redo ? "redo-log" : "undo-log";
    rep.engine = pool.engineKind();
    rep.recovery = TxnEngine::analyze(pool);
    if (rep.recovery.controlDamaged) {
        addIssue(rep, log_comp,
                 "log control block fails its checksum: whether a "
                 "transaction was pending is unknowable",
                 false, false);
    } else if (rep.recovery.lostCommittedEntries) {
        addIssue(rep, log_comp,
                 redo ? "committed journal entry damaged before it "
                        "could be applied: the committed data is "
                        "unrecoverable"
                      : "mid-log entry damaged with committed entries "
                        "after it: their data writes cannot be rolled "
                        "back",
                 false, false);
    } else if (rep.recovery.logActive) {
        addIssue(rep, log_comp,
                 redo ? "committed journal pending forward replay"
                      : "pending transaction log (replay)",
                 true, repair);
    }
    // Scrub on the scratch pool either way: the arena checks below
    // need the post-recovery state (a mid-transaction arena is
    // legitimately torn until the undo pre-images are restored — or,
    // for redo, until the committed journal finishes applying). With
    // lostCommittedEntries the undo rollback is still the best
    // available state, while the redo engine refuses to touch the
    // image (forensics) — either way the verdict is already Corrupt.
    // Runs even when no log is active: with logging elision a pure
    // crash can leave user bytes in a still-free block's link words
    // under an idle redo journal, and recovery (not repair) is what
    // canonicalizes them — see Txn::canonicalizeHeap(). The engines
    // guard the damaged cases themselves.
    TxnEngine::recoverEx(pool);

    // ---- Phase 4: allocator arena -------------------------------
    PoolAllocator alloc(pool);
    ArenaReport arena = alloc.inspectArena();
    if (!arena.tagsValid) {
        addIssue(rep, "arena",
                 "boundary tags damaged (" + arena.what +
                 "): block structure unrecoverable",
                 false, false);
    } else if (arena_meta_damaged || !arena.freeListValid ||
               !arena.usedBytesMatch) {
        std::string what = arena_meta_damaged
                               ? "free-list head / usage accounting "
                                 "out of range"
                               : arena.what;
        alloc.rebuildFreeList();
        const ArenaReport after = alloc.inspectArena();
        if (after.tagsValid && after.freeListValid &&
            after.usedBytesMatch) {
            addIssue(rep, "arena",
                     what + " (free list rebuilt from boundary tags)",
                     true, repair);
        } else {
            addIssue(rep, "arena",
                     "free-list rebuild failed to converge: " +
                     after.what,
                     false, false);
        }
    }

    // ---- Phase 5: root containment ------------------------------
    if (arena.tagsValid && !rootInsideAllocatedBlock(pool)) {
        addIssue(rep, "root",
                 "root offset does not fall inside any allocated "
                 "block",
                 false, false);
    }

    // ---- Verdict ------------------------------------------------
    bool any_corrupt = false;
    for (const CheckIssue &i : rep.issues)
        any_corrupt = any_corrupt || !i.repairable;
    if (any_corrupt)
        rep.status = CheckStatus::Corrupt;
    else if (rep.issues.empty())
        rep.status = CheckStatus::Clean;
    else
        rep.status = repair ? CheckStatus::Repaired
                            : CheckStatus::Repairable;

    if (repair && rep.status == CheckStatus::Repaired) {
        image.assign(pool.backing().raw());
        FaultStats::instance().repaired.add(1);
        if (rep.recovery.logActive)
            FaultStats::instance().scrubbed.add(1);
        obs::traceEvent(obs::EventKind::PoolRepair, pool.id(),
                        rep.issues.size());
    }
    return rep;
}

} // namespace upr
