/**
 * @file
 * Undo-log persistent transactions (the paper's Sec VI "persistent
 * transaction" hook, implemented as an optional extension).
 *
 * The log lives inside the pool: a 16-byte control block (tail,
 * active flag) at the start of the log area, then the entries. A pool
 * image saved mid-transaction therefore replays its undo entries on
 * the next open — simulating crash recovery.
 *
 * Log entry layout:
 *   u32 length (payload bytes), u32 crc32, u64 poolOffset, then the
 *   payload (the pre-image of the range about to be overwritten).
 *   The CRC covers poolOffset, length, and the payload, so recovery
 *   never replays torn or corrupted bytes.
 *
 * ## Durability ordering (write-ahead discipline)
 *
 * Against a Backing with the persistence domain enabled, every step
 * that a later crash must observe is flushed and fenced before the
 * step it protects:
 *
 *   recordWrite: entry + payload -> flush -> tail bump -> flush ->
 *                FENCE, *then* the caller's data write proceeds;
 *   commit:      flush all logged data ranges -> FENCE ->
 *                log truncate -> flush -> FENCE;
 *   rollback:    restore pre-images -> flush -> FENCE ->
 *                log truncate -> flush -> FENCE.
 *
 * So a crash anywhere leaves either (a) no trace of an update, or
 * (b) a durable undo entry for it — never a durable data write
 * without its undo entry.
 */

#ifndef UPR_NVM_TXN_HH
#define UPR_NVM_TXN_HH

#include <utility>
#include <vector>

#include "common/types.hh"
#include "nvm/pool.hh"

namespace upr
{

/**
 * RAII transaction on a single pool. Writers call recordWrite() with a
 * range *before* modifying it; commit() truncates the log; destruction
 * without commit rolls the pool back (abort semantics).
 */
class Txn
{
  public:
    /**
     * Open a transaction on @p pool.
     * @throws Fault{BadUsage} if one is already active on the pool
     * @throws Fault{EngineMismatch} if the pool's log region speaks a
     *         different engine (see RedoBatch for redo pools)
     */
    explicit Txn(Pool &pool);

    /** Abort (roll back) unless committed. */
    ~Txn();

    Txn(const Txn &) = delete;
    Txn &operator=(const Txn &) = delete;

    /**
     * Log the pre-image of [off, off+len) within the pool. Must be
     * called before the range is modified. Returns only after the
     * entry is durable (flushed and fenced).
     * @throws Fault{PoolFull} when the log area overflows
     */
    void recordWrite(PoolOffset off, Bytes len);

    /**
     * Note a write whose pre-image the persistency analysis proved
     * unnecessary (the target was pmalloc'd inside this transaction,
     * or this exact range was already logged by an earlier store on
     * every path). Zero media work and zero fences: the range is
     * remembered only so commit() still flushes the new data. A range
     * already recorded — by recordWrite or a previous elided note —
     * is a pure no-op.
     */
    void recordElidedWrite(PoolOffset off, Bytes len);

    /** Make all changes durable and clear the log. */
    void commit();

    /** Explicitly roll back now (also clears the log). */
    void abort();

    /** True once commit() or abort() has run. */
    bool closed() const { return closed_; }

    /** True if @p pool has an open (uncommitted) transaction log. */
    static bool isActive(const Pool &pool);

    /**
     * Write a sealed empty control block into a fresh pool's log
     * area. Part of pool formatting: the control block carries a
     * checksum, and a plain zeroed log area would fail it (this CRC-32
     * inverts in and out, so even all-zero input has a nonzero sum).
     */
    static void formatLog(Pool &pool);

    /**
     * What recovery found and did. The interesting bit for resilient
     * opens is lostCommittedEntries: the write-ahead discipline means
     * a *pure* crash can only tear the final log entry, so CRC-valid
     * entries found *after* a bad one prove the bad entry is media
     * damage — the writes those later entries protect were executed
     * but can no longer be rolled back, i.e. the pool is torn and
     * must not be served as-is.
     */
    struct RecoveryReport
    {
        bool logActive = false;     //!< an uncommitted log was present
        bool rolledBack = false;    //!< undo entries were applied
        /**
         * Log-control generation (transaction incarnation counter) at
         * recovery time; 0 when the control block is damaged. Shared
         * with the redo engine, whose reports reuse this struct.
         */
        std::uint32_t generation = 0;
        std::size_t entriesReplayed = 0;
        Bytes bytesDiscarded = 0;   //!< log bytes after the last valid entry
        /** CRC-valid entries inside the discarded region (see above). */
        bool lostCommittedEntries = false;
        /**
         * The 16-byte control block fails its checksum. It is written
         * atomically (one cache line), so this is media damage and
         * neither the active flag nor the tail can be trusted; the
         * log's recovery state is unknowable and the pool must not be
         * served. When set, every other field is left defaulted.
         */
        bool controlDamaged = false;
    };

    /**
     * Crash-recovery entry point: if @p pool carries an active log,
     * apply its valid undo entries in reverse order and clear it.
     * Idempotent — recovering twice is a no-op the second time.
     *
     * Hardened against hostile images: a torn final entry (crash
     * mid-append) or a checksum-corrupt entry is discarded with a
     * warning, never replayed; entries whose range falls outside the
     * pool are likewise skipped. Called by openers of freshly loaded
     * images.
     * @return true if a rollback was performed
     */
    static bool recover(Pool &pool);

    /** recover(), reporting what happened (resilient-open path). */
    static RecoveryReport recoverEx(Pool &pool);

    /**
     * Dry-run of recovery: classify the log without mutating the
     * pool (rolledBack stays false — nothing ran).
     */
    static RecoveryReport analyze(const Pool &pool);

    /**
     * Restore the allocator's canonical free list after recovery.
     *
     * Proof-driven logging elision lets committed user stores reach
     * media without a pre-image: a freshly pmalloc'd block's payload
     * overlaps the nextFree/prevFree words it carried while free, so
     * an undo rollback (or a redo crash before the journal publishes)
     * can leave a free block whose link words hold user data under
     * perfectly valid boundary tags. The links are redundant with the
     * tags, so recovery rebuilds them rather than logging them.
     * No-op (and no write) when the heap is already canonical or the
     * tags themselves are damaged — keeping recovery idempotent.
     * @return true if the free list was rebuilt
     */
    static bool canonicalizeHeap(Pool &pool);

  private:
    /** Apply valid undo entries in reverse and clear the log. */
    static void rollback(Pool &pool);

    Pool &pool_;
    bool closed_ = false;
    /**
     * Ranges logged this transaction (volatile bookkeeping): commit
     * flushes exactly these so committed data is durable before the
     * log is truncated.
     */
    std::vector<std::pair<Bytes, Bytes>> dirty_;
};

} // namespace upr

#endif // UPR_NVM_TXN_HH
