#include "nvm/pool_manager.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "faultinject/fault_stats.hh"
#include "faultinject/transient.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/** Host nanoseconds since @p t0 (observability histograms only). */
std::uint64_t
hostNsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}
/** Pools attach on 64 KiB boundaries. */
constexpr Bytes kAttachAlign = 64 * 1024;
/** First usable address in the NVM half (guard page below). */
constexpr SimAddr kNvmFirst = Layout::kNvmBase + kAttachAlign;
/**
 * Direct-index ceiling of the flat pool table. IDs assigned by this
 * manager are small and dense, but adopted images carry arbitrary
 * 32-bit IDs; those beyond the ceiling take the map-based slow path
 * instead of forcing a multi-gigabyte table.
 */
constexpr std::size_t kMaxDirectSlots = 1u << 16;
} // namespace

PoolManager::PoolManager(AddressSpace &space, Placement placement,
                         std::uint64_t seed)
    : space_(space), placement_(placement), rng_(seed),
      bump_(kNvmFirst), stats_("pools")
{
    stats_.registerCounter("attaches", attaches_, "pool attach events");
    stats_.registerCounter("detaches", detaches_, "pool detach events");
    stats_.registerCounter("ra2va", ra2vaCalls_,
                           "software relative-to-virtual translations");
    stats_.registerCounter("va2ra", va2raCalls_,
                           "software virtual-to-relative translations");
}

PoolManager::PoolSlot &
PoolManager::slotFor(PoolId id)
{
    static PoolSlot overflow; // shared dummy for out-of-range IDs
    if (id >= kMaxDirectSlots) {
        overflow = PoolSlot{};
        return overflow;
    }
    if (id >= slots_.size())
        slots_.resize(id + 1);
    return slots_[id];
}

void
PoolManager::refreshSlot(PoolId id)
{
    if (id >= kMaxDirectSlots)
        return;
    PoolSlot &slot = slotFor(id);
    auto it = pools_.find(id);
    if (it == pools_.end()) {
        // Destroyed: keep the generation stamp so stale translations
        // remain detectably stale, drop everything else.
        slot.exists = false;
        slot.attached = false;
        slot.base = 0;
        slot.size = 0;
        return;
    }
    const Entry &entry = it->second;
    slot.exists = true;
    slot.attached = entry.attached;
    slot.base = entry.base;
    slot.size = entry.pool->size();
}

std::uint32_t
PoolManager::generationOf(PoolId id) const
{
    if (id < slots_.size())
        return slots_[id].generation;
    return 0;
}

SimAddr
PoolManager::placeRange(Bytes size)
{
    SimAddr base = bump_;
    if (placement_ == Placement::Randomized) {
        // Skip a random number of 64 KiB slots (0..255) so the attach
        // address differs between runs and between reopen cycles.
        base += kAttachAlign * rng_.nextBounded(256);
    }
    bump_ = roundUp(base + size, kAttachAlign) + kAttachAlign;
    if (bump_ >= Layout::kVaEnd) {
        throw Fault(FaultKind::BadUsage, "NVM half exhausted");
    }
    return base;
}

PoolId
PoolManager::createPool(const std::string &name, Bytes size,
                        EngineKind engine)
{
    if (byName_.count(name)) {
        throw Fault(FaultKind::BadUsage,
                    "pool name '" + name + "' already in use");
    }
    const PoolId id = nextId_++;
    Entry entry;
    entry.pool = std::make_unique<Pool>(id, name, size, engine);
    entry.allocator = std::make_unique<PoolAllocator>(*entry.pool);
    entry.allocator->format();
    pools_.emplace(id, std::move(entry));
    byName_.emplace(name, id);
    attach(id);
    return id;
}

PoolId
PoolManager::openPool(const std::string &name)
{
    auto it = byName_.find(name);
    if (it == byName_.end()) {
        throw Fault(FaultKind::BadUsage,
                    "no pool named '" + name + "'");
    }
    const PoolId id = it->second;
    Entry &entry = pools_.at(id);
    if (entry.attached) {
        throw Fault(FaultKind::BadUsage,
                    "pool '" + name + "' is already attached");
    }
    const auto t0 = std::chrono::steady_clock::now();
    attach(id);
    openNs_.record(hostNsSince(t0));
    obs::traceEvent(obs::EventKind::PoolOpen, id);
    return id;
}

void
PoolManager::attach(PoolId id)
{
    Entry &entry = pools_.at(id);
    upr_assert(!entry.attached);
    const Bytes size = entry.pool->size();
    const SimAddr base = placeRange(size);
    char label[32];
    std::snprintf(label, sizeof(label), "pool:%u", id);
    space_.map(base, size, entry.pool->backing(), 0, label);
    entry.attached = true;
    entry.base = base;
    const AttachedRange range{base, size, id};
    ranges_.insert(std::lower_bound(
                       ranges_.begin(), ranges_.end(), base,
                       [](const AttachedRange &r, SimAddr b) {
                           return r.base < b;
                       }),
                   range);
    rangeMru_ = 0; // indices shifted
    ++slotFor(id).generation;
    refreshSlot(id);
    ++attaches_;
    ++epoch_;
    obs::traceEvent(obs::EventKind::PoolAttach, id, base);
}

void
PoolManager::detach(PoolId id)
{
    auto it = pools_.find(id);
    if (it == pools_.end()) {
        throw Fault(FaultKind::BadRelativeAddress,
                    "detach of unknown pool");
    }
    Entry &entry = it->second;
    if (!entry.attached) {
        throw Fault(FaultKind::BadUsage, "pool is not attached");
    }
    space_.unmap(entry.base);
    const SimAddr base = entry.base;
    ranges_.erase(std::lower_bound(
        ranges_.begin(), ranges_.end(), base,
        [](const AttachedRange &r, SimAddr b) { return r.base < b; }));
    rangeMru_ = 0; // indices shifted
    entry.attached = false;
    entry.base = 0;
    ++slotFor(id).generation;
    refreshSlot(id);
    ++detaches_;
    ++epoch_;
    obs::traceEvent(obs::EventKind::PoolDetach, id);
}

void
PoolManager::destroy(PoolId id)
{
    auto it = pools_.find(id);
    if (it == pools_.end()) {
        throw Fault(FaultKind::BadRelativeAddress,
                    "destroy of unknown pool");
    }
    if (it->second.attached)
        detach(id);
    byName_.erase(it->second.pool->name());
    pools_.erase(it);
    refreshSlot(id);
}

bool
PoolManager::isAttached(PoolId id) const
{
    auto it = pools_.find(id);
    return it != pools_.end() && it->second.attached;
}

SimAddr
PoolManager::baseOf(PoolId id) const
{
    auto it = pools_.find(id);
    upr_assert_msg(it != pools_.end() && it->second.attached,
                   "baseOf on unattached pool %u", id);
    return it->second.base;
}

Pool &
PoolManager::pool(PoolId id)
{
    auto it = pools_.find(id);
    upr_assert_msg(it != pools_.end(), "unknown pool %u", id);
    return *it->second.pool;
}

const Pool &
PoolManager::pool(PoolId id) const
{
    auto it = pools_.find(id);
    upr_assert_msg(it != pools_.end(), "unknown pool %u", id);
    return *it->second.pool;
}

PoolAllocator &
PoolManager::allocator(PoolId id)
{
    auto it = pools_.find(id);
    upr_assert_msg(it != pools_.end(), "unknown pool %u", id);
    return *it->second.allocator;
}

SimAddr
PoolManager::ra2va(PoolId id, PoolOffset off) const
{
    ++ra2vaCalls_;
    // Fast path: one flat-table row carries every check ra2va needs.
    if (id < slots_.size()) {
        const PoolSlot &slot = slots_[id];
        if (slot.attached && off < slot.size)
            return slot.base + off;
    }
    // Slow path: distinguish the fault cases (or serve an ID beyond
    // the direct-index ceiling).
    auto it = pools_.find(id);
    if (it == pools_.end()) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "pool %u", id);
        throw Fault(FaultKind::BadRelativeAddress, buf);
    }
    const Entry &entry = it->second;
    if (!entry.attached) {
        throw Fault(FaultKind::PoolDetached,
                    "pool '" + entry.pool->name() + "'");
    }
    if (off >= entry.pool->size()) {
        throw Fault(FaultKind::OffsetOutOfPool,
                    "pool '" + entry.pool->name() + "'");
    }
    return entry.base + off;
}

std::pair<PoolId, PoolOffset>
PoolManager::va2ra(SimAddr va) const
{
    ++va2raCalls_;
    // MRU fast path: repeated translations overwhelmingly target the
    // same attached range.
    if (rangeMru_ < ranges_.size()) {
        const AttachedRange &m = ranges_[rangeMru_];
        if (va - m.base < m.size)
            return {m.id, static_cast<PoolOffset>(va - m.base)};
    }
    // Binary search for the last range with base <= va.
    std::size_t lo = 0, hi = ranges_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (ranges_[mid].base <= va)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo > 0) {
        const AttachedRange &r = ranges_[lo - 1];
        if (va - r.base < r.size) {
            rangeMru_ = lo - 1;
            return {r.id, static_cast<PoolOffset>(va - r.base)};
        }
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "va 0x%llx in no attached pool",
                  (unsigned long long)va);
    throw Fault(FaultKind::UnmappedAccess, buf);
}

SimAddr
PoolManager::pmalloc(PoolId id, Bytes n)
{
    auto it = pools_.find(id);
    upr_assert_msg(it != pools_.end(), "pmalloc in unknown pool %u", id);
    Entry &entry = it->second;
    if (!entry.attached) {
        throw Fault(FaultKind::PoolDetached,
                    "pmalloc in detached pool '" + entry.pool->name() +
                    "'");
    }
    if (entry.quarantined) {
        throw Fault(FaultKind::PoolQuarantined,
                    "pmalloc in quarantined pool '" +
                    entry.pool->name() + "'");
    }
    const PoolOffset off = entry.allocator->alloc(n);
    return entry.base + off;
}

void
PoolManager::pfree(SimAddr va)
{
    auto [id, off] = va2ra(va);
    allocator(id).free(off);
}

std::vector<AttachedRange>
PoolManager::attachedRanges() const
{
    return ranges_;
}

void
PoolManager::saveImage(PoolId id, const std::string &path) const
{
    const Pool &p = pool(id);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        throw Fault(FaultKind::BadUsage,
                    "cannot open '" + path + "' for writing");
    }
    const auto &bytes = p.backing().raw();
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os) {
        throw Fault(FaultKind::BadUsage, "short write to '" + path + "'");
    }
}

PoolId
PoolManager::loadImage(const std::string &path, const std::string &name)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        throw Fault(FaultKind::BadUsage, "cannot open '" + path + "'");
    }
    const std::streamsize n = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
    is.read(reinterpret_cast<char *>(bytes.data()), n);
    if (!is) {
        throw Fault(FaultKind::BadUsage, "short read from '" + path + "'");
    }

    Backing image;
    image.assign(std::move(bytes));
    return adoptImage(std::move(image), name);
}

PoolId
PoolManager::registerAdopted(std::unique_ptr<Pool> loaded,
                             const std::string &name, bool quarantined)
{
    const PoolId id = loaded->id();
    if (pools_.count(id)) {
        throw Fault(FaultKind::BadUsage,
                    "pool ID from image collides with a live pool");
    }
    nextId_ = std::max(nextId_, id + 1);

    Entry entry;
    entry.pool = std::move(loaded);
    entry.allocator = std::make_unique<PoolAllocator>(*entry.pool);
    entry.quarantined = quarantined;
    pools_.emplace(id, std::move(entry));
    byName_.emplace(name, id);
    const auto t0 = std::chrono::steady_clock::now();
    attach(id);
    openNs_.record(hostNsSince(t0));
    return id;
}

PoolId
PoolManager::adoptImage(Backing image, const std::string &name)
{
    if (byName_.count(name)) {
        throw Fault(FaultKind::BadUsage,
                    "pool name '" + name + "' already in use");
    }
    auto loaded = std::make_unique<Pool>(name, std::move(image));
    // Crash recovery before the pool is reachable: an image saved
    // mid-transaction rolls back to its last consistent state here.
    const auto t0 = std::chrono::steady_clock::now();
    const bool rolled_back = TxnEngine::recover(*loaded);
    recoverNs_.record(hostNsSince(t0));
    if (rolled_back) {
        upr_warn("pool '%s': image carried pending %s-log recovery "
                 "work; restored the last committed state",
                 name.c_str(), engineKindName(loaded->engineKind()));
    }
    const PoolId id = registerAdopted(std::move(loaded), name, false);
    obs::traceEvent(obs::EventKind::PoolAdopt, id, rolled_back);
    return id;
}

ResilientOpenReport
PoolManager::openResilient(Backing image, const std::string &name,
                           const ResilientOpenOptions &opts)
{
    if (byName_.count(name)) {
        throw Fault(FaultKind::BadUsage,
                    "pool name '" + name + "' already in use");
    }
    ResilientOpenReport r;

    // Bounded retry-with-backoff over transient media errors. The
    // backoff is simulated (recorded, not slept): the model cares
    // about the retry *schedule*, not host wall time.
    std::uint64_t backoff = opts.backoffNs;
    for (;;) {
        try {
            maybeTransientOpenFault();
            break;
        } catch (const Fault &f) {
            if (r.retries >= opts.maxRetries) {
                r.outcome = OpenOutcome::Rejected;
                r.diagnosis = f.kind();
                r.detail = "media error persisted through " +
                           std::to_string(r.retries) + " retries";
                FaultStats::instance().detected.add(1);
                return r;
            }
            ++r.retries;
            FaultStats::instance().retries.add(1);
            obs::traceEvent(obs::EventKind::OpenRetry, r.retries,
                            backoff);
            backoff *= 2;
        }
    }

    // Offline diagnosis (and repair) before anything is registered:
    // a damaged pool must never transit through a servable state.
    r.check = checkPool(image, opts.repair);

    if (r.check.status == CheckStatus::Clean ||
        r.check.status == CheckStatus::Repaired) {
        bool non_log_issue = false;
        for (const CheckIssue &i : r.check.issues)
            non_log_issue = non_log_issue ||
                            (i.component != "undo-log" &&
                             i.component != "redo-log");
        const PoolId id = adoptImage(std::move(image), name);
        r.id = id;
        r.outcome = r.check.issues.empty()
                        ? OpenOutcome::Clean
                        : (non_log_issue ? OpenOutcome::Repaired
                                         : OpenOutcome::Recovered);
        if (r.check.status != CheckStatus::Clean)
            FaultStats::instance().detected.add(1);
        return r;
    }

    // Repairable (with repair disabled) or Corrupt: contain. If the
    // header is usable the pool attaches read-only — inspectable,
    // fleet keeps serving; otherwise reject.
    FaultStats::instance().detected.add(1);
    for (const CheckIssue &i : r.check.issues) {
        if (!i.repairable || !opts.repair) {
            r.detail = i.component + ": " + i.what;
            break;
        }
    }
    std::unique_ptr<Pool> loaded;
    try {
        loaded = std::make_unique<Pool>(name, std::move(image));
    } catch (const Fault &f) {
        r.outcome = OpenOutcome::Rejected;
        r.diagnosis = f.kind();
        if (r.detail.empty())
            r.detail = f.what();
        return r;
    }
    // No recovery here: a quarantined pool is evidence. Freeze it.
    loaded->backing().setReadOnly(true);
    const PoolId id = registerAdopted(std::move(loaded), name, true);
    r.id = id;
    r.outcome = OpenOutcome::Quarantined;
    r.diagnosis = FaultKind::CorruptPool;
    FaultStats::instance().quarantined.add(1);
    obs::traceEvent(obs::EventKind::PoolQuarantine, id);
    return r;
}

bool
PoolManager::isQuarantined(PoolId id) const
{
    auto it = pools_.find(id);
    return it != pools_.end() && it->second.quarantined;
}

} // namespace upr
