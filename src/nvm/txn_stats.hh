/**
 * @file
 * The process-wide "txn" metrics group: every flush and fence either
 * transaction engine issues is tallied per engine, and the metrics
 * registry exports them ("txn.undoFences", "txn.redoFences", ...)
 * next to the machine, crash, and fault groups.
 *
 * These are the counters the fence-accounting model in
 * docs/CRASH_CONSISTENCY.md is tested against: an undo transaction
 * with k recorded writes pays k+3 fences; a solo redo commit with r
 * coalesced runs pays 4; a group-commit batch of B transactions pays
 * 4 for the whole batch.
 *
 * Header-only singleton for the same reason as FaultStats: emitters
 * live in upr_nvm (txn.cc, redo_log.cc) and consumers in tests and
 * bench, and lazy construction keeps the group out of the metrics
 * registry — and out of every existing golden — until a transaction
 * actually runs.
 */

#ifndef UPR_NVM_TXN_STATS_HH
#define UPR_NVM_TXN_STATS_HH

#include "common/stats.hh"
#include "obs/metrics.hh"

namespace upr
{

class TxnStats;

namespace detail
{
/** The calling thread's bound TxnStats (nullptr = process-wide). */
inline TxnStats *&
boundTxnStatsSlot()
{
    thread_local TxnStats *bound = nullptr;
    return bound;
}
} // namespace detail

/** Counters of the transaction engines. */
class TxnStats
{
  public:
    static TxnStats &
    instance()
    {
        static TxnStats s;
        return s;
    }

    /**
     * The TxnStats the engines on this thread tally into: the
     * thread-bound instance if one is bound (a shard's own stats,
     * see ScopedTxnStatsBinding), else the process-wide singleton.
     * Single-threaded code never binds, so its accounting — and
     * every existing golden — is unchanged.
     */
    static TxnStats &
    current()
    {
        TxnStats *bound = detail::boundTxnStatsSlot();
        return bound != nullptr ? *bound : instance();
    }

    /**
     * Construct a non-singleton instance (a shard's local tally).
     * The "txn" group registers under the thread's current metrics
     * registration prefix, so a shard constructing one inside
     * ScopedRegistrationPrefix("shardN.") exports "shardN.txn.*".
     */
    TxnStats() : TxnStats(PrivateTag{}) {}

    Counter undoCommits;  //!< undo transactions committed
    Counter undoFlushes;  //!< flush() calls issued by the undo engine
    Counter undoFences;   //!< fence() calls issued by the undo engine
    Counter redoCommits;  //!< redo transactions committed
    Counter redoFlushes;  //!< flush() calls issued by the redo engine
    Counter redoFences;   //!< fence() calls issued by the redo engine
    Counter groupBatches; //!< group-commit batches flushed to media
    Counter groupTxns;    //!< transactions committed via group commit
    /** Undo writes whose pre-image logging the analysis elided. */
    Counter undoElidedWrites;
    /** Journal entries the redo engine actually wrote. */
    Counter redoJournalEntries;
    /** Payload bytes those entries carried (the log-traffic measure
     * fresh-alloc elision thins: elided runs bypass the journal even
     * when they coalesce into the same number of entries). */
    Counter redoJournalBytes;
    /** Coalesced runs applied journal-free (redo fresh-alloc proof). */
    Counter redoElidedRuns;

    StatGroup &group() { return group_; }

    /** Zero everything (bench sections, test isolation). */
    void resetAll() { group_.resetAll(); }

  private:
    struct PrivateTag
    {
    };

    explicit TxnStats(PrivateTag) : group_("txn"), registration_(group_)
    {
        group_.registerCounter("undoCommits", undoCommits,
                               "undo transactions committed");
        group_.registerCounter("undoFlushes", undoFlushes,
                               "flushes issued by the undo engine");
        group_.registerCounter("undoFences", undoFences,
                               "fences issued by the undo engine");
        group_.registerCounter("redoCommits", redoCommits,
                               "redo transactions committed");
        group_.registerCounter("redoFlushes", redoFlushes,
                               "flushes issued by the redo engine");
        group_.registerCounter("redoFences", redoFences,
                               "fences issued by the redo engine");
        group_.registerCounter("groupBatches", groupBatches,
                               "group-commit batches flushed");
        group_.registerCounter("groupTxns", groupTxns,
                               "transactions committed via group commit");
        group_.registerCounter("undoElidedWrites", undoElidedWrites,
                               "undo pre-image log entries elided");
        group_.registerCounter("redoJournalEntries", redoJournalEntries,
                               "journal entries written by the redo "
                               "engine");
        group_.registerCounter("redoJournalBytes", redoJournalBytes,
                               "payload bytes journaled by the redo "
                               "engine");
        group_.registerCounter("redoElidedRuns", redoElidedRuns,
                               "staged runs applied journal-free");
    }

    StatGroup group_;
    obs::ScopedMetricsGroup registration_;
};

/**
 * RAII: route this thread's transaction-engine accounting into
 * @p stats for the enclosing scope (restores the previous binding on
 * exit). A shard worker binds its shard's TxnStats alongside its
 * Runtime so concurrent commits never race on the shared singleton's
 * plain counters.
 */
class ScopedTxnStatsBinding
{
  public:
    explicit ScopedTxnStatsBinding(TxnStats &stats)
        : previous_(detail::boundTxnStatsSlot())
    {
        detail::boundTxnStatsSlot() = &stats;
    }

    ~ScopedTxnStatsBinding() { detail::boundTxnStatsSlot() = previous_; }

    ScopedTxnStatsBinding(const ScopedTxnStatsBinding &) = delete;
    ScopedTxnStatsBinding &
    operator=(const ScopedTxnStatsBinding &) = delete;

  private:
    TxnStats *previous_;
};

} // namespace upr

#endif // UPR_NVM_TXN_STATS_HH
