/**
 * @file
 * The on-media wire format of the pool log region, shared by both
 * transaction engines (undo in txn.cc, redo in redo_log.cc).
 *
 * Both engines speak the same 16-byte control block and 16-byte entry
 * header with identical checksum formulas; only the *meaning* differs
 * per engine (pre-images rolled back vs new-values replayed forward,
 * `active` as open-transaction flag vs committed-journal flag). Pool
 * formatting, the fault-injection target parser, and the check/repair
 * log walk therefore work on either engine's log region without
 * knowing which engine wrote it.
 *
 * Internal detail header: everything here lives in upr::logfmt and is
 * not part of the public transaction API.
 */

#ifndef UPR_NVM_LOG_FORMAT_HH
#define UPR_NVM_LOG_FORMAT_HH

#include <cstdint>

#include "common/crc32.hh"
#include "nvm/pool.hh"

namespace upr::logfmt
{

/**
 * Control block at the start of the log area. Kept *outside* the pool
 * header on purpose: header writes are frequent (allocator metadata)
 * and may be in flight while the log appends its own state; a shared
 * struct would let the in-flight header write clobber the log's
 * bookkeeping.
 */
struct LogControl
{
    std::uint32_t tail;        //!< next free byte within the entry area
    /**
     * Transaction incarnation counter; bumped at every undo begin /
     * redo commit, never reset. Every entry checksum is seeded with
     * the generation it was written under, which is what makes stale
     * log bytes detectable: a reordered write-back can pair a fresh
     * control block with an entry slot whose media content still
     * holds a *complete, checksummed entry of an earlier
     * transaction*. Without the generation seed that stale entry
     * verifies and gets replayed from the wrong transaction.
     */
    std::uint32_t generation;
    /**
     * Engine-specific state word. Undo: non-zero while a transaction
     * is open (pre-images pending rollback). Redo: non-zero once a
     * journal is committed and pending forward replay.
     */
    std::uint32_t active;
    /**
     * CRC32 over tail+generation+active. The control block is written
     * atomically (16 bytes, one cache line), so a pure crash always
     * leaves a consistent block — a CRC mismatch is *media* damage.
     * A freshly formatted pool gets a sealed empty control block
     * (Txn::formatLog), so every legitimate image carries a valid
     * checksum from birth.
     */
    std::uint32_t crc;
};
static_assert(sizeof(LogControl) == 16);

/** The checksum a control block must carry. */
inline std::uint32_t
controlCrc(const LogControl &c)
{
    std::uint32_t crc = crc32(&c.tail, sizeof(c.tail));
    crc = crc32Update(crc, &c.generation, sizeof(c.generation));
    return crc32Update(crc, &c.active, sizeof(c.active));
}

/** On-log entry header. */
struct LogEntry
{
    std::uint32_t length;
    /** crc32 over generation (seed), poolOffset, length, payload. */
    std::uint32_t crc;
    std::uint64_t poolOffset;
};
static_assert(sizeof(LogEntry) == 16);

/** The checksum an entry with this header and payload must carry. */
inline std::uint32_t
entryCrc(const LogEntry &e, std::uint32_t generation,
         const std::uint8_t *payload)
{
    std::uint32_t crc = crc32(&generation, sizeof(generation));
    crc = crc32Update(crc, &e.poolOffset, sizeof(e.poolOffset));
    crc = crc32Update(crc, &e.length, sizeof(e.length));
    return crc32Update(crc, payload, e.length);
}

/** Read the control block of @p pool's log region. */
inline LogControl
readControl(const Pool &pool)
{
    LogControl c;
    pool.backing().read(pool.header().logStart, &c, sizeof(c));
    return c;
}

/** Seal @p c with its checksum, write it, and make it durable. */
inline void
writeControl(Pool &pool, const LogControl &c)
{
    LogControl sealed = c;
    sealed.crc = controlCrc(sealed);
    const Bytes at = pool.header().logStart;
    pool.backing().write(at, &sealed, sizeof(sealed));
    pool.backing().flush(at, sizeof(sealed));
    pool.backing().fence();
}

/** First byte of the entry area. */
inline Bytes
entriesStart(const Pool &pool)
{
    return pool.header().logStart + sizeof(LogControl);
}

/** Capacity of the entry area. */
inline Bytes
entriesCapacity(const Pool &pool)
{
    return pool.header().logSize - sizeof(LogControl);
}

} // namespace upr::logfmt

#endif // UPR_NVM_LOG_FORMAT_HH
