#include "nvm/txn.hh"

#include <vector>

#include "common/crc32.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

/**
 * Control block at the start of the log area. Kept *outside* the pool
 * header on purpose: header writes are frequent (allocator metadata)
 * and may be in flight while the undo log appends its own state; a
 * shared struct would let the in-flight header write clobber the
 * log's bookkeeping.
 */
struct LogControl
{
    std::uint64_t tail;    //!< next free byte within the entry area
    std::uint32_t active;  //!< non-zero while a txn is open
    std::uint32_t pad;
};
static_assert(sizeof(LogControl) == 16);

/** On-log entry header. */
struct LogEntry
{
    std::uint32_t length;
    std::uint32_t crc;     //!< crc32 over poolOffset, length, payload
    std::uint64_t poolOffset;
};
static_assert(sizeof(LogEntry) == 16);

/** The checksum an entry with this header and payload must carry. */
std::uint32_t
entryCrc(const LogEntry &e, const std::uint8_t *payload)
{
    std::uint32_t crc = crc32(&e.poolOffset, sizeof(e.poolOffset));
    crc = crc32Update(crc, &e.length, sizeof(e.length));
    return crc32Update(crc, payload, e.length);
}

LogControl
readControl(const Pool &pool)
{
    LogControl c;
    pool.backing().read(pool.header().logStart, &c, sizeof(c));
    return c;
}

/** Write the control block and make it durable. */
void
writeControl(Pool &pool, const LogControl &c)
{
    const Bytes at = pool.header().logStart;
    pool.backing().write(at, &c, sizeof(c));
    pool.backing().flush(at, sizeof(c));
    pool.backing().fence();
}

/** First byte of the entry area. */
Bytes
entriesStart(const Pool &pool)
{
    return pool.header().logStart + sizeof(LogControl);
}

/** Capacity of the entry area. */
Bytes
entriesCapacity(const Pool &pool)
{
    return pool.header().logSize - sizeof(LogControl);
}

/**
 * Walk the log and return the byte offsets (within the entry area) of
 * the entries that verify: well-formed lengths, in-pool target range,
 * matching checksum. Stops at the first invalid entry — by the
 * write-ahead discipline only the *tail* entry can legitimately be
 * torn, and nothing after a bad entry can be trusted anyway (entry
 * boundaries are chained through the length fields).
 */
std::vector<Bytes>
validEntries(const Pool &pool, const LogControl &c)
{
    std::vector<Bytes> entries;
    Bytes tail = c.tail;
    if (tail > entriesCapacity(pool)) {
        upr_warn("pool '%s': undo-log tail %llu exceeds capacity %llu; "
                 "clamping", pool.name().c_str(),
                 (unsigned long long)tail,
                 (unsigned long long)entriesCapacity(pool));
        tail = entriesCapacity(pool);
    }

    Bytes cursor = 0;
    while (cursor + sizeof(LogEntry) <= tail) {
        const Bytes at = entriesStart(pool) + cursor;
        LogEntry e;
        pool.backing().read(at, &e, sizeof(e));
        if (e.length == 0 ||
            cursor + sizeof(LogEntry) + e.length > tail) {
            upr_warn("pool '%s': torn undo entry at log offset %llu "
                     "(length %u); discarding it and the log tail",
                     pool.name().c_str(), (unsigned long long)cursor,
                     e.length);
            break;
        }
        if (e.poolOffset > pool.size() ||
            e.length > pool.size() - e.poolOffset) {
            upr_warn("pool '%s': undo entry at log offset %llu names "
                     "out-of-pool range [%llu,+%u); discarding it and "
                     "the log tail", pool.name().c_str(),
                     (unsigned long long)cursor,
                     (unsigned long long)e.poolOffset, e.length);
            break;
        }
        std::vector<std::uint8_t> payload(e.length);
        pool.backing().read(at + sizeof(e), payload.data(), e.length);
        if (entryCrc(e, payload.data()) != e.crc) {
            upr_warn("pool '%s': undo entry at log offset %llu fails "
                     "its checksum; discarding it and the log tail",
                     pool.name().c_str(), (unsigned long long)cursor);
            break;
        }
        entries.push_back(cursor);
        cursor += sizeof(LogEntry) + e.length;
    }
    if (cursor != c.tail) {
        upr_warn("pool '%s': undo log replays %zu entries, ignoring "
                 "%llu trailing bytes", pool.name().c_str(),
                 entries.size(),
                 (unsigned long long)(c.tail - cursor));
    }
    return entries;
}

} // namespace

Txn::Txn(Pool &pool) : pool_(pool)
{
    LogControl c = readControl(pool_);
    if (c.active) {
        throw Fault(FaultKind::BadUsage,
                    "pool '" + pool_.name() +
                    "' already has an active transaction");
    }
    c.active = 1;
    c.tail = 0;
    writeControl(pool_, c);
    obs::traceEvent(obs::EventKind::TxnBegin, pool_.id());
}

Txn::~Txn()
{
    if (!closed_)
        abort();
}

void
Txn::recordWrite(PoolOffset off, Bytes len)
{
    upr_assert_msg(!closed_, "recordWrite on a closed transaction");
    upr_assert_msg(len <= pool_.size() && off <= pool_.size() - len,
                   "logged range out of pool");
    if (len == 0)
        return;

    LogControl c = readControl(pool_);
    const Bytes need = sizeof(LogEntry) + len;
    if (c.tail + need > entriesCapacity(pool_)) {
        throw Fault(FaultKind::PoolFull,
                    "undo log of pool '" + pool_.name() + "' full");
    }

    std::vector<std::uint8_t> pre(len);
    pool_.backing().read(off, pre.data(), len);

    LogEntry e;
    e.length = static_cast<std::uint32_t>(len);
    e.poolOffset = off;
    e.crc = entryCrc(e, pre.data());

    // Write-ahead: the entry (and the tail bump that publishes it)
    // must be durable before the caller's data write happens, or a
    // crash could leave new data with no pre-image to undo.
    const Bytes at = entriesStart(pool_) + c.tail;
    pool_.backing().write(at, &e, sizeof(e));
    pool_.backing().write(at + sizeof(e), pre.data(), len);
    pool_.backing().flush(at, need);

    c.tail += need;
    writeControl(pool_, c); // flushes + fences control (and entry)

    dirty_.emplace_back(off, len);
}

void
Txn::commit()
{
    upr_assert_msg(!closed_, "double commit");
    // Committed data must be durable before the log that could undo
    // it disappears.
    for (const auto &[off, len] : dirty_)
        pool_.backing().flush(off, len);
    pool_.backing().fence();

    LogControl c = readControl(pool_);
    obs::traceEvent(obs::EventKind::UndoTruncate, pool_.id(), c.tail);
    c.active = 0;
    c.tail = 0;
    writeControl(pool_, c);
    obs::traceEvent(obs::EventKind::TxnCommit, pool_.id(),
                    dirty_.size());
    closed_ = true;
    dirty_.clear();
}

void
Txn::abort()
{
    upr_assert_msg(!closed_, "abort after close");
    rollback(pool_);
    obs::traceEvent(obs::EventKind::TxnAbort, pool_.id());
    closed_ = true;
    dirty_.clear();
}

bool
Txn::isActive(const Pool &pool)
{
    return readControl(pool).active != 0;
}

bool
Txn::recover(Pool &pool)
{
    if (!isActive(pool))
        return false;
    rollback(pool);
    return true;
}

void
Txn::rollback(Pool &pool)
{
    const LogControl c = readControl(pool);
    const std::vector<Bytes> entries = validEntries(pool, c);

    // Undo back-to-front so overlapping writes restore the oldest
    // pre-image last.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        LogEntry e;
        const Bytes at = entriesStart(pool) + *it;
        pool.backing().read(at, &e, sizeof(e));
        std::vector<std::uint8_t> pre(e.length);
        pool.backing().read(at + sizeof(e), pre.data(), e.length);
        pool.backing().write(e.poolOffset, pre.data(), e.length);
        pool.backing().flush(e.poolOffset, e.length);
    }
    pool.backing().fence();

    LogControl done = readControl(pool);
    obs::traceEvent(obs::EventKind::UndoTruncate, pool.id(),
                    done.tail);
    done.active = 0;
    done.tail = 0;
    writeControl(pool, done);
    obs::traceEvent(obs::EventKind::RecoveryApplied, entries.size(),
                    1);
}

} // namespace upr
