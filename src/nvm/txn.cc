#include "nvm/txn.hh"

#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"

namespace upr
{

namespace
{

/**
 * Control block at the start of the log area. Kept *outside* the pool
 * header on purpose: header writes are frequent (allocator metadata)
 * and may be in flight while the undo log appends its own state; a
 * shared struct would let the in-flight header write clobber the
 * log's bookkeeping.
 */
struct LogControl
{
    std::uint64_t tail;    //!< next free byte within the entry area
    std::uint32_t active;  //!< non-zero while a txn is open
    std::uint32_t pad;
};
static_assert(sizeof(LogControl) == 16);

/** On-log entry header. */
struct LogEntry
{
    std::uint32_t length;
    std::uint32_t pad;
    std::uint64_t poolOffset;
};
static_assert(sizeof(LogEntry) == 16);

LogControl
readControl(const Pool &pool)
{
    LogControl c;
    pool.backing().read(pool.header().logStart, &c, sizeof(c));
    return c;
}

void
writeControl(Pool &pool, const LogControl &c)
{
    pool.backing().write(pool.header().logStart, &c, sizeof(c));
}

/** First byte of the entry area. */
Bytes
entriesStart(const Pool &pool)
{
    return pool.header().logStart + sizeof(LogControl);
}

/** Capacity of the entry area. */
Bytes
entriesCapacity(const Pool &pool)
{
    return pool.header().logSize - sizeof(LogControl);
}

} // namespace

Txn::Txn(Pool &pool) : pool_(pool)
{
    LogControl c = readControl(pool_);
    if (c.active) {
        throw Fault(FaultKind::BadUsage,
                    "pool '" + pool_.name() +
                    "' already has an active transaction");
    }
    c.active = 1;
    c.tail = 0;
    writeControl(pool_, c);
}

Txn::~Txn()
{
    if (!closed_)
        abort();
}

void
Txn::recordWrite(PoolOffset off, Bytes len)
{
    upr_assert_msg(!closed_, "recordWrite on a closed transaction");
    upr_assert_msg(off + len <= pool_.size(), "logged range out of pool");

    LogControl c = readControl(pool_);
    const Bytes need = sizeof(LogEntry) + len;
    if (c.tail + need > entriesCapacity(pool_)) {
        throw Fault(FaultKind::PoolFull,
                    "undo log of pool '" + pool_.name() + "' full");
    }

    LogEntry e;
    e.length = static_cast<std::uint32_t>(len);
    e.pad = 0;
    e.poolOffset = off;

    std::vector<std::uint8_t> pre(len);
    pool_.backing().read(off, pre.data(), len);

    const Bytes at = entriesStart(pool_) + c.tail;
    pool_.backing().write(at, &e, sizeof(e));
    pool_.backing().write(at + sizeof(e), pre.data(), len);

    c.tail += need;
    writeControl(pool_, c);
}

void
Txn::commit()
{
    upr_assert_msg(!closed_, "double commit");
    LogControl c = readControl(pool_);
    c.active = 0;
    c.tail = 0;
    writeControl(pool_, c);
    closed_ = true;
}

void
Txn::abort()
{
    upr_assert_msg(!closed_, "abort after close");
    rollback(pool_);
    closed_ = true;
}

bool
Txn::isActive(const Pool &pool)
{
    return readControl(pool).active != 0;
}

bool
Txn::recover(Pool &pool)
{
    if (!isActive(pool))
        return false;
    rollback(pool);
    return true;
}

void
Txn::rollback(Pool &pool)
{
    LogControl c = readControl(pool);

    // Collect entry offsets front-to-back, then undo back-to-front so
    // overlapping writes restore the oldest pre-image last.
    std::vector<Bytes> entries;
    Bytes cursor = 0;
    while (cursor < c.tail) {
        entries.push_back(cursor);
        LogEntry e;
        pool.backing().read(entriesStart(pool) + cursor, &e,
                            sizeof(e));
        cursor += sizeof(LogEntry) + e.length;
    }
    upr_assert_msg(cursor == c.tail, "undo log corrupt");

    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        LogEntry e;
        const Bytes at = entriesStart(pool) + *it;
        pool.backing().read(at, &e, sizeof(e));
        std::vector<std::uint8_t> pre(e.length);
        pool.backing().read(at + sizeof(e), pre.data(), e.length);
        pool.backing().write(e.poolOffset, pre.data(), e.length);
    }

    c = readControl(pool);
    c.active = 0;
    c.tail = 0;
    writeControl(pool, c);
}

} // namespace upr
