#include "nvm/txn.hh"

#include <algorithm>
#include <vector>

#include "common/crc32.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "nvm/log_format.hh"
#include "nvm/pool_allocator.hh"
#include "nvm/txn_stats.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

// The wire format (control block, entry header, checksum formulas)
// is shared with the redo engine; see nvm/log_format.hh.
using logfmt::LogControl;
using logfmt::LogEntry;
using logfmt::controlCrc;
using logfmt::entriesCapacity;
using logfmt::entriesStart;
using logfmt::entryCrc;
using logfmt::readControl;

/** Write the control block and make it durable (undo accounting). */
void
putControl(Pool &pool, const LogControl &c)
{
    logfmt::writeControl(pool, c);
    TxnStats::current().undoFlushes.add(1);
    TxnStats::current().undoFences.add(1);
}

/** This pool's log region speaks undo, or the caller is lost. */
void
requireUndo(const Pool &pool)
{
    if (pool.engineKind() != EngineKind::Undo) {
        throw Fault(FaultKind::EngineMismatch,
                    "pool '" + pool.name() + "' uses the " +
                    engineKindName(pool.engineKind()) +
                    " engine; its log region cannot be driven by the "
                    "undo path");
    }
}

/**
 * Walk the log and return the byte offsets (within the entry area) of
 * the entries that verify: well-formed lengths, in-pool target range,
 * matching checksum. Stops at the first invalid entry — by the
 * write-ahead discipline only the *tail* entry can legitimately be
 * torn, and nothing after a bad entry can be trusted anyway (entry
 * boundaries are chained through the length fields).
 */
std::vector<Bytes>
validEntries(const Pool &pool, const LogControl &c,
             Bytes *end_cursor = nullptr)
{
    std::vector<Bytes> entries;
    Bytes tail = c.tail;
    if (tail > entriesCapacity(pool)) {
        upr_warn("pool '%s': undo-log tail %llu exceeds capacity %llu; "
                 "clamping", pool.name().c_str(),
                 (unsigned long long)tail,
                 (unsigned long long)entriesCapacity(pool));
        tail = entriesCapacity(pool);
    }

    Bytes cursor = 0;
    while (cursor + sizeof(LogEntry) <= tail) {
        const Bytes at = entriesStart(pool) + cursor;
        LogEntry e;
        pool.backing().read(at, &e, sizeof(e));
        if (e.length == 0 ||
            cursor + sizeof(LogEntry) + e.length > tail) {
            upr_warn("pool '%s': torn undo entry at log offset %llu "
                     "(length %u); discarding it and the log tail",
                     pool.name().c_str(), (unsigned long long)cursor,
                     e.length);
            break;
        }
        if (e.poolOffset > pool.size() ||
            e.length > pool.size() - e.poolOffset) {
            upr_warn("pool '%s': undo entry at log offset %llu names "
                     "out-of-pool range [%llu,+%u); discarding it and "
                     "the log tail", pool.name().c_str(),
                     (unsigned long long)cursor,
                     (unsigned long long)e.poolOffset, e.length);
            break;
        }
        std::vector<std::uint8_t> payload(e.length);
        pool.backing().read(at + sizeof(e), payload.data(), e.length);
        if (entryCrc(e, c.generation, payload.data()) != e.crc) {
            upr_warn("pool '%s': undo entry at log offset %llu fails "
                     "its checksum; discarding it and the log tail",
                     pool.name().c_str(), (unsigned long long)cursor);
            break;
        }
        entries.push_back(cursor);
        cursor += sizeof(LogEntry) + e.length;
    }
    if (cursor != c.tail) {
        upr_warn("pool '%s': undo log replays %zu entries, ignoring "
                 "%llu trailing bytes", pool.name().c_str(),
                 entries.size(),
                 (unsigned long long)(c.tail - cursor));
    }
    if (end_cursor)
        *end_cursor = cursor;
    return entries;
}

/**
 * Resync scan of the discarded log region (end_cursor, tail): probe
 * every byte offset for a CRC-valid, in-pool entry. The write-ahead
 * discipline fences each entry before the next is appended, so a pure
 * crash can only tear the *final* entry — a valid entry after a bad
 * one means the bad entry was damaged on media, and the data writes
 * the later entries protect were executed but cannot be rolled back.
 */
bool
discardedRegionHasValidEntry(const Pool &pool, std::uint32_t generation,
                             Bytes from, Bytes to)
{
    // from is the first invalid entry itself: start one byte past it.
    for (Bytes o = from + 1; o + sizeof(LogEntry) <= to; ++o) {
        const Bytes at = entriesStart(pool) + o;
        LogEntry e;
        pool.backing().read(at, &e, sizeof(e));
        if (e.length == 0 || o + sizeof(LogEntry) + e.length > to)
            continue;
        if (e.poolOffset > pool.size() ||
            e.length > pool.size() - e.poolOffset)
            continue;
        std::vector<std::uint8_t> payload(e.length);
        pool.backing().read(at + sizeof(e), payload.data(), e.length);
        if (entryCrc(e, generation, payload.data()) == e.crc)
            return true;
    }
    return false;
}

/**
 * Restore the pre-images of @p entries back-to-front (so overlapping
 * writes restore the oldest pre-image last) and truncate the log.
 */
void
applyEntries(Pool &pool, const std::vector<Bytes> &entries)
{
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        LogEntry e;
        const Bytes at = entriesStart(pool) + *it;
        pool.backing().read(at, &e, sizeof(e));
        std::vector<std::uint8_t> pre(e.length);
        pool.backing().read(at + sizeof(e), pre.data(), e.length);
        pool.backing().write(e.poolOffset, pre.data(), e.length);
        pool.backing().flush(e.poolOffset, e.length);
        TxnStats::current().undoFlushes.add(1);
    }
    pool.backing().fence();
    TxnStats::current().undoFences.add(1);

    LogControl done = readControl(pool);
    obs::traceEvent(obs::EventKind::UndoTruncate, pool.id(),
                    done.tail);
    done.active = 0;
    done.tail = 0;
    putControl(pool, done);
    obs::traceEvent(obs::EventKind::RecoveryApplied, entries.size(),
                    1);
}

/** Classify the log; shared by analyze() and recoverEx(). */
Txn::RecoveryReport
classifyLog(const Pool &pool, const LogControl &c,
            std::vector<Bytes> *entries_out)
{
    Txn::RecoveryReport r;
    if (c.crc != controlCrc(c)) {
        // A pure crash writes the control block atomically (one cache
        // line), so a checksum mismatch is media damage — and neither
        // the active flag nor the tail can be trusted. A flipped
        // active bit or shrunk tail would otherwise skip rollback of
        // logged writes and leave torn data in place silently.
        r.controlDamaged = true;
        return r;
    }
    r.generation = c.generation;
    r.logActive = c.active != 0;
    if (!r.logActive)
        return r;
    Bytes end = 0;
    std::vector<Bytes> entries = validEntries(pool, c, &end);
    const Bytes tail = std::min<Bytes>(c.tail, entriesCapacity(pool));
    r.entriesReplayed = entries.size();
    r.bytesDiscarded = tail > end ? tail - end : 0;
    if (r.bytesDiscarded > 0)
        r.lostCommittedEntries =
            discardedRegionHasValidEntry(pool, c.generation, end, tail);
    if (entries_out)
        *entries_out = std::move(entries);
    return r;
}

} // namespace

Txn::Txn(Pool &pool) : pool_(pool)
{
    requireUndo(pool_);
    LogControl c = readControl(pool_);
    if (c.active) {
        throw Fault(FaultKind::BadUsage,
                    "pool '" + pool_.name() +
                    "' already has an active transaction");
    }
    c.active = 1;
    c.tail = 0;
    // New incarnation: entries left on media by earlier transactions
    // no longer checksum under this generation, so recovery cannot
    // mistake them for ours.
    c.generation += 1;
    putControl(pool_, c);
    obs::traceEvent(obs::EventKind::TxnBegin, pool_.id());
}

Txn::~Txn()
{
    if (!closed_)
        abort();
}

void
Txn::recordWrite(PoolOffset off, Bytes len)
{
    upr_assert_msg(!closed_, "recordWrite on a closed transaction");
    upr_assert_msg(len <= pool_.size() && off <= pool_.size() - len,
                   "logged range out of pool");
    if (len == 0)
        return;

    LogControl c = readControl(pool_);
    const Bytes need = sizeof(LogEntry) + len;
    if (c.tail + need > entriesCapacity(pool_)) {
        throw Fault(FaultKind::PoolFull,
                    "undo log of pool '" + pool_.name() + "' full");
    }

    std::vector<std::uint8_t> pre(len);
    pool_.backing().read(off, pre.data(), len);

    LogEntry e;
    e.length = static_cast<std::uint32_t>(len);
    e.poolOffset = off;
    e.crc = entryCrc(e, c.generation, pre.data());

    // Write-ahead: the entry (and the tail bump that publishes it)
    // must be durable before the caller's data write happens, or a
    // crash could leave new data with no pre-image to undo.
    const Bytes at = entriesStart(pool_) + c.tail;
    pool_.backing().write(at, &e, sizeof(e));
    pool_.backing().write(at + sizeof(e), pre.data(), len);
    pool_.backing().flush(at, need);
    TxnStats::current().undoFlushes.add(1);

    c.tail += static_cast<std::uint32_t>(need);
    putControl(pool_, c); // flushes + fences control (and entry)

    dirty_.emplace_back(off, len);
}

void
Txn::recordElidedWrite(PoolOffset off, Bytes len)
{
    upr_assert_msg(!closed_, "recordElidedWrite on a closed transaction");
    upr_assert_msg(len <= pool_.size() && off <= pool_.size() - len,
                   "elided range out of pool");
    if (len == 0)
        return;
    TxnStats::current().undoElidedWrites.add(1);
    // No pre-image, no log append, no fence. Commit must still flush
    // the new bytes, so remember the range once.
    for (const auto &[doff, dlen] : dirty_) {
        if (doff == off && dlen == len)
            return;
    }
    dirty_.emplace_back(off, len);
}

void
Txn::commit()
{
    upr_assert_msg(!closed_, "double commit");
    // Committed data must be durable before the log that could undo
    // it disappears.
    for (const auto &[off, len] : dirty_) {
        pool_.backing().flush(off, len);
        TxnStats::current().undoFlushes.add(1);
    }
    pool_.backing().fence();
    TxnStats::current().undoFences.add(1);

    LogControl c = readControl(pool_);
    obs::traceEvent(obs::EventKind::UndoTruncate, pool_.id(), c.tail);
    c.active = 0;
    c.tail = 0;
    putControl(pool_, c);
    TxnStats::current().undoCommits.add(1);
    obs::traceEvent(obs::EventKind::TxnCommit, pool_.id(),
                    dirty_.size());
    closed_ = true;
    dirty_.clear();
}

void
Txn::abort()
{
    upr_assert_msg(!closed_, "abort after close");
    rollback(pool_);
    obs::traceEvent(obs::EventKind::TxnAbort, pool_.id());
    closed_ = true;
    dirty_.clear();
}

bool
Txn::isActive(const Pool &pool)
{
    return readControl(pool).active != 0;
}

void
Txn::formatLog(Pool &pool)
{
    putControl(pool, LogControl{});
}

bool
Txn::recover(Pool &pool)
{
    requireUndo(pool);
    if (!isActive(pool))
        return false;
    rollback(pool);
    canonicalizeHeap(pool);
    return true;
}

Txn::RecoveryReport
Txn::recoverEx(Pool &pool)
{
    requireUndo(pool);
    std::vector<Bytes> entries;
    RecoveryReport r = classifyLog(pool, readControl(pool), &entries);
    if (!r.logActive)
        return r;
    applyEntries(pool, entries);
    canonicalizeHeap(pool);
    r.rolledBack = true;
    return r;
}

Txn::RecoveryReport
Txn::analyze(const Pool &pool)
{
    requireUndo(pool);
    return classifyLog(pool, readControl(pool), nullptr);
}

void
Txn::rollback(Pool &pool)
{
    const LogControl c = readControl(pool);
    applyEntries(pool, validEntries(pool, c));
}

bool
Txn::canonicalizeHeap(Pool &pool)
{
    PoolAllocator alloc(pool);
    const ArenaReport a = alloc.inspectArena();
    if (!a.tagsValid || (a.freeListValid && a.usedBytesMatch))
        return false;
    alloc.rebuildFreeList();
    upr_inform("recovery rebuilt free list for pool %llu (%s)",
               static_cast<unsigned long long>(pool.id()),
               a.what.c_str());
    return true;
}

} // namespace upr
