/**
 * @file
 * Redo-journal persistent transactions with group commit — the second
 * transaction engine (EngineKind::Redo), cutting the undo engine's
 * per-recordWrite fence tax down to a constant number of fences per
 * commit (and per *batch* under group commit).
 *
 * While a redo transaction is open, every pool write is captured in a
 * DRAM staging buffer (WriteStage, installed on the pool's Backing):
 * nothing touches the media, so there is nothing a crash could tear —
 * an uncommitted transaction simply evaporates. Reads overlay the
 * staged bytes, so a transaction sees its own writes.
 *
 * ## Durability ordering (redo discipline)
 *
 * Commit coalesces the staged bytes into runs and walks four phases,
 * each one fence:
 *
 *   journal:  new-value entries appended + flushed -> FENCE (1);
 *   publish:  control block {tail, generation+1, committed} ->
 *             flush -> FENCE (2)   <- the atomic commit point;
 *   apply:    runs written in place + flushed -> FENCE (3);
 *   truncate: control block {0, generation, idle} -> flush ->
 *             FENCE (4).
 *
 * A crash before fence 2 lands on an idle control block: the torn
 * journal tail is implicitly discarded, exactly as the undo engine
 * discards a torn entry. A crash after fence 2 finds a committed
 * journal whose entries are all durable (they were fenced *before*
 * the control block could publish them), and recovery replays them
 * forward — idempotently, since entries hold absolute new values.
 * The corollary recovery relies on: a committed control block next to
 * any invalid entry is *media damage*, never a torn commit.
 *
 * Group commit (RedoBatch) layers a transaction stage over a batch
 * stage: commit() folds the transaction into the batch (DRAM only, 0
 * fences), and flush() journals the whole batch through the four
 * phases above — k batched transactions pay the 4 fences once.
 * Atomicity coarsens to the batch boundary: a crash either keeps the
 * whole flushed batch or none of it.
 *
 * While a batch holds unflushed transactions, the batch stage stays
 * installed between transactions so *all* pool writes are captured:
 * letting a direct write reach the media while logically-earlier
 * batched transactions are still volatile would invert write
 * ordering across a crash.
 */

#ifndef UPR_NVM_REDO_LOG_HH
#define UPR_NVM_REDO_LOG_HH

#include <cstddef>
#include <set>

#include "common/types.hh"
#include "mem/backing.hh"
#include "nvm/pool.hh"
#include "nvm/txn.hh"

namespace upr
{

/**
 * Group-commit handle on one redo pool. Drives both modes: a solo
 * transaction is simply begin() / writes / commit() / flush(), and a
 * batch of k is k begin/commit pairs followed by one flush().
 *
 * At most one RedoBatch can drive a pool at a time (the staging slot
 * on the Backing is the lock); destroying the batch discards every
 * unflushed transaction without touching the media.
 */
class RedoBatch
{
  public:
    /**
     * Bind to @p pool.
     * @throws Fault{EngineMismatch} unless the pool's engine is Redo
     */
    explicit RedoBatch(Pool &pool);

    /** Discards any open transaction and unflushed batch (DRAM only). */
    ~RedoBatch();

    RedoBatch(const RedoBatch &) = delete;
    RedoBatch &operator=(const RedoBatch &) = delete;

    /**
     * Open a transaction: subsequent pool writes are staged in DRAM.
     * @throws Fault{BadUsage} if a transaction is already open here,
     *         or another stage is already installed on the backing
     */
    void begin();

    /**
     * Commit the open transaction *into the batch* (DRAM only, zero
     * fences). Durable only after the next flush().
     */
    void commit();

    /** Drop the open transaction's staged writes (batch unaffected). */
    void abort();

    /**
     * Mark [off, off+n) of the open transaction's staged bytes as
     * journal-free: the persistency analysis proved the range lies in
     * an object pmalloc'd inside this transaction, so flush() applies
     * it write-through *before* the journal fence instead of paying a
     * journal entry for it. Sound because a crash before the commit
     * point leaves those bytes in a region whose allocator metadata
     * is still staged — free space holding garbage, exactly as if the
     * transaction never ran. No-op outside an open transaction.
     */
    void noteElided(Bytes off, Bytes n);

    /**
     * Make the batch durable: journal + publish + apply + truncate
     * (the four-fence protocol above). No-op when nothing is staged —
     * a batch of empty transactions costs zero fences.
     * @throws Fault{BadUsage} while a transaction is open
     * @throws Fault{PoolFull} if the staged runs overflow the journal
     */
    void flush();

    /** Transactions committed into the batch since the last flush. */
    std::size_t pendingTxns() const { return pending_; }

    /** True between begin() and commit()/abort(). */
    bool txnOpen() const { return txnOpen_; }

  private:
    Pool &pool_;
    /** Committed-but-unflushed writes of the whole batch. */
    WriteStage batchStage_;
    /** Writes of the currently open transaction (over the batch). */
    WriteStage txnStage_;
    /** Byte offsets noteElided() marked in the open transaction. */
    std::set<Bytes> txnElided_;
    /** Elided offsets of committed-but-unflushed transactions. */
    std::set<Bytes> batchElided_;
    std::size_t pending_ = 0;
    bool txnOpen_ = false;
    /** True while batchStage_ is the stage installed on the backing. */
    bool batchInstalled_ = false;
};

/**
 * Static recovery interface of the redo engine, mirroring the undo
 * engine's (Txn::recover and friends). Reuses Txn::RecoveryReport;
 * for redo, `logActive` means "a committed journal awaits forward
 * replay" and `rolledBack` means "the replay ran".
 */
struct RedoLog
{
    /** True if @p pool holds a committed, not-yet-applied journal. */
    static bool isActive(const Pool &pool);

    /**
     * Replay a committed journal forward and truncate it. Idempotent;
     * leaves a journal with any invalid entry untouched (that is
     * media damage — see recoverEx).
     * @return true if a replay was performed
     * @throws Fault{EngineMismatch} unless the pool's engine is Redo
     */
    static bool recover(Pool &pool);

    /**
     * recover(), reporting what happened. A committed journal with an
     * invalid entry reports lostCommittedEntries and is *not* touched:
     * every entry of a committed journal was fenced before the
     * control block published it, so the damage is on the media and
     * the committed data can no longer be applied — the pool must be
     * quarantined, not served.
     */
    static Txn::RecoveryReport recoverEx(Pool &pool);

    /** Dry-run classification; never mutates the pool. */
    static Txn::RecoveryReport analyze(const Pool &pool);
};

} // namespace upr

#endif // UPR_NVM_REDO_LOG_HH
