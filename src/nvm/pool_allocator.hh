/**
 * @file
 * Boundary-tag first-fit allocator whose metadata lives *inside* the
 * pool, expressed as pool-relative offsets — so the heap structure
 * survives pool save/reopen/relocation unchanged.
 *
 * Block layout (all blocks 16-byte aligned, sizes multiples of 16):
 *
 *   +0   header: u64 sizeFlags (total block size; bit0 = allocated)
 *   +8   payload ...                        (free blocks: u64 nextFree,
 *                                            u64 prevFree here instead)
 *   +size-8 footer: u64 sizeFlags copy
 *
 * 16 bytes of boundary tags per block — the same per-allocation
 * overhead the volatile heap models, so persistent and volatile
 * objects have identical memory footprints and cache behaviour.
 * The free list is doubly linked and address-ordered; adjacent free
 * blocks are coalesced eagerly using the boundary tags.
 */

#ifndef UPR_NVM_POOL_ALLOCATOR_HH
#define UPR_NVM_POOL_ALLOCATOR_HH

#include <cstddef>
#include <string>

#include "common/types.hh"
#include "nvm/pool.hh"

namespace upr
{

/**
 * Result of a non-throwing arena inspection (pool_check): what a
 * guarded walk of the boundary tags and the free list found. The
 * split matters for repair: valid tags with a broken free list is
 * *repairable* (links are redundant — rebuildFreeList() recomputes
 * them from the tags); broken tags are not (the block structure
 * itself is lost).
 */
struct ArenaReport
{
    bool tagsValid = false;      //!< every block tag/footer verified
    bool freeListValid = false;  //!< links match the tag walk
    bool usedBytesMatch = false; //!< header.usedBytes == tag walk sum
    std::size_t blocks = 0;      //!< total blocks walked
    std::size_t freeBlocks = 0;  //!< free blocks seen by the walk
    Bytes usedBytes = 0;         //!< allocated bytes per the tag walk
    std::string what;            //!< first problem found, if any
};

/** Allocator over one pool's arena; stateless apart from the pool. */
class PoolAllocator
{
  public:
    static constexpr Bytes kAlign = 16;
    static constexpr Bytes kHeaderBytes = 8;
    static constexpr Bytes kFooterBytes = 8;
    static constexpr Bytes kMinBlock = 32;

    /** Bind to @p pool (no formatting). */
    explicit PoolAllocator(Pool &pool) : pool_(pool) {}

    /** One-time arena formatting right after pool creation. */
    void format();

    /**
     * Allocate @p n payload bytes (16-byte aligned).
     * @return payload offset within the pool
     * @throws Fault{PoolFull} if no block fits
     */
    PoolOffset alloc(Bytes n);

    /** Free a payload offset previously returned by alloc(). */
    void free(PoolOffset payload);

    /** Payload capacity of the live block at @p payload. */
    Bytes payloadSize(PoolOffset payload) const;

    /** Sum of free block payload capacity. */
    Bytes freeBytes() const;

    /** Number of live (allocated) blocks in the arena. */
    std::size_t liveBlocks() const;

    /**
     * Walk the whole arena validating boundary tags, canaries, free
     * list linkage, and coalescing invariants; panics on corruption.
     * Heavily used by the property tests.
     */
    void checkConsistency() const;

    /**
     * Non-throwing version of checkConsistency() for damaged images:
     * a bounds-guarded walk that reports what it found instead of
     * panicking. Safe to call on arbitrary garbage.
     */
    ArenaReport inspectArena() const;

    /**
     * Rebuild the free list purely from the boundary tags: relink
     * free blocks in address order, coalesce adjacent free runs,
     * recompute freeHead and usedBytes. The repair path for a pool
     * whose tags verify but whose links or header accounting were
     * damaged. Precondition: inspectArena().tagsValid.
     */
    void rebuildFreeList();

  private:
    std::uint64_t rd64(Bytes off) const;
    void wr64(Bytes off, std::uint64_t v);

    Bytes blockSize(Bytes block) const;
    bool blockAllocated(Bytes block) const;
    void setBlock(Bytes block, Bytes size, bool allocated);

    Bytes nextFree(Bytes block) const { return rd64(block + 8); }
    Bytes prevFree(Bytes block) const { return rd64(block + 16); }
    void setNextFree(Bytes block, Bytes v) { wr64(block + 8, v); }
    void setPrevFree(Bytes block, Bytes v) { wr64(block + 16, v); }

    /** Insert @p block into the address-ordered free list. */
    void freeListInsert(Bytes block);
    /** Unlink @p block from the free list. */
    void freeListRemove(Bytes block);

    /**
     * First block address: offset 8 past the arena start, so block
     * payloads (block + 8) are 16-byte aligned.
     */
    Bytes arenaFirst() const { return pool_.header().arenaStart + 8; }
    Bytes arenaEnd() const { return pool_.header().size; }

    Pool &pool_;
};

} // namespace upr

#endif // UPR_NVM_POOL_ALLOCATOR_HH
