#include "nvm/pool.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace upr
{

Pool::Pool(PoolId id, std::string name, Bytes size)
    : name_(std::move(name)), backing_(size)
{
    upr_assert_msg(id != 0, "pool id 0 is reserved");
    if (size > kMaxSize) {
        throw Fault(FaultKind::BadUsage,
                    "pool size exceeds 32-bit offset range");
    }
    // Undo-log area scales with the pool: 1/16th of the pool,
    // clamped to [8 KiB, kDefaultLogSize].
    Bytes log_size = size / 16;
    if (log_size < 8 * 1024)
        log_size = 8 * 1024;
    if (log_size > kDefaultLogSize)
        log_size = kDefaultLogSize;
    if (size < kHeaderSize + log_size + 4096) {
        throw Fault(FaultKind::BadUsage, "pool size too small");
    }

    PoolHeader h = {};
    h.magic = PoolHeader::kMagic;
    h.version = PoolHeader::kVersion;
    h.poolId = id;
    h.size = size;
    h.rootOff = 0;
    h.freeHead = 0;
    h.usedBytes = 0;
    h.logStart = kHeaderSize;
    h.logSize = log_size;
    h.logTail = 0;
    h.logActive = 0;
    h.arenaStart = roundUp(kHeaderSize + log_size, 16);
    setHeader(h);
}

Pool::Pool(std::string name, Backing image)
    : name_(std::move(name)), backing_(std::move(image))
{
    if (backing_.size() < sizeof(PoolHeader)) {
        throw Fault(FaultKind::BadUsage, "pool image truncated");
    }
    const PoolHeader h = header();
    if (h.magic != PoolHeader::kMagic) {
        throw Fault(FaultKind::BadUsage, "pool image has bad magic");
    }
    if (h.version != PoolHeader::kVersion) {
        throw Fault(FaultKind::BadUsage, "pool image version mismatch");
    }
    if (h.size != backing_.size()) {
        throw Fault(FaultKind::BadUsage, "pool image size mismatch");
    }
}

void
Pool::setRootOff(PoolOffset off)
{
    PoolHeader h = header();
    h.rootOff = off;
    setHeader(h);
}

PoolHeader
Pool::header() const
{
    PoolHeader h;
    backing_.read(0, &h, sizeof(h));
    return h;
}

void
Pool::setHeader(const PoolHeader &h)
{
    backing_.write(0, &h, sizeof(h));
}

} // namespace upr
