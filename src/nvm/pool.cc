#include "nvm/pool.hh"

#include "common/bits.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "nvm/txn.hh"

namespace upr
{

std::uint32_t
poolIdentCrc(const PoolHeader &h)
{
    std::uint32_t crc = crc32(&h.magic, sizeof(h.magic));
    crc = crc32Update(crc, &h.version, sizeof(h.version));
    crc = crc32Update(crc, &h.poolId, sizeof(h.poolId));
    crc = crc32Update(crc, &h.size, sizeof(h.size));
    crc = crc32Update(crc, &h.arenaStart, sizeof(h.arenaStart));
    crc = crc32Update(crc, &h.logStart, sizeof(h.logStart));
    crc = crc32Update(crc, &h.logSize, sizeof(h.logSize));
    // The engine field joined the identity late; folding it only when
    // non-zero keeps every undo (engine = 0) image bit-identical to
    // the pre-engine format while still CRC-protecting redo pools:
    // a 0 -> nonzero flip changes the input set, a nonzero -> 0 flip
    // removes it, and both break the checksum.
    if (h.engine != 0)
        crc = crc32Update(crc, &h.engine, sizeof(h.engine));
    return crc;
}

Pool::Pool(PoolId id, std::string name, Bytes size, EngineKind engine)
    : name_(std::move(name)), backing_(size)
{
    upr_assert_msg(id != 0, "pool id 0 is reserved");
    if (size > kMaxSize) {
        throw Fault(FaultKind::BadUsage,
                    "pool size exceeds 32-bit offset range");
    }
    // Undo-log area scales with the pool: 1/16th of the pool,
    // clamped to [8 KiB, kDefaultLogSize].
    Bytes log_size = size / 16;
    if (log_size < 8 * 1024)
        log_size = 8 * 1024;
    if (log_size > kDefaultLogSize)
        log_size = kDefaultLogSize;
    if (size < kHeaderSize + log_size + 4096) {
        throw Fault(FaultKind::BadUsage, "pool size too small");
    }

    PoolHeader h = {};
    h.magic = PoolHeader::kMagic;
    h.version = PoolHeader::kVersion;
    h.poolId = id;
    h.size = size;
    h.rootOff = 0;
    h.freeHead = 0;
    h.usedBytes = 0;
    h.logStart = kHeaderSize;
    h.logSize = log_size;
    h.arenaStart = roundUp(kHeaderSize + log_size, 16);
    h.engine = static_cast<std::uint32_t>(engine);
    h.identCrc = poolIdentCrc(h);
    setHeader(h);
    // The log control block carries its own checksum; a fresh pool
    // must be sealed as "no transaction pending" or recovery would
    // read the zeroed area as media damage. The sealed empty control
    // block is engine-independent (both engines share the wire
    // format), so the undo formatter serves redo pools too.
    Txn::formatLog(*this);
}

Pool::Pool(std::string name, Backing image)
    : name_(std::move(name)), backing_(std::move(image))
{
    if (backing_.size() < sizeof(PoolHeader)) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' smaller than a pool header");
    }
    const PoolHeader h = header();
    if (h.magic != PoolHeader::kMagic) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' has bad magic");
    }
    if (h.version != PoolHeader::kVersion) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' has version " +
                    std::to_string(h.version) + ", expected " +
                    std::to_string(PoolHeader::kVersion));
    }
    if (h.size != backing_.size()) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' size field disagrees with "
                    "image length");
    }
    if (h.size > kMaxSize || h.poolId == 0) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' has impossible size or id");
    }
    // Geometry: header, then log area, then 16-byte-aligned arena,
    // all strictly inside the pool. Every later module (allocator,
    // undo log) trusts these bounds, so garbage here would otherwise
    // turn into wild offset arithmetic.
    if (h.logStart < sizeof(PoolHeader) || h.logSize < 64 ||
        h.logStart + h.logSize < h.logStart ||
        h.logStart + h.logSize > h.arenaStart ||
        h.arenaStart % 16 != 0 || h.arenaStart >= h.size) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' has corrupt log/arena "
                    "geometry");
    }
    if (h.rootOff >= h.size || h.freeHead >= h.size ||
        h.usedBytes > h.size) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' has out-of-range root, "
                    "free-list, or usage fields");
    }
    if (h.engine > static_cast<std::uint32_t>(EngineKind::Redo)) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' names unknown transaction "
                    "engine " + std::to_string(h.engine));
    }
    if (h.identCrc != poolIdentCrc(h)) {
        throw Fault(FaultKind::CorruptPool,
                    "image '" + name_ + "' fails the header identity "
                    "checksum (media damage in the header block)");
    }
}

void
Pool::setRootOff(PoolOffset off)
{
    PoolHeader h = header();
    h.rootOff = off;
    setHeader(h);
}

PoolHeader
Pool::header() const
{
    PoolHeader h;
    backing_.read(0, &h, sizeof(h));
    return h;
}

void
Pool::setHeader(const PoolHeader &h)
{
    // The header is a durability commit point: allocator free-list
    // and root-object publication must survive a crash that follows.
    backing_.write(0, &h, sizeof(h));
    backing_.flush(0, sizeof(h));
    backing_.fence();
}

} // namespace upr
