#include "nvm/redo_log.hh"

#include <algorithm>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "nvm/log_format.hh"
#include "nvm/txn_stats.hh"
#include "obs/trace_ring.hh"

namespace upr
{

namespace
{

using logfmt::LogControl;
using logfmt::LogEntry;
using logfmt::controlCrc;
using logfmt::entriesCapacity;
using logfmt::entriesStart;
using logfmt::entryCrc;
using logfmt::readControl;

/** This pool's log region speaks redo, or the caller is lost. */
void
requireRedo(const Pool &pool)
{
    if (pool.engineKind() != EngineKind::Redo) {
        throw Fault(FaultKind::EngineMismatch,
                    "pool '" + pool.name() + "' uses the " +
                    engineKindName(pool.engineKind()) +
                    " engine; its log region cannot be driven by the "
                    "redo path");
    }
}

/** One coalesced contiguous run of staged bytes. */
struct Run
{
    Bytes off;
    std::vector<std::uint8_t> bytes;
};

/** Coalesce the sparse staged byte map into contiguous runs. */
std::vector<Run>
coalesce(const std::map<Bytes, std::uint8_t> &staged)
{
    std::vector<Run> runs;
    for (const auto &[off, v] : staged) {
        if (!runs.empty() &&
            off == runs.back().off + runs.back().bytes.size()) {
            runs.back().bytes.push_back(v);
        } else {
            runs.push_back({off, {v}});
        }
    }
    return runs;
}

/**
 * The four-fence commit protocol: journal the runs, publish the
 * committed control block, apply in place, truncate. See the ordering
 * diagram in redo_log.hh for why each fence is where it is.
 *
 * @p elided runs carry proven-journal-free bytes (see noteElided):
 * they are applied write-through before fence 1 — durable by the time
 * anything could publish, never journaled.
 */
void
journalAndApply(Pool &pool, const std::vector<Run> &runs,
                const std::vector<Run> &elided)
{
    Bytes need = 0;
    for (const Run &r : runs)
        need += sizeof(LogEntry) + r.bytes.size();
    if (need > entriesCapacity(pool)) {
        throw Fault(FaultKind::PoolFull,
                    "redo journal of pool '" + pool.name() +
                    "' cannot hold the staged batch");
    }

    TxnStats &st = TxnStats::current();

    // Phase 0: proven-fresh bytes go straight in place. A crash from
    // here until fence 2 discards the batch; these bytes then sit in
    // unreachable free space (their object's allocator metadata is
    // part of the journaled remainder).
    for (const Run &r : elided) {
        pool.backing().writeThrough(r.off, r.bytes.data(),
                                    r.bytes.size());
        pool.backing().flush(r.off, r.bytes.size());
        st.redoFlushes.add(1);
        st.redoElidedRuns.add(1);
    }

    if (runs.empty()) {
        // Nothing needs the journal: one fence makes the elided
        // bytes durable and the control block stays idle.
        pool.backing().fence();
        st.redoFences.add(1);
        return;
    }

    LogControl c = readControl(pool);
    // Entries are sealed under the generation the committed control
    // block will carry; entries of earlier commits left on the media
    // beyond the new tail no longer checksum and cannot alias.
    const std::uint32_t gen = c.generation + 1;

    // Phase 1: journal. writeThrough, not write — the caller's stage
    // may still be installed, and the journal must reach the media.
    Bytes cursor = 0;
    for (const Run &r : runs) {
        LogEntry e;
        e.length = static_cast<std::uint32_t>(r.bytes.size());
        e.poolOffset = r.off;
        e.crc = entryCrc(e, gen, r.bytes.data());
        const Bytes at = entriesStart(pool) + cursor;
        pool.backing().writeThrough(at, &e, sizeof(e));
        pool.backing().writeThrough(at + sizeof(e), r.bytes.data(),
                                    r.bytes.size());
        pool.backing().flush(at, sizeof(e) + r.bytes.size());
        st.redoFlushes.add(1);
        st.redoJournalBytes.add(r.bytes.size());
        cursor += sizeof(e) + r.bytes.size();
    }
    st.redoJournalEntries.add(runs.size());
    pool.backing().fence(); // (1) journal durable (and phase 0 data)
    st.redoFences.add(1);

    // Phase 2: publish. One cache line, written atomically: after
    // this fence the batch is committed; before it, the control block
    // on media is still idle and the journal tail is dead bytes.
    c.tail = static_cast<std::uint32_t>(cursor);
    c.generation = gen;
    c.active = 1;
    logfmt::writeControl(pool, c); // (2) the atomic commit point
    st.redoFlushes.add(1);
    st.redoFences.add(1);
    obs::traceEvent(obs::EventKind::RedoCommit, pool.id(),
                    runs.size());

    // Phase 3: apply the new values in place.
    for (const Run &r : runs) {
        pool.backing().writeThrough(r.off, r.bytes.data(),
                                    r.bytes.size());
        pool.backing().flush(r.off, r.bytes.size());
        st.redoFlushes.add(1);
    }
    pool.backing().fence(); // (3) applied data durable
    st.redoFences.add(1);

    // Phase 4: eager truncation — the journal has served its purpose,
    // and an idle control block keeps recovery a no-op.
    c.tail = 0;
    c.active = 0;
    logfmt::writeControl(pool, c); // (4)
    st.redoFlushes.add(1);
    st.redoFences.add(1);
}

/**
 * Walk a committed journal and return the entry-area offsets of the
 * entries that verify (well-formed length, in-pool target, matching
 * generation-seeded checksum), stopping at the first invalid one.
 */
std::vector<Bytes>
validEntries(const Pool &pool, const LogControl &c, Bytes *end_cursor)
{
    std::vector<Bytes> entries;
    Bytes tail = c.tail;
    if (tail > entriesCapacity(pool)) {
        upr_warn("pool '%s': redo-journal tail %llu exceeds capacity "
                 "%llu; clamping", pool.name().c_str(),
                 (unsigned long long)tail,
                 (unsigned long long)entriesCapacity(pool));
        tail = entriesCapacity(pool);
    }

    Bytes cursor = 0;
    while (cursor + sizeof(LogEntry) <= tail) {
        const Bytes at = entriesStart(pool) + cursor;
        LogEntry e;
        pool.backing().read(at, &e, sizeof(e));
        if (e.length == 0 ||
            cursor + sizeof(LogEntry) + e.length > tail) {
            upr_warn("pool '%s': malformed redo entry at journal "
                     "offset %llu (length %u)", pool.name().c_str(),
                     (unsigned long long)cursor, e.length);
            break;
        }
        if (e.poolOffset > pool.size() ||
            e.length > pool.size() - e.poolOffset) {
            upr_warn("pool '%s': redo entry at journal offset %llu "
                     "names out-of-pool range [%llu,+%u)",
                     pool.name().c_str(), (unsigned long long)cursor,
                     (unsigned long long)e.poolOffset, e.length);
            break;
        }
        std::vector<std::uint8_t> payload(e.length);
        pool.backing().read(at + sizeof(e), payload.data(), e.length);
        if (entryCrc(e, c.generation, payload.data()) != e.crc) {
            upr_warn("pool '%s': redo entry at journal offset %llu "
                     "fails its checksum", pool.name().c_str(),
                     (unsigned long long)cursor);
            break;
        }
        entries.push_back(cursor);
        cursor += sizeof(LogEntry) + e.length;
    }
    if (end_cursor)
        *end_cursor = cursor;
    return entries;
}

/** Classify the journal; shared by analyze() and recoverEx(). */
Txn::RecoveryReport
classifyJournal(const Pool &pool, const LogControl &c,
                std::vector<Bytes> *entries_out)
{
    Txn::RecoveryReport r;
    if (c.crc != controlCrc(c)) {
        r.controlDamaged = true;
        return r;
    }
    r.generation = c.generation;
    r.logActive = c.active != 0;
    if (!r.logActive)
        return r;
    Bytes end = 0;
    std::vector<Bytes> entries = validEntries(pool, c, &end);
    const Bytes tail = std::min<Bytes>(c.tail, entriesCapacity(pool));
    r.entriesReplayed = entries.size();
    r.bytesDiscarded = tail > end ? tail - end : 0;
    // A committed journal admits no torn tail: every entry was fenced
    // before the control block could publish the commit, so *any*
    // shortfall is media damage and the committed data it carried is
    // lost — unlike the undo engine, no byte-probe resync is needed
    // to prove it.
    r.lostCommittedEntries = r.bytesDiscarded > 0;
    if (entries_out)
        *entries_out = std::move(entries);
    return r;
}

/** Replay @p entries forward in commit order and truncate. */
void
replayForward(Pool &pool, const std::vector<Bytes> &entries)
{
    TxnStats &st = TxnStats::current();
    for (Bytes off : entries) {
        LogEntry e;
        const Bytes at = entriesStart(pool) + off;
        pool.backing().read(at, &e, sizeof(e));
        std::vector<std::uint8_t> payload(e.length);
        pool.backing().read(at + sizeof(e), payload.data(), e.length);
        pool.backing().write(e.poolOffset, payload.data(), e.length);
        pool.backing().flush(e.poolOffset, e.length);
        st.redoFlushes.add(1);
    }
    pool.backing().fence();
    st.redoFences.add(1);

    LogControl done = readControl(pool);
    done.active = 0;
    done.tail = 0;
    logfmt::writeControl(pool, done);
    st.redoFlushes.add(1);
    st.redoFences.add(1);
    obs::traceEvent(obs::EventKind::RedoApply, pool.id(),
                    entries.size());
    obs::traceEvent(obs::EventKind::RecoveryApplied, entries.size(),
                    1);
}

} // namespace

RedoBatch::RedoBatch(Pool &pool) : pool_(pool)
{
    requireRedo(pool_);
    txnStage_.under = &batchStage_;
}

RedoBatch::~RedoBatch()
{
    // Unflushed state is DRAM only; dropping it is abort semantics
    // and needs no media writes — just release the staging slot.
    if (txnOpen_ || batchInstalled_)
        pool_.backing().setWriteStage(nullptr);
}

void
RedoBatch::begin()
{
    if (txnOpen_) {
        throw Fault(FaultKind::BadUsage,
                    "pool '" + pool_.name() +
                    "' already has an open redo transaction");
    }
    if (batchInstalled_) {
        pool_.backing().setWriteStage(nullptr);
        batchInstalled_ = false;
    }
    txnStage_.bytes.clear();
    txnElided_.clear();
    // Throws BadUsage if some other stage holds the slot (a second
    // RedoBatch on the same pool — the double-begin guard).
    pool_.backing().setWriteStage(&txnStage_);
    txnOpen_ = true;
    obs::traceEvent(obs::EventKind::TxnBegin, pool_.id());
}

void
RedoBatch::commit()
{
    upr_assert_msg(txnOpen_, "redo commit without an open transaction");
    pool_.backing().setWriteStage(nullptr);
    for (const auto &[off, v] : txnStage_.bytes)
        batchStage_.bytes[off] = v;
    txnStage_.bytes.clear();
    batchElided_.insert(txnElided_.begin(), txnElided_.end());
    txnElided_.clear();
    txnOpen_ = false;
    ++pending_;
    // Keep capturing *every* pool write while the batch is pending:
    // a direct write reaching the media ahead of the still-volatile
    // batch would invert write ordering across a crash.
    pool_.backing().setWriteStage(&batchStage_);
    batchInstalled_ = true;
    TxnStats::current().redoCommits.add(1);
    obs::traceEvent(obs::EventKind::TxnCommit, pool_.id(), pending_);
}

void
RedoBatch::abort()
{
    upr_assert_msg(txnOpen_, "redo abort without an open transaction");
    pool_.backing().setWriteStage(nullptr);
    txnStage_.bytes.clear();
    txnElided_.clear();
    txnOpen_ = false;
    if (pending_ > 0 || !batchStage_.bytes.empty()) {
        pool_.backing().setWriteStage(&batchStage_);
        batchInstalled_ = true;
    }
    obs::traceEvent(obs::EventKind::TxnAbort, pool_.id());
}

void
RedoBatch::noteElided(Bytes off, Bytes n)
{
    if (!txnOpen_)
        return;
    for (Bytes i = 0; i < n; ++i)
        txnElided_.insert(off + i);
}

void
RedoBatch::flush()
{
    if (txnOpen_) {
        throw Fault(FaultKind::BadUsage,
                    "cannot flush a redo batch while a transaction "
                    "is open on pool '" + pool_.name() + "'");
    }
    if (batchInstalled_) {
        pool_.backing().setWriteStage(nullptr);
        batchInstalled_ = false;
    }
    const std::size_t txns = pending_;
    pending_ = 0;
    if (batchStage_.bytes.empty()) {
        // Empty transactions stage nothing: their commit is free.
        obs::traceEvent(obs::EventKind::GroupFlush, pool_.id(), txns);
        return;
    }
    // Split proven-journal-free bytes from those needing an entry.
    std::map<Bytes, std::uint8_t> journal_bytes, elided_bytes;
    for (const auto &[off, v] : batchStage_.bytes) {
        if (batchElided_.count(off))
            elided_bytes[off] = v;
        else
            journal_bytes[off] = v;
    }
    std::vector<Run> runs = coalesce(journal_bytes);
    std::vector<Run> elided = coalesce(elided_bytes);
    try {
        journalAndApply(pool_, runs, elided);
    } catch (...) {
        // Journal overflow (or a quarantine fault) before anything
        // was published: the staged batch is intact, keep it.
        pending_ = txns;
        pool_.backing().setWriteStage(&batchStage_);
        batchInstalled_ = true;
        throw;
    }
    batchStage_.bytes.clear();
    batchElided_.clear();
    TxnStats::current().groupBatches.add(1);
    TxnStats::current().groupTxns.add(txns);
    obs::traceEvent(obs::EventKind::GroupFlush, pool_.id(), txns);
}

bool
RedoLog::isActive(const Pool &pool)
{
    return readControl(pool).active != 0;
}

bool
RedoLog::recover(Pool &pool)
{
    return recoverEx(pool).rolledBack;
}

Txn::RecoveryReport
RedoLog::recoverEx(Pool &pool)
{
    requireRedo(pool);
    std::vector<Bytes> entries;
    Txn::RecoveryReport r =
        classifyJournal(pool, readControl(pool), &entries);
    if (r.controlDamaged)
        return r;
    if (!r.logActive) {
        // An idle journal does not mean an untouched heap: elided
        // runs flush straight to media in phase 0, before the journal
        // publishes, so a crash there leaves a still-free block whose
        // link words hold user bytes and nothing to replay.
        Txn::canonicalizeHeap(pool);
        return r;
    }
    if (r.lostCommittedEntries) {
        // Media damage inside a committed journal: replaying the
        // valid prefix would serve a half-applied commit as fact.
        // Forensic no-touch; the caller quarantines.
        return r;
    }
    replayForward(pool, entries);
    Txn::canonicalizeHeap(pool);
    r.rolledBack = true;
    return r;
}

Txn::RecoveryReport
RedoLog::analyze(const Pool &pool)
{
    requireRedo(pool);
    return classifyJournal(pool, readControl(pool), nullptr);
}

} // namespace upr
