/**
 * @file
 * A persistent memory object pool (PMOP).
 *
 * A pool is the unit of persistence and relocation: it owns a Backing
 * whose first kHeaderSize bytes are a persistent header, followed by an
 * allocation arena managed by PoolAllocator. Everything the pool needs
 * to be reopened — allocator free list, root object offset, undo log —
 * lives *inside* the backing, expressed as pool-relative offsets, so a
 * saved pool image is a complete, relocatable object graph.
 */

#ifndef UPR_NVM_POOL_HH
#define UPR_NVM_POOL_HH

#include <string>

#include "common/fault.hh"
#include "common/types.hh"
#include "mem/backing.hh"

namespace upr
{

/**
 * Which transaction engine a pool's log region speaks. Persisted in
 * the pool header (PoolHeader::engine) so an image always knows how
 * its log must be parsed; recovery, check/repair, and the crash
 * sweeps dispatch on it (see nvm/engine.hh).
 */
enum class EngineKind : std::uint32_t
{
    /** Write-ahead undo log: pre-images logged, rollback on crash. */
    Undo = 0,
    /**
     * Redo journal: new-values staged in DRAM, journaled at commit,
     * replayed forward on crash (supports group commit).
     */
    Redo = 1,
};

/** Stable printable name of an engine kind. */
inline const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Undo: return "undo";
      case EngineKind::Redo: return "redo";
    }
    return "unknown";
}

/**
 * Persistent pool header, stored at offset 0 of the pool backing.
 * All members are fixed-width and offset-based (no virtual addresses).
 */
struct PoolHeader
{
    static constexpr std::uint64_t kMagic = 0x5550'525f'504f'4f4cULL;
    /**
     * Image format version. v2 dropped the dead logTail/logActive
     * fields (log state lives in the log area's control block; see
     * Txn); v3 added identCrc over the immutable identity fields.
     * Older images are rejected on open.
     */
    static constexpr std::uint32_t kVersion = 3;

    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t poolId;
    std::uint64_t size;          //!< total pool size in bytes
    std::uint64_t rootOff;       //!< user root object offset (0 = none)
    std::uint64_t freeHead;      //!< allocator free-list head offset
    std::uint64_t usedBytes;     //!< live payload bytes
    std::uint64_t arenaStart;    //!< first allocatable offset
    std::uint64_t logStart;      //!< undo-log area offset
    std::uint64_t logSize;       //!< undo-log area size in bytes
    /**
     * CRC32 over the *immutable* identity fields only (magic,
     * version, poolId, size, arenaStart, logStart, logSize) — never
     * over rootOff/freeHead/usedBytes, which are rewritten on every
     * commit point: the header spans two cache lines, so a crash
     * under a relaxed retention model can legitimately mix an old and
     * a new header write, and a whole-header CRC would flag those
     * recoverable images as media damage. The identity fields are
     * written once at format time; any later mismatch *is* media
     * damage, localized to the header.
     */
    std::uint32_t identCrc;
    /**
     * Transaction engine of the log region (EngineKind value; was a
     * reserved pad, so every pre-engine image reads back as Undo).
     * Folded into identCrc only when non-zero: undo images stay
     * bit-identical to the pre-engine format, while a redo pool's
     * engine field is CRC-protected — a flip in either direction
     * breaks the identity checksum.
     */
    std::uint32_t engine;
};

static_assert(sizeof(PoolHeader) == 80);

/** CRC32 over the immutable identity fields of @p h (see identCrc). */
std::uint32_t poolIdentCrc(const PoolHeader &h);

/**
 * The in-memory handle for one pool. Attachment state (the virtual
 * address it is currently mapped at, if any) is tracked by PoolManager,
 * not here: a Pool object persists across detach/attach cycles.
 */
class Pool
{
  public:
    /** Byte size reserved for the header (arena starts here). */
    static constexpr Bytes kHeaderSize = 128;
    /** Default undo-log area size. */
    static constexpr Bytes kDefaultLogSize = 512 * 1024;
    /** Pools are offset-addressed with 32 bits: hard size cap. */
    static constexpr Bytes kMaxSize = 1ULL << 32;

    /**
     * Create and format a new pool.
     *
     * @param id pool ID assigned by the manager (non-zero)
     * @param name user-visible pool name
     * @param size total size in bytes (header + log + arena)
     * @param engine transaction engine the pool's log region speaks
     */
    Pool(PoolId id, std::string name, Bytes size,
         EngineKind engine = EngineKind::Undo);

    /**
     * Adopt an existing image (reopen path). The header is fully
     * validated — magic, version, size, and log/arena geometry.
     * @throws Fault{CorruptPool} if any header field is implausible
     */
    Pool(std::string name, Backing image);

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;
    Pool(Pool &&) = default;
    Pool &operator=(Pool &&) = default;

    /** Pool ID (stable across reopen). */
    PoolId id() const { return header().poolId; }

    /** User-visible name. */
    const std::string &name() const { return name_; }

    /** Total pool size in bytes. */
    Bytes size() const { return header().size; }

    /** Root object offset (0 if unset). */
    PoolOffset rootOff() const
    {
        return static_cast<PoolOffset>(header().rootOff);
    }

    /** Transaction engine of the pool's log region. */
    EngineKind engineKind() const
    {
        return static_cast<EngineKind>(header().engine);
    }

    /** Set the root object offset. */
    void setRootOff(PoolOffset off);

    /** The pool's byte storage. */
    Backing &backing() { return backing_; }
    const Backing &backing() const { return backing_; }

    /** Read the header out of the backing. */
    PoolHeader header() const;

    /** Write the header back to the backing. */
    void setHeader(const PoolHeader &h);

  private:
    std::string name_;
    Backing backing_;
};

} // namespace upr

#endif // UPR_NVM_POOL_HH
