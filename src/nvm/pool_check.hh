/**
 * @file
 * Offline pool check/repair — the engine behind `uprpool check` and
 * PoolManager::openResilient, modeled on pmempool-check.
 *
 * checkPool() takes a raw image (possibly garbage: it never constructs
 * a Pool until the header has been vetted), diagnoses every component
 * — header identity, undo log, allocator arena, root pointer — and
 * classifies the image:
 *
 *   Clean      — nothing wrong;
 *   Repairable — damage found, and every issue has a proven repair
 *                (dry run: nothing was modified);
 *   Repaired   — same damage, repairs applied (repair = true);
 *   Corrupt    — at least one issue has no safe repair; the image
 *                must not be served writable (quarantine material).
 *
 * The repair menu is deliberately conservative: a repair is offered
 * only when redundancy *proves* the fix (header identity CRC
 * revalidates after restoring a field; free-list links recompute from
 * intact boundary tags; a pending undo log replays through its
 * checksums). Anything else — torn boundary tags, a mid-log CRC
 * failure with later valid entries (committed writes lost), an
 * out-of-pool root — is reported Corrupt, never guessed at.
 */

#ifndef UPR_NVM_POOL_CHECK_HH
#define UPR_NVM_POOL_CHECK_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/backing.hh"
#include "nvm/txn.hh"

namespace upr
{

/** Overall verdict of a checkPool() run. */
enum class CheckStatus
{
    Clean,      //!< no issues
    Repairable, //!< issues found; all have proven repairs (dry run)
    Repaired,   //!< issues found and repaired in place
    Corrupt,    //!< unrepairable damage; serve read-only at most
};

/** Stable printable name (JSON output, tests). */
inline const char *
checkStatusName(CheckStatus s)
{
    switch (s) {
      case CheckStatus::Clean:      return "clean";
      case CheckStatus::Repairable: return "repairable";
      case CheckStatus::Repaired:   return "repaired";
      case CheckStatus::Corrupt:    return "corrupt";
    }
    return "unknown";
}

/** One finding: which component, what, and whether it was fixed. */
struct CheckIssue
{
    std::string component; //!< "header", "undo-log", "arena", "root"
    std::string what;      //!< human-readable diagnosis
    bool repairable;       //!< a proven repair exists
    bool repaired;         //!< the repair ran (repair mode only)
};

/** Everything a check run learned about one image. */
struct CheckReport
{
    CheckStatus status = CheckStatus::Clean;
    std::vector<CheckIssue> issues;
    /** Log classification (valid whenever the header parsed). */
    Txn::RecoveryReport recovery;
    /** Transaction engine the (vetted) header names. */
    EngineKind engine = EngineKind::Undo;

    /** True if any issue has no proven repair. */
    bool corrupt() const { return status == CheckStatus::Corrupt; }

    /** Deterministic JSON rendering (uprpool --json). */
    std::string toJson() const;
};

/**
 * Diagnose (and with @p repair, fix) the pool image in @p image.
 *
 * Dry runs (@p repair = false) never modify @p image: repairs are
 * trial-applied to a scratch copy to *prove* they work, then
 * discarded. With @p repair = true the repaired scratch replaces
 * @p image (unless the verdict is Corrupt, in which case the image
 * is left exactly as found, for forensics).
 */
CheckReport checkPool(Backing &image, bool repair);

} // namespace upr

#endif // UPR_NVM_POOL_CHECK_HH
