/**
 * @file
 * PoolManager: the OS-analogue that creates, opens, attaches, detaches
 * and destroys persistent pools, assigns system-wide pool IDs, and maps
 * pools into the NVM half of the simulated address space.
 *
 * Attach addresses are deliberately *not* stable: with the default
 * Randomized placement, every attach lands the pool at a fresh virtual
 * address, exactly the property that forces persistent pointers to be
 * relative (paper Sec II). The manager is also the software ra2va/va2ra
 * authority backing the POLB/VALB hardware models.
 */

#ifndef UPR_NVM_POOL_MANAGER_HH
#define UPR_NVM_POOL_MANAGER_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "mem/address_space.hh"
#include "nvm/pool.hh"
#include "nvm/pool_allocator.hh"
#include "nvm/pool_check.hh"
#include "obs/metrics.hh"

namespace upr
{

/** How a resilient open left the pool. */
enum class OpenOutcome
{
    Clean,       //!< no damage, no pending recovery
    Recovered,   //!< a pending undo log was replayed, nothing else
    Repaired,    //!< media damage found and repaired before serving
    Quarantined, //!< unrepairable damage: attached read-only
    Rejected,    //!< header unusable: not even safe to attach
};

/** Stable printable name (reports, BENCH output). */
inline const char *
openOutcomeName(OpenOutcome o)
{
    switch (o) {
      case OpenOutcome::Clean:       return "clean";
      case OpenOutcome::Recovered:   return "recovered";
      case OpenOutcome::Repaired:    return "repaired";
      case OpenOutcome::Quarantined: return "quarantined";
      case OpenOutcome::Rejected:    return "rejected";
    }
    return "unknown";
}

/** Tuning of PoolManager::openResilient. */
struct ResilientOpenOptions
{
    /** Retries after the first attempt on Fault{MediaError}. */
    unsigned maxRetries = 3;
    /** Simulated backoff before the first retry; doubles per retry. */
    std::uint64_t backoffNs = 1000;
    /** Run check/repair; false = any non-clean image quarantines. */
    bool repair = true;
};

/** What a resilient open did and found. */
struct ResilientOpenReport
{
    /** The registered pool's ID; 0 when the image was rejected. */
    PoolId id = 0;
    OpenOutcome outcome = OpenOutcome::Clean;
    /** Typed cause when Quarantined/Rejected. */
    FaultKind diagnosis = FaultKind::CorruptPool;
    std::string detail;
    unsigned retries = 0;
    CheckReport check;
};

/** How attach chooses virtual addresses within the NVM half. */
enum class Placement
{
    /** Pack pools one after another (deterministic). */
    Sequential,
    /** Insert random gaps so each attach lands somewhere new. */
    Randomized,
};

/** One pool currently mapped into the address space. */
struct AttachedRange
{
    SimAddr base;
    Bytes size;
    PoolId id;
};

/** Registry and mapper for all pools of the simulated system. */
class PoolManager
{
  public:
    /**
     * @param space the process address space to map pools into
     * @param placement attach address policy
     * @param seed RNG seed for Randomized placement
     */
    explicit PoolManager(AddressSpace &space,
                         Placement placement = Placement::Randomized,
                         std::uint64_t seed = 0x9e3779b9U);

    PoolManager(const PoolManager &) = delete;
    PoolManager &operator=(const PoolManager &) = delete;

    /**
     * Create a new pool, format its allocator, and attach it. The
     * transaction engine is branded into the header for the pool's
     * lifetime (see EngineKind).
     * @return the new pool's ID
     */
    PoolId createPool(const std::string &name, Bytes size,
                      EngineKind engine = EngineKind::Undo);

    /** Re-attach a known (detached) pool by name at a fresh VA. */
    PoolId openPool(const std::string &name);

    /** Unmap the pool; its contents stay intact for a later open. */
    void detach(PoolId id);

    /** Detach (if needed) and erase the pool and its contents. */
    void destroy(PoolId id);

    /** True if the pool is currently mapped. */
    bool isAttached(PoolId id) const;

    /** True if a pool with this ID exists (attached or not). */
    bool exists(PoolId id) const { return pools_.count(id) != 0; }

    /** ID of the pool registered under @p name, or 0 if none. */
    PoolId
    idByName(const std::string &name) const
    {
        auto it = byName_.find(name);
        return it == byName_.end() ? 0 : it->second;
    }

    /** Base VA of an attached pool. */
    SimAddr baseOf(PoolId id) const;

    /** The pool object (must exist). */
    Pool &pool(PoolId id);
    const Pool &pool(PoolId id) const;

    /** The pool's allocator (must exist). */
    PoolAllocator &allocator(PoolId id);

    /**
     * Relative -> virtual translation (software path).
     * @throws Fault{BadRelativeAddress} unknown pool ID
     * @throws Fault{PoolDetached} pool exists but is unmapped (Fig 10)
     * @throws Fault{OffsetOutOfPool} offset past pool end
     */
    SimAddr ra2va(PoolId id, PoolOffset off) const;

    /**
     * Virtual -> relative translation (software path).
     * @throws Fault{UnmappedAccess} VA in the NVM half but in no
     *         attached pool
     */
    std::pair<PoolId, PoolOffset> va2ra(SimAddr va) const;

    /** Allocate @p n bytes in pool @p id; returns the payload VA. */
    SimAddr pmalloc(PoolId id, Bytes n);

    /** Free a persistent allocation by its VA. */
    void pfree(SimAddr va);

    /** Snapshot of all attached ranges (feeds the VALB/VATB models). */
    std::vector<AttachedRange> attachedRanges() const;

    /**
     * Attach epoch: bumped on every attach/detach. Hardware lookaside
     * buffers use it to invalidate stale translations.
     */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Per-pool attach generation: bumped every time pool @p id
     * attaches or detaches (0 for a pool never seen). Lets tests and
     * tools detect that a translation was cached across a relocation.
     */
    std::uint32_t generationOf(PoolId id) const;

    /** Serialize a pool's image to a host file. */
    void saveImage(PoolId id, const std::string &path) const;

    /**
     * Load a pool image from a host file, register it under @p name,
     * and attach it. The pool keeps the ID stored in its image.
     * @return the pool's ID
     */
    PoolId loadImage(const std::string &path, const std::string &name);

    /**
     * Adopt an in-memory pool image (e.g. a crash snapshot), register
     * it under @p name, and attach it. The header is validated and —
     * if the image was saved mid-transaction — crash recovery runs
     * before the pool becomes visible, so callers never observe a
     * half-applied transaction.
     * @throws Fault{CorruptPool} on a malformed image
     * @return the pool's ID (from the image)
     */
    PoolId adoptImage(Backing image, const std::string &name);

    /**
     * Graceful-degradation open: adoptImage for hostile media. Where
     * adoptImage throws on the first sign of damage, openResilient
     *
     *   - retries transient Fault{MediaError}s with exponential
     *     (simulated) backoff,
     *   - runs the pool_check diagnosis, repairing what redundancy
     *     can prove (undo-log scrub, free-list rebuild, header
     *     restore),
     *   - quarantines unrepairably damaged pools: attached read-only
     *     with a typed diagnosis, so the data stays inspectable and
     *     every *other* pool keeps serving, and
     *   - rejects only images whose header is unusable.
     *
     * Never throws for media damage (only for caller errors such as
     * a duplicate name).
     */
    ResilientOpenReport
    openResilient(Backing image, const std::string &name,
                  const ResilientOpenOptions &opts = {});

    /** True if @p id is attached read-only after damage. */
    bool isQuarantined(PoolId id) const;

    /** Statistics (attaches, detaches, translations). */
    const StatGroup &stats() const { return stats_; }

    /** Host-side pool open/attach latency in nanoseconds. */
    const obs::LatencyHistogram &openHistogram() const
    {
        return openNs_;
    }

    /** Host-side crash-recovery latency in nanoseconds. */
    const obs::LatencyHistogram &recoverHistogram() const
    {
        return recoverNs_;
    }

  private:
    /** Pick an attach base for @p size bytes. */
    SimAddr placeRange(Bytes size);

    /** Map @p id at a fresh address. */
    void attach(PoolId id);

    struct Entry
    {
        std::unique_ptr<Pool> pool;
        std::unique_ptr<PoolAllocator> allocator;
        bool attached = false;
        bool quarantined = false;
        SimAddr base = 0;
    };

    /**
     * Register an already-constructed (validated) pool and attach it.
     * Shared tail of adoptImage and the quarantine path.
     */
    PoolId registerAdopted(std::unique_ptr<Pool> loaded,
                           const std::string &name, bool quarantined);

    /**
     * One row of the flat translation table indexed directly by
     * PoolId — the software analogue of the kernel's POTB. ra2va is
     * the hottest call in the whole simulator (it sits under every
     * SW-version pointer check and every POLB walk), so the row
     * carries everything the fast path needs: no map node chase, no
     * Pool::header() re-read for the size.
     */
    struct PoolSlot
    {
        SimAddr base = 0;
        Bytes size = 0;
        /** Bumped on every attach and detach of this ID. */
        std::uint32_t generation = 0;
        bool exists = false;
        bool attached = false;
    };

    /** Slot for @p id, growing the table as needed. */
    PoolSlot &slotFor(PoolId id);

    /** Keep the slot table in sync after a state change. */
    void refreshSlot(PoolId id);

    AddressSpace &space_;
    Placement placement_;
    Rng rng_;
    PoolId nextId_ = 1;
    SimAddr bump_;
    std::uint64_t epoch_ = 0;

    std::map<PoolId, Entry> pools_;
    std::map<std::string, PoolId> byName_;

    /** Flat pool table: slots_[id] (direct index, generation-stamped). */
    std::vector<PoolSlot> slots_;
    /** Attached ranges sorted by base VA for va2ra binary search. */
    std::vector<AttachedRange> ranges_;
    /** Index into ranges_ of the last va2ra hit (MRU cache). */
    mutable std::size_t rangeMru_ = 0;

    StatGroup stats_;
    Counter attaches_;
    Counter detaches_;
    mutable Counter ra2vaCalls_;
    mutable Counter va2raCalls_;

    /** Host-side latency histograms (observability, not the model). */
    obs::LatencyHistogram openNs_;
    obs::LatencyHistogram recoverNs_;

    /** Observability federation (deregisters on destruction). */
    obs::ScopedMetricsGroup obsGroup_{stats_};
    obs::ScopedMetricsHistogram obsOpenNs_{"pools.openNs", openNs_};
    obs::ScopedMetricsHistogram obsRecoverNs_{"pools.recoverNs",
                                              recoverNs_};
};

} // namespace upr

#endif // UPR_NVM_POOL_MANAGER_HH
