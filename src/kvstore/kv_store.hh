/**
 * @file
 * The key-value store harness (paper Sec VII-A): a thin store whose
 * key -> value mapping is provided by any of the Table III index
 * structures. The harness is the "NVM application"; the index is the
 * "legacy library" being exercised.
 */

#ifndef UPR_KVSTORE_KV_STORE_HH
#define UPR_KVSTORE_KV_STORE_HH

#include "common/stats.hh"
#include "containers/avl_tree.hh"
#include "containers/hash_map.hh"
#include "containers/rb_tree.hh"
#include "containers/scapegoat_tree.hh"
#include "containers/splay_tree.hh"
#include "kvstore/ycsb.hh"

namespace upr
{

/** Outcome counters of one workload execution. */
struct KvRunResult
{
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t sets = 0;
    Cycles cycles = 0;        //!< cycles spent in the run phase
    Cycles loadCycles = 0;    //!< cycles spent loading
    std::uint64_t checksum = 0; //!< fold of all GET results (soundness)
};

/**
 * KV store over a pluggable index.
 * @tparam Index any container exposing insert/find/size
 */
template <typename Index>
class KvStore
{
  public:
    /** Build an empty store whose index allocates from @p env. */
    explicit KvStore(MemEnv env) : index_(env) {}

    /** Insert or update @p key. */
    void set(std::uint64_t key, std::uint64_t value)
    {
        index_.insert(key, value);
    }

    /** Look up @p key. */
    std::optional<std::uint64_t> get(std::uint64_t key)
    {
        return index_.find(key);
    }

    /** Records stored. */
    std::uint64_t size() const { return index_.size(); }

    /** The underlying index (for validation). */
    Index &index() { return index_; }

    /** The load phase alone. @return cycles spent loading. */
    Cycles
    loadPhase(const YcsbWorkload &workload)
    {
        Runtime &rt = currentRuntime();
        const Cycles start = rt.machine().now();
        for (const KvOp &op : workload.loadOps())
            set(op.key, op.value);
        return rt.machine().now() - start;
    }

    /** The timed run phase alone (call loadPhase first). */
    KvRunResult
    runPhase(const YcsbWorkload &workload)
    {
        Runtime &rt = currentRuntime();
        KvRunResult res;
        const Cycles run_start = rt.machine().now();
        for (const KvOp &op : workload.runOps()) {
            if (op.kind == KvOp::Kind::Get) {
                ++res.gets;
                if (auto v = get(op.key)) {
                    ++res.getHits;
                    res.checksum ^= *v;
                    res.checksum =
                        (res.checksum << 1) | (res.checksum >> 63);
                }
            } else {
                ++res.sets;
                set(op.key, op.value);
            }
        }
        res.cycles = rt.machine().now() - run_start;
        return res;
    }

    /**
     * Execute a YCSB workload: load phase then timed run phase.
     * Requires a bound RuntimeScope; cycle counts are read from the
     * scoped runtime's machine.
     */
    KvRunResult
    run(const YcsbWorkload &workload)
    {
        const Cycles load = loadPhase(workload);
        KvRunResult res = runPhase(workload);
        res.loadCycles = load;
        return res;
    }

  private:
    Index index_;
};

/** Convenience aliases for the Table III index structures. */
using KvHash = KvStore<HashMap<std::uint64_t, std::uint64_t>>;
using KvRb = KvStore<RbTree<std::uint64_t, std::uint64_t>>;
using KvSplay = KvStore<SplayTree<std::uint64_t, std::uint64_t>>;
using KvAvl = KvStore<AvlTree<std::uint64_t, std::uint64_t>>;
using KvSg = KvStore<ScapegoatTree<std::uint64_t, std::uint64_t>>;

} // namespace upr

#endif // UPR_KVSTORE_KV_STORE_HH
