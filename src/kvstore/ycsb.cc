#include "kvstore/ycsb.hh"

#include <cmath>

#include "common/logging.hh"

namespace upr
{

namespace
{

double
zetaStatic(std::uint64_t n, double theta)
{
    double z = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta);
    return z;
}

} // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n) : n_(n)
{
    upr_assert(n >= 1);
    zetan_ = zetaStatic(n_, theta_);
    zeta2_ = zetaStatic(2, theta_);
    refreshDerived();
}

void
ZipfianGenerator::refreshDerived()
{
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

void
ZipfianGenerator::growTo(std::uint64_t n)
{
    upr_assert(n >= n_);
    // Incremental zeta: add the new tail terms only.
    for (std::uint64_t i = n_ + 1; i <= n; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    n_ = n;
    refreshDerived();
}

std::uint64_t
ZipfianGenerator::sample(Rng &rng)
{
    // Gray et al. quick zipfian (as used by YCSB).
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

YcsbWorkload::YcsbWorkload(WorkloadSpec spec) : spec_(spec)
{
    upr_assert(spec_.recordCount >= 1);
    generate();
}

std::uint64_t
YcsbWorkload::keyFor(std::uint64_t i)
{
    // FNV-1a-style scramble: spreads keys over the 64-bit space so
    // index structures see unordered inserts (YCSB's "scrambled" keys,
    // 8-byte strings in the paper).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (int b = 0; b < 8; ++b) {
        h ^= (i >> (b * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
YcsbWorkload::generate()
{
    Rng rng(spec_.seed);

    // Load phase: recordCount inserts.
    load_.reserve(spec_.recordCount);
    for (std::uint64_t i = 0; i < spec_.recordCount; ++i)
        load_.push_back({KvOp::Kind::Set, keyFor(i), rng.next()});

    // Run phase.
    run_.reserve(spec_.operationCount);
    std::uint64_t inserted = spec_.recordCount;
    ZipfianGenerator zipf(spec_.recordCount);

    // Draw one existing-record index per the request distribution.
    const auto drawIdx = [&]() -> std::uint64_t {
        switch (spec_.distribution) {
          case Distribution::Uniform:
            return rng.nextBounded(inserted);
          case Distribution::Zipfian:
            return zipf.sample(rng);
          case Distribution::Latest:
            // Hot end = most recent insert.
            return inserted - 1 - zipf.sample(rng);
        }
        return 0;
    };

    for (std::uint64_t op = 0; op < spec_.operationCount; ++op) {
        // One roll partitions the operation classes; with the default
        // zero update/rmw/scan proportions the draw sequence is
        // identical to the original two-way generator.
        const double roll = rng.nextDouble();
        double edge = spec_.readProportion;
        if (roll < edge) {
            run_.push_back({KvOp::Kind::Get, keyFor(drawIdx()), 0});
            continue;
        }
        edge += spec_.updateProportion;
        if (roll < edge) {
            // Update in place: overwrite an existing record.
            run_.push_back(
                {KvOp::Kind::Set, keyFor(drawIdx()), rng.next()});
            continue;
        }
        edge += spec_.rmwProportion;
        if (roll < edge) {
            // Read-modify-write: a GET then a SET of the same key.
            const std::uint64_t key = keyFor(drawIdx());
            run_.push_back({KvOp::Kind::Get, key, 0});
            run_.push_back({KvOp::Kind::Set, key, rng.next()});
            continue;
        }
        edge += spec_.scanProportion;
        if (roll < edge) {
            // Scan: scanLength ascending logical records from a drawn
            // start (clamped to the inserted range), as GETs.
            const std::uint64_t start = drawIdx();
            for (std::uint64_t i = 0; i < spec_.scanLength; ++i) {
                const std::uint64_t idx = start + i;
                if (idx >= inserted)
                    break;
                run_.push_back({KvOp::Kind::Get, keyFor(idx), 0});
            }
            continue;
        }
        // All remaining SETs insert brand-new records (paper Sec
        // VII-A), so the index structure really updates nodes and
        // pointers.
        run_.push_back({KvOp::Kind::Set, keyFor(inserted), rng.next()});
        ++inserted;
        if (spec_.distribution == Distribution::Latest)
            zipf.growTo(inserted);
    }
}

WorkloadSpec
ycsbPreset(char workload)
{
    WorkloadSpec spec;
    spec.distribution = Distribution::Zipfian;
    switch (workload) {
      case 'a':
      case 'A':
        spec.readProportion = 0.5;
        spec.updateProportion = 0.5;
        break;
      case 'b':
      case 'B':
        spec.readProportion = 0.95;
        spec.updateProportion = 0.05;
        break;
      case 'c':
      case 'C':
        spec.readProportion = 1.0;
        break;
      case 'd':
      case 'D':
        // 95/5 read/insert over recency — the generator's default
        // (paper) shape.
        spec.readProportion = 0.95;
        spec.distribution = Distribution::Latest;
        break;
      case 'e':
      case 'E':
        spec.readProportion = 0;
        spec.scanProportion = 0.95;
        break;
      case 'f':
      case 'F':
        spec.readProportion = 0.5;
        spec.rmwProportion = 0.5;
        break;
      default:
        upr_panic("unknown YCSB preset (want A-F)");
    }
    return spec;
}

} // namespace upr
