/**
 * @file
 * YCSB-style workload generation (paper Sec VII-A).
 *
 * The paper's harness uses a preset YCSB workload: 10,000 key-value
 * pairs, 100,000 operations, 95% GET / 5% SET, 8-byte keys and
 * values, with the *latest* distribution (zipfian over recency: the
 * most recently inserted records are the most likely to be read).
 * This module reproduces that generator, deterministic from a seed.
 */

#ifndef UPR_KVSTORE_YCSB_HH
#define UPR_KVSTORE_YCSB_HH

#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace upr
{

/** Request distribution over the key space. */
enum class Distribution
{
    Uniform,
    Zipfian, //!< zipfian over the key space (hot keys anywhere)
    Latest,  //!< zipfian over recency (hot keys = newest)
};

/** One generated operation. */
struct KvOp
{
    enum class Kind : std::uint8_t { Get, Set };

    Kind kind;
    std::uint64_t key;
    std::uint64_t value; //!< for Set
};

/**
 * Workload shape; defaults = the paper's configuration (and with the
 * defaults the generated stream is bit-identical to the original
 * two-way GET/SET generator — the extra operation classes only cost
 * RNG draws when their proportions are non-zero).
 *
 * One roll partitions each operation: read, then update-in-place,
 * then read-modify-write, then scan, with the remainder inserting a
 * brand-new record (the original non-read path).
 */
struct WorkloadSpec
{
    std::uint64_t recordCount = 10'000;
    std::uint64_t operationCount = 100'000;
    double readProportion = 0.95;
    double updateProportion = 0;
    double rmwProportion = 0;
    double scanProportion = 0;
    /** Keys touched per scan operation. */
    std::uint64_t scanLength = 10;
    Distribution distribution = Distribution::Latest;
    std::uint64_t seed = 2021;
};

/**
 * The standard YCSB core-workload presets A-F, over this generator's
 * paper-scale defaults (10k records, 100k operations):
 *   A 50/50 read/update, zipfian       B 95/5 read/update, zipfian
 *   C read-only, zipfian               D 95/5 read/insert, latest
 *   E 95/5 scan/insert, zipfian        F 50/50 read/RMW, zipfian
 * @param workload 'A'..'F' (case-insensitive)
 */
WorkloadSpec ycsbPreset(char workload);

/**
 * Zipfian sampler over [0, n) with the YCSB constant theta = 0.99,
 * supporting incremental growth of n (needed by Latest).
 */
class ZipfianGenerator
{
  public:
    static constexpr double kTheta = 0.99;

    /** @param n initial item count (>= 1) */
    explicit ZipfianGenerator(std::uint64_t n);

    /** Draw one sample in [0, itemCount). */
    std::uint64_t sample(Rng &rng);

    /** Extend the item range to @p n (zeta updated incrementally). */
    void growTo(std::uint64_t n);

    std::uint64_t itemCount() const { return n_; }

  private:
    std::uint64_t n_;
    double zetan_;
    double theta_ = kTheta;
    double alpha_;
    double eta_;
    double zeta2_;

    void refreshDerived();
};

/**
 * Generate the full operation stream plus the initial load phase.
 */
class YcsbWorkload
{
  public:
    explicit YcsbWorkload(WorkloadSpec spec = {});

    /** The load phase: (key, value) pairs to insert before timing. */
    const std::vector<KvOp> &loadOps() const { return load_; }

    /** The timed run phase. */
    const std::vector<KvOp> &runOps() const { return run_; }

    const WorkloadSpec &spec() const { return spec_; }

  private:
    void generate();

    /** Key for logical record index i (scrambled to avoid ordering). */
    static std::uint64_t keyFor(std::uint64_t i);

    WorkloadSpec spec_;
    std::vector<KvOp> load_;
    std::vector<KvOp> run_;
};

} // namespace upr

#endif // UPR_KVSTORE_YCSB_HH
