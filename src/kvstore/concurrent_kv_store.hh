/**
 * @file
 * The multi-threaded key-value harness: a YCSB workload partitioned
 * by key ownership over a ShardedRuntime fleet and executed by T
 * worker threads, one per shard, against the sharded persistent hash
 * map (containers/concurrent_hash_map.hh).
 *
 * Determinism: the generated operation stream is partitioned into
 * per-shard sub-streams preserving generation order, and every
 * result a run reports — per-shard tallies, per-shard model cycles,
 * the XOR-combined checksum — depends only on those per-shard
 * sequential histories, never on the cross-shard interleaving the
 * scheduler happens to produce. A T-shard run is therefore
 * reproducible even though the threads race in real time.
 */

#ifndef UPR_KVSTORE_CONCURRENT_KV_STORE_HH
#define UPR_KVSTORE_CONCURRENT_KV_STORE_HH

#include "containers/concurrent_hash_map.hh"
#include "kvstore/kv_store.hh"

namespace upr
{

/** Per-shard and combined outcome of one threaded run. */
struct KvConcurrentResult
{
    /** One entry per shard (cycles = that shard's machine model). */
    std::vector<KvRunResult> perShard;

    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t sets = 0;
    /** XOR of per-shard checksums: schedule-independent because each
     * shard's fold covers only its own in-order history. */
    std::uint64_t checksum = 0;
    /** Makespan in modeled cycles (slowest shard's run phase). */
    Cycles maxCycles = 0;
    /** Total modeled work across shards. */
    Cycles sumCycles = 0;
};

/** KV store over a sharded fleet, one YCSB worker per shard. */
class ConcurrentKvStore
{
  public:
    explicit ConcurrentKvStore(ShardedRuntime &fleet)
        : fleet_(&fleet), map_(fleet)
    {}

    ConcurrentHashMap<std::uint64_t, std::uint64_t> &map()
    {
        return map_;
    }

    /**
     * Partition @p ops into shardCount() sub-streams by key
     * ownership, preserving order within each shard.
     */
    std::vector<std::vector<KvOp>>
    partition(const std::vector<KvOp> &ops) const
    {
        std::vector<std::vector<KvOp>> parts(fleet_->shardCount());
        for (const KvOp &op : ops)
            parts[fleet_->shardOf(op.key)].push_back(op);
        return parts;
    }

    /**
     * Execute @p workload with one thread per shard: each worker
     * binds its shard, loads its partition of the load phase, then
     * runs its partition of the run phase with per-operation durable
     * transactions.
     */
    KvConcurrentResult
    run(const YcsbWorkload &workload)
    {
        const auto load = partition(workload.loadOps());
        const auto ops = partition(workload.runOps());

        KvConcurrentResult res;
        res.perShard.resize(fleet_->shardCount());

        fleet_->runOnShards([&](unsigned s) {
            res.perShard[s] = runShard(s, load[s], ops[s]);
        });

        for (const KvRunResult &r : res.perShard) {
            res.gets += r.gets;
            res.getHits += r.getHits;
            res.sets += r.sets;
            res.checksum ^= r.checksum;
            res.maxCycles = std::max(res.maxCycles, r.cycles);
            res.sumCycles += r.cycles;
        }
        return res;
    }

    /**
     * One shard's sequential slice (the calling thread must have
     * shard @p s bound). Public so deterministic single-thread
     * drivers — the crash sweep, the T=1 bit-identity check — can
     * replay exactly what a worker would.
     */
    KvRunResult
    runShard(unsigned s, const std::vector<KvOp> &load,
             const std::vector<KvOp> &ops)
    {
        Runtime &rt = fleet_->runtime(s);
        KvRunResult r;
        const Cycles load_start = rt.machine().now();
        // Pre-size the shard's table outside any transaction: at full
        // bench scale one shard can hold every record, and the rehash
        // a load-phase insert would trigger pre-images more data than
        // the pool's undo log holds. Reserving up front keeps every
        // per-operation transaction small.
        map_.shard(s).reserve(load.size());
        for (const KvOp &op : load)
            map_.set(op.key, op.value);
        r.loadCycles = rt.machine().now() - load_start;

        const Cycles run_start = rt.machine().now();
        for (const KvOp &op : ops) {
            if (op.kind == KvOp::Kind::Get) {
                ++r.gets;
                if (auto v = map_.get(op.key)) {
                    ++r.getHits;
                    r.checksum ^= *v;
                    r.checksum = (r.checksum << 1) | (r.checksum >> 63);
                }
            } else {
                ++r.sets;
                map_.set(op.key, op.value);
            }
        }
        r.cycles = rt.machine().now() - run_start;
        return r;
    }

  private:
    ShardedRuntime *fleet_;
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map_;
};

} // namespace upr

#endif // UPR_KVSTORE_CONCURRENT_KV_STORE_HH
