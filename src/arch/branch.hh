/**
 * @file
 * gshare branch predictor model.
 *
 * The SW version of user-transparent persistent references inserts
 * dynamic-check branches at pointer operations; the paper's Fig 13
 * shows those checks inflate branch mispredictions by 6.7-2944x. To
 * reproduce that honestly, check branches are fed through this real
 * predictor with their real outcomes (a pointer that is persistent in
 * this dynamic instance and volatile in the next genuinely flips the
 * branch), rather than assigning a fixed misprediction rate.
 */

#ifndef UPR_ARCH_BRANCH_HH
#define UPR_ARCH_BRANCH_HH

#include <vector>

#include "arch/params.hh"
#include "common/bits.hh"
#include "common/stats.hh"

namespace upr
{

/** gshare: global history XOR site id indexes 2-bit counters. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const MachineParams &params)
        : tableMask_(params.branchTableEntries - 1),
          historyMask_((1ULL << params.branchHistoryBits) - 1),
          table_(params.branchTableEntries, 2 /* weakly not-taken */),
          stats_("bpred")
    {
        upr_assert(isPow2(params.branchTableEntries));
        stats_.registerCounter("branches", branches_,
                               "conditional branches executed");
        stats_.registerCounter("mispredicts", mispredicts_,
                               "branch mispredictions");
    }

    /**
     * Predict-and-update for one dynamic branch.
     *
     * @param site static identifier of the branch (acts as the PC)
     * @param taken actual outcome
     * @return true if the prediction was wrong
     */
    bool
    branch(std::uint64_t site, bool taken)
    {
        ++branches_;
        const std::size_t idx =
            static_cast<std::size_t>((site ^ history_) & tableMask_);
        std::uint8_t &ctr = table_[idx];
        const bool predicted_taken = ctr >= 2;

        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;

        history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;

        const bool wrong = predicted_taken != taken;
        if (wrong)
            ++mispredicts_;
        return wrong;
    }

    /** Zero the counters (tables stay trained). */
    void resetStats() { stats_.resetAll(); }

    std::uint64_t branches() const { return branches_.value(); }
    std::uint64_t mispredicts() const { return mispredicts_.value(); }
    const StatGroup &stats() const { return stats_; }

  private:
    std::uint64_t tableMask_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> table_;

    StatGroup stats_;
    Counter branches_;
    Counter mispredicts_;
};

} // namespace upr

#endif // UPR_ARCH_BRANCH_HH
