/**
 * @file
 * B+tree range table — the kernel-resident VATB (virtual address
 * table) of the paper, patterned after the Range-TLB range table the
 * paper cites. Maps a virtual address to the attached pool range
 * containing it. The walker cost is proportional to the tree depth,
 * which the VALB model uses to derive VAW latency.
 *
 * Mutation model matches the OS: pool attach inserts a range; pool
 * detach removes it (implemented as filtered rebuild — the kernel
 * rebuilds/patches on detach, and detaches are rare events).
 */

#ifndef UPR_ARCH_RANGE_TABLE_HH
#define UPR_ARCH_RANGE_TABLE_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace upr
{

/** One attached-range record. */
struct RangeRecord
{
    SimAddr start;
    Bytes size;
    PoolId id;
};

/** B+tree over non-overlapping [start, start+size) ranges. */
class RangeTable
{
  public:
    /** Max keys per node (fanout - 1). */
    static constexpr std::size_t kMaxKeys = 8;

    RangeTable() = default;

    /** Insert a range; ranges must not overlap. */
    void
    insert(const RangeRecord &rec)
    {
        upr_assert_msg(rec.size > 0, "empty range");
        if (!root_) {
            root_ = std::make_unique<Node>(true);
            root_->records.push_back(rec);
            ++count_;
            return;
        }
        upr_assert_msg(!lookup(rec.start) &&
                       !lookup(rec.start + rec.size - 1),
                       "overlapping range insert");
        SplitResult split = insertInto(*root_, rec);
        if (split.happened) {
            auto new_root = std::make_unique<Node>(false);
            new_root->keys.push_back(split.separator);
            new_root->children.push_back(std::move(root_));
            new_root->children.push_back(std::move(split.right));
            root_ = std::move(new_root);
        }
        ++count_;
    }

    /** Remove the range starting at @p start (filtered rebuild). */
    void
    erase(SimAddr start)
    {
        std::vector<RangeRecord> all = collect();
        const std::size_t before = all.size();
        std::erase_if(all, [start](const RangeRecord &r) {
            return r.start == start;
        });
        upr_assert_msg(all.size() + 1 == before,
                       "erase of unknown range");
        rebuild(all);
    }

    /**
     * Find the range containing @p va.
     * @param depth_out if non-null, receives the nodes visited
     * @return the record, or nullopt
     */
    std::optional<RangeRecord>
    lookup(SimAddr va, unsigned *depth_out = nullptr) const
    {
        unsigned depth = 0;
        const Node *node = root_.get();
        while (node) {
            ++depth;
            if (node->leaf) {
                for (const auto &r : node->records) {
                    if (va >= r.start && va < r.start + r.size) {
                        if (depth_out)
                            *depth_out = depth;
                        return r;
                    }
                }
                break;
            }
            std::size_t i = 0;
            while (i < node->keys.size() && va >= node->keys[i])
                ++i;
            node = node->children[i].get();
        }
        if (depth_out)
            *depth_out = depth;
        return std::nullopt;
    }

    /** All records in start order. */
    std::vector<RangeRecord>
    collect() const
    {
        std::vector<RangeRecord> out;
        collectFrom(root_.get(), out);
        return out;
    }

    /** Replace contents wholesale (attach-epoch resync). */
    void
    rebuild(const std::vector<RangeRecord> &records)
    {
        root_.reset();
        count_ = 0;
        for (const auto &r : records)
            insert(r);
    }

    /** Number of ranges stored. */
    std::size_t size() const { return count_; }

    /** Height of the tree (0 when empty). */
    unsigned
    height() const
    {
        unsigned h = 0;
        for (const Node *n = root_.get(); n;
             n = n->leaf ? nullptr : n->children.front().get()) {
            ++h;
        }
        return h;
    }

    /** Validate B+tree invariants; panics on violation. */
    void
    checkConsistency() const
    {
        if (!root_)
            return;
        SimAddr prev_end = 0;
        bool first = true;
        for (const auto &r : collect()) {
            upr_assert_msg(first || r.start >= prev_end,
                           "ranges overlap or out of order");
            prev_end = r.start + r.size;
            first = false;
        }
        checkNode(*root_, true);
    }

  private:
    struct Node
    {
        explicit Node(bool is_leaf) : leaf(is_leaf) {}

        bool leaf;
        // Leaf payload:
        std::vector<RangeRecord> records;
        // Interior payload:
        std::vector<SimAddr> keys;
        std::vector<std::unique_ptr<Node>> children;
    };

    struct SplitResult
    {
        bool happened = false;
        SimAddr separator = 0;
        std::unique_ptr<Node> right;
    };

    SplitResult
    insertInto(Node &node, const RangeRecord &rec)
    {
        if (node.leaf) {
            auto it = node.records.begin();
            while (it != node.records.end() && it->start < rec.start)
                ++it;
            node.records.insert(it, rec);
            return maybeSplitLeaf(node);
        }
        std::size_t i = 0;
        while (i < node.keys.size() && rec.start >= node.keys[i])
            ++i;
        SplitResult child_split = insertInto(*node.children[i], rec);
        if (child_split.happened) {
            node.keys.insert(node.keys.begin() + i,
                             child_split.separator);
            node.children.insert(node.children.begin() + i + 1,
                                 std::move(child_split.right));
        }
        return maybeSplitInterior(node);
    }

    SplitResult
    maybeSplitLeaf(Node &node)
    {
        SplitResult res;
        if (node.records.size() <= kMaxKeys)
            return res;
        const std::size_t mid = node.records.size() / 2;
        res.happened = true;
        res.right = std::make_unique<Node>(true);
        res.right->records.assign(node.records.begin() + mid,
                                  node.records.end());
        node.records.resize(mid);
        res.separator = res.right->records.front().start;
        return res;
    }

    SplitResult
    maybeSplitInterior(Node &node)
    {
        SplitResult res;
        if (node.keys.size() <= kMaxKeys)
            return res;
        const std::size_t mid = node.keys.size() / 2;
        res.happened = true;
        res.separator = node.keys[mid];
        res.right = std::make_unique<Node>(false);
        res.right->keys.assign(node.keys.begin() + mid + 1,
                               node.keys.end());
        for (std::size_t i = mid + 1; i < node.children.size(); ++i)
            res.right->children.push_back(std::move(node.children[i]));
        node.keys.resize(mid);
        node.children.resize(mid + 1);
        return res;
    }

    void
    collectFrom(const Node *node, std::vector<RangeRecord> &out) const
    {
        if (!node)
            return;
        if (node->leaf) {
            out.insert(out.end(), node->records.begin(),
                       node->records.end());
            return;
        }
        for (const auto &c : node->children)
            collectFrom(c.get(), out);
    }

    void
    checkNode(const Node &node, bool is_root) const
    {
        if (node.leaf) {
            upr_assert(is_root || !node.records.empty());
            upr_assert(node.records.size() <= kMaxKeys);
            return;
        }
        upr_assert(node.children.size() == node.keys.size() + 1);
        upr_assert(node.keys.size() <= kMaxKeys);
        for (std::size_t i = 0; i + 1 < node.keys.size(); ++i)
            upr_assert(node.keys[i] < node.keys[i + 1]);
        for (const auto &c : node.children)
            checkNode(*c, false);
    }

    std::unique_ptr<Node> root_;
    std::size_t count_ = 0;
};

} // namespace upr

#endif // UPR_ARCH_RANGE_TABLE_HH
