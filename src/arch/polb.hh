/**
 * @file
 * POLB — Persistent Object Lookaside Buffer (paper Sec V-A, after
 * Wang et al. [26]): a small fully-associative buffer translating a
 * pool ID to the pool's current base virtual address. Misses invoke
 * the Persistent Object Walker (POW), which walks the kernel's POTB —
 * played here by the PoolManager, the functional authority on pool
 * attachment.
 *
 * The POLB observes the manager's attach epoch and invalidates itself
 * when pools attach/detach (the hardware analogue of a shootdown).
 */

#ifndef UPR_ARCH_POLB_HH
#define UPR_ARCH_POLB_HH

#include "arch/params.hh"
#include "arch/set_assoc.hh"
#include "common/stats.hh"
#include "nvm/pool_manager.hh"

namespace upr
{

/** Result of a hardware translation step. */
struct XlatResult
{
    SimAddr value;   //!< translated address
    Cycles latency;  //!< cycles spent
    bool hit;        //!< serviced without a walk
};

/** Pool-ID -> pool-base lookaside buffer with POW backing. */
class Polb
{
  public:
    Polb(const MachineParams &params, const PoolManager &manager)
        : params_(params), manager_(manager),
          array_(1, params.polbEntries), stats_("polb")
    {
        stats_.registerCounter("accesses", accesses_, "POLB lookups");
        stats_.registerCounter("hits", hits_, "POLB hits");
        stats_.registerCounter("walks", walks_, "POW walks on miss");
    }

    /**
     * Translate relative (pool, offset) to a virtual address.
     * Faults from the walker (detached pool, bad pool ID, offset out
     * of range) propagate as upr::Fault — the hardware fault path.
     */
    XlatResult
    ra2va(PoolId id, PoolOffset off)
    {
        syncEpoch();
        ++accesses_;
        if (PoolBase *e = array_.lookup(0, id)) {
            // A POLB hit still bounds-checks the offset against the
            // cached pool size so out-of-pool offsets fault the same
            // way on the hit and miss paths.
            ++hits_;
            if (off >= e->size) {
                throw Fault(FaultKind::OffsetOutOfPool,
                            "POLB-hit bounds check");
            }
            return {e->base + off, params_.polbHitLatency, true};
        }
        ++walks_;
        const SimAddr va = manager_.ra2va(id, off);
        array_.insert(0, id, PoolBase{va - off, manager_.pool(id).size()});
        return {va, params_.polbHitLatency + params_.powLatency, false};
    }

    /** Drop all entries. */
    void invalidateAll() { array_.invalidateAll(); }

    /** Zero the counters (entries stay warm). */
    void resetStats() { stats_.resetAll(); }

    const StatGroup &stats() const { return stats_; }
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t walkCount() const { return walks_.value(); }

  private:
    void
    syncEpoch()
    {
        if (epoch_ != manager_.epoch()) {
            array_.invalidateAll();
            epoch_ = manager_.epoch();
        }
    }

    /** Cached translation: pool base VA plus size for bounds checks. */
    struct PoolBase
    {
        SimAddr base;
        Bytes size;
    };

    const MachineParams &params_;
    const PoolManager &manager_;
    SetAssocArray<PoolId, PoolBase> array_;
    std::uint64_t epoch_ = ~0ULL;

    StatGroup stats_;
    Counter accesses_;
    Counter hits_;
    Counter walks_;
};

} // namespace upr

#endif // UPR_ARCH_POLB_HH
