/**
 * @file
 * Two-level data TLB model (paper Table IV: 64-entry 4-way L1 dTLB at
 * 1 cycle; 1536-entry 4-way shared L2 TLB at 7 cycles; 30-cycle walk).
 *
 * Functional translation is the AddressSpace's job; the TLB only
 * produces latency and hit/miss statistics on page granularity.
 */

#ifndef UPR_ARCH_TLB_HH
#define UPR_ARCH_TLB_HH

#include "arch/params.hh"
#include "arch/set_assoc.hh"
#include "common/stats.hh"
#include "mem/address_space.hh"

namespace upr
{

/** One TLB level over 4 KiB pages. */
class Tlb
{
  public:
    Tlb(const std::string &name, std::uint32_t entries,
        std::uint32_t ways)
        : sets_(entries / ways),
          setMask_(isPow2(sets_) ? sets_ - 1 : 0),
          array_(sets_, ways), stats_(name)
    {
        stats_.registerCounter("hits", hits_, "TLB hits");
        stats_.registerCounter("misses", misses_, "TLB misses");
    }

    /** Probe (and fill on miss). @return true on hit. */
    bool
    access(SimAddr va)
    {
        const std::uint64_t vpn = va / Layout::kPageSize;
        // Modulo indexing with the full VPN as tag supports the
        // non-power-of-two set counts real TLBs use (384-set STLB);
        // power-of-two set counts (the L1 dTLB, probed every access)
        // take the mask instead of a hardware divide.
        const std::uint32_t set = static_cast<std::uint32_t>(
            setMask_ ? (vpn & setMask_) : vpn % sets_);
        const std::uint64_t tag = vpn;
        if (array_.lookup(set, tag)) {
            ++hits_;
            return true;
        }
        ++misses_;
        array_.insert(set, tag, Empty{});
        return false;
    }

    /** Drop all translations (context switch / shootdown). */
    void flush() { array_.invalidateAll(); }

    /** Zero the counters. */
    void resetStats() { stats_.resetAll(); }

    const StatGroup &stats() const { return stats_; }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Empty {};

    std::uint32_t sets_;
    /** sets_ - 1 when sets_ is a power of two, else 0 (use modulo). */
    std::uint32_t setMask_;
    SetAssocArray<std::uint64_t, Empty> array_;
    StatGroup stats_;
    Counter hits_;
    Counter misses_;
};

/** L1 + L2 TLB plus page walker, returning translation latency. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const MachineParams &params)
        : params_(params),
          l1_("dtlb", params.l1TlbEntries, params.l1TlbWays),
          l2_("stlb", params.l2TlbEntries, params.l2TlbWays)
    {}

    /** Translate (timing only). @return latency in cycles. */
    Cycles
    access(SimAddr va)
    {
        Cycles lat = params_.l1TlbLatency;
        if (l1_.access(va))
            return lat;
        lat += params_.l2TlbHitLatency;
        if (l2_.access(va))
            return lat;
        lat += params_.pageWalkLatency;
        ++walks_;
        return lat;
    }

    /** Drop all translations in both levels. */
    void
    flushAll()
    {
        l1_.flush();
        l2_.flush();
    }

    /** Zero all counters. */
    void
    resetStats()
    {
        l1_.resetStats();
        l2_.resetStats();
        walks_.reset();
    }

    Tlb &l1() { return l1_; }
    Tlb &l2() { return l2_; }
    std::uint64_t walks() const { return walks_.value(); }

  private:
    const MachineParams &params_;
    Tlb l1_;
    Tlb l2_;
    Counter walks_;
};

} // namespace upr

#endif // UPR_ARCH_TLB_HH
