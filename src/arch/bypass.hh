/**
 * @file
 * Non-PMO bypass predictor — the paper's stated future work:
 *
 *   "The POLB and VALB are accessed prior to the TLB hence they add
 *    small delay to the critical path of address translation in the
 *    MMU ... Some prediction mechanisms can be deployed to
 *    accelerate this, to predict non-PMO accesses that bypass the
 *    POLB/VALB, but we leave this out for future work."
 *
 * This implements that mechanism: a table of 2-bit counters indexed
 * by a hash of the page number predicts whether an access targets a
 * persistent memory object (NVM half). A confident "non-PMO"
 * prediction skips the POLB/VALB front delay; a misprediction pays
 * the delay twice (the pipeline replays the translation).
 */

#ifndef UPR_ARCH_BYPASS_HH
#define UPR_ARCH_BYPASS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_space.hh"

namespace upr
{

/** How the MMU front (POLB/VALB before the TLB) is modeled. */
enum class MmuFrontModel
{
    /** Probe delay not modeled (the calibrated default). */
    None,
    /** Every access pays the probe delay (no prediction). */
    Always,
    /** The bypass predictor skips the delay for non-PMO accesses. */
    Predicted,
};

/** Page-granular PMO/non-PMO predictor (2-bit counters). */
class BypassPredictor
{
  public:
    explicit BypassPredictor(std::uint32_t entries = 1024)
        : mask_(entries - 1), table_(entries, 1 /* weak non-PMO */),
          stats_("bypass")
    {
        stats_.registerCounter("predictions", predictions_,
                               "bypass predictions made");
        stats_.registerCounter("mispredicts", mispredicts_,
                               "PMO-ness mispredictions");
        stats_.registerCounter("bypassed", bypassed_,
                               "accesses that skipped the MMU front");
    }

    /**
     * Predict-and-update for one access.
     *
     * @param va the access address (truth = bit 47)
     * @param front_delay the POLB/VALB probe delay
     * @return extra cycles this access pays at the MMU front
     */
    Cycles
    access(SimAddr va, Cycles front_delay)
    {
        ++predictions_;
        // Strong avalanche so the NVM-half bit (bit 35 of the page
        // number) influences the index — DRAM/NVM twins must not
        // alias into one counter.
        std::uint64_t h = va / Layout::kPageSize;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 29;
        const std::size_t idx = static_cast<std::size_t>(h & mask_);
        std::uint8_t &ctr = table_[idx];
        const bool predict_pmo = ctr >= 2;
        const bool is_pmo = Layout::isNvm(va);

        if (is_pmo && ctr < 3)
            ++ctr;
        else if (!is_pmo && ctr > 0)
            --ctr;

        if (predict_pmo == is_pmo) {
            if (!is_pmo) {
                ++bypassed_;
                return 0; // correctly bypassed the front
            }
            return front_delay; // PMO access: probe is needed
        }
        ++mispredicts_;
        // Wrong either way: the pipeline replays the translation.
        return 2 * front_delay;
    }

    /** Zero the counters (table stays trained). */
    void resetStats() { stats_.resetAll(); }

    std::uint64_t bypassed() const { return bypassed_.value(); }
    std::uint64_t mispredicts() const { return mispredicts_.value(); }
    const StatGroup &stats() const { return stats_; }

  private:
    std::uint64_t mask_;
    std::vector<std::uint8_t> table_;

    StatGroup stats_;
    Counter predictions_;
    Counter mispredicts_;
    Counter bypassed_;
};

} // namespace upr

#endif // UPR_ARCH_BYPASS_HH
