#include "arch/trace.hh"

#include <cstdio>
#include <fstream>

#include "arch/branch.hh"
#include "arch/cache.hh"
#include "arch/storep_unit.hh"
#include "arch/tlb.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace upr
{

namespace
{
constexpr std::uint64_t kTraceMagic = 0x5550'525f'5452'4143ULL;
constexpr std::uint32_t kTraceVersion = 1;
} // namespace

void
Trace::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        throw Fault(FaultKind::BadUsage,
                    "cannot open '" + path + "' for writing");
    }
    const std::uint64_t magic = kTraceMagic;
    const std::uint32_t version = kTraceVersion;
    const std::uint64_t count = events_.size();
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&version),
             sizeof(version));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const TraceEvent &e : events_) {
        const std::uint8_t kind = static_cast<std::uint8_t>(e.kind);
        os.write(reinterpret_cast<const char *>(&kind), 1);
        os.write(reinterpret_cast<const char *>(&e.a), sizeof(e.a));
        os.write(reinterpret_cast<const char *>(&e.b), sizeof(e.b));
    }
    if (!os)
        throw Fault(FaultKind::BadUsage, "short write to '" + path +
                    "'");
}

Trace
Trace::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw Fault(FaultKind::BadUsage, "cannot open '" + path + "'");
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is || magic != kTraceMagic) {
        throw Fault(FaultKind::BadUsage,
                    "'" + path + "' is not a trace file");
    }
    if (version != kTraceVersion) {
        throw Fault(FaultKind::BadUsage, "trace version mismatch");
    }
    Trace t;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint8_t kind = 0;
        TraceEvent e;
        is.read(reinterpret_cast<char *>(&kind), 1);
        is.read(reinterpret_cast<char *>(&e.a), sizeof(e.a));
        is.read(reinterpret_cast<char *>(&e.b), sizeof(e.b));
        if (!is)
            throw Fault(FaultKind::BadUsage, "trace truncated");
        e.kind = static_cast<TraceEvent::Kind>(kind);
        t.append(e);
    }
    return t;
}

ReplayResult
replayTrace(const Trace &trace, const MachineParams &params)
{
    CacheHierarchy caches(params);
    TlbHierarchy tlbs(params);
    BranchPredictor bpred(params);
    StorePUnit storep(params);

    ReplayResult res;
    Cycles now = 0;

    for (const TraceEvent &e : trace.events()) {
        switch (e.kind) {
          case TraceEvent::Kind::MemAccess: {
            const SimAddr va = e.a;
            const bool write = (e.b >> 8) & 1;
            const bool nvm = Layout::isNvm(va);
            ++res.memAccesses;
            Cycles lat = tlbs.access(va);
            const std::uint64_t l1_misses_before =
                caches.l1().misses();
            lat += caches.access(va, write, nvm);
            res.l1Misses +=
                caches.l1().misses() - l1_misses_before;
            now += lat;
            break;
          }
          case TraceEvent::Kind::Branch: {
            ++res.branches;
            const bool wrong = bpred.branch(e.a, e.b != 0);
            now += 1 + (wrong ? params.branchMissPenalty : 0);
            res.branchMisses += wrong ? 1 : 0;
            break;
          }
          case TraceEvent::Kind::Tick:
            now += e.a;
            break;
          case TraceEvent::Kind::StorePIssue:
            ++res.storePs;
            now += storep.issue(now, e.a, e.b);
            break;
        }
    }
    res.cycles = now;
    return res;
}

} // namespace upr
