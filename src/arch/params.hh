/**
 * @file
 * Machine parameters of the simulated processor (paper Table IV).
 *
 * All latencies are in core cycles at 2.66 GHz. The model is a
 * blocking, in-order timing model (gem5 SimpleCPU-like): each event's
 * latency accumulates into the cycle counter. The paper used an
 * interval simulator; because every compared version executes the same
 * functional access stream and differs only in translation/check
 * events, normalized ratios are preserved under this substitution
 * (see DESIGN.md).
 */

#ifndef UPR_ARCH_PARAMS_HH
#define UPR_ARCH_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace upr
{

/** Tunable machine configuration; defaults follow paper Table IV. */
struct MachineParams
{
    // Core ----------------------------------------------------------
    double coreGhz = 2.66;
    Bytes cacheLineBytes = 64;

    /** Branch misprediction penalty (Pentium-M style predictor). */
    Cycles branchMissPenalty = 8;
    /** gshare predictor table entries (power of two). */
    std::uint32_t branchTableEntries = 4096;
    /** gshare global-history bits. */
    unsigned branchHistoryBits = 12;

    // TLBs -----------------------------------------------------------
    std::uint32_t l1TlbEntries = 64;
    std::uint32_t l1TlbWays = 4;
    Cycles l1TlbLatency = 1;

    std::uint32_t l2TlbEntries = 1536;
    std::uint32_t l2TlbWays = 4;
    Cycles l2TlbHitLatency = 7;
    /** Page-table walk cost on full TLB miss. */
    Cycles pageWalkLatency = 30;

    // Caches ---------------------------------------------------------
    Bytes l1Size = 32 * 1024;
    std::uint32_t l1Ways = 8;
    Cycles l1Latency = 4;

    Bytes l2Size = 256 * 1024;
    std::uint32_t l2Ways = 8;
    Cycles l2Latency = 12;

    Bytes l3Size = 2 * 1024 * 1024;
    std::uint32_t l3Ways = 8;
    Cycles l3Latency = 40;

    // Memory ---------------------------------------------------------
    Cycles dramLatency = 120;   //!< 45 ns at 2.66 GHz
    Cycles nvmLatency = 240;

    // UPR hardware structures (paper Table II / Sec V-A) -------------
    std::uint32_t polbEntries = 32;
    Cycles polbHitLatency = 1;
    /** Persistent-object walker (POTB walk) latency. */
    Cycles powLatency = 30;

    std::uint32_t valbEntries = 32;
    Cycles valbHitLatency = 1;
    /** Virtual-address walker (VATB walk) latency. */
    Cycles vawLatency = 30;

    /** storeP FSM buffer entries (Table II). */
    std::uint32_t storePFsmEntries = 32;

    /**
     * POLB/VALB probe delay in front of the TLB (Sec V-A notes the
     * structures "add small delay to the critical path"); applied
     * per access when the MMU front model is Always or Predicted.
     */
    Cycles mmuFrontDelay = 1;
    /** Bypass-predictor table entries (power of two). */
    std::uint32_t bypassEntries = 1024;
    /** storeP issue overhead beyond its translations. */
    Cycles storePIssueLatency = 1;

    // Software-check cost model (SW version, Sec V-B) ----------------
    /** ALU work of one determineX/determineY bit test. */
    Cycles swCheckAluLatency = 2;
    /** Straight-line overhead of a software ra2va/va2ra call. */
    Cycles swConvertLatency = 14;
    /**
     * Data-dependent branches inside the software conversion's pool
     * lookup (hash probe / binary search over pool ranges). Their
     * outcomes follow address bits, making them hard to predict —
     * the source of the SW version's misprediction blow-up (Fig 13).
     */
    unsigned swConvertBranches = 2;
    /** Explicit-API per-access software overhead [26] baseline. */
    Cycles explicitApiLatency = 2;

    /** Modeled cost of one allocator call (identical all versions). */
    Cycles allocatorLatency = 100;

    /** Modeled cost of one undo-log append inside a transaction. */
    Cycles txnLogLatency = 20;

    /**
     * Entries in the HW version's conversion-reuse model: converted
     * ra2va results parked in registers/compiler temporaries and
     * reused instead of re-translated (paper Fig 12). Power of two.
     */
    std::uint32_t reuseBufferEntries = 64;
};

} // namespace upr

#endif // UPR_ARCH_PARAMS_HH
