/**
 * @file
 * storeP functional-unit timing model (paper Fig 6).
 *
 * The unit owns a buffer of FSM entries (Table II: 32 entries x 16 B).
 * Each in-flight storeP occupies one entry while its Rs (va2ra via
 * VALB) and Rd (ra2va via POLB) translations proceed concurrently;
 * the entry frees when both complete and the store issues to the TLB.
 *
 * Because the unit has its own reservation stations, a storeP's
 * translation latency is *off* the critical path of other
 * instructions: the visible cost at issue is one cycle plus any stall
 * for a free FSM entry. That is exactly why the paper's Fig 14 finds
 * VALB latency to have marginal impact — the latency only shows up as
 * buffer occupancy.
 */

#ifndef UPR_ARCH_STOREP_UNIT_HH
#define UPR_ARCH_STOREP_UNIT_HH

#include <algorithm>
#include <vector>

#include "arch/params.hh"
#include "common/stats.hh"

namespace upr
{

/** FSM-buffer occupancy model for storeP instructions. */
class StorePUnit
{
  public:
    explicit StorePUnit(const MachineParams &params)
        : params_(params),
          completions_(params.storePFsmEntries, 0),
          stats_("storep")
    {
        stats_.registerCounter("issued", issued_,
                               "storeP instructions issued");
        stats_.registerCounter("stallCycles", stallCycles_,
                               "cycles stalled waiting for an FSM entry");
    }

    /**
     * Issue one storeP at cycle @p now.
     *
     * @param now current cycle
     * @param rs_latency Rs translation latency (0 if no conversion)
     * @param rd_latency Rd translation latency (0 if no conversion)
     * @return visible pipeline cost in cycles (issue + entry stall)
     */
    Cycles
    issue(Cycles now, Cycles rs_latency, Cycles rd_latency)
    {
        ++issued_;

        // Find a free entry; if all are busy, stall to the earliest
        // completion time.
        auto it = std::min_element(completions_.begin(),
                                   completions_.end());
        Cycles stall = 0;
        if (*it > now) {
            stall = *it - now;
            stallCycles_.add(stall);
            now = *it;
        }

        // Rs and Rd translate simultaneously (Fig 6); the entry frees
        // when the slower one completes plus the TLB handoff.
        const Cycles xlat = std::max(rs_latency, rd_latency);
        *it = now + params_.storePIssueLatency + xlat;

        return params_.storePIssueLatency + stall;
    }

    /** Highest number of entries simultaneously busy so far. */
    std::uint32_t
    busyAt(Cycles now) const
    {
        std::uint32_t busy = 0;
        for (Cycles c : completions_)
            busy += c > now ? 1 : 0;
        return busy;
    }

    /** Zero the counters. */
    void resetStats() { stats_.resetAll(); }

    std::uint64_t issuedCount() const { return issued_.value(); }
    std::uint64_t stallCycles() const { return stallCycles_.value(); }
    const StatGroup &stats() const { return stats_; }

  private:
    const MachineParams &params_;
    /** Completion cycle of the storeP occupying each FSM entry. */
    std::vector<Cycles> completions_;

    StatGroup stats_;
    Counter issued_;
    Counter stallCycles_;
};

} // namespace upr

#endif // UPR_ARCH_STOREP_UNIT_HH
