/**
 * @file
 * Trace record/replay — the Sniper "trace mode" analogue.
 *
 * A Trace captures the machine-level event stream of one run: memory
 * accesses, branches with outcomes, storeP issues, and fixed-latency
 * work. Replaying the trace re-simulates the re-parameterizable
 * components (TLBs, caches, memory latencies, branch predictor,
 * storeP FSM buffer) under a *different* MachineParams without
 * re-running the workload — replaying under the original parameters
 * reproduces the original cycle count exactly (tested).
 *
 * Translation latencies (POLB/VALB lookups) are carried as fixed
 * events: parameter sweeps over those structures still need a live
 * run (bench_sens_memory does that); sweeps over cache geometry,
 * memory latency, TLBs, and the predictor work from the trace alone.
 */

#ifndef UPR_ARCH_TRACE_HH
#define UPR_ARCH_TRACE_HH

#include <string>
#include <vector>

#include "arch/params.hh"
#include "common/types.hh"

namespace upr
{

/** One machine-level event. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        MemAccess,   //!< a = va; b = (write<<8)|accessKind
        Branch,      //!< a = site; b = taken
        Tick,        //!< a = cycles of fixed-latency work
        StorePIssue, //!< a = rs translation latency; b = rd latency
    };

    Kind kind;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** A recorded event stream with binary (de)serialization. */
class Trace
{
  public:
    /** Append one event (called by the Machine's trace hook). */
    void append(const TraceEvent &e) { events_.push_back(e); }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** Write the trace to a host file. */
    void save(const std::string &path) const;

    /** Read a trace from a host file. */
    static Trace load(const std::string &path);

  private:
    std::vector<TraceEvent> events_;
};

/** Counters produced by a replay. */
struct ReplayResult
{
    Cycles cycles = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMisses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t storePs = 0;
};

/**
 * Re-simulate a trace under @p params (fresh, cold machine state).
 */
ReplayResult replayTrace(const Trace &trace,
                         const MachineParams &params);

} // namespace upr

#endif // UPR_ARCH_TRACE_HH
