/**
 * @file
 * Machine: the composed timing model — cycle clock, branch predictor,
 * TLB and cache hierarchies, POLB, VALB, and the storeP unit — over
 * one simulated address space and pool manager. This is the
 * Snipersim-substitute; the UPR runtime (src/core/runtime.hh) drives
 * it with the memory events the instrumented workloads emit.
 */

#ifndef UPR_ARCH_MACHINE_HH
#define UPR_ARCH_MACHINE_HH

#include "arch/branch.hh"
#include "arch/bypass.hh"
#include "arch/cache.hh"
#include "arch/params.hh"
#include "arch/polb.hh"
#include "arch/storep_unit.hh"
#include "arch/trace.hh"
#include "arch/tlb.hh"
#include "arch/valb.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"
#include "obs/metrics.hh"

namespace upr
{

/** The simulated core plus its memory system. */
class Machine
{
  public:
    Machine(const MachineParams &params, AddressSpace &space,
            const PoolManager &manager)
        // Components reference params_ (our copy), declared first so
        // it outlives them even when the caller passed a temporary.
        : params_(params), space_(space),
          caches_(params_), tlbs_(params_), bpred_(params_),
          polb_(params_, manager), valb_(params_, manager),
          storePUnit_(params_), bypass_(params_.bypassEntries),
          stats_("core")
    {
        stats_.registerCounter("memAccesses", memAccesses_,
                               "data memory accesses");
        stats_.registerCounter("loads", loads_, "load instructions");
        stats_.registerCounter("stores", stores_,
                               "storeD instructions");
        stats_.registerCounter("storePs", storePs_,
                               "storeP instructions");
        stats_.registerCounter("nvmAccesses", nvmAccesses_,
                               "accesses landing in the NVM half");
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Current cycle count. */
    Cycles now() const { return now_; }

    /** Advance the clock by @p n cycles of non-memory work. */
    void
    tick(Cycles n)
    {
        now_ += n;
        if (trace_ && n > 0)
            trace_->append({TraceEvent::Kind::Tick, n, 0});
    }

    /**
     * Attach a trace to record this machine's event stream into
     * (Sniper trace mode); nullptr detaches. For exact replays,
     * attach before the first event.
     */
    void setTrace(Trace *trace) { trace_ = trace; }

    /** Select how the MMU-front probe delay is modeled. */
    void setMmuFrontModel(MmuFrontModel model) { mmuFront_ = model; }

    /** The bypass predictor (stats for the ablation bench). */
    BypassPredictor &bypass() { return bypass_; }

    /**
     * One timed data access at virtual address @p va: TLB translation
     * plus cache hierarchy plus DRAM/NVM latency. Whether the access
     * is persistent is decided by bit 47 of the VA, as in the paper.
     *
     * @param kind Load or StoreD accounting bucket
     * @return the access latency charged
     */
    enum class AccessKind { Load, StoreD, StoreP };

    Cycles
    memAccess(SimAddr va, bool is_write, AccessKind kind)
    {
        ++memAccesses_;
        switch (kind) {
          case AccessKind::Load:   ++loads_; break;
          case AccessKind::StoreD: ++stores_; break;
          case AccessKind::StoreP: ++storePs_; break;
        }
        const bool nvm = Layout::isNvm(va);
        if (nvm)
            ++nvmAccesses_;
        // MMU front: the POLB/VALB probe before the TLB (None by
        // default; Always/Predicted model the paper's future-work
        // discussion — see arch/bypass.hh).
        Cycles front = 0;
        switch (mmuFront_) {
          case MmuFrontModel::None:
            break;
          case MmuFrontModel::Always:
            front = params_.mmuFrontDelay;
            break;
          case MmuFrontModel::Predicted:
            front = bypass_.access(va, params_.mmuFrontDelay);
            break;
        }
        if (front > 0) {
            now_ += front;
            if (trace_)
                trace_->append({TraceEvent::Kind::Tick, front, 0});
        }
        if (trace_) {
            trace_->append({TraceEvent::Kind::MemAccess, va,
                            (std::uint64_t(is_write) << 8) |
                                std::uint64_t(kind)});
        }
        Cycles lat = tlbs_.access(va);
        lat += caches_.access(va, is_write, nvm);
        now_ += lat;
        return lat;
    }

    /**
     * One conditional branch with outcome @p taken at static @p site;
     * charges the misprediction penalty when the predictor is wrong.
     * @return true if mispredicted
     */
    bool
    branch(std::uint64_t site, bool taken)
    {
        if (trace_) {
            trace_->append({TraceEvent::Kind::Branch, site,
                            std::uint64_t(taken)});
        }
        const bool wrong = bpred_.branch(site, taken);
        // One cycle for the branch itself, plus penalty on a miss.
        now_ += 1 + (wrong ? params_.branchMissPenalty : 0);
        return wrong;
    }

    /**
     * Hardware ra2va at effective-address generation: POLB access.
     * Advances the clock by the lookup/walk latency.
     */
    SimAddr
    ra2vaHw(PoolId id, PoolOffset off)
    {
        const XlatResult r = polb_.ra2va(id, off);
        now_ += r.latency;
        // Translation latency replays as fixed work (see trace.hh).
        if (trace_)
            trace_->append({TraceEvent::Kind::Tick, r.latency, 0});
        return r.value;
    }

    /**
     * Hardware va2ra inside the storeP unit: VALB access. Returns the
     * translation; its latency is reported for the FSM entry, not
     * charged to the clock directly (the caller decides, because the
     * storeP unit hides it).
     */
    Va2RaResult va2raHw(SimAddr va) { return valb_.va2ra(va); }

    /**
     * POLB translation latency for a storeP's Rd operand, again
     * returned rather than charged (hidden inside the FSM entry).
     */
    XlatResult rdXlatHw(PoolId id, PoolOffset off)
    {
        return polb_.ra2va(id, off);
    }

    /** Issue a storeP through the FSM buffer; charges visible cost. */
    void
    issueStoreP(Cycles rs_latency, Cycles rd_latency)
    {
        if (trace_) {
            trace_->append({TraceEvent::Kind::StorePIssue, rs_latency,
                            rd_latency});
        }
        now_ += storePUnit_.issue(now_, rs_latency, rd_latency);
    }

    /**
     * Zero every statistic in the machine without disturbing the
     * warmed-up microarchitectural state — used at the start of a
     * measured region (the paper measures the run phase only).
     */
    void
    resetAllStats()
    {
        stats_.resetAll();
        caches_.resetStats();
        tlbs_.resetStats();
        bpred_.resetStats();
        polb_.resetStats();
        valb_.resetStats();
        storePUnit_.resetStats();
        bypass_.resetStats();
    }

    /** Reset caches/TLBs/lookaside buffers (between bench phases). */
    void
    flushAll()
    {
        caches_.flushAll();
        tlbs_.flushAll();
        polb_.invalidateAll();
        valb_.invalidateAll();
    }

    const MachineParams &params() const { return params_; }
    AddressSpace &space() { return space_; }

    CacheHierarchy &caches() { return caches_; }
    TlbHierarchy &tlbs() { return tlbs_; }
    BranchPredictor &bpred() { return bpred_; }
    Polb &polb() { return polb_; }
    Valb &valb() { return valb_; }
    StorePUnit &storePUnit() { return storePUnit_; }

    const StatGroup &stats() const { return stats_; }
    std::uint64_t memAccesses() const { return memAccesses_.value(); }
    std::uint64_t storePCount() const { return storePs_.value(); }

  private:
    const MachineParams params_;
    AddressSpace &space_;

    Cycles now_ = 0;

    CacheHierarchy caches_;
    TlbHierarchy tlbs_;
    BranchPredictor bpred_;
    Polb polb_;
    Valb valb_;
    StorePUnit storePUnit_;
    BypassPredictor bypass_;
    MmuFrontModel mmuFront_ = MmuFrontModel::None;

    /** Optional trace recording sink (not owned). */
    Trace *trace_ = nullptr;

    StatGroup stats_;
    Counter memAccesses_;
    Counter loads_;
    Counter stores_;
    Counter storePs_;
    Counter nvmAccesses_;

    /**
     * Observability federation: every architectural StatGroup joins
     * the process-wide MetricsRegistry for the machine's lifetime.
     * Declared last so they deregister before any group they name
     * is torn down.
     */
    obs::ScopedMetricsGroup obsCore_{stats_};
    obs::ScopedMetricsGroup obsL1_{caches_.l1().stats()};
    obs::ScopedMetricsGroup obsL2_{caches_.l2().stats()};
    obs::ScopedMetricsGroup obsL3_{caches_.l3().stats()};
    obs::ScopedMetricsGroup obsDtlb_{tlbs_.l1().stats()};
    obs::ScopedMetricsGroup obsStlb_{tlbs_.l2().stats()};
    obs::ScopedMetricsGroup obsBpred_{bpred_.stats()};
    obs::ScopedMetricsGroup obsPolb_{polb_.stats()};
    obs::ScopedMetricsGroup obsValb_{valb_.stats()};
    obs::ScopedMetricsGroup obsStoreP_{storePUnit_.stats()};
    obs::ScopedMetricsGroup obsBypass_{bypass_.stats()};
};

} // namespace upr

#endif // UPR_ARCH_MACHINE_HH
