/**
 * @file
 * Generic set-associative array with true-LRU replacement, shared by
 * the cache, TLB, POLB, and VALB models.
 *
 * A lookup is by Tag (whatever uniquely identifies a block/page/entry
 * after the set index is removed); each entry can carry a small
 * payload for structures that translate (POLB stores a base address).
 */

#ifndef UPR_ARCH_SET_ASSOC_HH
#define UPR_ARCH_SET_ASSOC_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"

namespace upr
{

/**
 * @tparam Tag lookup key within a set
 * @tparam Payload per-entry data (use a tiny struct or std::monostate)
 *
 * Storage is struct-of-arrays: a lookup is a probe of every simulated
 * memory access (TLB and three cache levels each scan one set), so the
 * tag scan walks a dense Tag array instead of striding over full
 * entries, and the LRU stamps and payloads are only touched on a hit.
 */
template <typename Tag, typename Payload>
class SetAssocArray
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    SetAssocArray(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), valid_(sets * ways, 0),
          tags_(sets * ways), payloads_(sets * ways),
          lastUse_(sets * ways, 0)
    {
        // Non-power-of-two set counts are allowed (e.g. the 384-set
        // L2 TLB); callers index with modulo in that case.
        upr_assert(sets >= 1);
        upr_assert(ways >= 1);
    }

    /** Number of sets. */
    std::uint32_t sets() const { return sets_; }
    /** Associativity. */
    std::uint32_t ways() const { return ways_; }

    /**
     * Look up @p tag in set @p set_index; updates LRU on hit.
     * @return payload pointer on hit, nullptr on miss
     */
    Payload *
    lookup(std::uint32_t set_index, Tag tag)
    {
        // MRU memo: consecutive lookups overwhelmingly repeat the
        // previous (set, tag) — same cache line, same page, same pool.
        // The slot is re-verified (valid bit and tag), so eviction or
        // invalidation since the last hit just falls through to the
        // scan; the memo can never return a stale entry.
        const std::size_t m = mru_;
        if (m != kMiss && mruSet_ == set_index && valid_[m] &&
            tags_[m] == tag) {
            lastUse_[m] = ++clock_;
            return &payloads_[m];
        }
        const std::size_t i = findEntry(set_index, tag);
        if (i == kMiss)
            return nullptr;
        mru_ = i;
        mruSet_ = set_index;
        lastUse_[i] = ++clock_;
        return &payloads_[i];
    }

    /** Lookup without LRU update (for inspection in tests). */
    const Payload *
    peek(std::uint32_t set_index, Tag tag) const
    {
        const std::size_t i = findEntry(set_index, tag);
        return i == kMiss ? nullptr : &payloads_[i];
    }

    /**
     * Insert @p tag with @p payload into set @p set_index, evicting
     * the LRU way if the set is full.
     *
     * @param evicted_out if non-null, receives the evicted payload
     * @return true if a valid entry was evicted
     */
    bool
    insert(std::uint32_t set_index, Tag tag, Payload payload,
           Payload *evicted_out = nullptr)
    {
        upr_assert(set_index < sets_);
        const std::size_t base = std::size_t{set_index} * ways_;
        std::size_t victim = kMiss;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::size_t i = base + w;
            if (!valid_[i]) {
                victim = i;
                break;
            }
            if (victim == kMiss || lastUse_[i] < lastUse_[victim])
                victim = i;
        }
        const bool evicted = valid_[victim] != 0;
        if (evicted && evicted_out)
            *evicted_out = payloads_[victim];
        valid_[victim] = 1;
        tags_[victim] = tag;
        payloads_[victim] = payload;
        lastUse_[victim] = ++clock_;
        return evicted;
    }

    /** Invalidate a single entry if present. */
    void
    invalidate(std::uint32_t set_index, Tag tag)
    {
        const std::size_t i = findEntry(set_index, tag);
        if (i != kMiss)
            valid_[i] = 0;
    }

    /** Invalidate everything (epoch change / shootdown). */
    void
    invalidateAll()
    {
        std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
    }

    /** Visit every valid entry: cb(set, tag, payload). */
    template <typename Cb>
    void
    forEachValid(Cb &&cb) const
    {
        for (std::uint32_t s = 0; s < sets_; ++s) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                const std::size_t i = std::size_t{s} * ways_ + w;
                if (valid_[i])
                    cb(s, tags_[i], payloads_[i]);
            }
        }
    }

    /** Count of valid entries. */
    std::uint32_t
    validCount() const
    {
        std::uint32_t n = 0;
        for (const std::uint8_t v : valid_)
            n += v ? 1 : 0;
        return n;
    }

  private:
    static constexpr std::size_t kMiss = ~std::size_t{0};

    std::size_t
    findEntry(std::uint32_t set_index, Tag tag) const
    {
        upr_assert(set_index < sets_);
        const std::size_t base = std::size_t{set_index} * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::size_t i = base + w;
            if (valid_[i] && tags_[i] == tag)
                return i;
        }
        return kMiss;
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<std::uint8_t> valid_;
    std::vector<Tag> tags_;
    std::vector<Payload> payloads_;
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t clock_ = 0;
    /** Entry index of the last lookup hit (kMiss = none yet). */
    std::size_t mru_ = kMiss;
    /** Set the MRU entry belongs to (guards against index reuse). */
    std::uint32_t mruSet_ = 0;
};

} // namespace upr

#endif // UPR_ARCH_SET_ASSOC_HH
