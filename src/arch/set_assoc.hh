/**
 * @file
 * Generic set-associative array with true-LRU replacement, shared by
 * the cache, TLB, POLB, and VALB models.
 *
 * A lookup is by Tag (whatever uniquely identifies a block/page/entry
 * after the set index is removed); each entry can carry a small
 * payload for structures that translate (POLB stores a base address).
 */

#ifndef UPR_ARCH_SET_ASSOC_HH
#define UPR_ARCH_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"

namespace upr
{

/**
 * @tparam Tag lookup key within a set
 * @tparam Payload per-entry data (use a tiny struct or std::monostate)
 */
template <typename Tag, typename Payload>
class SetAssocArray
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    SetAssocArray(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), entries_(sets * ways)
    {
        // Non-power-of-two set counts are allowed (e.g. the 384-set
        // L2 TLB); callers index with modulo in that case.
        upr_assert(sets >= 1);
        upr_assert(ways >= 1);
    }

    /** Number of sets. */
    std::uint32_t sets() const { return sets_; }
    /** Associativity. */
    std::uint32_t ways() const { return ways_; }

    /**
     * Look up @p tag in set @p set_index; updates LRU on hit.
     * @return payload pointer on hit, nullptr on miss
     */
    Payload *
    lookup(std::uint32_t set_index, Tag tag)
    {
        Entry *e = findEntry(set_index, tag);
        if (!e)
            return nullptr;
        e->lastUse = ++clock_;
        return &e->payload;
    }

    /** Lookup without LRU update (for inspection in tests). */
    const Payload *
    peek(std::uint32_t set_index, Tag tag) const
    {
        const Entry *e =
            const_cast<SetAssocArray *>(this)->findEntry(set_index, tag);
        return e ? &e->payload : nullptr;
    }

    /**
     * Insert @p tag with @p payload into set @p set_index, evicting
     * the LRU way if the set is full.
     *
     * @param evicted_out if non-null, receives the evicted payload
     * @return true if a valid entry was evicted
     */
    bool
    insert(std::uint32_t set_index, Tag tag, Payload payload,
           Payload *evicted_out = nullptr)
    {
        upr_assert(set_index < sets_);
        Entry *victim = nullptr;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Entry &e = at(set_index, w);
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lastUse < victim->lastUse)
                victim = &e;
        }
        const bool evicted = victim->valid;
        if (evicted && evicted_out)
            *evicted_out = victim->payload;
        victim->valid = true;
        victim->tag = tag;
        victim->payload = payload;
        victim->lastUse = ++clock_;
        return evicted;
    }

    /** Invalidate a single entry if present. */
    void
    invalidate(std::uint32_t set_index, Tag tag)
    {
        if (Entry *e = findEntry(set_index, tag))
            e->valid = false;
    }

    /** Invalidate everything (epoch change / shootdown). */
    void
    invalidateAll()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    /** Visit every valid entry: cb(set, tag, payload). */
    template <typename Cb>
    void
    forEachValid(Cb &&cb) const
    {
        for (std::uint32_t s = 0; s < sets_; ++s) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                const Entry &e = entryAt(s, w);
                if (e.valid)
                    cb(s, e.tag, e.payload);
            }
        }
    }

    /** Count of valid entries. */
    std::uint32_t
    validCount() const
    {
        std::uint32_t n = 0;
        for (const auto &e : entries_)
            n += e.valid ? 1 : 0;
        return n;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Tag tag{};
        Payload payload{};
        std::uint64_t lastUse = 0;
    };

    Entry &at(std::uint32_t s, std::uint32_t w)
    {
        return entries_[s * ways_ + w];
    }

    const Entry &entryAt(std::uint32_t s, std::uint32_t w) const
    {
        return entries_[s * ways_ + w];
    }

    Entry *
    findEntry(std::uint32_t set_index, Tag tag)
    {
        upr_assert(set_index < sets_);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Entry &e = at(set_index, w);
            if (e.valid && e.tag == tag)
                return &e;
        }
        return nullptr;
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
};

} // namespace upr

#endif // UPR_ARCH_SET_ASSOC_HH
