/**
 * @file
 * Single-level set-associative cache timing model (LRU, write-back
 * write-allocate). Purely a hit/miss filter: the CacheHierarchy
 * composes three of these plus memory latency.
 */

#ifndef UPR_ARCH_CACHE_HH
#define UPR_ARCH_CACHE_HH

#include <string>

#include "arch/params.hh"
#include "arch/set_assoc.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace upr
{

/** One cache level; addresses are simulated virtual addresses. */
class Cache
{
  public:
    /**
     * @param name stats group name, e.g. "l1d"
     * @param size total capacity in bytes
     * @param ways associativity
     * @param line_bytes cache line size (power of two)
     */
    Cache(const std::string &name, Bytes size, std::uint32_t ways,
          Bytes line_bytes)
        : lineBytes_(line_bytes),
          lineShift_(log2i(line_bytes)),
          sets_(static_cast<std::uint32_t>(size / (ways * line_bytes))),
          tagShift_(log2i(sets_)),
          array_(sets_, ways),
          stats_(name)
    {
        upr_assert(isPow2(line_bytes));
        upr_assert_msg(isPow2(sets_), "cache '%s': set count not pow2",
                       name.c_str());
        stats_.registerCounter("hits", hits_, "cache hits");
        stats_.registerCounter("misses", misses_, "cache misses");
        stats_.registerCounter("writebacks", writebacks_,
                               "dirty evictions");
    }

    /**
     * Access one line.
     * @param addr any byte address inside the line
     * @param is_write whether the access dirties the line
     * @return true on hit; on miss the line is filled
     */
    bool
    access(SimAddr addr, bool is_write)
    {
        const std::uint64_t line = addr >> lineShift_;
        const std::uint32_t set =
            static_cast<std::uint32_t>(line & (sets_ - 1));
        const std::uint64_t tag = line >> tagShift_;

        if (LineState *st = array_.lookup(set, tag)) {
            st->dirty |= is_write;
            ++hits_;
            return true;
        }
        ++misses_;
        LineState victim;
        if (array_.insert(set, tag, LineState{is_write}, &victim) &&
            victim.dirty) {
            ++writebacks_;
        }
        return false;
    }

    /** First byte address of the line containing @p addr. */
    SimAddr lineBase(SimAddr addr) const
    {
        return addr & ~(lineBytes_ - 1);
    }

    /** Drop all lines. */
    void flush() { array_.invalidateAll(); }

    /** Zero the counters (contents stay warm). */
    void resetStats() { stats_.resetAll(); }

    const StatGroup &stats() const { return stats_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct LineState
    {
        bool dirty = false;
    };

    Bytes lineBytes_;
    unsigned lineShift_;
    std::uint32_t sets_;
    unsigned tagShift_;
    SetAssocArray<std::uint64_t, LineState> array_;

    StatGroup stats_;
    Counter hits_;
    Counter misses_;
    Counter writebacks_;
};

/**
 * Three-level hierarchy returning total access latency and the level
 * that served the access. Latencies are additive down the hierarchy
 * (L1 probe + L2 probe + ... + memory), the usual blocking model.
 */
class CacheHierarchy
{
  public:
    /** Which component ultimately serviced an access. */
    enum class ServedBy { L1, L2, L3, Dram, Nvm };

    CacheHierarchy(const MachineParams &params)
        : params_(params),
          l1_("l1d", params.l1Size, params.l1Ways, params.cacheLineBytes),
          l2_("l2", params.l2Size, params.l2Ways, params.cacheLineBytes),
          l3_("l3", params.l3Size, params.l3Ways, params.cacheLineBytes)
    {}

    /**
     * Access memory at @p addr.
     * @param is_nvm whether the backing medium is NVM (bit 47)
     * @param served optional out-param for the serving level
     * @return access latency in cycles
     */
    Cycles
    access(SimAddr addr, bool is_write, bool is_nvm,
           ServedBy *served = nullptr)
    {
        Cycles lat = params_.l1Latency;
        if (l1_.access(addr, is_write)) {
            if (served)
                *served = ServedBy::L1;
            return lat;
        }
        lat += params_.l2Latency;
        if (l2_.access(addr, is_write)) {
            if (served)
                *served = ServedBy::L2;
            return lat;
        }
        lat += params_.l3Latency;
        if (l3_.access(addr, is_write)) {
            if (served)
                *served = ServedBy::L3;
            return lat;
        }
        if (is_nvm) {
            lat += params_.nvmLatency;
            if (served)
                *served = ServedBy::Nvm;
        } else {
            lat += params_.dramLatency;
            if (served)
                *served = ServedBy::Dram;
        }
        return lat;
    }

    /** Drop all cached state (used between benchmark phases). */
    void
    flushAll()
    {
        l1_.flush();
        l2_.flush();
        l3_.flush();
    }

    /** Zero all counters (contents stay warm). */
    void
    resetStats()
    {
        l1_.resetStats();
        l2_.resetStats();
        l3_.resetStats();
    }

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }

  private:
    const MachineParams &params_;
    Cache l1_;
    Cache l2_;
    Cache l3_;
};

} // namespace upr

#endif // UPR_ARCH_CACHE_HH
