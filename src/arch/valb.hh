/**
 * @file
 * VALB — Virtual Address Lookaside Buffer (paper Sec V-A): the new
 * structure this paper adds to the MMU. It translates a virtual
 * address to the pool ID of the attached pool containing it, in two
 * steps: retrieve the PMO ID for the VA (TCAM-style longest-prefix /
 * range match over 32 entries), then concatenate the ID with the
 * VA's offset portion. Misses invoke the Virtual Address Walker (VAW)
 * over the kernel VATB, a B-tree range table (arch/range_table.hh),
 * which is kept in sync with the PoolManager's attach epoch.
 *
 * Entry format per the paper: PMO start address (64 b), PMO size
 * (32 b), PMO ID (32 b) — 12 bytes of tag+payload, 32 entries.
 */

#ifndef UPR_ARCH_VALB_HH
#define UPR_ARCH_VALB_HH

#include <cstdio>
#include <vector>

#include "arch/params.hh"
#include "arch/range_table.hh"
#include "common/stats.hh"
#include "nvm/pool_manager.hh"

namespace upr
{

/** Result of a VA -> (pool, offset) hardware translation. */
struct Va2RaResult
{
    PoolId id;
    PoolOffset offset;
    Cycles latency;
    bool hit;
};

/** VA -> pool-ID range-matching lookaside buffer with VAW backing. */
class Valb
{
  public:
    Valb(const MachineParams &params, const PoolManager &manager)
        : params_(params), manager_(manager),
          entries_(params.valbEntries), stats_("valb")
    {
        stats_.registerCounter("accesses", accesses_, "VALB lookups");
        stats_.registerCounter("hits", hits_, "VALB hits");
        stats_.registerCounter("walks", walks_, "VAW walks on miss");
    }

    /**
     * Translate a virtual address inside an attached pool to its
     * relative (pool, offset) form.
     * @throws Fault{UnmappedAccess} if no attached pool contains @p va
     */
    Va2RaResult
    va2ra(SimAddr va)
    {
        syncEpoch();
        ++accesses_;

        // TCAM-style parallel range match over all entries.
        for (auto &e : entries_) {
            if (e.valid && va >= e.start && va < e.start + e.size) {
                e.lastUse = ++clock_;
                ++hits_;
                return {e.id, static_cast<PoolOffset>(va - e.start),
                        params_.valbHitLatency, true};
            }
        }

        // Miss: VAW walks the VATB B-tree range table.
        ++walks_;
        const auto rec = vatb_.lookup(va);
        if (!rec) {
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          "va 0x%llx in no attached pool",
                          (unsigned long long)va);
            throw Fault(FaultKind::UnmappedAccess, buf);
        }
        fill(*rec);
        return {rec->id, static_cast<PoolOffset>(va - rec->start),
                params_.valbHitLatency + params_.vawLatency, false};
    }

    /** Drop all entries. */
    void
    invalidateAll()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    /** Zero the counters (entries stay warm). */
    void resetStats() { stats_.resetAll(); }

    /** The backing VATB (exposed for tests/benches). */
    const RangeTable &vatb() const { return vatb_; }

    const StatGroup &stats() const { return stats_; }
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t walkCount() const { return walks_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        SimAddr start = 0;      //!< PMO start address (64 bits)
        std::uint32_t size32 = 0;
        PoolId id = 0;          //!< PMO ID (32 bits)
        Bytes size = 0;
        std::uint64_t lastUse = 0;
    };

    void
    syncEpoch()
    {
        if (epoch_ != manager_.epoch()) {
            invalidateAll();
            std::vector<RangeRecord> records;
            for (const auto &r : manager_.attachedRanges())
                records.push_back({r.base, r.size, r.id});
            vatb_.rebuild(records);
            epoch_ = manager_.epoch();
        }
    }

    void
    fill(const RangeRecord &rec)
    {
        Entry *victim = nullptr;
        for (auto &e : entries_) {
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lastUse < victim->lastUse)
                victim = &e;
        }
        victim->valid = true;
        victim->start = rec.start;
        victim->size = rec.size;
        victim->size32 = static_cast<std::uint32_t>(rec.size);
        victim->id = rec.id;
        victim->lastUse = ++clock_;
    }

    const MachineParams &params_;
    const PoolManager &manager_;
    std::vector<Entry> entries_;
    RangeTable vatb_;
    std::uint64_t epoch_ = ~0ULL;
    std::uint64_t clock_ = 0;

    StatGroup stats_;
    Counter accesses_;
    Counter hits_;
    Counter walks_;
};

} // namespace upr

#endif // UPR_ARCH_VALB_HH
