/**
 * @file
 * Dense column-major matrix — the Armadillo stand-in for the paper's
 * KNN case study (Sec VII-E).
 *
 * A Matrix is deliberately the paper's "compound data structure": a
 * small metadata block (dimensions, layout flag) holding a *pointer to
 * a data array*. Either or both may live on NVM; the internal pointer
 * is exactly the kind of thing the explicit persistent-reference
 * model forces library changes for, and user-transparent references
 * handle unchanged.
 */

#ifndef UPR_ML_MATRIX_HH
#define UPR_ML_MATRIX_HH

#include <vector>

#include "common/logging.hh"
#include "containers/memory_env.hh"

namespace upr
{

/** Column-major matrix of doubles in simulated memory. */
class Matrix
{
  public:
    /** The persistent metadata block (the compound structure). */
    struct Meta
    {
        Ptr<double> data;
        std::uint64_t rows = 0;
        std::uint64_t cols = 0;
        std::uint32_t colMajor = 1;
        std::uint32_t pad = 0;
    };

    /** Allocate a zeroed rows x cols matrix in @p env. */
    Matrix(MemEnv env, std::uint64_t rows, std::uint64_t cols)
        : env_(env), meta_(env_.alloc<Meta>())
    {
        upr_assert(rows > 0 && cols > 0);
        Ptr<double> data = env_.allocArray<double>(rows * cols);
        meta_.setPtrField(&Meta::data, data);
        meta_.setField(&Meta::rows, rows);
        meta_.setField(&Meta::cols, cols);
        meta_.setField(&Meta::colMajor, std::uint32_t{1});
    }

    /** Attach to an existing matrix (e.g. from a reopened pool). */
    Matrix(MemEnv env, Ptr<Meta> meta) : env_(env), meta_(meta) {}

    /** The metadata pointer (store as pool root to persist). */
    Ptr<Meta> meta() const { return meta_; }

    std::uint64_t rows() const { return meta_.field(&Meta::rows); }
    std::uint64_t cols() const { return meta_.field(&Meta::cols); }

    /** Element read (timed simulated access). */
    double
    at(std::uint64_t r, std::uint64_t c) const
    {
        return elem(r, c).load();
    }

    /** Element write. */
    void
    set(std::uint64_t r, std::uint64_t c, double v)
    {
        elem(r, c).store(v);
    }

    /** Fill every element with @p v. */
    void
    fill(double v)
    {
        const std::uint64_t n = rows() * cols();
        Ptr<double> data = meta_.ptrField(&Meta::data);
        for (std::uint64_t i = 0; i < n; ++i)
            (data + static_cast<std::ptrdiff_t>(i)).store(v);
    }

    /** Bulk-load from a host row-major buffer. */
    void
    loadRowMajor(const std::vector<double> &values)
    {
        upr_assert(values.size() == rows() * cols());
        for (std::uint64_t r = 0; r < rows(); ++r)
            for (std::uint64_t c = 0; c < cols(); ++c)
                set(r, c, values[r * cols() + c]);
    }

    /** Copy out to a host row-major buffer. */
    std::vector<double>
    toRowMajor() const
    {
        std::vector<double> out(rows() * cols());
        for (std::uint64_t r = 0; r < rows(); ++r)
            for (std::uint64_t c = 0; c < cols(); ++c)
                out[r * cols() + c] = at(r, c);
        return out;
    }

    /** this + other (same shape), result allocated in @p env. */
    Matrix
    add(const Matrix &other, MemEnv env) const
    {
        upr_assert(rows() == other.rows() && cols() == other.cols());
        Matrix out(env, rows(), cols());
        for (std::uint64_t c = 0; c < cols(); ++c)
            for (std::uint64_t r = 0; r < rows(); ++r)
                out.set(r, c, at(r, c) + other.at(r, c));
        return out;
    }

    /** this * other (naive), result allocated in @p env. */
    Matrix
    multiply(const Matrix &other, MemEnv env) const
    {
        upr_assert(cols() == other.rows());
        Matrix out(env, rows(), other.cols());
        for (std::uint64_t j = 0; j < other.cols(); ++j) {
            for (std::uint64_t i = 0; i < rows(); ++i) {
                double acc = 0;
                for (std::uint64_t k = 0; k < cols(); ++k)
                    acc += at(i, k) * other.at(k, j);
                out.set(i, j, acc);
            }
        }
        return out;
    }

    /** Transposed copy in @p env. */
    Matrix
    transpose(MemEnv env) const
    {
        Matrix out(env, cols(), rows());
        for (std::uint64_t c = 0; c < cols(); ++c)
            for (std::uint64_t r = 0; r < rows(); ++r)
                out.set(c, r, at(r, c));
        return out;
    }

    /** Squared Euclidean distance between row @p a and row @p b of
     * possibly different matrices with equal column counts. */
    static double
    rowDistance2(const Matrix &ma, std::uint64_t a, const Matrix &mb,
                 std::uint64_t b)
    {
        upr_assert(ma.cols() == mb.cols());
        double acc = 0;
        for (std::uint64_t c = 0; c < ma.cols(); ++c) {
            const double d = ma.at(a, c) - mb.at(b, c);
            acc += d * d;
        }
        return acc;
    }

    /** Release the data array and metadata back to the environment. */
    void
    destroy()
    {
        env_.free(meta_.ptrField(&Meta::data));
        env_.free(meta_);
        meta_ = Ptr<Meta>::null();
    }

  private:
    Ptr<double>
    elem(std::uint64_t r, std::uint64_t c) const
    {
        upr_assert_msg(r < rows() && c < cols(),
                       "matrix index (%llu,%llu) out of %llux%llu",
                       (unsigned long long)r, (unsigned long long)c,
                       (unsigned long long)rows(),
                       (unsigned long long)cols());
        Ptr<double> data = meta_.ptrField(&Meta::data);
        // Column-major: element (r, c) at index c*rows + r.
        return data + static_cast<std::ptrdiff_t>(c * rows() + r);
    }

    MemEnv env_;
    Ptr<Meta> meta_;
};

} // namespace upr

#endif // UPR_ML_MATRIX_HH
