#include "ml/iris.hh"

#include "common/random.hh"

namespace upr
{

namespace
{

/** Published per-class feature means of iris. */
const double kMeans[3][4] = {
    {5.006, 3.428, 1.462, 0.246}, // setosa
    {5.936, 2.770, 4.260, 1.326}, // versicolor
    {6.588, 2.974, 5.552, 2.026}, // virginica
};

/** Published per-class feature standard deviations of iris. */
const double kStds[3][4] = {
    {0.352, 0.379, 0.174, 0.105},
    {0.516, 0.314, 0.470, 0.198},
    {0.636, 0.322, 0.552, 0.275},
};

} // namespace

IrisDataset
IrisDataset::make(std::uint64_t seed)
{
    IrisDataset ds;
    ds.features.reserve(kSamples * kFeatures);
    ds.labels.reserve(kSamples);
    Rng rng(seed);

    for (int cls = 0; cls < kClasses; ++cls) {
        for (int i = 0; i < 50; ++i) {
            for (std::uint64_t f = 0; f < kFeatures; ++f) {
                double v = kMeans[cls][f] +
                           kStds[cls][f] * rng.nextGaussian();
                if (v < 0.05)
                    v = 0.05; // measurements are positive lengths
                ds.features.push_back(v);
            }
            ds.labels.push_back(cls);
        }
    }
    return ds;
}

Matrix
IrisDataset::toMatrix(MemEnv env) const
{
    Matrix m(env, kSamples, kFeatures);
    m.loadRowMajor(features);
    return m;
}

} // namespace upr
