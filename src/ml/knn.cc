#include "ml/knn.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace upr
{

Knn::Result
Knn::search(const Matrix &reference, const Matrix &query,
            std::uint64_t k, Placement place)
{
    const std::uint64_t n = reference.rows();
    const std::uint64_t m = query.rows();
    upr_assert_msg(k >= 1 && k <= n, "k out of range");
    upr_assert(reference.cols() == query.cols());

    // Internal scratch: the full m x n distance matrix (the paper's
    // "one for internal uses").
    Matrix scratch(place.scratch, m, n);
    for (std::uint64_t q = 0; q < m; ++q)
        for (std::uint64_t r = 0; r < n; ++r)
            scratch.set(q, r,
                        Matrix::rowDistance2(query, q, reference, r));

    Matrix neighbors(place.neighborsOut, k, m);
    Matrix distances(place.distancesOut, k, m);

    // Selection per query: partial sort of (distance, index).
    std::vector<std::pair<double, std::uint64_t>> order(n);
    for (std::uint64_t q = 0; q < m; ++q) {
        for (std::uint64_t r = 0; r < n; ++r)
            order[r] = {scratch.at(q, r), r};
        std::partial_sort(order.begin(), order.begin() + k,
                          order.end());
        for (std::uint64_t i = 0; i < k; ++i) {
            neighbors.set(i, q, static_cast<double>(order[i].second));
            distances.set(i, q, order[i].first);
        }
    }

    scratch.destroy();
    return Result{neighbors, distances};
}

std::vector<int>
Knn::classify(const Matrix &neighbors, const std::vector<int> &labels)
{
    const std::uint64_t k = neighbors.rows();
    const std::uint64_t m = neighbors.cols();
    std::vector<int> out(m);
    for (std::uint64_t q = 0; q < m; ++q) {
        std::map<int, int> votes;
        for (std::uint64_t i = 0; i < k; ++i) {
            const auto idx =
                static_cast<std::size_t>(neighbors.at(i, q));
            upr_assert(idx < labels.size());
            ++votes[labels[idx]];
        }
        int best_label = 0, best_count = -1;
        for (auto [label, count] : votes) {
            if (count > best_count) {
                best_label = label;
                best_count = count;
            }
        }
        out[q] = best_label;
    }
    return out;
}

} // namespace upr
