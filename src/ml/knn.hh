/**
 * @file
 * k-nearest-neighbors (the MLPack-stand-in of the paper's Sec VII-E
 * case study).
 *
 * The algorithm uses four matrices, mirroring the paper: the
 * reference (input) matrix, an internal distance scratch matrix, and
 * two outputs (neighbor indices and distances). Each can be placed on
 * DRAM or NVM independently — 16 placement combinations, all served
 * by this one implementation.
 */

#ifndef UPR_ML_KNN_HH
#define UPR_ML_KNN_HH

#include <cstdint>
#include <vector>

#include "ml/matrix.hh"

namespace upr
{

/** KNN search over row-vectors with squared Euclidean distance. */
class Knn
{
  public:
    /**
     * Matrix placement for the four matrices of the case study.
     * Defaults reproduce the paper: all persisted except the input.
     */
    struct Placement
    {
        MemEnv input;
        MemEnv scratch;
        MemEnv neighborsOut;
        MemEnv distancesOut;
    };

    /** Outputs: k x nQueries indices and distances (paper layout). */
    struct Result
    {
        Matrix neighbors;
        Matrix distances;
    };

    /**
     * Find the @p k nearest reference rows for every query row.
     *
     * @param reference n x d matrix of reference points
     * @param query m x d matrix of query points
     * @param k neighbor count (k <= n)
     * @param place where the four matrices live
     */
    static Result search(const Matrix &reference, const Matrix &query,
                         std::uint64_t k, Placement place);

    /**
     * Majority-vote classification using precomputed neighbors.
     *
     * @param neighbors k x m neighbor-index matrix from search()
     * @param labels per-reference-row class labels
     * @return per-query predicted labels
     */
    static std::vector<int>
    classify(const Matrix &neighbors, const std::vector<int> &labels);
};

} // namespace upr

#endif // UPR_ML_KNN_HH
