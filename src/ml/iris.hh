/**
 * @file
 * Iris-statistics dataset (case-study input, Sec VII-E).
 *
 * SUBSTITUTION (see DESIGN.md): the paper uses the UCI iris dataset
 * (150 samples, 4 features, 3 classes of 50). Offline, we synthesize
 * a dataset with the same shape from the published per-class feature
 * means and standard deviations of iris, deterministically from a
 * seed — the classifier-relevant structure (one linearly separable
 * class, two mildly overlapping ones) is preserved.
 */

#ifndef UPR_ML_IRIS_HH
#define UPR_ML_IRIS_HH

#include <vector>

#include "ml/matrix.hh"

namespace upr
{

/** Host-side dataset: features row-major, labels 0/1/2. */
struct IrisDataset
{
    static constexpr std::uint64_t kSamples = 150;
    static constexpr std::uint64_t kFeatures = 4;
    static constexpr int kClasses = 3;

    std::vector<double> features; //!< kSamples x kFeatures row-major
    std::vector<int> labels;      //!< kSamples entries

    /** Build the deterministic iris-statistics dataset. */
    static IrisDataset make(std::uint64_t seed = 4);

    /** Upload the features into a Matrix in @p env. */
    Matrix toMatrix(MemEnv env) const;
};

} // namespace upr

#endif // UPR_ML_IRIS_HH
