/** @file Integration tests for the composed Machine timing model. */

#include <gtest/gtest.h>

#include "arch/machine.hh"

using namespace upr;

class MachineTest : public ::testing::Test
{
  protected:
    MachineTest() : mgr(space, Placement::Sequential)
    {
        pool = mgr.createPool("m", 1 << 20);
    }

    MachineParams params;
    AddressSpace space;
    PoolManager mgr;
    PoolId pool = 0;
};

TEST_F(MachineTest, ClockStartsAtZeroAndTicks)
{
    Machine m(params, space, mgr);
    EXPECT_EQ(m.now(), 0u);
    m.tick(25);
    EXPECT_EQ(m.now(), 25u);
}

TEST_F(MachineTest, MemAccessChargesTlbPlusCachePlusMemory)
{
    Machine m(params, space, mgr);
    const SimAddr dram = 0x2000;
    const Cycles cold = m.memAccess(dram, false,
                                    Machine::AccessKind::Load);
    // Cold: L1 TLB miss chain + full cache ladder + DRAM.
    EXPECT_EQ(cold, (params.l1TlbLatency + params.l2TlbHitLatency +
                     params.pageWalkLatency) +
                    (params.l1Latency + params.l2Latency +
                     params.l3Latency + params.dramLatency));
    // Warm: L1 TLB + L1 cache.
    const Cycles warm = m.memAccess(dram, false,
                                    Machine::AccessKind::Load);
    EXPECT_EQ(warm, params.l1TlbLatency + params.l1Latency);
    EXPECT_EQ(m.now(), cold + warm);
}

TEST_F(MachineTest, NvmAccessCostsMore)
{
    Machine m(params, space, mgr);
    const Cycles dram = m.memAccess(0x3000, false,
                                    Machine::AccessKind::Load);
    const Cycles nvm = m.memAccess(mgr.baseOf(pool), false,
                                   Machine::AccessKind::Load);
    EXPECT_EQ(nvm - dram, params.nvmLatency - params.dramLatency);
}

TEST_F(MachineTest, AccessKindsCounted)
{
    Machine m(params, space, mgr);
    m.memAccess(0x1000, false, Machine::AccessKind::Load);
    m.memAccess(0x1000, true, Machine::AccessKind::StoreD);
    m.memAccess(0x1000, true, Machine::AccessKind::StoreP);
    m.memAccess(0x1000, true, Machine::AccessKind::StoreP);
    EXPECT_EQ(m.memAccesses(), 4u);
    EXPECT_EQ(m.stats().lookup("loads"), 1u);
    EXPECT_EQ(m.stats().lookup("stores"), 1u);
    EXPECT_EQ(m.storePCount(), 2u);
}

TEST_F(MachineTest, Ra2VaHwChargesPolb)
{
    Machine m(params, space, mgr);
    const Cycles before = m.now();
    const SimAddr va = m.ra2vaHw(pool, 0x40);
    EXPECT_EQ(va, mgr.baseOf(pool) + 0x40);
    // Miss: hit latency + walk.
    EXPECT_EQ(m.now() - before,
              params.polbHitLatency + params.powLatency);
    const Cycles mid = m.now();
    m.ra2vaHw(pool, 0x80);
    EXPECT_EQ(m.now() - mid, params.polbHitLatency);
}

TEST_F(MachineTest, IssueStorePVisibleCostIsSmall)
{
    Machine m(params, space, mgr);
    const Cycles before = m.now();
    m.issueStoreP(/*rs=*/30, /*rd=*/0);
    // The 30-cycle translation hides in the FSM buffer.
    EXPECT_EQ(m.now() - before, params.storePIssueLatency);
}

TEST_F(MachineTest, BranchChargesPenaltyOnMiss)
{
    Machine m(params, space, mgr);
    // Train then measure a predictable branch.
    for (int i = 0; i < 64; ++i)
        m.branch(9, true);
    const Cycles before = m.now();
    m.branch(9, true);
    EXPECT_EQ(m.now() - before, 1u); // predicted: 1 cycle
}

TEST_F(MachineTest, ResetAllStatsKeepsWarmState)
{
    Machine m(params, space, mgr);
    m.memAccess(0x4000, false, Machine::AccessKind::Load);
    m.ra2vaHw(pool, 0);
    m.resetAllStats();

    EXPECT_EQ(m.memAccesses(), 0u);
    EXPECT_EQ(m.polb().accesses(), 0u);
    EXPECT_EQ(m.bpred().branches(), 0u);

    // But the microarchitectural state is still warm: the same line
    // hits L1 and the same pool ID hits the POLB.
    const Cycles lat = m.memAccess(0x4000, false,
                                   Machine::AccessKind::Load);
    EXPECT_EQ(lat, params.l1TlbLatency + params.l1Latency);
    const Cycles before = m.now();
    m.ra2vaHw(pool, 8);
    EXPECT_EQ(m.now() - before, params.polbHitLatency);
}

TEST_F(MachineTest, FlushAllForcesColdAccesses)
{
    Machine m(params, space, mgr);
    m.memAccess(0x5000, false, Machine::AccessKind::Load);
    m.flushAll();
    const Cycles lat = m.memAccess(0x5000, false,
                                   Machine::AccessKind::Load);
    EXPECT_GT(lat, params.l1TlbLatency + params.l1Latency);
}
