/** @file Unit tests for the Backing persistence domain (shadowed
 * writes, flush/fence discipline, crash images, random retention),
 * the overflow-safe bounds checks, CRC-32, and the CrashInjector. */

#include <gtest/gtest.h>

#include "common/crc32.hh"
#include "crash/crash_injector.hh"
#include "mem/backing.hh"

using namespace upr;

namespace
{

std::uint64_t
peek(const std::vector<std::uint8_t> &image, Bytes off)
{
    std::uint64_t v;
    std::memcpy(&v, image.data() + off, sizeof(v));
    return v;
}

void
poke(Backing &b, Bytes off, std::uint64_t v)
{
    b.write(off, &v, sizeof(v));
}

std::uint64_t
read64(const Backing &b, Bytes off)
{
    std::uint64_t v;
    b.read(off, &v, sizeof(v));
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------

TEST(Crc32, KnownVector)
{
    // The canonical IEEE check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, ChainingMatchesOneShot)
{
    const char data[] = "the quick brown fox";
    const std::uint32_t whole = crc32(data, sizeof(data));
    std::uint32_t chained = crc32(data, 7);
    chained = crc32Update(chained, data + 7, sizeof(data) - 7);
    EXPECT_EQ(chained, whole);
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::uint8_t buf[64] = {};
    const std::uint32_t clean = crc32(buf, sizeof(buf));
    buf[40] ^= 0x10;
    EXPECT_NE(crc32(buf, sizeof(buf)), clean);
}

// ---------------------------------------------------------------------
// Overflow-safe bounds
// ---------------------------------------------------------------------

TEST(BackingBounds, HostileOffsetWrapsAreFaultsNotCorruption)
{
    Backing b(4096);
    std::uint8_t buf[16] = {};
    // off + n wraps around 2^64 and would pass a naive `off + n <=
    // size` check.
    const Bytes evil = ~0ULL - 7;
    EXPECT_THROW(b.read(evil, buf, 16), Fault);
    EXPECT_THROW(b.write(evil, buf, 16), Fault);
    try {
        b.read(evil, buf, 16);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
    }
}

TEST(BackingBounds, PastEndFaults)
{
    Backing b(128);
    std::uint8_t buf[16] = {};
    EXPECT_THROW(b.read(120, buf, 16), Fault);
    EXPECT_THROW(b.write(128, buf, 1), Fault);
    EXPECT_NO_THROW(b.read(112, buf, 16)); // exactly at the end
}

// ---------------------------------------------------------------------
// Persistence domain
// ---------------------------------------------------------------------

TEST(PersistenceDomain, DisabledWritesAreInstantlyDurable)
{
    Backing b(4096);
    poke(b, 0, 42);
    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    EXPECT_EQ(peek(image, 0), 42u);
}

TEST(PersistenceDomain, UnflushedWriteIsLostUnfencedFlushIsLost)
{
    Backing b(4096);
    poke(b, 0, 1);
    poke(b, 64, 2);
    b.enablePersistenceDomain(); // both become durable baseline

    poke(b, 0, 111);              // dirty, never flushed
    poke(b, 64, 222);
    b.flush(64, 8);               // staged, never fenced

    // The program sees the new values...
    EXPECT_EQ(read64(b, 0), 111u);
    EXPECT_EQ(read64(b, 64), 222u);
    // ...but a crash keeps neither.
    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    EXPECT_EQ(peek(image, 0), 1u);
    EXPECT_EQ(peek(image, 64), 2u);
}

TEST(PersistenceDomain, FlushFenceMakesLinesDurable)
{
    Backing b(4096);
    b.enablePersistenceDomain();
    poke(b, 0, 7);
    poke(b, 128, 9);
    b.flush(0, 8);
    b.fence();

    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    EXPECT_EQ(peek(image, 0), 7u);   // fenced: survives
    EXPECT_EQ(peek(image, 128), 0u); // dirty: lost
    EXPECT_EQ(b.pendingLines(), 1u); // only line 2 still pending
}

TEST(PersistenceDomain, RewriteAfterFlushNeedsAnotherFlush)
{
    Backing b(4096);
    b.enablePersistenceDomain();
    poke(b, 0, 1);
    b.flush(0, 8);
    poke(b, 0, 2); // dirties the line again: the staged CLWB is stale
    b.fence();
    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    EXPECT_EQ(peek(image, 0), 0u);
    b.flush(0, 8);
    b.fence();
    EXPECT_EQ(peek(b.crashImage(CrashMode::DiscardUnfenced), 0), 2u);
}

TEST(PersistenceDomain, FlushCoversWholeLinesOfTheRange)
{
    Backing b(4096);
    b.enablePersistenceDomain();
    // One 16-byte write straddling the line-0/line-1 boundary.
    std::uint8_t buf[16];
    std::memset(buf, 0xAB, sizeof(buf));
    b.write(56, buf, sizeof(buf));
    b.flush(56, 16);
    b.fence();
    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    EXPECT_EQ(image[56], 0xABu);
    EXPECT_EQ(image[71], 0xABu);
    EXPECT_EQ(b.pendingLines(), 0u);
}

TEST(PersistenceDomain, RetainRandomIsLineGranularAndDeterministic)
{
    Backing b(64 * 64);
    b.enablePersistenceDomain();
    // Dirty 64 full lines with a recognizable pattern.
    for (Bytes line = 0; line < 64; ++line) {
        std::uint8_t buf[64];
        std::memset(buf, 0x11 + static_cast<int>(line % 7), sizeof(buf));
        b.write(line * 64, buf, sizeof(buf));
    }

    const auto a = b.crashImage(CrashMode::RetainRandom, 12345);
    const auto c = b.crashImage(CrashMode::RetainRandom, 12345);
    EXPECT_EQ(a, c); // deterministic per seed

    const auto d = b.crashImage(CrashMode::RetainRandom, 54321);
    EXPECT_NE(a, d); // but seed-dependent

    // Every line is atomically old (all zero) or new (all pattern);
    // with 64 lines at p=1/2, both outcomes occur.
    std::size_t kept = 0;
    for (Bytes line = 0; line < 64; ++line) {
        const std::uint8_t first = a[line * 64];
        for (Bytes i = 0; i < 64; ++i)
            ASSERT_EQ(a[line * 64 + i], first) << "torn line " << line;
        if (first != 0)
            ++kept;
    }
    EXPECT_GT(kept, 0u);
    EXPECT_LT(kept, 64u);
}

TEST(PersistenceDomain, GrowExtendsDurableImage)
{
    Backing b(128);
    b.enablePersistenceDomain();
    b.grow(4096);
    poke(b, 4000, 5);
    b.flush(4000, 8);
    b.fence();
    const auto image = b.crashImage(CrashMode::DiscardUnfenced);
    ASSERT_EQ(image.size(), 4096u);
    EXPECT_EQ(peek(image, 4000), 5u);
}

TEST(PersistenceDomain, AssignResetsTheDomain)
{
    Backing b(128);
    b.enablePersistenceDomain();
    poke(b, 0, 9);
    b.assign(std::vector<std::uint8_t>(256, 0xFF));
    EXPECT_FALSE(b.persistenceDomainEnabled());
    EXPECT_EQ(b.size(), 256u);
}

// ---------------------------------------------------------------------
// CrashInjector
// ---------------------------------------------------------------------

TEST(CrashInjector, CountsWritesFlushesAndFences)
{
    Backing b(4096);
    CrashInjector inj;
    inj.arm(0);
    inj.attach(b);
    poke(b, 0, 1);   // event 1
    b.flush(0, 8);   // event 2
    b.fence();       // event 3
    EXPECT_EQ(inj.events(), 3u);
    EXPECT_FALSE(inj.fired());
}

TEST(CrashInjector, CrashEventNeverTakesEffect)
{
    Backing b(4096);
    b.enablePersistenceDomain();
    CrashInjector inj;
    inj.arm(4);
    inj.attach(b);

    poke(b, 0, 1);
    b.flush(0, 8);
    b.fence(); // value 1 durable
    bool crashed = false;
    try {
        poke(b, 0, 2); // event 4: the write "never happened"
    } catch (const SimulatedCrash &c) {
        crashed = true;
        EXPECT_EQ(c.at(), 4u);
    }
    ASSERT_TRUE(crashed);
    ASSERT_TRUE(inj.fired());
    EXPECT_EQ(peek(inj.image(), 0), 1u);
    // The live backing never saw the aborted write either.
    EXPECT_EQ(read64(b, 0), 1u);
}

TEST(CrashInjector, DisarmsAfterFiringSoUnwindingCanWrite)
{
    Backing b(4096);
    CrashInjector inj;
    inj.arm(1);
    inj.attach(b);
    EXPECT_THROW(poke(b, 0, 1), SimulatedCrash);
    // Post-crash writes (e.g. destructors rolling back) must not
    // crash again or perturb the captured image.
    EXPECT_NO_THROW(poke(b, 8, 2));
    EXPECT_EQ(inj.events(), 1u);
    EXPECT_EQ(peek(inj.image(), 8), 0u);
}

TEST(CrashInjector, FenceCrashLeavesStagedLinesVolatile)
{
    Backing b(4096);
    CrashInjector inj;
    inj.arm(3);
    inj.attach(b);
    poke(b, 0, 7); // event 1
    b.flush(0, 8); // event 2
    EXPECT_THROW(b.fence(), SimulatedCrash); // event 3: no SFENCE
    EXPECT_EQ(peek(inj.image(), 0), 0u);
}

