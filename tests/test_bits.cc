/** @file Unit tests for common/bits.hh. */

#include <gtest/gtest.h>

#include "common/bits.hh"

using namespace upr;

TEST(Bits, BitExtract)
{
    EXPECT_TRUE(bit(0x8000000000000000ULL, 63));
    EXPECT_FALSE(bit(0x7fffffffffffffffULL, 63));
    EXPECT_TRUE(bit(1ULL << 47, 47));
    EXPECT_FALSE(bit(0, 0));
    EXPECT_TRUE(bit(1, 0));
}

TEST(Bits, SetBit)
{
    EXPECT_EQ(setBit(0, 63, true), 0x8000000000000000ULL);
    EXPECT_EQ(setBit(~0ULL, 63, false), 0x7fffffffffffffffULL);
    EXPECT_EQ(setBit(0, 0, true), 1ULL);
    // Setting an already-set bit is idempotent.
    EXPECT_EQ(setBit(1, 0, true), 1ULL);
}

TEST(Bits, BitsOfExtractsField)
{
    const std::uint64_t v = 0xDEADBEEFCAFEF00DULL;
    EXPECT_EQ(bitsOf(v, 63, 32), 0xDEADBEEFULL);
    EXPECT_EQ(bitsOf(v, 31, 0), 0xCAFEF00DULL);
    EXPECT_EQ(bitsOf(v, 63, 0), v);
    EXPECT_EQ(bitsOf(v, 3, 0), 0xDULL);
}

TEST(Bits, InsertBitsRoundTrips)
{
    std::uint64_t v = 0;
    v = insertBits(v, 62, 32, 0x7fffffff);
    v = insertBits(v, 31, 0, 0x12345678);
    EXPECT_EQ(bitsOf(v, 62, 32), 0x7fffffffULL);
    EXPECT_EQ(bitsOf(v, 31, 0), 0x12345678ULL);
    // Overwriting a field replaces it completely.
    v = insertBits(v, 62, 32, 0x1);
    EXPECT_EQ(bitsOf(v, 62, 32), 0x1ULL);
    EXPECT_EQ(bitsOf(v, 31, 0), 0x12345678ULL);
}

TEST(Bits, InsertBitsMasksOversizedField)
{
    // Field wider than the slot is truncated, not smeared.
    const std::uint64_t v = insertBits(0, 7, 4, 0xfff);
    EXPECT_EQ(v, 0xf0ULL);
}

TEST(Bits, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1ULL << 47));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(12));
}

TEST(Bits, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(log2i(1ULL << 63), 63u);
}

TEST(Bits, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 16), 0ULL);
    EXPECT_EQ(roundUp(1, 16), 16ULL);
    EXPECT_EQ(roundUp(16, 16), 16ULL);
    EXPECT_EQ(roundUp(17, 16), 32ULL);
    EXPECT_EQ(roundDown(17, 16), 16ULL);
    EXPECT_EQ(roundDown(15, 16), 0ULL);
    EXPECT_EQ(roundDown(4096, 4096), 4096ULL);
}
