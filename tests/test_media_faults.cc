/** @file Unit tests of the deterministic media-fault model: seeded
 * reproducibility, per-region target discovery on real pool images,
 * and the per-kind corruption semantics (flips, stuck-at cells,
 * reverts to the never-reached-media baseline). */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "faultinject/media_fault.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

/** A formatted 1 MiB pool image (header + sealed log + arena tags). */
std::vector<std::uint8_t>
freshImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("m", 1 << 20);
    mgr.pmalloc(id, 64);
    mgr.pmalloc(id, 128);
    return mgr.pool(id).backing().raw().toVector();
}

/** Same pool, crashed mid-transaction with three logged entries. */
std::vector<std::uint8_t>
midTxnImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("m", 1 << 20);
    Pool &p = mgr.pool(id);
    const PoolOffset a =
        static_cast<PoolOffset>(p.header().arenaStart) + 64;
    Txn txn(p);
    txn.recordWrite(a, 8);
    txn.recordWrite(a + 16, 8);
    txn.recordWrite(a + 32, 8);
    std::vector<std::uint8_t> image = p.backing().raw().toVector();
    txn.commit();
    return image;
}

MediaFaultSpec
spec(MediaFaultKind kind, FaultRegion region, std::uint64_t seed)
{
    MediaFaultSpec s;
    s.kind = kind;
    s.region = region;
    s.seed = seed;
    return s;
}

} // namespace

TEST(MediaFaults, TargetsCoverEveryRegionOfARealImage)
{
    const auto clean = freshImage();
    EXPECT_FALSE(
        MediaFaultModel::targets(clean, FaultRegion::Header).empty());
    EXPECT_FALSE(
        MediaFaultModel::targets(clean, FaultRegion::AllocatorMeta)
            .empty());

    // A quiescent log exposes only its control block; a mid-txn log
    // additionally exposes every valid entry except the torn-tail
    // candidate (the final one).
    const auto quiescent =
        MediaFaultModel::targets(clean, FaultRegion::UndoLog);
    const auto pending =
        MediaFaultModel::targets(midTxnImage(), FaultRegion::UndoLog);
    EXPECT_FALSE(quiescent.empty());
    EXPECT_GT(pending.size(), quiescent.size());
}

TEST(MediaFaults, GarbageImageYieldsNoTargets)
{
    // Log and arena walks gate on a parseable header; the header
    // region itself stays targetable (damaging a damaged header is
    // fair game) unless the image cannot even hold one.
    std::vector<std::uint8_t> garbage(4096, 0xAB);
    EXPECT_TRUE(
        MediaFaultModel::targets(garbage, FaultRegion::UndoLog)
            .empty());
    EXPECT_TRUE(
        MediaFaultModel::targets(garbage, FaultRegion::AllocatorMeta)
            .empty());

    std::vector<std::uint8_t> runt(16, 0xAB);
    for (auto region : {FaultRegion::Header, FaultRegion::UndoLog,
                        FaultRegion::AllocatorMeta}) {
        EXPECT_TRUE(MediaFaultModel::targets(runt, region).empty())
            << faultRegionName(region);
    }
}

TEST(MediaFaults, SameSeedSameDamageDifferentSeedDifferentDamage)
{
    const auto clean = freshImage();
    const auto targets =
        MediaFaultModel::targets(clean, FaultRegion::AllocatorMeta);
    ASSERT_FALSE(targets.empty());

    auto run = [&](std::uint64_t seed) {
        std::vector<std::uint8_t> image = clean;
        MediaFaultModel model(
            spec(MediaFaultKind::BitFlip, FaultRegion::AllocatorMeta,
                 seed));
        const auto hits = model.corrupt(image, clean, targets);
        return std::make_pair(image, hits);
    };

    const auto [img_a, hits_a] = run(7);
    const auto [img_b, hits_b] = run(7);
    EXPECT_EQ(img_a, img_b);
    ASSERT_EQ(hits_a.size(), hits_b.size());
    for (std::size_t i = 0; i < hits_a.size(); ++i) {
        EXPECT_EQ(hits_a[i].offset, hits_b[i].offset);
        EXPECT_EQ(hits_a[i].after, hits_b[i].after);
    }

    // Not a fixed-point corruptor: some other seed must pick
    // different bytes (or flip them differently).
    bool differs = false;
    for (std::uint64_t seed = 8; seed < 24 && !differs; ++seed)
        differs = run(seed).first != img_a;
    EXPECT_TRUE(differs);
}

TEST(MediaFaults, ReportedBytesMatchTheImageEdits)
{
    const auto clean = freshImage();
    const auto targets =
        MediaFaultModel::targets(clean, FaultRegion::Header);
    ASSERT_FALSE(targets.empty());

    std::vector<std::uint8_t> image = clean;
    MediaFaultModel model(spec(MediaFaultKind::MultiBitFlip,
                               FaultRegion::Header, 3));
    const auto hits = model.corrupt(image, clean, targets);
    ASSERT_FALSE(hits.empty());

    std::vector<std::uint8_t> replay = clean;
    for (const InjectedByte &b : hits) {
        EXPECT_EQ(replay[b.offset], b.before);
        EXPECT_NE(b.before, b.after);
        replay[b.offset] = b.after;
    }
    EXPECT_EQ(replay, image);
}

TEST(MediaFaults, StuckAtCellsReadAllZeroOrAllOne)
{
    const auto clean = freshImage();
    const auto targets =
        MediaFaultModel::targets(clean, FaultRegion::Header);

    std::vector<std::uint8_t> zeroed = clean;
    MediaFaultModel(spec(MediaFaultKind::StuckAtZero,
                         FaultRegion::Header, 5))
        .corrupt(zeroed, clean, targets);
    for (Bytes off = 0; off < zeroed.size(); ++off) {
        if (zeroed[off] != clean[off]) {
            EXPECT_EQ(zeroed[off], 0x00u) << "offset " << off;
        }
    }

    std::vector<std::uint8_t> stuck = clean;
    MediaFaultModel(spec(MediaFaultKind::StuckAtOne,
                         FaultRegion::Header, 5))
        .corrupt(stuck, clean, targets);
    for (Bytes off = 0; off < stuck.size(); ++off) {
        if (stuck[off] != clean[off]) {
            EXPECT_EQ(stuck[off], 0xFFu) << "offset " << off;
        }
    }
}

TEST(MediaFaults, TornAndDroppedRevertTowardTheBaseline)
{
    // Baseline = what media held before the damaged writes: damage
    // may only ever replace live bytes with baseline bytes.
    const auto image0 = midTxnImage();
    std::vector<std::uint8_t> baseline = image0;
    for (auto &b : baseline)
        b = static_cast<std::uint8_t>(~b);

    const auto targets =
        MediaFaultModel::targets(image0, FaultRegion::UndoLog);
    ASSERT_FALSE(targets.empty());

    for (auto kind :
         {MediaFaultKind::TornLine, MediaFaultKind::DroppedFlush}) {
        std::vector<std::uint8_t> image = image0;
        const auto hits =
            MediaFaultModel(spec(kind, FaultRegion::UndoLog, 11))
                .corrupt(image, baseline, targets);
        ASSERT_FALSE(hits.empty()) << mediaFaultKindName(kind);
        for (const InjectedByte &b : hits) {
            EXPECT_EQ(b.after, baseline[b.offset])
                << mediaFaultKindName(kind) << " offset " << b.offset;
        }
    }
}
