/** @file Tests for the ordered cursor API on the search trees:
 * forward/backward walks agree with a std::map oracle, seek() is a
 * lower-bound cursor, and cursors survive pool relocation. */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "containers/avl_tree.hh"
#include "containers/rb_tree.hh"
#include "containers/scapegoat_tree.hh"
#include "containers/splay_tree.hh"

using namespace upr;

template <typename TreeT>
class TreeCursors : public ::testing::Test
{
  protected:
    template <typename Body>
    void
    withTree(Body &&body)
    {
        Runtime::Config cfg;
        cfg.version = Version::Hw;
        cfg.seed = 29;
        Runtime rt(cfg);
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("c", 32 << 20);
        TreeT tree(MemEnv::persistentEnv(rt, pool));
        body(rt, pool, tree);
    }
};

using TreeTypes = ::testing::Types<
    RbTree<std::uint64_t, std::uint64_t>,
    AvlTree<std::uint64_t, std::uint64_t>,
    SplayTree<std::uint64_t, std::uint64_t>,
    ScapegoatTree<std::uint64_t, std::uint64_t>>;

TYPED_TEST_SUITE(TreeCursors, TreeTypes);

TYPED_TEST(TreeCursors, EmptyTreeHasNoCursor)
{
    this->withTree([](Runtime &, PoolId, TypeParam &tree) {
        EXPECT_FALSE(tree.first().valid());
        EXPECT_FALSE(tree.last().valid());
        EXPECT_FALSE(tree.seek(0).valid());
    });
}

TYPED_TEST(TreeCursors, ForwardWalkIsSorted)
{
    this->withTree([](Runtime &, PoolId, TypeParam &tree) {
        std::map<std::uint64_t, std::uint64_t> oracle;
        Rng rng(3);
        for (int i = 0; i < 500; ++i) {
            const std::uint64_t k = rng.nextBounded(10'000);
            tree.insert(k, k * 2);
            oracle[k] = k * 2;
        }

        auto want = oracle.begin();
        for (auto c = tree.first(); c.valid(); c = tree.next(c)) {
            ASSERT_NE(want, oracle.end());
            ASSERT_EQ(tree.keyAt(c), want->first);
            ASSERT_EQ(tree.valueAt(c), want->second);
            ++want;
        }
        EXPECT_EQ(want, oracle.end());
    });
}

TYPED_TEST(TreeCursors, BackwardWalkIsReverseSorted)
{
    this->withTree([](Runtime &, PoolId, TypeParam &tree) {
        for (std::uint64_t k : {5, 1, 9, 3, 7})
            tree.insert(k, k);
        std::vector<std::uint64_t> got;
        for (auto c = tree.last(); c.valid(); ) {
            got.push_back(tree.keyAt(c));
            if (c == tree.first())
                break;
            c = tree.prev(c);
        }
        EXPECT_EQ(got, (std::vector<std::uint64_t>{9, 7, 5, 3, 1}));
    });
}

TYPED_TEST(TreeCursors, NextPrevRoundTrip)
{
    this->withTree([](Runtime &, PoolId, TypeParam &tree) {
        for (std::uint64_t k = 0; k < 64; ++k)
            tree.insert(k * 3, k);
        auto c = tree.first();
        for (int i = 0; i < 30; ++i)
            c = tree.next(c);
        auto back = tree.prev(tree.next(c));
        EXPECT_EQ(tree.keyAt(back), tree.keyAt(c));
    });
}

TYPED_TEST(TreeCursors, SeekIsLowerBound)
{
    this->withTree([](Runtime &, PoolId, TypeParam &tree) {
        for (std::uint64_t k : {10, 20, 30})
            tree.insert(k, k);
        EXPECT_EQ(tree.keyAt(tree.seek(10)), 10u);
        EXPECT_EQ(tree.keyAt(tree.seek(11)), 20u);
        EXPECT_EQ(tree.keyAt(tree.seek(0)), 10u);
        EXPECT_FALSE(tree.seek(31).valid());

        // Cursor continuation from a seek: range scan [11, 30].
        std::vector<std::uint64_t> got;
        for (auto c = tree.seek(11); c.valid(); c = tree.next(c))
            got.push_back(tree.keyAt(c));
        EXPECT_EQ(got, (std::vector<std::uint64_t>{20, 30}));
    });
}

TYPED_TEST(TreeCursors, CursorsWorkAfterRelocation)
{
    this->withTree([](Runtime &rt, PoolId pool, TypeParam &tree) {
        for (std::uint64_t k = 0; k < 100; ++k)
            tree.insert(k, k);
        rt.pools().detach(pool);
        rt.pools().openPool("c");

        std::uint64_t count = 0, prev = 0;
        for (auto c = tree.first(); c.valid(); c = tree.next(c)) {
            const std::uint64_t k = tree.keyAt(c);
            if (count > 0) {
                ASSERT_GT(k, prev);
            }
            prev = k;
            ++count;
        }
        EXPECT_EQ(count, 100u);
    });
}
