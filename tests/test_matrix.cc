/** @file Tests for the matrix library across versions and media. */

#include <gtest/gtest.h>

#include "ml/matrix.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 21;
    return cfg;
}

} // namespace

class MatrixVersions : public ::testing::TestWithParam<Version>
{
  protected:
    MatrixVersions()
        : rt(makeConfig(GetParam())), scope(rt),
          pool(rt.createPool("m", 16 << 20)),
          penv(MemEnv::persistentEnv(rt, pool)),
          venv(MemEnv::volatileEnv(rt))
    {}

    Runtime rt;
    RuntimeScope scope;
    PoolId pool;
    MemEnv penv;
    MemEnv venv;
};

TEST_P(MatrixVersions, ElementRoundTrip)
{
    Matrix m(penv, 3, 4);
    m.set(0, 0, 1.5);
    m.set(2, 3, -7.25);
    EXPECT_EQ(m.at(0, 0), 1.5);
    EXPECT_EQ(m.at(2, 3), -7.25);
    EXPECT_EQ(m.at(1, 1), 0.0); // zero-initialized
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
}

TEST_P(MatrixVersions, RowMajorRoundTrip)
{
    Matrix m(penv, 2, 3);
    m.loadRowMajor({1, 2, 3, 4, 5, 6});
    EXPECT_EQ(m.at(0, 1), 2.0);
    EXPECT_EQ(m.at(1, 2), 6.0);
    EXPECT_EQ(m.toRowMajor(), (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST_P(MatrixVersions, AddAndMultiply)
{
    Matrix a(penv, 2, 2);
    Matrix b(venv, 2, 2); // mixed media on purpose
    a.loadRowMajor({1, 2, 3, 4});
    b.loadRowMajor({5, 6, 7, 8});

    Matrix sum = a.add(b, venv);
    EXPECT_EQ(sum.toRowMajor(), (std::vector<double>{6, 8, 10, 12}));

    Matrix prod = a.multiply(b, penv);
    EXPECT_EQ(prod.toRowMajor(),
              (std::vector<double>{19, 22, 43, 50}));
}

TEST_P(MatrixVersions, Transpose)
{
    Matrix a(penv, 2, 3);
    a.loadRowMajor({1, 2, 3, 4, 5, 6});
    Matrix t = a.transpose(venv);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.toRowMajor(), (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

TEST_P(MatrixVersions, RowDistance)
{
    Matrix a(penv, 2, 2);
    a.loadRowMajor({0, 0, 3, 4});
    EXPECT_EQ(Matrix::rowDistance2(a, 0, a, 1), 25.0);
    EXPECT_EQ(Matrix::rowDistance2(a, 0, a, 0), 0.0);
}

TEST_P(MatrixVersions, FillOverwritesEverything)
{
    Matrix a(penv, 4, 4);
    a.fill(2.5);
    for (std::uint64_t r = 0; r < 4; ++r)
        for (std::uint64_t c = 0; c < 4; ++c)
            ASSERT_EQ(a.at(r, c), 2.5);
}

TEST_P(MatrixVersions, OutOfBoundsPanics)
{
    Matrix a(penv, 2, 2);
    EXPECT_DEATH((void)a.at(2, 0), "out of");
    EXPECT_DEATH(a.set(0, 2, 1.0), "out of");
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, MatrixVersions,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });

TEST(MatrixPersistence, SurvivesPoolRelocation)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("m", 16 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    Matrix m(env, 8, 8);
    for (std::uint64_t r = 0; r < 8; ++r)
        for (std::uint64_t c = 0; c < 8; ++c)
            m.set(r, c, double(r * 8 + c));
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(m.meta().bits()));

    rt.pools().detach(pool);
    rt.pools().openPool("m");

    Ptr<Matrix::Meta> meta = Ptr<Matrix::Meta>::fromBits(
        PtrRepr::makeRelative(pool, rt.pools().pool(pool).rootOff()));
    Matrix reopened(env, meta);
    for (std::uint64_t r = 0; r < 8; ++r)
        for (std::uint64_t c = 0; c < 8; ++c)
            ASSERT_EQ(reopened.at(r, c), double(r * 8 + c));
}
