/** @file The sharded runtime's ownership model (ISSUE 10): typed
 * NoRuntimeBound/WrongShard faults replace the old null-dereference
 * failure mode, the explicit bind/unbind API enforces one owner
 * thread per shard runtime, and each shard's metrics federate into
 * the registry under shard-prefixed names. */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/sharded_runtime.hh"
#include "obs/metrics.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 42;
    return cfg;
}

FaultKind
faultKindOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const Fault &f) {
        return f.kind();
    }
    ADD_FAILURE() << "expected a Fault";
    return FaultKind::BadUsage;
}

} // namespace

TEST(RuntimeBinding, UnboundThreadFaultsTypedNotNullDeref)
{
    // A worker thread that forgot to bind gets a catchable typed
    // fault, on its own thread, not a process crash.
    FaultKind seen = FaultKind::BadUsage;
    std::thread worker([&] {
        try {
            (void)currentRuntime();
        } catch (const Fault &f) {
            seen = f.kind();
        }
    });
    worker.join();
    EXPECT_EQ(seen, FaultKind::NoRuntimeBound);
}

TEST(RuntimeBinding, BindUnbindPairsAndFaults)
{
    Runtime rt(makeConfig());
    ASSERT_FALSE(hasCurrentRuntime());

    bindRuntime(rt);
    EXPECT_TRUE(hasCurrentRuntime());
    EXPECT_EQ(&currentRuntime(), &rt);

    // Double-bind on one thread is a usage error, not a leak.
    EXPECT_EQ(faultKindOf([&] { bindRuntime(rt); }),
              FaultKind::BadUsage);

    unbindRuntime();
    EXPECT_FALSE(hasCurrentRuntime());
    EXPECT_EQ(faultKindOf([] { unbindRuntime(); }),
              FaultKind::NoRuntimeBound);
}

TEST(RuntimeBinding, SecondThreadClaimingBoundRuntimeFaultsWrongShard)
{
    Runtime rt(makeConfig());
    RuntimeScope scope(rt); // this thread owns the shard

    FaultKind seen = FaultKind::BadUsage;
    std::thread intruder([&] {
        try {
            RuntimeScope steal(rt);
        } catch (const Fault &f) {
            seen = f.kind();
        }
    });
    intruder.join();
    EXPECT_EQ(seen, FaultKind::WrongShard);
}

TEST(RuntimeBinding, SameThreadRebindIsReentrant)
{
    Runtime a(makeConfig());
    Runtime b(makeConfig());
    RuntimeScope outer(a);
    {
        RuntimeScope inner(b); // different runtime, same thread
        EXPECT_EQ(&currentRuntime(), &b);
        {
            RuntimeScope again(a); // re-entrant claim of a
            EXPECT_EQ(&currentRuntime(), &a);
        }
        EXPECT_EQ(&currentRuntime(), &b);
    }
    EXPECT_EQ(&currentRuntime(), &a);
}

TEST(RuntimeBinding, ReleasedRuntimeIsClaimableByAnotherThread)
{
    Runtime rt(makeConfig());
    {
        RuntimeScope scope(rt);
    }
    // The first owner is gone; a second thread may now claim.
    std::atomic<bool> claimed{false};
    std::thread successor([&] {
        RuntimeScope scope(rt);
        claimed = true;
    });
    successor.join();
    EXPECT_TRUE(claimed);
}

TEST(ShardedRuntime, ShardOfKeyCoversAllShardsDeterministically)
{
    ShardedRuntime::Config cfg;
    cfg.shards = 4;
    cfg.runtime = makeConfig();
    ShardedRuntime fleet(cfg);

    std::set<unsigned> seen;
    for (std::uint64_t k = 0; k < 256; ++k) {
        const unsigned s = fleet.shardOf(k);
        ASSERT_LT(s, 4u);
        EXPECT_EQ(s, ShardedRuntime::shardOfKey(k, 4));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardedRuntime, RunOnShardsBindsEachShardToItsWorker)
{
    ShardedRuntime::Config cfg;
    cfg.shards = 4;
    cfg.runtime = makeConfig();
    ShardedRuntime fleet(cfg);

    std::vector<int> visited(4, 0);
    fleet.runOnShards([&](unsigned s) {
        EXPECT_EQ(&currentRuntime(), &fleet.runtime(s));
        // Real work on the shard's own pool proves the binding is
        // usable, not just set: allocate and store persistently.
        Ptr<std::uint64_t> p = Ptr<std::uint64_t>::fromBits(
            fleet.runtime(s).pmallocBits(fleet.pool(s), 8));
        p.store(0x5000 + s);
        EXPECT_EQ(p.load(), 0x5000 + s);
        ++visited[s];
    });
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(visited[s], 1) << "shard " << s;
}

TEST(ShardedRuntime, WorkerExceptionIsRethrownAfterJoin)
{
    ShardedRuntime::Config cfg;
    cfg.shards = 2;
    cfg.runtime = makeConfig();
    ShardedRuntime fleet(cfg);

    try {
        fleet.runOnShards([&](unsigned s) {
            if (s == 1)
                throw Fault(FaultKind::BadUsage, "worker 1 exploded");
        });
        FAIL() << "expected the worker's Fault to be rethrown";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::BadUsage);
    }
}

TEST(ShardedRuntime, MetricsFederateUnderShardPrefixes)
{
    ShardedRuntime::Config cfg;
    cfg.shards = 2;
    cfg.runtime = makeConfig();
    ShardedRuntime fleet(cfg);

    // Commit one transaction on each shard so both the runtime ("upr")
    // and transaction ("txn") groups have non-zero, shard-attributable
    // counters.
    fleet.runOnShards([&](unsigned s) {
        Runtime &rt = fleet.runtime(s);
        const PtrBits p = rt.pmallocBits(fleet.pool(s), 64);
        rt.beginTxn(fleet.pool(s));
        Ptr<std::uint64_t>::fromBits(p).store(11 + s);
        rt.commitTxn();
        // Shard 1 commits twice: the per-shard counters must differ,
        // proving they are NOT summed into one fleet-wide bucket.
        if (s == 1) {
            rt.beginTxn(fleet.pool(s));
            Ptr<std::uint64_t>::fromBits(p).store(99);
            rt.commitTxn();
        }
    });

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("shard0.txn.undoCommits"), 1u);
    EXPECT_EQ(snap.counters.at("shard1.txn.undoCommits"), 2u);
    // The machine model's groups and the runtime's histograms carry
    // the prefix too.
    EXPECT_GT(snap.counters.at("shard0.core.memAccesses"), 0u);
    EXPECT_GT(snap.counters.at("shard1.core.memAccesses"), 0u);
    ASSERT_NE(snap.histograms.find("shard0.upr.txnCommitNs"),
              snap.histograms.end());
    EXPECT_EQ(snap.histograms.at("shard0.upr.txnCommitNs").count, 1u);
    EXPECT_EQ(snap.histograms.at("shard1.upr.txnCommitNs").count, 2u);
}
