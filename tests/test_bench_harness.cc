/** @file Smoke tests for the benchmark harness (bench/bench_common.hh)
 * at a heavily scaled-down workload: every (workload, version) pair
 * runs, produces matching checksums across versions, and yields the
 * counter relationships the figures rely on. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

class BenchHarness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // 100x smaller: 100 records / 1000 ops / 100 LL nodes.
        ::setenv("UPR_BENCH_SCALE", "100", 1);
    }

    void TearDown() override { ::unsetenv("UPR_BENCH_SCALE"); }
};

} // namespace

TEST_F(BenchHarness, ScaleEnvRespected)
{
    EXPECT_EQ(benchScale(), 100u);
    EXPECT_EQ(paperSpec().recordCount, 100u);
    EXPECT_EQ(paperSpec().operationCount, 1000u);
}

TEST_F(BenchHarness, AllWorkloadsAllVersionsAgree)
{
    for (Workload w : kAllWorkloads) {
        SCOPED_TRACE(workloadName(w));
        const RunStats vol = run(w, Version::Volatile);
        EXPECT_GT(vol.cycles, 0u);
        for (Version v : {Version::Sw, Version::Hw,
                          Version::Explicit}) {
            SCOPED_TRACE(versionName(v));
            const RunStats st = run(w, v);
            EXPECT_EQ(st.checksum, vol.checksum);
            EXPECT_GE(st.cycles, vol.cycles / 2); // sanity
        }
    }
}

TEST_F(BenchHarness, CountersMatchVersionSemantics)
{
    const RunStats vol = run(Workload::RB, Version::Volatile);
    const RunStats sw = run(Workload::RB, Version::Sw);
    const RunStats hw = run(Workload::RB, Version::Hw);
    const RunStats ex = run(Workload::RB, Version::Explicit);

    // Checks exist only under SW.
    EXPECT_EQ(vol.dynamicChecks, 0u);
    EXPECT_GT(sw.dynamicChecks, 0u);
    EXPECT_EQ(hw.dynamicChecks, 0u);
    EXPECT_EQ(ex.dynamicChecks, 0u);

    // POLB traffic exists under HW and Explicit, never Volatile.
    EXPECT_EQ(vol.polbAccesses, 0u);
    EXPECT_GT(hw.polbAccesses, 0u);
    EXPECT_GT(ex.polbAccesses, 0u);

    // Reuse: HW translates less than Explicit for the same work.
    EXPECT_LT(hw.relToAbs, ex.relToAbs);

    // storePs appear only under HW (the new instruction).
    EXPECT_GT(hw.storePs, 0u);
    EXPECT_EQ(vol.storePs, 0u);
    EXPECT_EQ(ex.storePs, 0u);
}

TEST_F(BenchHarness, MetricsSummariesMatchModelCounters)
{
    const RunStats vol = run(Workload::RB, Version::Volatile);
    const RunStats sw = run(Workload::RB, Version::Sw);
    const RunStats hw = run(Workload::RB, Version::Hw);

    // The latency histograms ride the same simulated-cycle model as
    // the counters, so their sample counts must agree exactly.
    EXPECT_EQ(sw.checkCycles.count, sw.dynamicChecks);
    EXPECT_GT(sw.checkCycles.count, 0u);
    EXPECT_GT(sw.ptrAssignCycles.count, 0u);
    EXPECT_GT(hw.ptrAssignCycles.count, 0u);

    // Summaries are internally ordered.
    for (const HistSummary *s :
         {&sw.checkCycles, &sw.ptrAssignCycles, &hw.ptrAssignCycles}) {
        EXPECT_LE(s->p50, s->p90);
        EXPECT_LE(s->p90, s->p99);
        EXPECT_LE(s->p99, s->max);
        EXPECT_GT(s->max, 0u);
    }

    // Volatile runs have neither checks nor pointer assignments.
    EXPECT_EQ(vol.checkCycles.count, 0u);
    EXPECT_EQ(vol.ptrAssignCycles.count, 0u);

    // Determinism: rerunning the same cell reproduces the summaries.
    const RunStats sw2 = run(Workload::RB, Version::Sw);
    EXPECT_EQ(sw2.checkCycles.p50, sw.checkCycles.p50);
    EXPECT_EQ(sw2.checkCycles.p99, sw.checkCycles.p99);
    EXPECT_EQ(sw2.ptrAssignCycles.max, sw.ptrAssignCycles.max);
}

TEST_F(BenchHarness, RunPhaseOnlyCountersAreClean)
{
    // The load phase is excluded: a GET-only run phase must show far
    // fewer storePs than nodes inserted during load.
    const RunStats hw = run(Workload::Hash, Version::Hw);
    // 100 records loaded; run phase has ~5% SETs of 1000 ops = ~50
    // inserts; storePs must reflect the run phase only.
    EXPECT_LT(hw.storePs, 100u * 4);
    EXPECT_GT(hw.memAccesses, 0u);
}

TEST_F(BenchHarness, LinkedListHarnessTraversalOnly)
{
    const RunStats hw = run(Workload::LL, Version::Hw);
    // The timed phase is a pure traversal: no stores at all.
    EXPECT_EQ(hw.storePs, 0u);
    EXPECT_GT(hw.memAccesses, 0u);
    EXPECT_GT(hw.polbAccesses, 0u);
}

TEST_F(BenchHarness, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
}

TEST_F(BenchHarness, MachineParamsSweepApplies)
{
    // A slower NVM must slow the HW version down.
    MachineParams fast;
    MachineParams slow;
    slow.nvmLatency = 2000;
    const RunStats f = run(Workload::RB, Version::Hw, fast);
    const RunStats s = run(Workload::RB, Version::Hw, slow);
    EXPECT_GT(s.cycles, f.cycles);
    EXPECT_EQ(s.checksum, f.checksum);
}
