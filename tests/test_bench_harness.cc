/** @file Smoke tests for the benchmark harness (bench/bench_common.hh)
 * at a heavily scaled-down workload: every (workload, version) pair
 * runs, produces matching checksums across versions, and yields the
 * counter relationships the figures rely on. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

class BenchHarness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // 100x smaller: 100 records / 1000 ops / 100 LL nodes.
        ::setenv("UPR_BENCH_SCALE", "100", 1);
    }

    void TearDown() override { ::unsetenv("UPR_BENCH_SCALE"); }
};

} // namespace

TEST_F(BenchHarness, ScaleEnvRespected)
{
    EXPECT_EQ(benchScale(), 100u);
    EXPECT_EQ(paperSpec().recordCount, 100u);
    EXPECT_EQ(paperSpec().operationCount, 1000u);
}

TEST_F(BenchHarness, AllWorkloadsAllVersionsAgree)
{
    for (Workload w : kAllWorkloads) {
        SCOPED_TRACE(workloadName(w));
        const RunStats vol = run(w, Version::Volatile);
        EXPECT_GT(vol.cycles, 0u);
        for (Version v : {Version::Sw, Version::Hw,
                          Version::Explicit}) {
            SCOPED_TRACE(versionName(v));
            const RunStats st = run(w, v);
            EXPECT_EQ(st.checksum, vol.checksum);
            EXPECT_GE(st.cycles, vol.cycles / 2); // sanity
        }
    }
}

TEST_F(BenchHarness, CountersMatchVersionSemantics)
{
    const RunStats vol = run(Workload::RB, Version::Volatile);
    const RunStats sw = run(Workload::RB, Version::Sw);
    const RunStats hw = run(Workload::RB, Version::Hw);
    const RunStats ex = run(Workload::RB, Version::Explicit);

    // Checks exist only under SW.
    EXPECT_EQ(vol.dynamicChecks, 0u);
    EXPECT_GT(sw.dynamicChecks, 0u);
    EXPECT_EQ(hw.dynamicChecks, 0u);
    EXPECT_EQ(ex.dynamicChecks, 0u);

    // POLB traffic exists under HW and Explicit, never Volatile.
    EXPECT_EQ(vol.polbAccesses, 0u);
    EXPECT_GT(hw.polbAccesses, 0u);
    EXPECT_GT(ex.polbAccesses, 0u);

    // Reuse: HW translates less than Explicit for the same work.
    EXPECT_LT(hw.relToAbs, ex.relToAbs);

    // storePs appear only under HW (the new instruction).
    EXPECT_GT(hw.storePs, 0u);
    EXPECT_EQ(vol.storePs, 0u);
    EXPECT_EQ(ex.storePs, 0u);
}

TEST_F(BenchHarness, RunPhaseOnlyCountersAreClean)
{
    // The load phase is excluded: a GET-only run phase must show far
    // fewer storePs than nodes inserted during load.
    const RunStats hw = run(Workload::Hash, Version::Hw);
    // 100 records loaded; run phase has ~5% SETs of 1000 ops = ~50
    // inserts; storePs must reflect the run phase only.
    EXPECT_LT(hw.storePs, 100u * 4);
    EXPECT_GT(hw.memAccesses, 0u);
}

TEST_F(BenchHarness, LinkedListHarnessTraversalOnly)
{
    const RunStats hw = run(Workload::LL, Version::Hw);
    // The timed phase is a pure traversal: no stores at all.
    EXPECT_EQ(hw.storePs, 0u);
    EXPECT_GT(hw.memAccesses, 0u);
    EXPECT_GT(hw.polbAccesses, 0u);
}

TEST_F(BenchHarness, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
}

TEST_F(BenchHarness, MachineParamsSweepApplies)
{
    // A slower NVM must slow the HW version down.
    MachineParams fast;
    MachineParams slow;
    slow.nvmLatency = 2000;
    const RunStats f = run(Workload::RB, Version::Hw, fast);
    const RunStats s = run(Workload::RB, Version::Hw, slow);
    EXPECT_GT(s.cycles, f.cycles);
    EXPECT_EQ(s.checksum, f.checksum);
}
