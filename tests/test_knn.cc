/** @file Tests for KNN + iris: correctness, placement combinations,
 * and identical predictions across versions. */

#include <gtest/gtest.h>

#include "ml/iris.hh"
#include "ml/knn.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 8;
    return cfg;
}

} // namespace

TEST(Knn, ExactNeighborsOnTinyData)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    MemEnv env = MemEnv::volatileEnv(rt);

    // Reference points on a line: 0, 10, 20, 30.
    Matrix ref(env, 4, 1);
    ref.loadRowMajor({0, 10, 20, 30});
    Matrix query(env, 2, 1);
    query.loadRowMajor({2, 24});

    Knn::Placement place{env, env, env, env};
    auto res = Knn::search(ref, query, 2, place);

    // Query 0 (=2): nearest 0 then 10. Query 1 (=24): 20 then 30.
    EXPECT_EQ(res.neighbors.at(0, 0), 0.0);
    EXPECT_EQ(res.neighbors.at(1, 0), 1.0);
    EXPECT_EQ(res.neighbors.at(0, 1), 2.0);
    EXPECT_EQ(res.neighbors.at(1, 1), 3.0);
    EXPECT_EQ(res.distances.at(0, 0), 4.0);
    EXPECT_EQ(res.distances.at(0, 1), 16.0);
}

TEST(Knn, SelfQueryFindsSelfFirst)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    MemEnv env = MemEnv::volatileEnv(rt);

    IrisDataset ds = IrisDataset::make();
    Matrix m = ds.toMatrix(env);
    Knn::Placement place{env, env, env, env};
    auto res = Knn::search(m, m, 1, place);
    for (std::uint64_t q = 0; q < 150; ++q) {
        EXPECT_EQ(res.neighbors.at(0, q), double(q));
        EXPECT_EQ(res.distances.at(0, q), 0.0);
    }
}

TEST(Knn, IrisLeaveSelfInAccuracyHigh)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("knn", 32 << 20);
    MemEnv penv = MemEnv::persistentEnv(rt, pool);
    MemEnv venv = MemEnv::volatileEnv(rt);

    IrisDataset ds = IrisDataset::make();
    Matrix m = ds.toMatrix(venv);

    // The paper's placement: everything persisted except the input.
    Knn::Placement place{venv, penv, penv, penv};
    auto res = Knn::search(m, m, 5, place);
    const std::vector<int> pred = Knn::classify(res.neighbors,
                                                ds.labels);
    int correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        correct += pred[i] == ds.labels[i] ? 1 : 0;
    // Iris-statistics data: KNN should classify nearly everything.
    EXPECT_GT(correct, 140);
}

TEST(Knn, All16PlacementCombinationsAgree)
{
    // The paper's point: any of the four matrices can live on NVM or
    // DRAM; one implementation must serve all 16 combinations with
    // identical results.
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("knn", 128 << 20);
    MemEnv penv = MemEnv::persistentEnv(rt, pool);
    MemEnv venv = MemEnv::volatileEnv(rt);

    IrisDataset ds = IrisDataset::make();

    std::vector<double> want;
    for (int mask = 0; mask < 16; ++mask) {
        MemEnv e0 = (mask & 1) ? penv : venv;
        MemEnv e1 = (mask & 2) ? penv : venv;
        MemEnv e2 = (mask & 4) ? penv : venv;
        MemEnv e3 = (mask & 8) ? penv : venv;
        Matrix m = ds.toMatrix(e0);
        Knn::Placement place{e0, e1, e2, e3};
        auto res = Knn::search(m, m, 3, place);
        std::vector<double> got = res.neighbors.toRowMajor();
        if (mask == 0) {
            want = got;
        } else {
            ASSERT_EQ(got, want) << "placement mask " << mask;
        }
    }
}

TEST(Knn, PredictionsIdenticalAcrossVersions)
{
    std::vector<int> reference;
    for (Version v : {Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit}) {
        Runtime rt(makeConfig(v));
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("knn", 32 << 20);
        MemEnv penv = MemEnv::persistentEnv(rt, pool);
        MemEnv venv = MemEnv::volatileEnv(rt);

        IrisDataset ds = IrisDataset::make();
        Matrix m = ds.toMatrix(venv);
        Knn::Placement place{venv, penv, penv, penv};
        auto res = Knn::search(m, m, 5, place);
        const std::vector<int> pred =
            Knn::classify(res.neighbors, ds.labels);
        if (reference.empty()) {
            reference = pred;
        } else {
            EXPECT_EQ(pred, reference) << versionName(v);
        }
    }
}

TEST(Knn, ClassifyMajorityVote)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    MemEnv env = MemEnv::volatileEnv(rt);

    // neighbors: 3 x 2 (k=3, two queries).
    Matrix neighbors(env, 3, 2);
    neighbors.loadRowMajor({0, 3,
                            1, 4,
                            3, 5});
    const std::vector<int> labels = {7, 7, 9, 9, 9, 9};
    const auto pred = Knn::classify(neighbors, labels);
    // Query 0 neighbors {0,1,3} -> labels {7,7,9} -> 7.
    // Query 1 neighbors {3,4,5} -> labels {9,9,9} -> 9.
    EXPECT_EQ(pred, (std::vector<int>{7, 9}));
}

TEST(Iris, DatasetShapeAndDeterminism)
{
    IrisDataset a = IrisDataset::make();
    IrisDataset b = IrisDataset::make();
    EXPECT_EQ(a.features.size(), 600u);
    EXPECT_EQ(a.labels.size(), 150u);
    EXPECT_EQ(a.features, b.features);
    for (int cls = 0; cls < 3; ++cls) {
        const int count = static_cast<int>(
            std::count(a.labels.begin(), a.labels.end(), cls));
        EXPECT_EQ(count, 50);
    }
    // All feature values positive (they are lengths in cm).
    for (double f : a.features)
        EXPECT_GT(f, 0.0);
}
