/** @file Tests for block-local check refinement: second and later
 * check sites of a value within one basic block drop their check
 * branches while keeping per-use conversions (sound, unlike the
 * Fig 10 value numbering). */

#include <gtest/gtest.h>

#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** Three loads through the same unknown pointer in one block. */
const char *kTripleLoad = R"(
func @sum3(%p: ptr) -> i64 {
entry:
  %a = load.i64 %p
  %q = gep %p, 8
  %b = load.i64 %p
  %c = load.i64 %p
  %ab = add %a, %b
  %r = add %ab, %c
  ret %r
}

func @main() -> i64 {
entry:
  %cell = pmalloc 16
  %v = const 14
  store %v, %cell
  %r = call @sum3(%cell)
  ret %r
}
)";

/** The same value used in two different blocks: no cross-block reuse. */
const char *kTwoBlocks = R"(
func @f(%p: ptr, %c: i64) -> i64 {
entry:
  %a = load.i64 %p
  br %c, second, out
second:
  %b = load.i64 %p
  %r = add %a, %b
  ret %r
out:
  ret %a
}

func @main() -> i64 {
entry:
  %cell = pmalloc 8
  %v = const 5
  store %v, %cell
  %one = const 1
  %r = call @f(%cell, %one)
  ret %r
}
)";

} // namespace

TEST(FlowRefinement, SecondCheckInBlockRefined)
{
    Module mod = parseModule(kTripleLoad);
    const auto inf = inferPointerKinds(mod);

    const CheckPlan base = insertChecks(mod, &inf, false);
    const CheckPlan refined = insertChecks(mod, &inf, true);

    // @sum3's three loads of %p: 1 dynamic + 2 refined vs 3 dynamic.
    EXPECT_EQ(base.refinedSites, 0u);
    EXPECT_EQ(refined.refinedSites, 2u);
    EXPECT_EQ(refined.remainingSites + refined.refinedSites,
              base.remainingSites);

    const FunctionPlan &fp = refined.perFunction.at("sum3");
    EXPECT_TRUE(fp.at(0, 0).addrDynamic);
    EXPECT_TRUE(fp.at(0, 2).addrRefined);
    EXPECT_FALSE(fp.at(0, 2).addrDynamic);
    EXPECT_TRUE(fp.at(0, 3).addrRefined);
}

TEST(FlowRefinement, NoReuseAcrossBlocks)
{
    Module mod = parseModule(kTwoBlocks);
    const auto inf = inferPointerKinds(mod);
    const CheckPlan refined = insertChecks(mod, &inf, true);
    // %p checked in 'entry' and again in 'second': the second block
    // gets its own check (block-local refinement only).
    EXPECT_EQ(refined.refinedSites, 0u);
}

TEST(FlowRefinement, OutputsUnchangedAndChecksReduced)
{
    for (const char *src : {kTripleLoad, kTwoBlocks}) {
        Module mod = parseModule(src);
        const auto inf = inferPointerKinds(mod);

        auto runWith = [&](bool refine, std::uint64_t *checks) {
            const CheckPlan plan = insertChecks(mod, &inf, refine);
            Runtime::Config cfg;
            cfg.version = Version::Sw;
            Runtime rt(cfg);
            Interpreter::Config icfg;
            icfg.pool = rt.createPool("fr", 8 << 20);
            Interpreter interp(rt, mod, plan, icfg);
            const std::uint64_t r = interp.call("main");
            *checks = interp.dynamicCheckCount();
            return r;
        };

        std::uint64_t without = 0, with = 0;
        const std::uint64_t r1 = runWith(false, &without);
        const std::uint64_t r2 = runWith(true, &with);
        EXPECT_EQ(r1, r2);
        EXPECT_LE(with, without);
    }
    // The triple-load program specifically must drop two checks.
    Module mod = parseModule(kTripleLoad);
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf, true);
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("fr", 8 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    EXPECT_EQ(interp.call("main"), 42u);
    EXPECT_EQ(interp.dynamicCheckCount(), 1u);
}

TEST(AnnotatedPrinter, MarksMatchThePlan)
{
    Module mod = parseModule(kTripleLoad);
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf, true);
    const std::string text = printAnnotated(mod, plan);

    // @sum3: first load dynamic, later loads refined.
    EXPECT_NE(text.find("%a = load.i64 %p   ; [checkY addr]"),
              std::string::npos);
    EXPECT_NE(text.find("%b = load.i64 %p   ; [refined addr]"),
              std::string::npos);
    // @main: the statically known pmalloc'd store is a planted
    // conversion with no check.
    EXPECT_NE(text.find("store %v, %cell   ; [ra2va addr]"),
              std::string::npos);
    // Unannotated lines stay untouched.
    EXPECT_NE(text.find("%r = call @sum3(%cell)"), std::string::npos);
}

TEST(FlowRefinement, RefinedConversionStillFaultsOnDetach)
{
    // The soundness property that distinguishes refinement from
    // value numbering: conversions still run per use, so a detach
    // between two refined uses faults instead of using stale state.
    Module mod = parseModule(kTripleLoad);
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf, true);

    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("fr", 8 << 20);
    Interpreter interp(rt, mod, plan, icfg);

    // Run normally once.
    EXPECT_EQ(interp.call("main"), 42u);

    // Now drive @sum3 directly with a pointer into a pool we detach
    // mid-use — impossible to interleave from outside a single call,
    // so instead verify the conversion path: a refined use of a
    // detached pool's pointer faults.
    const PtrBits p = rt.pmallocBits(icfg.pool, 16);
    rt.pools().detach(icfg.pool);
    EXPECT_THROW(interp.call("sum3", {p}), Fault);
}
