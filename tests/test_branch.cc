/** @file Unit tests for the gshare branch predictor model. */

#include <gtest/gtest.h>

#include "arch/branch.hh"
#include "common/random.hh"

using namespace upr;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    MachineParams p;
    BranchPredictor bp(p);
    // After warm-up, an always-taken branch should rarely mispredict.
    int warm_misses = 0;
    for (int i = 0; i < 64; ++i)
        warm_misses += bp.branch(0x10, true) ? 1 : 0;
    int misses = 0;
    for (int i = 0; i < 1000; ++i)
        misses += bp.branch(0x10, true) ? 1 : 0;
    EXPECT_EQ(misses, 0);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    MachineParams p;
    BranchPredictor bp(p);
    for (int i = 0; i < 64; ++i)
        bp.branch(0x20, false);
    int misses = 0;
    for (int i = 0; i < 1000; ++i)
        misses += bp.branch(0x20, false) ? 1 : 0;
    EXPECT_EQ(misses, 0);
}

TEST(BranchPredictor, RandomOutcomesMispredictHeavily)
{
    MachineParams p;
    BranchPredictor bp(p);
    Rng rng(3);
    int misses = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        misses += bp.branch(0x30, rng.nextBounded(2) != 0) ? 1 : 0;
    // Random branches should mispredict around half the time.
    EXPECT_GT(misses, n / 3);
    EXPECT_LT(misses, 2 * n / 3);
}

TEST(BranchPredictor, AlternatingPatternLearnedViaHistory)
{
    // gshare folds global history into the index, so a strict
    // alternating pattern becomes predictable after warm-up.
    MachineParams p;
    BranchPredictor bp(p);
    bool t = false;
    for (int i = 0; i < 4000; ++i) {
        bp.branch(0x40, t);
        t = !t;
    }
    int misses = 0;
    for (int i = 0; i < 2000; ++i) {
        misses += bp.branch(0x40, t) ? 1 : 0;
        t = !t;
    }
    EXPECT_LT(misses, 200); // >90% accuracy on the learned pattern
}

TEST(BranchPredictor, CountersTrackTotals)
{
    MachineParams p;
    BranchPredictor bp(p);
    for (int i = 0; i < 10; ++i)
        bp.branch(1, true);
    EXPECT_EQ(bp.branches(), 10u);
    EXPECT_LE(bp.mispredicts(), 10u);
}
