/** @file The sharded concurrent persistent hash map (ISSUE 10): real
 * worker threads operating on their own shards, WrongShard
 * enforcement for cross-shard touches, FliT-style per-operation
 * durability, and the threaded YCSB harness whose results are
 * schedule-independent (and at T=1 identical to a single-runtime
 * reference). */

#include <gtest/gtest.h>

#include <map>

#include "kvstore/concurrent_kv_store.hh"

using namespace upr;

namespace
{

ShardedRuntime::Config
fleetConfig(unsigned shards, EngineKind engine = EngineKind::Undo)
{
    ShardedRuntime::Config cfg;
    cfg.shards = shards;
    cfg.runtime.version = Version::Hw;
    cfg.runtime.seed = 7;
    cfg.poolSize = 8ULL << 20;
    cfg.engine = engine;
    return cfg;
}

} // namespace

TEST(ConcurrentHashMap, FourRealThreadsInsertAndReadTheirShards)
{
    ShardedRuntime fleet(fleetConfig(4));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);

    constexpr std::uint64_t kKeys = 512;
    fleet.runOnShards([&](unsigned s) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
            if (fleet.shardOf(k) == s) {
                EXPECT_TRUE(map.set(k, k * 3 + 1));
            }
        }
    });
    fleet.runOnShards([&](unsigned s) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
            if (fleet.shardOf(k) != s)
                continue;
            const auto v = map.get(k);
            ASSERT_TRUE(v.has_value()) << "key " << k;
            EXPECT_EQ(*v, k * 3 + 1);
            EXPECT_TRUE(map.contains(k));
        }
    });

    std::uint64_t total = 0;
    for (unsigned s = 0; s < 4; ++s)
        total += map.sizeOnShard(s);
    EXPECT_EQ(total, kKeys);
}

TEST(ConcurrentHashMap, CrossShardTouchFaultsWrongShard)
{
    ShardedRuntime fleet(fleetConfig(2));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);

    // Find a key shard 0 does NOT own.
    std::uint64_t foreign = 0;
    while (fleet.shardOf(foreign) == 0)
        ++foreign;

    ShardedRuntime::Bind bind(fleet, 0);
    try {
        map.set(foreign, 1);
        FAIL() << "expected Fault{WrongShard}";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::WrongShard);
    }
    try {
        (void)map.get(foreign);
        FAIL() << "expected Fault{WrongShard}";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::WrongShard);
    }
}

TEST(ConcurrentHashMap, UnboundThreadFaultsNoRuntimeBound)
{
    ShardedRuntime fleet(fleetConfig(2));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);
    ASSERT_FALSE(hasCurrentRuntime());
    try {
        map.set(1, 1);
        FAIL() << "expected Fault{NoRuntimeBound}";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::NoRuntimeBound);
    }
}

TEST(ConcurrentHashMap, EraseIsDurablePerOperation)
{
    ShardedRuntime fleet(fleetConfig(2));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);

    fleet.runOnShards([&](unsigned s) {
        for (std::uint64_t k = 0; k < 64; ++k) {
            if (fleet.shardOf(k) != s)
                continue;
            map.set(k, k + 100);
            if (k % 2 == 0) {
                EXPECT_TRUE(map.erase(k));
            }
        }
    });
    fleet.runOnShards([&](unsigned s) {
        for (std::uint64_t k = 0; k < 64; ++k) {
            if (fleet.shardOf(k) != s)
                continue;
            EXPECT_EQ(map.contains(k), k % 2 != 0) << "key " << k;
        }
    });
}

/** Each shard's table survives a detach/adopt round trip of its own
 * pool image: the per-operation transactions left durable state. */
TEST(ConcurrentHashMap, ShardImageReattachesWithAllCommittedData)
{
    ShardedRuntime fleet(fleetConfig(2));
    ConcurrentHashMap<std::uint64_t, std::uint64_t> map(fleet);

    std::map<std::uint64_t, std::uint64_t> expected[2];
    fleet.runOnShards([&](unsigned s) {
        for (std::uint64_t k = 0; k < 128; ++k) {
            if (fleet.shardOf(k) != s)
                continue;
            map.set(k, k ^ 0xabcd);
            expected[s][k] = k ^ 0xabcd;
        }
    });

    for (unsigned s = 0; s < 2; ++s) {
        Backing image;
        image.assign(
            fleet.runtime(s).pools().pool(fleet.pool(s)).backing().raw());

        Runtime rt(fleetConfig(2).runtime);
        RuntimeScope scope(rt);
        const PoolId id =
            rt.pools().adoptImage(std::move(image), "reattach");
        const PoolOffset root = rt.pools().pool(id).rootOff();
        ASSERT_NE(root, 0u);

        using Table = HashMap<std::uint64_t, std::uint64_t>;
        MemEnv env = MemEnv::persistentEnv(rt, id);
        Table table(env, Ptr<Table::Header>::fromBits(
                             PtrRepr::makeRelative(id, root)));
        table.validate();

        std::map<std::uint64_t, std::uint64_t> actual;
        table.forEach([&](std::uint64_t k, std::uint64_t v) {
            actual.emplace(k, v);
        });
        EXPECT_EQ(actual, expected[s]) << "shard " << s;
    }
}

// ----------------------------------------------------------------------
// The threaded YCSB harness
// ----------------------------------------------------------------------

namespace
{

WorkloadSpec
smallSpec(char preset)
{
    WorkloadSpec spec = ycsbPreset(preset);
    spec.recordCount = 400;
    spec.operationCount = 2'000;
    return spec;
}

} // namespace

TEST(ConcurrentKvStore, PartitionPreservesOrderAndCoversEveryOp)
{
    ShardedRuntime fleet(fleetConfig(4));
    ConcurrentKvStore store(fleet);
    const YcsbWorkload workload(smallSpec('a'));

    const auto parts = store.partition(workload.runOps());
    ASSERT_EQ(parts.size(), 4u);
    std::size_t total = 0;
    for (unsigned s = 0; s < 4; ++s) {
        total += parts[s].size();
        for (const KvOp &op : parts[s])
            EXPECT_EQ(fleet.shardOf(op.key), s);
    }
    EXPECT_EQ(total, workload.runOps().size());
}

TEST(ConcurrentKvStore, ThreadedRunIsScheduleIndependent)
{
    const YcsbWorkload workload(smallSpec('a'));

    // Two independent threaded executions: every reported number must
    // match exactly, because results only depend on per-shard
    // sequential histories, never on thread timing.
    KvConcurrentResult r1, r2;
    {
        ShardedRuntime fleet(fleetConfig(4));
        ConcurrentKvStore store(fleet);
        r1 = store.run(workload);
    }
    {
        ShardedRuntime fleet(fleetConfig(4));
        ConcurrentKvStore store(fleet);
        r2 = store.run(workload);
    }
    EXPECT_GT(r1.gets, 0u);
    EXPECT_GT(r1.sets, 0u);
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_EQ(r1.gets, r2.gets);
    EXPECT_EQ(r1.getHits, r2.getHits);
    EXPECT_EQ(r1.sets, r2.sets);
    ASSERT_EQ(r1.perShard.size(), r2.perShard.size());
    for (unsigned s = 0; s < r1.perShard.size(); ++s) {
        EXPECT_EQ(r1.perShard[s].cycles, r2.perShard[s].cycles)
            << "shard " << s << " model cycles must be deterministic";
        EXPECT_EQ(r1.perShard[s].checksum, r2.perShard[s].checksum);
    }
}

TEST(ConcurrentKvStore, SingleShardMatchesSingleRuntimeReference)
{
    const YcsbWorkload workload(smallSpec('b'));

    KvConcurrentResult threaded;
    {
        ShardedRuntime fleet(fleetConfig(1));
        ConcurrentKvStore store(fleet);
        threaded = store.run(workload);
    }

    // Reference: one plain Runtime, one HashMap, the same per-op
    // transaction pattern, the same fold — no fleet machinery.
    KvRunResult ref;
    {
        Runtime rt(fleetConfig(1).runtime);
        RuntimeScope scope(rt);
        const PoolId pool =
            rt.createPool("ref", 8ULL << 20, EngineKind::Undo);
        HashMap<std::uint64_t, std::uint64_t> table(
            MemEnv::persistentEnv(rt, pool));
        for (const KvOp &op : workload.loadOps()) {
            rt.beginTxn(pool);
            table.insert(op.key, op.value);
            rt.commitTxn();
        }
        for (const KvOp &op : workload.runOps()) {
            if (op.kind == KvOp::Kind::Get) {
                ++ref.gets;
                if (auto v = table.find(op.key)) {
                    ++ref.getHits;
                    ref.checksum ^= *v;
                    ref.checksum =
                        (ref.checksum << 1) | (ref.checksum >> 63);
                }
            } else {
                ++ref.sets;
                rt.beginTxn(pool);
                table.insert(op.key, op.value);
                rt.commitTxn();
            }
        }
    }

    EXPECT_EQ(threaded.gets, ref.gets);
    EXPECT_EQ(threaded.getHits, ref.getHits);
    EXPECT_EQ(threaded.sets, ref.sets);
    EXPECT_EQ(threaded.checksum, ref.checksum);
}

TEST(ConcurrentKvStore, AllSixPresetsRunThreaded)
{
    for (const char preset : {'a', 'b', 'c', 'd', 'e', 'f'}) {
        SCOPED_TRACE(preset);
        WorkloadSpec spec = smallSpec(preset);
        spec.operationCount = 500;
        const YcsbWorkload workload(spec);

        ShardedRuntime fleet(fleetConfig(2));
        ConcurrentKvStore store(fleet);
        const KvConcurrentResult res = store.run(workload);
        EXPECT_EQ(res.gets + res.sets,
                  workload.runOps().size());
        if (preset == 'c') {
            EXPECT_EQ(res.sets, 0u); // read-only preset
        }
        EXPECT_GT(res.maxCycles, 0u);
        EXPECT_GE(res.sumCycles, res.maxCycles);
    }
}
