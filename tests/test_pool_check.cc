/** @file checkPool() verdicts over hand-damaged pool images: proven
 * repairs (identity CRC, redundant header fields, free-list rebuild),
 * honest refusals (boundary tags, out-of-pool root, lost committed
 * undo entries), and the dry-run-never-writes contract. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "mem/address_space.hh"
#include "nvm/pool_check.hh"
#include "nvm/pool_manager.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

/** Formatted 1 MiB pool with a few live allocations. */
std::vector<std::uint8_t>
freshImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("c", 1 << 20);
    mgr.pmalloc(id, 64);
    mgr.pmalloc(id, 200);
    mgr.pmalloc(id, 48);
    return mgr.pool(id).backing().raw().toVector();
}

Backing
toBacking(const std::vector<std::uint8_t> &image)
{
    Backing b;
    b.assign(image);
    return b;
}

/** Flip one byte at @p off. */
void
flip(std::vector<std::uint8_t> &image, Bytes off, std::uint8_t mask)
{
    image[off] ^= mask;
}

void
poke64(std::vector<std::uint8_t> &image, Bytes off, std::uint64_t v)
{
    std::memcpy(image.data() + off, &v, sizeof(v));
}

std::uint64_t
peek64(const std::vector<std::uint8_t> &image, Bytes off)
{
    std::uint64_t v;
    std::memcpy(&v, image.data() + off, sizeof(v));
    return v;
}

/**
 * Formatted pool whose first allocation holds real relative pointers
 * into the second — the interior witness the poolId repair anchors on.
 */
std::vector<std::uint8_t>
imageWithPointers()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("c", 1 << 20);
    const PoolOffset a = mgr.allocator(id).alloc(64);
    const PoolOffset t = mgr.allocator(id).alloc(200);
    Pool &p = mgr.pool(id);
    for (std::uint64_t i = 0; i < 8; ++i) {
        const std::uint64_t w = (std::uint64_t{1} << 63) |
                                (std::uint64_t{id} << 32) |
                                (t + 8 * i);
        p.backing().write(a + 8 * i, &w, sizeof(w));
    }
    return p.backing().raw().toVector();
}

/** Byte offsets of PoolHeader fields (fixed on-media layout). */
constexpr Bytes kMagicOff = 0;
constexpr Bytes kPoolIdOff = 12;
constexpr Bytes kSizeOff = 16;
constexpr Bytes kRootOff = 24;
constexpr Bytes kFreeHeadOff = 32;
constexpr Bytes kUsedBytesOff = 40;
constexpr Bytes kArenaStartOff = 48;
constexpr Bytes kIdentCrcOff = 72;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setLogSink(+[](LogLevel, const std::string &) {});
    }
    void TearDown() override { setLogSink(nullptr); }
};

using PoolCheck = QuietLogs;
using PoolCheckRepair = QuietLogs;

} // namespace

TEST_F(PoolCheck, CleanImageIsClean)
{
    Backing b = toBacking(freshImage());
    const CheckReport rep = checkPool(b, false);
    EXPECT_EQ(rep.status, CheckStatus::Clean);
    EXPECT_TRUE(rep.issues.empty());
}

TEST_F(PoolCheck, DryRunNeverModifiesTheImage)
{
    auto image = freshImage();
    flip(image, kIdentCrcOff, 0x10);     // repairable damage
    flip(image, kArenaStartOff, 0x40);   // unrepairable damage
    Backing b = toBacking(image);
    checkPool(b, false);
    EXPECT_EQ(b.raw().toVector(), image);
}

TEST_F(PoolCheckRepair, IdentityCrcReseals)
{
    auto image = freshImage();
    flip(image, kIdentCrcOff, 0x08);

    Backing dry = toBacking(image);
    EXPECT_EQ(checkPool(dry, false).status, CheckStatus::Repairable);

    Backing b = toBacking(image);
    const CheckReport rep = checkPool(b, true);
    EXPECT_EQ(rep.status, CheckStatus::Repaired);
    const CheckReport again = checkPool(b, true);
    EXPECT_EQ(again.status, CheckStatus::Clean) << "repair not stable";
}

TEST_F(PoolCheckRepair, DamagedPoolIdRestoresFromInteriorPointers)
{
    // poolId has no legal-value constraint a geometry check could
    // enforce — the redundancy is the pool's own stored relative
    // pointers, and the restore must revalidate the identity CRC.
    auto image = imageWithPointers();
    image[kPoolIdOff] = 0x30; // was 1
    Backing dry = toBacking(image);
    EXPECT_EQ(checkPool(dry, false).status, CheckStatus::Repairable);

    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Repaired);
    EXPECT_EQ(b.raw().toVector()[kPoolIdOff], 1);
    EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
}

TEST_F(PoolCheck, ResealRefusedWhenInteriorContradictsPoolId)
{
    // poolId AND the CRC field damaged at once: the restore candidate
    // cannot revalidate, and resealing would brand the pool with an
    // id its own pointers contradict — the checker must refuse.
    auto image = imageWithPointers();
    image[kPoolIdOff] = 7;
    flip(image, kIdentCrcOff, 0x08);
    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Corrupt);
}

TEST_F(PoolCheckRepair, ResealStillProvableWithInteriorPointers)
{
    // Only the CRC field damaged: the census agrees with the header,
    // so the reseal stays a proven repair.
    auto image = imageWithPointers();
    flip(image, kIdentCrcOff, 0x08);
    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Repaired);
    EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
}

TEST_F(PoolCheckRepair, KnownConstantsRestoreOneAtATime)
{
    // magic has exactly one legal value and size must equal the image
    // length: each restore is proven by the identity CRC revalidating
    // afterwards. One candidate field at a time — the CRC can prove a
    // single restore, not a joint guess (see the Corrupt case below).
    {
        auto image = freshImage();
        flip(image, kMagicOff + 2, 0xFF);
        Backing b = toBacking(image);
        EXPECT_EQ(checkPool(b, true).status, CheckStatus::Repaired);
        EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
    }
    {
        auto image = freshImage();
        poke64(image, kSizeOff, (1 << 20) + 4096);
        Backing b = toBacking(image);
        EXPECT_EQ(checkPool(b, true).status, CheckStatus::Repaired);
        const auto repaired = b.raw().toVector();
        EXPECT_EQ(peek64(repaired, kSizeOff), Bytes(1) << 20);
        EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
    }
}

TEST_F(PoolCheck, JointHeaderDamageIsBeyondProof)
{
    // Two identity fields damaged at once: no single-field candidate
    // makes the CRC revalidate, so the checker must refuse to guess.
    auto image = freshImage();
    flip(image, kMagicOff + 2, 0xFF);
    poke64(image, kSizeOff, (1 << 20) + 4096);
    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Corrupt);
}

TEST_F(PoolCheckRepair, FreeListAndUsedBytesRebuildFromTags)
{
    auto image = freshImage();
    poke64(image, kFreeHeadOff, 12345);     // garbage free-list head
    poke64(image, kUsedBytesOff, 1);        // wrong accounting

    Backing b = toBacking(image);
    const CheckReport rep = checkPool(b, true);
    EXPECT_EQ(rep.status, CheckStatus::Repaired);
    EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
}

TEST_F(PoolCheck, GeometryDamageIsCorrupt)
{
    // arenaStart has no redundant copy: repairing it would be a
    // guess, and a wrong guess serves garbage as an arena.
    auto image = freshImage();
    flip(image, kArenaStartOff, 0x20);
    Backing b = toBacking(image);
    const CheckReport rep = checkPool(b, true);
    EXPECT_EQ(rep.status, CheckStatus::Corrupt);
    // Corrupt images are left exactly as found (forensics).
    EXPECT_EQ(b.raw().toVector(), image);
}

TEST_F(PoolCheck, TornBoundaryTagIsCorrupt)
{
    auto image = freshImage();
    const Bytes arena = peek64(image, kArenaStartOff);
    // Zero the first block's boundary tag (at arena + 8).
    poke64(image, arena + 8, 0);
    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Corrupt);
}

TEST_F(PoolCheck, OutOfPoolRootIsCorrupt)
{
    auto image = freshImage();
    poke64(image, kRootOff, (Bytes(1) << 20) + 64);
    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Corrupt);
}

TEST_F(PoolCheckRepair, PendingUndoLogReplays)
{
    // A crash image with an intact pending log is Repairable: the
    // proven fix is to finish recovery (replay + truncate).
    std::vector<std::uint8_t> image;
    {
        AddressSpace space;
        PoolManager mgr(space, Placement::Sequential, 1);
        const PoolId id = mgr.createPool("c", 1 << 20);
        Pool &p = mgr.pool(id);
        const PoolOffset a =
            static_cast<PoolOffset>(p.header().arenaStart) + 64;
        Txn txn(p);
        txn.recordWrite(a, 8);
        image = p.backing().raw().toVector();
        txn.commit();
    }

    Backing dry = toBacking(image);
    EXPECT_EQ(checkPool(dry, false).status, CheckStatus::Repairable);

    Backing b = toBacking(image);
    EXPECT_EQ(checkPool(b, true).status, CheckStatus::Repaired);
    EXPECT_EQ(checkPool(b, false).status, CheckStatus::Clean);
}

TEST_F(PoolCheck, DamagedLogControlIsCorrupt)
{
    auto image = freshImage();
    const Bytes logStart = peek64(image, 56);
    flip(image, logStart + 12, 0x04); // control CRC field
    Backing b = toBacking(image);
    const CheckReport rep = checkPool(b, true);
    EXPECT_EQ(rep.status, CheckStatus::Corrupt);
    EXPECT_TRUE(rep.recovery.controlDamaged);
}

TEST_F(PoolCheck, MidLogDamageWithLaterValidEntriesIsCorrupt)
{
    // Damage the FIRST of three logged entries: the two valid entries
    // after it prove media damage (a pure crash only tears the tail),
    // and their data writes can no longer be rolled back.
    std::vector<std::uint8_t> image;
    Bytes logStart = 0;
    {
        AddressSpace space;
        PoolManager mgr(space, Placement::Sequential, 1);
        const PoolId id = mgr.createPool("c", 1 << 20);
        Pool &p = mgr.pool(id);
        const PoolOffset a =
            static_cast<PoolOffset>(p.header().arenaStart) + 64;
        logStart = p.header().logStart;
        Txn txn(p);
        txn.recordWrite(a, 8);
        txn.recordWrite(a + 16, 8);
        txn.recordWrite(a + 32, 8);
        image = p.backing().raw().toVector();
        txn.commit();
    }
    flip(image, logStart + 16 + 16 + 2, 0x80); // entry 0 payload

    Backing b = toBacking(image);
    const CheckReport rep = checkPool(b, true);
    EXPECT_EQ(rep.status, CheckStatus::Corrupt);
    EXPECT_TRUE(rep.recovery.lostCommittedEntries);
}
