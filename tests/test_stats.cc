/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace upr;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(9);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 21u);
    c.sub(1);
    EXPECT_EQ(c.value(), 20u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SubBelowZeroDoesNotWrap)
{
    Counter c;
    c.add(3);
#ifdef UPR_SANITIZE
    // Sanitized builds treat gauge underflow as a caller bug.
    EXPECT_DEATH(c.sub(4), "counter underflow");
#else
    // Regular builds saturate instead of wrapping to 2^64 - 1.
    c.sub(4);
    EXPECT_EQ(c.value(), 0u);
    c.add(2);
    EXPECT_EQ(c.value(), 2u); // still usable afterwards
#endif
}

TEST(Counter, SubZeroFromZeroIsFine)
{
    Counter c;
    c.sub(0);
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, ForEachVisitsInNameOrder)
{
    StatGroup g("grp");
    Counter a, b;
    g.registerCounter("b", b, "second");
    g.registerCounter("a", a, "first");
    a.add(1);
    b.add(2);
    std::string names;
    g.forEach([&](const std::string &name, std::uint64_t value,
                  const std::string &desc) {
        names += name;
        names += '=';
        names += std::to_string(value);
        names += ';';
        EXPECT_FALSE(desc.empty());
    });
    EXPECT_EQ(names, "a=1;b=2;");
}

TEST(StatGroup, RegisterAndLookup)
{
    StatGroup g("grp");
    Counter a, b;
    g.registerCounter("a", a, "first");
    g.registerCounter("b", b, "second");
    a.add(3);
    b.add(4);
    EXPECT_EQ(g.lookup("a"), 3u);
    EXPECT_EQ(g.lookup("b"), 4u);
}

TEST(StatGroup, DuplicateRegistrationPanics)
{
    StatGroup g("grp");
    Counter a, b;
    g.registerCounter("x", a, "one");
    EXPECT_DEATH(g.registerCounter("x", b, "two"), "duplicate stat");
}

TEST(StatGroup, LookupUnknownPanics)
{
    StatGroup g("grp");
    EXPECT_DEATH(g.lookup("nope"), "no stat");
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup g("grp");
    Counter a, b;
    g.registerCounter("a", a, "first");
    g.registerCounter("b", b, "second");
    a.add(5);
    b.add(6);
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("core");
    Counter a;
    g.registerCounter("loads", a, "load count");
    a.add(7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "core.loads 7  # load count\n");
}
