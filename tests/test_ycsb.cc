/** @file Tests for the YCSB workload generator. */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "kvstore/ycsb.hh"

using namespace upr;

TEST(Zipfian, SamplesInRange)
{
    ZipfianGenerator z(1000);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.sample(rng), 1000u);
}

TEST(Zipfian, SkewFavorsLowRanks)
{
    ZipfianGenerator z(10000);
    Rng rng(2);
    std::uint64_t low = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        low += z.sample(rng) < 100 ? 1 : 0;
    // With theta=0.99 the head is very hot: far beyond the uniform 1%.
    EXPECT_GT(low, n / 4);
}

TEST(Zipfian, GrowKeepsSamplingValid)
{
    ZipfianGenerator z(10);
    Rng rng(3);
    for (std::uint64_t n = 10; n <= 500; n += 7) {
        z.growTo(n);
        for (int i = 0; i < 50; ++i)
            ASSERT_LT(z.sample(rng), n);
    }
}

TEST(Ycsb, DefaultsMatchPaperSpec)
{
    YcsbWorkload w;
    EXPECT_EQ(w.loadOps().size(), 10000u);
    EXPECT_EQ(w.runOps().size(), 100000u);

    std::uint64_t gets = 0, sets = 0;
    for (const KvOp &op : w.runOps())
        (op.kind == KvOp::Kind::Get ? gets : sets) += 1;
    // 95/5 split within noise.
    EXPECT_NEAR(static_cast<double>(gets) / 100000.0, 0.95, 0.01);
    EXPECT_NEAR(static_cast<double>(sets) / 100000.0, 0.05, 0.01);
}

TEST(Ycsb, DeterministicFromSeed)
{
    WorkloadSpec spec;
    spec.seed = 7;
    YcsbWorkload a(spec), b(spec);
    ASSERT_EQ(a.runOps().size(), b.runOps().size());
    for (std::size_t i = 0; i < a.runOps().size(); ++i) {
        EXPECT_EQ(a.runOps()[i].key, b.runOps()[i].key);
        EXPECT_EQ(static_cast<int>(a.runOps()[i].kind),
                  static_cast<int>(b.runOps()[i].kind));
    }
}

TEST(Ycsb, LoadKeysAreUnique)
{
    YcsbWorkload w;
    std::set<std::uint64_t> keys;
    for (const KvOp &op : w.loadOps())
        EXPECT_TRUE(keys.insert(op.key).second);
}

TEST(Ycsb, SetsInsertFreshKeys)
{
    YcsbWorkload w;
    std::set<std::uint64_t> keys;
    for (const KvOp &op : w.loadOps())
        keys.insert(op.key);
    for (const KvOp &op : w.runOps()) {
        if (op.kind == KvOp::Kind::Set) {
            EXPECT_TRUE(keys.insert(op.key).second)
                << "SET reused an existing key";
        }
    }
}

TEST(Ycsb, GetsAlwaysHitExistingKeys)
{
    YcsbWorkload w;
    std::set<std::uint64_t> keys;
    for (const KvOp &op : w.loadOps())
        keys.insert(op.key);
    for (const KvOp &op : w.runOps()) {
        if (op.kind == KvOp::Kind::Set) {
            keys.insert(op.key);
        } else {
            ASSERT_TRUE(keys.count(op.key))
                << "GET of a never-inserted key";
        }
    }
}

TEST(Ycsb, LatestDistributionSkewsToRecent)
{
    WorkloadSpec spec;
    spec.distribution = Distribution::Latest;
    YcsbWorkload w(spec);

    // Track the "age" of read keys: distance from the newest insert
    // at the time of the read. Build key -> index mapping first.
    std::map<std::uint64_t, std::uint64_t> key_index;
    std::uint64_t next = 0;
    for (const KvOp &op : w.loadOps())
        key_index[op.key] = next++;

    std::uint64_t recent = 0, total = 0;
    for (const KvOp &op : w.runOps()) {
        if (op.kind == KvOp::Kind::Set) {
            key_index[op.key] = next++;
        } else {
            const std::uint64_t age = next - 1 - key_index[op.key];
            recent += age < next / 10 ? 1 : 0; // youngest 10%
            ++total;
        }
    }
    // "More recently inserted records are more likely to be read".
    EXPECT_GT(static_cast<double>(recent) / total, 0.5);
}

TEST(Ycsb, UniformDistributionIsFlat)
{
    WorkloadSpec spec;
    spec.distribution = Distribution::Uniform;
    spec.recordCount = 1000;
    YcsbWorkload w(spec);

    std::map<std::uint64_t, std::uint64_t> key_index;
    std::uint64_t next = 0;
    for (const KvOp &op : w.loadOps())
        key_index[op.key] = next++;

    std::uint64_t old_half = 0, total = 0;
    for (const KvOp &op : w.runOps()) {
        if (op.kind == KvOp::Kind::Set) {
            key_index[op.key] = next++;
            continue;
        }
        // Older half of the key space *as of this read*.
        old_half += key_index[op.key] < next / 2 ? 1 : 0;
        ++total;
    }
    // Uniform: each half of the live key space gets ~50% of reads.
    EXPECT_NEAR(static_cast<double>(old_half) / total, 0.5, 0.05);
}

TEST(Zipfian, HeadMassMatchesTheta099Analytic)
{
    // The sampler implements YCSB's zipfian with theta = 0.99: rank r
    // is drawn with probability (1/(r+1)^theta) / zeta(n, theta).
    // Check the empirical head mass against that closed form.
    const std::uint64_t n = 1000;
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i),
                                ZipfianGenerator::kTheta);

    ZipfianGenerator z(n);
    Rng rng(17);
    const int draws = 200000;
    std::uint64_t head1 = 0, head10 = 0;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t s = z.sample(rng);
        head1 += s == 0 ? 1 : 0;
        head10 += s < 10 ? 1 : 0;
    }

    const double p1 = 1.0 / zetan;
    double p10 = 0;
    for (std::uint64_t i = 1; i <= 10; ++i)
        p10 += 1.0 / std::pow(static_cast<double>(i),
                              ZipfianGenerator::kTheta) / zetan;

    EXPECT_NEAR(static_cast<double>(head1) / draws, p1, 0.15 * p1);
    EXPECT_NEAR(static_cast<double>(head10) / draws, p10, 0.10 * p10);
}

TEST(Zipfian, DeterministicFromSeed)
{
    ZipfianGenerator a(5000), b(5000);
    Rng ra(99), rb(99);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(a.sample(ra), b.sample(rb)) << "draw " << i;

    // A different seed must produce a different stream (with
    // overwhelming probability over 10k draws).
    ZipfianGenerator c(5000);
    Rng rc(100);
    Rng ra2(99);
    ZipfianGenerator a2(5000);
    int diffs = 0;
    for (int i = 0; i < 10000; ++i)
        diffs += a2.sample(ra2) != c.sample(rc) ? 1 : 0;
    EXPECT_GT(diffs, 0);
}

TEST(Ycsb, LatestReadsFollowRunPhaseInserts)
{
    // Under Latest, the hot set must slide forward as the run phase
    // inserts new records: keys born *during* the run get read, and
    // the very newest records stay disproportionately hot throughout.
    WorkloadSpec spec;
    spec.distribution = Distribution::Latest;
    spec.recordCount = 2000;
    spec.operationCount = 40000;
    spec.readProportion = 0.9;
    YcsbWorkload w(spec);

    std::map<std::uint64_t, std::uint64_t> key_index;
    std::uint64_t next = 0;
    for (const KvOp &op : w.loadOps())
        key_index[op.key] = next++;
    const std::uint64_t load_end = next;

    std::uint64_t run_born_reads = 0, newest16 = 0, reads = 0;
    for (const KvOp &op : w.runOps()) {
        if (op.kind == KvOp::Kind::Set) {
            key_index[op.key] = next++;
            continue;
        }
        const std::uint64_t idx = key_index[op.key];
        run_born_reads += idx >= load_end ? 1 : 0;
        newest16 += next - 1 - idx < 16 ? 1 : 0;
        ++reads;
    }

    // ~10% of 40k ops insert ~4000 new records on top of 2000 loaded;
    // by the end two thirds of the key space was born in the run
    // phase, and Latest concentrates mass there.
    EXPECT_GT(run_born_reads, reads / 4);
    // The 16 newest records are a vanishing fraction of the key space
    // but must draw far more than their uniform share of reads.
    EXPECT_GT(static_cast<double>(newest16) / reads, 0.05);
}
