/** @file Typed tests exercising all four search trees (RB, AVL,
 * Splay, SG) with identical workloads under all four versions —
 * invariants validated continuously, results checked against a
 * std::map oracle. */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "containers/avl_tree.hh"
#include "containers/rb_tree.hh"
#include "containers/scapegoat_tree.hh"
#include "containers/splay_tree.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 17;
    return cfg;
}

const Version kAllVersions[] = {Version::Volatile, Version::Sw,
                                Version::Hw, Version::Explicit};

} // namespace

template <typename TreeT>
class TreeTest : public ::testing::Test
{
  protected:
    /** Run @p body with a fresh tree under each version. */
    template <typename Body>
    void
    forEachVersion(Body &&body)
    {
        for (Version v : kAllVersions) {
            SCOPED_TRACE(versionName(v));
            Runtime rt(makeConfig(v));
            RuntimeScope scope(rt);
            const PoolId pool = rt.createPool("p", 32 << 20);
            MemEnv env = MemEnv::persistentEnv(rt, pool);
            TreeT tree(env);
            body(rt, tree);
        }
    }
};

using TreeTypes = ::testing::Types<
    RbTree<std::uint64_t, std::uint64_t>,
    AvlTree<std::uint64_t, std::uint64_t>,
    SplayTree<std::uint64_t, std::uint64_t>,
    ScapegoatTree<std::uint64_t, std::uint64_t>>;

TYPED_TEST_SUITE(TreeTest, TreeTypes);

TYPED_TEST(TreeTest, EmptyTreeBasics)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        EXPECT_TRUE(tree.empty());
        EXPECT_EQ(tree.size(), 0u);
        EXPECT_FALSE(tree.find(1).has_value());
        EXPECT_FALSE(tree.erase(1));
        tree.validate();
    });
}

TYPED_TEST(TreeTest, InsertFindUpdate)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        EXPECT_TRUE(tree.insert(5, 50));
        EXPECT_TRUE(tree.insert(3, 30));
        EXPECT_TRUE(tree.insert(8, 80));
        EXPECT_FALSE(tree.insert(5, 55)); // update
        EXPECT_EQ(tree.size(), 3u);
        EXPECT_EQ(tree.find(5).value(), 55u);
        EXPECT_EQ(tree.find(3).value(), 30u);
        EXPECT_EQ(tree.find(8).value(), 80u);
        EXPECT_FALSE(tree.find(4).has_value());
        tree.validate();
    });
}

TYPED_TEST(TreeTest, AscendingInsertionStaysValid)
{
    // Worst case for naive BSTs; each balanced tree must cope.
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        for (std::uint64_t i = 0; i < 300; ++i) {
            tree.insert(i, i);
            if (i % 50 == 0)
                tree.validate();
        }
        tree.validate();
        for (std::uint64_t i = 0; i < 300; ++i)
            ASSERT_EQ(tree.find(i).value(), i);
    });
}

TYPED_TEST(TreeTest, DescendingInsertionStaysValid)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        for (std::uint64_t i = 300; i > 0; --i)
            tree.insert(i, i);
        tree.validate();
        EXPECT_EQ(tree.size(), 300u);
    });
}

TYPED_TEST(TreeTest, InOrderTraversalSorted)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        const std::uint64_t keys[] = {42, 7, 99, 1, 64, 13, 77};
        for (std::uint64_t k : keys)
            tree.insert(k, k * 10);
        std::uint64_t prev = 0;
        bool first = true;
        std::size_t count = 0;
        tree.forEach([&](std::uint64_t k, std::uint64_t v) {
            if (!first) {
                EXPECT_LT(prev, k);
            }
            EXPECT_EQ(v, k * 10);
            prev = k;
            first = false;
            ++count;
        });
        EXPECT_EQ(count, 7u);
    });
}

TYPED_TEST(TreeTest, EraseLeafInternalRoot)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        for (std::uint64_t k : {50, 25, 75, 12, 37, 62, 87})
            tree.insert(k, k);
        EXPECT_TRUE(tree.erase(12)); // leaf
        tree.validate();
        EXPECT_TRUE(tree.erase(25)); // internal, one child
        tree.validate();
        EXPECT_TRUE(tree.erase(50)); // (possibly) two children / root
        tree.validate();
        EXPECT_EQ(tree.size(), 4u);
        for (std::uint64_t k : {37, 62, 75, 87})
            EXPECT_TRUE(tree.contains(k)) << k;
        for (std::uint64_t k : {12, 25, 50})
            EXPECT_FALSE(tree.contains(k)) << k;
    });
}

TYPED_TEST(TreeTest, EraseEverythingThenReuse)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        for (std::uint64_t i = 0; i < 100; ++i)
            tree.insert(i, i);
        for (std::uint64_t i = 0; i < 100; ++i) {
            ASSERT_TRUE(tree.erase(i));
            if (i % 25 == 0)
                tree.validate();
        }
        EXPECT_TRUE(tree.empty());
        tree.validate();
        tree.insert(7, 70);
        EXPECT_EQ(tree.find(7).value(), 70u);
        tree.validate();
    });
}

TYPED_TEST(TreeTest, ClearFreesAndResets)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        for (std::uint64_t i = 0; i < 200; ++i)
            tree.insert(i * 3, i);
        tree.clear();
        EXPECT_TRUE(tree.empty());
        tree.validate();
        tree.insert(1, 1);
        EXPECT_EQ(tree.size(), 1u);
    });
}

TYPED_TEST(TreeTest, RandomizedAgainstOracle)
{
    this->forEachVersion([](Runtime &, TypeParam &tree) {
        std::map<std::uint64_t, std::uint64_t> oracle;
        Rng rng(4242);
        for (int step = 0; step < 2500; ++step) {
            const std::uint64_t key = rng.nextBounded(400);
            const std::uint64_t op = rng.nextBounded(100);
            if (op < 50) {
                const std::uint64_t v = rng.next();
                const bool fresh = oracle.emplace(key, v).second;
                ASSERT_EQ(tree.insert(key, v), fresh);
                oracle[key] = v;
            } else if (op < 80) {
                auto got = tree.find(key);
                auto it = oracle.find(key);
                if (it == oracle.end()) {
                    ASSERT_FALSE(got.has_value());
                } else {
                    ASSERT_TRUE(got.has_value());
                    ASSERT_EQ(*got, it->second);
                }
            } else {
                ASSERT_EQ(tree.erase(key), oracle.erase(key) == 1);
            }
            if (step % 500 == 499)
                tree.validate();
        }
        tree.validate();
        ASSERT_EQ(tree.size(), oracle.size());
        // Full sweep at the end.
        auto it = oracle.begin();
        tree.forEach([&](std::uint64_t k, std::uint64_t v) {
            ASSERT_NE(it, oracle.end());
            ASSERT_EQ(k, it->first);
            ASSERT_EQ(v, it->second);
            ++it;
        });
        ASSERT_EQ(it, oracle.end());
    });
}

TYPED_TEST(TreeTest, SurvivesPoolRelocation)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 32 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    TypeParam tree(env);
    for (std::uint64_t i = 0; i < 256; ++i)
        tree.insert(i * 7, i);
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(tree.header().bits()));

    rt.pools().detach(pool);
    rt.pools().openPool("p");

    using Hdr = typename TypeParam::Header;
    Ptr<Hdr> hdr = Ptr<Hdr>::fromBits(PtrRepr::makeRelative(
        pool, rt.pools().pool(pool).rootOff()));
    TypeParam reopened(env, hdr);
    EXPECT_EQ(reopened.size(), 256u);
    reopened.validate();
    for (std::uint64_t i = 0; i < 256; ++i)
        ASSERT_EQ(reopened.find(i * 7).value(), i);
}

TYPED_TEST(TreeTest, MixedVolatileAndPersistentTreesCoexist)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 32 << 20);
    TypeParam pers(MemEnv::persistentEnv(rt, pool));
    TypeParam vol(MemEnv::volatileEnv(rt));
    for (std::uint64_t i = 0; i < 100; ++i) {
        pers.insert(i, i);
        vol.insert(i, i * 2);
    }
    pers.validate();
    vol.validate();
    for (std::uint64_t i = 0; i < 100; ++i) {
        ASSERT_EQ(pers.find(i).value(), i);
        ASSERT_EQ(vol.find(i).value(), i * 2);
    }
}
