/** @file Unit tests for the pool manager: attach, detach, relocation,
 * translation faults, and host-file image persistence. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "nvm/pool_manager.hh"

using namespace upr;

class PoolManagerTest : public ::testing::Test
{
  protected:
    AddressSpace space;
    PoolManager mgr{space, Placement::Randomized, 1234};
};

TEST_F(PoolManagerTest, CreateAttachesInNvmHalf)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);
    EXPECT_TRUE(mgr.isAttached(id));
    const SimAddr base = mgr.baseOf(id);
    EXPECT_TRUE(Layout::isNvm(base));
    EXPECT_TRUE(space.isMapped(base, 1 << 20));
}

TEST_F(PoolManagerTest, DuplicateNameRejected)
{
    mgr.createPool("p0", 1 << 20);
    EXPECT_THROW(mgr.createPool("p0", 1 << 20), Fault);
}

TEST_F(PoolManagerTest, Ra2VaAndBack)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);
    const SimAddr va = mgr.ra2va(id, 0x400);
    EXPECT_EQ(va, mgr.baseOf(id) + 0x400);
    const auto [rid, roff] = mgr.va2ra(va);
    EXPECT_EQ(rid, id);
    EXPECT_EQ(roff, 0x400u);
}

TEST_F(PoolManagerTest, Ra2VaFaultKinds)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);

    // Unknown pool.
    try {
        mgr.ra2va(id + 100, 0);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::BadRelativeAddress);
    }

    // Offset out of pool.
    try {
        mgr.ra2va(id, 1 << 20);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
    }

    // Detached pool (the Fig 10 scenario).
    mgr.detach(id);
    try {
        mgr.ra2va(id, 0);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolDetached);
    }
}

TEST_F(PoolManagerTest, Va2RaOutsidePoolsThrows)
{
    mgr.createPool("p0", 1 << 20);
    EXPECT_THROW(mgr.va2ra(0x1000), Fault);
    EXPECT_THROW(mgr.va2ra(Layout::kNvmBase + 1), Fault);
}

TEST_F(PoolManagerTest, ReopenRelocatesButKeepsContents)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);
    const SimAddr base1 = mgr.baseOf(id);
    const PoolOffset off = mgr.pool(id).header().arenaStart;
    space.write<std::uint64_t>(base1 + off, 0x1337);

    mgr.detach(id);
    EXPECT_FALSE(mgr.isAttached(id));
    const PoolId id2 = mgr.openPool("p0");
    EXPECT_EQ(id2, id);
    const SimAddr base2 = mgr.baseOf(id);

    // Randomized placement: new address, same contents.
    EXPECT_NE(base1, base2);
    EXPECT_EQ(space.read<std::uint64_t>(base2 + off), 0x1337u);
}

TEST_F(PoolManagerTest, SequentialPlacementIsDeterministic)
{
    AddressSpace s1, s2;
    PoolManager m1(s1, Placement::Sequential);
    PoolManager m2(s2, Placement::Sequential);
    const PoolId a = m1.createPool("x", 1 << 20);
    const PoolId b = m2.createPool("x", 1 << 20);
    EXPECT_EQ(m1.baseOf(a), m2.baseOf(b));
}

TEST_F(PoolManagerTest, EpochBumpsOnAttachDetach)
{
    const auto e0 = mgr.epoch();
    const PoolId id = mgr.createPool("p0", 1 << 20);
    EXPECT_GT(mgr.epoch(), e0);
    const auto e1 = mgr.epoch();
    mgr.detach(id);
    EXPECT_GT(mgr.epoch(), e1);
}

TEST_F(PoolManagerTest, PmallocReturnsUsableVa)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);
    const SimAddr va = mgr.pmalloc(id, 256);
    EXPECT_TRUE(Layout::isNvm(va));
    space.write<std::uint64_t>(va, 99);
    EXPECT_EQ(space.read<std::uint64_t>(va), 99u);
    mgr.pfree(va);
}

TEST_F(PoolManagerTest, PmallocOnDetachedPoolFaults)
{
    const PoolId id = mgr.createPool("p0", 1 << 20);
    mgr.detach(id);
    EXPECT_THROW(mgr.pmalloc(id, 16), Fault);
}

TEST_F(PoolManagerTest, AttachedRangesReflectState)
{
    const PoolId a = mgr.createPool("a", 1 << 20);
    const PoolId b = mgr.createPool("b", 1 << 20);
    auto ranges = mgr.attachedRanges();
    ASSERT_EQ(ranges.size(), 2u);
    mgr.detach(a);
    ranges = mgr.attachedRanges();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].id, b);
}

TEST_F(PoolManagerTest, DestroyRemovesEverything)
{
    const PoolId id = mgr.createPool("gone", 1 << 20);
    mgr.destroy(id);
    EXPECT_FALSE(mgr.exists(id));
    // The name is free again.
    EXPECT_NO_THROW(mgr.createPool("gone", 1 << 20));
}

TEST_F(PoolManagerTest, SaveAndLoadImageAcrossManagers)
{
    const PoolId id = mgr.createPool("persist-me", 1 << 20);
    const SimAddr va = mgr.pmalloc(id, 128);
    space.write<std::uint64_t>(va, 0xABCDE);
    const PoolOffset off = mgr.va2ra(va).second;

    const std::string path = ::testing::TempDir() + "/pool.img";
    mgr.saveImage(id, path);

    // A brand new "machine/process".
    AddressSpace space2;
    PoolManager mgr2(space2, Placement::Randomized, 999);
    const PoolId id2 = mgr2.loadImage(path, "reopened");
    EXPECT_EQ(id2, id); // pool IDs are system-wide and persistent
    const SimAddr va2 = mgr2.ra2va(id2, off);
    EXPECT_EQ(space2.read<std::uint64_t>(va2), 0xABCDEu);

    std::remove(path.c_str());
}

TEST_F(PoolManagerTest, LoadImageRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/garbage.img";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a pool image", f);
    std::fclose(f);
    EXPECT_THROW(mgr.loadImage(path, "bad"), Fault);
    std::remove(path.c_str());
}
