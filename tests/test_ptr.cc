/** @file Tests for the Ptr<T> facade: member access, Fig 4 operator
 * behaviour, and identical container-visible semantics across all four
 * versions. */

#include <gtest/gtest.h>

#include "core/ptr.hh"

using namespace upr;

namespace
{

struct Node
{
    Ptr<Node> next;
    std::uint64_t value = 0;
    std::uint32_t tag = 0;
};

struct Point
{
    double x = 0;
    double y = 0;
};

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 31;
    return cfg;
}

} // namespace

TEST(PtrStatic, LayoutIsOneWord)
{
    EXPECT_EQ(sizeof(Ptr<Node>), 8u);
    // A node with one pointer + u64 + u32 packs like the raw struct.
    EXPECT_EQ(sizeof(Node), 24u);
    EXPECT_EQ(memberOffset(&Node::next), 0u);
    EXPECT_EQ(memberOffset(&Node::value), 8u);
    EXPECT_EQ(memberOffset(&Node::tag), 16u);
}

TEST(PtrNoRuntime, AccessWithoutScopeFaultsTyped)
{
    Ptr<Node> p = Ptr<Node>::fromBits(0x1000);
    ASSERT_FALSE(hasCurrentRuntime());
    // A typed, catchable fault — not a null dereference or abort —
    // so a served system can reject a mis-bound worker thread's
    // request and keep running.
    try {
        (void)p.field(&Node::value);
        FAIL() << "expected Fault{NoRuntimeBound}";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::NoRuntimeBound);
    }
}

class PtrVersions : public ::testing::TestWithParam<Version>
{
  protected:
    PtrVersions()
        : rt(makeConfig(GetParam())), scope(rt),
          pool(rt.createPool("p", 1 << 20))
    {}

    Ptr<Node>
    allocNode()
    {
        return Ptr<Node>::fromBits(rt.pmallocBits(pool, sizeof(Node)));
    }

    Runtime rt;
    RuntimeScope scope;
    PoolId pool;
};

TEST_P(PtrVersions, FieldRoundTrip)
{
    Ptr<Node> n = allocNode();
    n.setField(&Node::value, std::uint64_t{777});
    n.setField(&Node::tag, std::uint32_t{9});
    EXPECT_EQ(n.field(&Node::value), 777u);
    EXPECT_EQ(n.field(&Node::tag), 9u);
}

TEST_P(PtrVersions, PtrFieldLinksAndTraverses)
{
    Ptr<Node> a = allocNode();
    Ptr<Node> b = allocNode();
    a.setPtrField(&Node::next, b);
    b.setPtrField(&Node::next, Ptr<Node>::null());
    b.setField(&Node::value, std::uint64_t{42});

    Ptr<Node> loaded = a.ptrField(&Node::next);
    EXPECT_TRUE(loaded == b);
    EXPECT_EQ(loaded.field(&Node::value), 42u);
    EXPECT_TRUE(loaded.ptrField(&Node::next).isNull());
}

TEST_P(PtrVersions, NullComparisons)
{
    Ptr<Node> n = allocNode();
    EXPECT_TRUE(Ptr<Node>::null().isNull());
    EXPECT_FALSE(n.isNull());
    EXPECT_TRUE(n != Ptr<Node>::null());
    EXPECT_FALSE(n == Ptr<Node>::null());
    EXPECT_TRUE(static_cast<bool>(n));
}

TEST_P(PtrVersions, WholeObjectLoadStoreForPointerFreeTypes)
{
    Ptr<Point> p =
        Ptr<Point>::fromBits(rt.pmallocBits(pool, sizeof(Point)));
    p.store(Point{1.5, -2.5});
    const Point got = p.load();
    EXPECT_EQ(got.x, 1.5);
    EXPECT_EQ(got.y, -2.5);
}

TEST_P(PtrVersions, ArrayArithmetic)
{
    Ptr<Point> arr =
        Ptr<Point>::fromBits(rt.pmallocBits(pool, 8 * sizeof(Point)));
    for (int i = 0; i < 8; ++i)
        (arr + i).store(Point{double(i), double(-i)});
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(arr.at(i).x, double(i));
        EXPECT_EQ(arr.at(i).y, double(-i));
    }
    Ptr<Point> last = arr + 7;
    EXPECT_EQ(last - arr, 7);
    EXPECT_TRUE(arr < last);
    EXPECT_TRUE((last - 7) == arr);
}

TEST_P(PtrVersions, MixedVolatileAndPersistentObjects)
{
    // The same container-visible code handles both media: that is the
    // user-transparency property.
    Ptr<Node> pers = allocNode();
    Ptr<Node> vol =
        Ptr<Node>::fromBits(rt.mallocBytes(sizeof(Node)));

    // Volatile node points to persistent node and vice versa.
    vol.setPtrField(&Node::next, pers);
    pers.setPtrField(&Node::next, vol);
    vol.setField(&Node::value, std::uint64_t{1});
    pers.setField(&Node::value, std::uint64_t{2});

    EXPECT_EQ(vol.ptrField(&Node::next).field(&Node::value), 2u);
    EXPECT_EQ(pers.ptrField(&Node::next).field(&Node::value), 1u);
}

TEST_P(PtrVersions, CastPreservesBits)
{
    Ptr<Node> n = allocNode();
    Ptr<Point> q = n.cast<Point>();
    EXPECT_EQ(q.bits(), n.bits());
    Ptr<Node> back = q.cast<Node>();
    EXPECT_TRUE(back == n);
}

TEST_P(PtrVersions, ToIntYieldsDereferenceableAddress)
{
    Ptr<Node> n = allocNode();
    n.setField(&Node::value, std::uint64_t{55});
    const std::uint64_t i = n.toInt();
    // The integer is the virtual address (Fig 4 cast semantics).
    EXPECT_EQ(rt.space().read<std::uint64_t>(i + 8), 55u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, PtrVersions,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });

TEST(PtrPersistence, StoredFormatsAreCanonical)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 1 << 20);

    Ptr<Node> pers =
        Ptr<Node>::fromBits(rt.pmallocBits(pool, sizeof(Node)));
    Ptr<Node> vol = Ptr<Node>::fromBits(rt.mallocBytes(sizeof(Node)));

    pers.setPtrField(&Node::next, pers);
    vol.setPtrField(&Node::next, pers);

    // In NVM the pointer is stored relative; in DRAM it is stored as
    // a virtual address — the Sec VII-B soundness criterion.
    const SimAddr pers_va = pers.resolve();
    const SimAddr vol_va = vol.resolve();
    EXPECT_EQ(PtrRepr::determineY(rt.space().read<PtrBits>(pers_va)),
              PtrForm::Relative);
    EXPECT_EQ(PtrRepr::determineY(rt.space().read<PtrBits>(vol_va)),
              PtrForm::VirtualNvm);
}

TEST(PtrPersistence, GraphSurvivesPoolRelocation)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 1 << 20);

    // Build a 100-node persistent ring.
    std::vector<Ptr<Node>> nodes;
    for (int i = 0; i < 100; ++i) {
        nodes.push_back(
            Ptr<Node>::fromBits(rt.pmallocBits(pool, sizeof(Node))));
        nodes.back().setField(&Node::value, std::uint64_t(i));
    }
    for (int i = 0; i < 100; ++i)
        nodes[i].setPtrField(&Node::next, nodes[(i + 1) % 100]);

    rt.pools().detach(pool);
    rt.pools().openPool("p");

    // Walk the ring from node 0 via stored pointers only.
    Ptr<Node> cur = nodes[0];
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(cur.field(&Node::value), std::uint64_t(i));
        cur = cur.ptrField(&Node::next);
    }
    EXPECT_TRUE(cur == nodes[0]);
}
