/** @file
 * Regression tests for pointer arithmetic that would wrap a relative
 * pointer's 32-bit offset field. ptrAddBytes must raise a catchable
 * Fault(OffsetOutOfPool) -- not hit the representation assert inside
 * PtrRepr::addBytes -- and must leave absolute pointers alone, since
 * their arithmetic is full 64-bit.
 */

#include <gtest/gtest.h>

#include "core/ptr.hh"

using namespace upr;

namespace
{

class PtrArithFault : public ::testing::TestWithParam<Version>
{
  protected:
    PtrArithFault() : rt(makeConfig()), scope(rt) {}

    Runtime::Config
    makeConfig()
    {
        Runtime::Config cfg;
        cfg.version = GetParam();
        cfg.seed = 31;
        return cfg;
    }

    Runtime rt;
    RuntimeScope scope;
};

TEST_P(PtrArithFault, PositiveOverflowThrowsTypedFault)
{
    const PtrBits p = PtrRepr::makeRelative(PoolId{3}, 0xfffffff0u);
    try {
        rt.ptrAddBytes(p, 0x20, /*site=*/1);
        FAIL() << "expected Fault";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
        EXPECT_NE(std::string(f.what()).find("wraps"),
                  std::string::npos);
    }
}

TEST_P(PtrArithFault, NegativeUnderflowThrowsTypedFault)
{
    const PtrBits p = PtrRepr::makeRelative(PoolId{3}, 8);
    try {
        rt.ptrAddBytes(p, -16, /*site=*/2);
        FAIL() << "expected Fault";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
    }
}

TEST_P(PtrArithFault, LargeDeltaOverflowThrowsTypedFault)
{
    // Deltas far beyond 2^32 must not wrap back into range via the
    // 64-bit intermediate.
    const PtrBits p = PtrRepr::makeRelative(PoolId{1}, 0);
    EXPECT_THROW(rt.ptrAddBytes(p, std::int64_t{1} << 40, 3), Fault);
    EXPECT_THROW(rt.ptrAddBytes(p, -(std::int64_t{1} << 40), 4), Fault);
}

TEST_P(PtrArithFault, BoundaryOffsetsStayLegal)
{
    // [0, 2^32) is the representable range; both endpoints reachable.
    const PtrBits lo = PtrRepr::makeRelative(PoolId{5}, 0);
    const PtrBits hi = rt.ptrAddBytes(lo, 0xffffffffLL, 5);
    EXPECT_TRUE(PtrRepr::isRelative(hi));
    EXPECT_EQ(PtrRepr::poolOf(hi), PoolId{5});
    EXPECT_EQ(PtrRepr::offsetOf(hi), 0xffffffffu);

    const PtrBits back = rt.ptrAddBytes(hi, -0xffffffffLL, 6);
    EXPECT_EQ(PtrRepr::offsetOf(back), 0u);
}

TEST_P(PtrArithFault, AbsolutePointersUseFull64BitArithmetic)
{
    // An absolute VA crossing a 32-bit boundary is fine.
    const PtrBits p = 0xfffffff0ULL;
    const PtrBits q = rt.ptrAddBytes(p, 0x20, 7);
    EXPECT_EQ(q, 0x100000010ULL);
    EXPECT_FALSE(PtrRepr::isRelative(q));
}

INSTANTIATE_TEST_SUITE_P(AllVersions, PtrArithFault,
                         ::testing::Values(Version::Volatile,
                                           Version::Sw, Version::Hw,
                                           Version::Explicit),
                         [](const auto &info) {
                             return versionName(info.param);
                         });

} // namespace
